"""Calibration report: paper targets vs measured values.

Run after any behavioural/detection parameter change:

    python scripts/calibration_report.py [--small]

Prints the headline quantities behind every figure/table next to the
paper's reported values so drift is visible at a glance.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import default_config, small_config, run_simulation
from repro.analysis import (
    CompetitionAnalyzer,
    SubsetBuilder,
    above_default_share,
    clicks_by_match_type,
    fraud_clicks_by_country,
    fraud_lifetimes,
    impression_rates,
    preads_shutdown_share,
    registration_country_table,
    top_position_probability,
    top_share,
    weekly_fraud_activity,
)
from repro.analysis.aggregates import aggregate_by_advertiser
from repro.timeline import quarter_window


def line(label: str, paper: str, measured: str) -> None:
    print(f"  {label:<46} paper: {paper:<16} measured: {measured}")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--small", action="store_true")
    args = parser.parse_args()
    config = small_config(days=240) if args.small else default_config()
    t0 = time.time()
    result = run_simulation(config)
    print(f"simulated {config.days} days in {time.time() - t0:.0f}s; "
          f"{len(result.impressions)} impression rows")

    table = result.impressions
    fraud_rows = table.fraud_labeled
    print("\n== Scale (Sec 4) ==")
    reg_fraud = [a for a in result.accounts if a.labeled_fraud]
    line("fraud share of registrations", "0.33-0.55",
         f"{len(reg_fraud) / len(result.accounts):.2f}")
    line("pre-ad share of fraud shutdowns", "0.35",
         f"{preads_shutdown_share(result):.2f}")
    lts = fraud_lifetimes(result)
    line("median lifetime from registration (Y1)", "<1 day",
         f"{lts['Year 1 (account)'].median:.2f}")
    line("median lifetime from first ad (Y1)", "~0.3 (8h)",
         f"{lts['Year 1 (ad)'].median:.2f}")
    line("p90 lifetime from first ad (Y1)", "<=4 days",
         f"{lts['Year 1 (ad)'].quantile(0.9):.1f}")
    line("fraud click share (all)", "~0.01-0.03",
         f"{table.clicks[fraud_rows].sum() / max(1, table.clicks.sum()):.4f}")
    line("fraud spend share (all)", "~0.01-0.03",
         f"{table.spend[fraud_rows].sum() / max(1, table.spend.sum()):.4f}")
    act = weekly_fraud_activity(result)
    half = len(act.spend_in_window) // 2
    early = act.spend_in_window[4:half].mean()
    late = act.spend_in_window[half:-2].mean()
    line("late/early fraud spend ratio (fig3)", "~0.5",
         f"{late / max(early, 1e-9):.2f}")

    window = quarter_window(1, 2) if not args.small else quarter_window(1, 2)
    wtab = table.in_window(window.start, window.end)
    agg = aggregate_by_advertiser(wtab, wtab.fraud_labeled)
    if len(agg):
        line("top-10% fraud click share (fig4)", ">0.95",
             f"{top_share(agg.clicks):.3f}")
        line("top-10% fraud spend share (fig4)", "0.8-0.9",
             f"{top_share(agg.spend):.3f}")

    print("\n== Rates / targeting (Sec 5) ==")
    rates = impression_rates(result, window)
    line("fraud/nonfraud median rate ratio (fig5)", ">3x",
         f"{rates.fraud.median / max(rates.nonfraud.median, 1e-9):.1f}")
    builder = SubsetBuilder(result, window, target_size=10_000)
    subsets = builder.build_many()
    for name in subsets:
        pass
    f_clicks = subsets["F with clicks"]
    nf_clicks = subsets["NF with clicks"]
    f_ads = np.median([a.n_ads for a in f_clicks.accounts])
    nf_ads = np.median([a.n_ads for a in nf_clicks.accounts])
    f_kw = np.median([a.n_keywords for a in f_clicks.accounts])
    nf_kw = np.median([a.n_keywords for a in nf_clicks.accounts])
    line("NF/F median ads ratio (fig7)", ">10x", f"{nf_ads / max(f_ads, 1):.1f}")
    line("NF/F median keywords ratio (fig7)", ">10x", f"{nf_kw / max(f_kw, 1):.1f}")

    t1 = registration_country_table(
        {k: subsets[k] for k in ("Fraud", "F with clicks")}
    )
    line("tab1 top countries (Fraud)", "US 50 IN 17 GB 14",
         " ".join(f"{c} {p:.0f}" for c, p in t1["Fraud"][:3]))

    t3 = fraud_clicks_by_country(result, window)
    line("tab3 fraud click countries", "US 61 BR 10 DE 10",
         " ".join(f"{r.country} {100 * r.share_of_fraud:.0f}" for r in t3[:4]))
    worst = max(t3, key=lambda r: r.share_of_country)
    line("tab3 dirtiest country", "BR <6%",
         f"{worst.country} {100 * worst.share_of_country:.1f}%")

    t4 = clicks_by_match_type(result, window)
    line("tab4 fraud click mix e/p/b", "62/31/7",
         "/".join(f"{100 * r.fraud_click_share:.0f}" for r in t4))
    line("tab4 nonfraud click mix e/p/b", "68/23/9",
         "/".join(f"{100 * r.nonfraud_click_share:.0f}" for r in t4))
    line("above-default both e&p (F)", "0.17",
         f"{above_default_share(f_clicks):.2f}")
    line("above-default both e&p (NF)", "~0.34",
         f"{above_default_share(nf_clicks):.2f}")

    print("\n== Competition (Sec 6) ==")
    analyzer = CompetitionAnalyzer(result, window)
    from repro.analysis import affected_share_distributions
    aff = affected_share_distributions(
        analyzer, {"F with clicks": f_clicks, "NF with clicks": nf_clicks}
    )
    line("median NF impressions affected (fig10)", "<0.006",
         f"{aff.curves['NF with clicks'].median:.4f}")
    line("p95 NF impressions affected (fig10)", "<0.20",
         f"{aff.curves['NF with clicks'].quantile(0.95):.3f}")
    line("median F impressions affected (fig10)", ">0.90",
         f"{aff.curves['F with clicks'].median:.3f}")
    aff_spend = affected_share_distributions(
        analyzer, {"F with clicks": f_clicks}, by="spend"
    )
    line("F spend affected (fig11)", "~0.99 mass",
         f"{aff_spend.curves['F with clicks'].median:.3f}")

    top_org = top_position_probability(analyzer, nf_clicks, influenced=False)
    top_inf = top_position_probability(analyzer, nf_clicks, influenced=True)
    line("NF top-position prob organic->influenced (fig12)", "0.20 -> 0.10",
         f"{top_org:.2f} -> {top_inf:.2f}")

    dub = CompetitionAnalyzer(result, window, dubious_only=True)
    ctr_org = [dub.ctr(a.advertiser_id, False) for a in nf_clicks.accounts]
    ctr_inf = [dub.ctr(a.advertiser_id, True) for a in nf_clicks.accounts]
    ctr_org = [v for v in ctr_org if not np.isnan(v)]
    ctr_inf = [v for v in ctr_inf if not np.isnan(v)]
    if ctr_org and ctr_inf:
        line("NF median CTR organic vs influenced (fig14)", "~2x drop",
             f"{np.median(ctr_org):.4f} -> {np.median(ctr_inf):.4f}")
    cpc_org = [dub.cpc(a.advertiser_id, False) for a in nf_clicks.accounts]
    cpc_inf = [dub.cpc(a.advertiser_id, True) for a in nf_clicks.accounts]
    cpc_org = [v for v in cpc_org if not np.isnan(v)]
    cpc_inf = [v for v in cpc_inf if not np.isnan(v)]
    if cpc_org and cpc_inf:
        line("NF median CPC organic vs influenced (fig15)", "+5-30%",
             f"{np.median(cpc_org):.2f} -> {np.median(cpc_inf):.2f}")
    fcpc_org = [dub.cpc(a.advertiser_id, False) for a in f_clicks.accounts]
    fcpc_inf = [dub.cpc(a.advertiser_id, True) for a in f_clicks.accounts]
    fcpc_org = [v for v in fcpc_org if not np.isnan(v)]
    fcpc_inf = [v for v in fcpc_inf if not np.isnan(v)]
    if fcpc_org and fcpc_inf:
        line("F median CPC organic vs influenced (fig17)", "~2x up",
             f"{np.median(fcpc_org):.2f} -> {np.median(fcpc_inf):.2f}")


if __name__ == "__main__":
    main()
