"""Finalize release artifacts from one full-scale simulation.

Runs the default two-year simulation once, then:
  * writes EXPERIMENTS.md (paper-vs-measured for all 21 artifacts),
  * writes validation_report.txt (the ~23-target acceptance report).

    python scripts/finalize.py
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path

from repro import default_config
from repro.simulator.cache import cached_simulation
from repro.validation import render_report, run_validation


def main() -> None:
    config = default_config()
    t0 = time.time()
    result = cached_simulation(config)
    print(f"simulated {config.days} days in {time.time() - t0:.0f}s")

    checks = run_validation(result)
    report = render_report(checks)
    Path("validation_report.txt").write_text(report + "\n")
    print(report)

    # Reuse the same in-process cache for the experiments generator.
    sys.argv = ["generate_experiments_md.py", "-o", "EXPERIMENTS.md"]
    generator = Path(__file__).with_name("generate_experiments_md.py")
    code = compile(generator.read_text(), str(generator), "exec")
    exec(code, {"__name__": "__main__", "__file__": str(generator)})


if __name__ == "__main__":
    main()
