"""Finalize release artifacts from one full-scale simulation.

Runs the default two-year simulation through the crash-safe checkpoint
runner (so an interrupted finalize resumes from its last durable
checkpoint instead of starting over), then:
  * writes validation_report.txt (the ~23-target acceptance report),
  * writes EXPERIMENTS.md (paper-vs-measured for all 21 artifacts).

    python scripts/finalize.py [--checkpoint-dir RUNS/finalize]

Re-running after a crash picks up the existing run directory
automatically; delete it (or pass a fresh --checkpoint-dir) to force a
from-scratch simulation.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro import default_config
from repro.records.atomic import atomic_write_text
from repro.runner import CheckpointRunner
from repro.simulator.cache import seed_cache
from repro.validation import render_report, run_validation

SCRIPTS_DIR = Path(__file__).resolve().parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=Path("RUNS/finalize"),
        help="run directory for durable checkpoints (resumed if present)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=28,
        metavar="N",
        help="persist an impression chunk every N simulated days",
    )
    args = parser.parse_args(argv)

    config = default_config()
    runner = CheckpointRunner(
        config, args.checkpoint_dir, checkpoint_every=args.checkpoint_every
    )
    t0 = time.time()
    result = runner.run(resume="auto")
    print(f"simulated {config.days} days in {time.time() - t0:.0f}s")

    # Seed the in-process cache so the experiments generator reuses the
    # checkpointed run instead of simulating again.
    seed_cache(config, result)

    checks = run_validation(result)
    report = render_report(checks)
    atomic_write_text("validation_report.txt", report + "\n")
    print(report)

    sys.path.insert(0, str(SCRIPTS_DIR))
    try:
        import generate_experiments_md
    finally:
        sys.path.remove(str(SCRIPTS_DIR))
    generate_experiments_md.main(["-o", "EXPERIMENTS.md"])
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
