"""Deep-dive diagnostics for fraud competition and geography."""

from __future__ import annotations

import numpy as np

from repro import default_config, run_simulation
from repro.analysis import SubsetBuilder
from repro.analysis.aggregates import aggregate_by_advertiser
from repro.entities.enums import AdvertiserKind
from repro.records.codes import country_name, vertical_name
from repro.timeline import quarter_window


def main() -> None:
    config = default_config()
    result = run_simulation(config)
    table = result.impressions
    window = quarter_window(1, 2)
    wtab = table.in_window(window.start, window.end)
    kind_by_id = {a.advertiser_id: a.kind for a in result.accounts}

    fraud = wtab.fraud_labeled
    print("rows in Y1Q2:", len(wtab), " fraud rows:", int(fraud.sum()))

    # Fraud rows by advertiser kind.
    kinds = np.asarray(
        [kind_by_id[int(i)].value for i in wtab.advertiser_id[fraud]]
    )
    for kind in np.unique(kinds):
        mask = kinds == kind
        print(
            f"  fraud rows kind={kind}: rows={mask.sum()}, "
            f"clicks={wtab.clicks[fraud][mask].sum():.0f}, "
            f"spend={wtab.spend[fraud][mask].sum():.0f}"
        )

    # n_fraud_shown distribution on fraud rows.
    vals, counts = np.unique(wtab.n_fraud_shown[fraud], return_counts=True)
    print("  n_fraud_shown on fraud rows:", dict(zip(vals.tolist(), counts.tolist())))

    # Fraud rows by vertical (top 6).
    verts, vcounts = np.unique(wtab.vertical[fraud], return_counts=True)
    order = np.argsort(vcounts)[::-1][:6]
    print("  fraud rows by vertical:",
          {vertical_name(int(verts[i])): int(vcounts[i]) for i in order})

    # Fraud clicks by country.
    ctys = np.unique(wtab.country[fraud])
    click_by_cty = {
        country_name(int(c)): float(wtab.clicks[fraud][wtab.country[fraud] == c].sum())
        for c in ctys
    }
    total = sum(click_by_cty.values()) or 1.0
    print("  fraud click share by country:",
          {k: round(v / total, 3) for k, v in sorted(click_by_cty.items(), key=lambda kv: -kv[1])[:8]})

    # Fraud IMPRESSION share by country (is supply there at all?)
    imp_by_cty_f = {}
    imp_by_cty_all = {}
    for c in np.unique(wtab.country):
        sel = wtab.country == c
        imp_by_cty_all[country_name(int(c))] = float(wtab.weight[sel].sum())
        imp_by_cty_f[country_name(int(c))] = float(wtab.weight[sel & fraud].sum())
    print("  fraud imp penetration by country:",
          {k: round(imp_by_cty_f[k] / max(1, imp_by_cty_all[k]), 4)
           for k in sorted(imp_by_cty_f, key=lambda k: -imp_by_cty_f[k])[:8]})

    # Campaign targeting of fraud accounts (supply side).
    target_counts: dict[str, int] = {}
    for a in result.accounts:
        if a.labeled_fraud:
            pass
    # Approximate via account summaries' verticals? country targeting is
    # not in summaries; use impressions instead (already above).

    # F-with-clicks composition and affected shares.
    builder = SubsetBuilder(result, window, target_size=10_000)
    subset = builder.build("F with clicks")
    kinds2 = {}
    for a in subset.accounts:
        kinds2[a.kind.value] = kinds2.get(a.kind.value, 0) + 1
    print("F with clicks composition:", kinds2, "n=", len(subset))

    from repro.analysis import CompetitionAnalyzer
    analyzer = CompetitionAnalyzer(result, window)
    shares = [
        analyzer.affected_impression_share(a.advertiser_id)
        for a in subset.accounts
    ]
    shares = np.asarray([s for s in shares if not np.isnan(s)])
    if shares.size:
        print("F affected shares: median %.3f mean %.3f p90 %.3f  zero-frac %.2f"
              % (np.median(shares), shares.mean(), np.percentile(shares, 90),
                 (shares == 0).mean()))
    by_kind = {}
    for a in subset.accounts:
        s = analyzer.affected_impression_share(a.advertiser_id)
        if not np.isnan(s):
            by_kind.setdefault(a.kind.value, []).append(s)
    for kind, values in by_kind.items():
        print(f"  affected share kind={kind}: median {np.median(values):.3f}")

    # Alive fraud offers snapshot mid-window.
    from repro.simulator.market import MarketIndex  # noqa: F401
    mid = (window.start + window.end) / 2
    alive_fraud = [
        a for a in result.accounts
        if a.labeled_fraud and a.created_time <= mid
        and (a.shutdown_time is None or a.shutdown_time > mid)
    ]
    prolific = [a for a in alive_fraud if a.kind is AdvertiserKind.FRAUD_PROLIFIC]
    print(f"alive fraud at day {mid:.0f}: {len(alive_fraud)} "
          f"({len(prolific)} prolific)")
    vert_counts: dict[str, int] = {}
    for a in prolific:
        for v in a.verticals:
            vert_counts[v] = vert_counts.get(v, 0) + 1
    print("  prolific verticals:", vert_counts)


if __name__ == "__main__":
    main()
