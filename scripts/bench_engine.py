"""Simulation-engine phase benchmark.

Times the three engine phases (population generation, market build,
the Phase-3 auction loop) and records the results as JSON so the perf
trajectory is tracked across PRs::

    PYTHONPATH=src python scripts/bench_engine.py                  # default config
    PYTHONPATH=src python scripts/bench_engine.py --quick          # test-scale config
    PYTHONPATH=src python scripts/bench_engine.py --compare-scalar # also time the oracle

``--compare-scalar`` additionally runs the retained scalar auction loop
(:meth:`SimulationEngine.run_auctions_scalar`) on an identically-seeded
engine and records the batched-vs-scalar speedup.  The default output
file is ``BENCH_engine.json`` in the repository root.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.config import default_config, small_config
from repro.records.impressions import ImpressionBuilder
from repro.simulator.engine import SimulationEngine
from repro.simulator.market import MarketIndex

SCHEMA = "repro.bench_engine/v1"
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _build_config(quick: bool, seed: int | None):
    if quick:
        return small_config() if seed is None else small_config(seed=seed)
    return default_config() if seed is None else default_config(seed=seed)


def _run_phases(config) -> dict:
    engine = SimulationEngine(config)
    t0 = time.perf_counter()
    accounts, _ = engine.generate_population()
    t1 = time.perf_counter()
    market = MarketIndex(accounts)
    market.country_volume_check()
    t2 = time.perf_counter()
    builder = ImpressionBuilder()
    engine.run_auctions(market, builder)
    t3 = time.perf_counter()
    table = builder.build()
    auctions_s = t3 - t2
    return {
        "phases": {
            "population_s": round(t1 - t0, 4),
            "market_build_s": round(t2 - t1, 4),
            "auctions_s": round(auctions_s, 4),
            "total_s": round(t3 - t0, 4),
        },
        "impressions": {
            "rows": len(table),
            "rows_per_sec": (
                round(len(table) / auctions_s, 1) if auctions_s > 0 else None
            ),
        },
    }


def _run_scalar_oracle(config) -> float:
    """Phase-3 wall-clock of the scalar loop on a fresh same-seed engine."""
    engine = SimulationEngine(config)
    accounts, _ = engine.generate_population()
    market = MarketIndex(accounts)
    builder = ImpressionBuilder()
    t0 = time.perf_counter()
    engine.run_auctions_scalar(market, builder)
    return time.perf_counter() - t0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(prog="bench-engine", description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the fast test-scale configuration",
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help="output JSON path (default: BENCH_engine.json at repo root)",
    )
    parser.add_argument(
        "--compare-scalar",
        action="store_true",
        help="also run the scalar oracle auction loop and record the speedup",
    )
    args = parser.parse_args(argv)

    config = _build_config(args.quick, args.seed)
    record = {
        "schema": SCHEMA,
        # timezone-aware UTC: time.strftime's %z is empty on platforms
        # whose struct_time carries no offset, yielding a naive stamp.
        "measured_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {
            "preset": "quick" if args.quick else "default",
            "seed": config.seed,
            "days": config.days,
            "auctions_per_day": config.query.auctions_per_day,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
    }
    record.update(_run_phases(config))
    if args.compare_scalar:
        scalar_s = _run_scalar_oracle(config)
        batched_s = record["phases"]["auctions_s"]
        record["scalar_oracle"] = {
            "auctions_s": round(scalar_s, 4),
            "speedup_batched_over_scalar": (
                round(scalar_s / batched_s, 2) if batched_s > 0 else None
            ),
        }

    args.out.write_text(json.dumps(record, indent=2) + "\n")
    phases = record["phases"]
    print(
        f"population {phases['population_s']:.2f}s | "
        f"market {phases['market_build_s']:.2f}s | "
        f"auctions {phases['auctions_s']:.2f}s | "
        f"{record['impressions']['rows']} rows "
        f"({record['impressions']['rows_per_sec']} rows/s)"
    )
    if "scalar_oracle" in record:
        oracle = record["scalar_oracle"]
        print(
            f"scalar oracle auctions {oracle['auctions_s']:.2f}s "
            f"-> batched speedup {oracle['speedup_batched_over_scalar']}x"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
