"""Simulation-engine phase benchmark.

Runs one fully traced simulation (``repro.obs`` spans captured with a
memory sink) and records the per-phase timings as JSON so the perf
trajectory is tracked across PRs::

    PYTHONPATH=src python scripts/bench_engine.py                  # default config
    PYTHONPATH=src python scripts/bench_engine.py --quick          # test-scale config
    PYTHONPATH=src python scripts/bench_engine.py --compare-scalar # also time the oracle

Phase timings come from the engine's own span instrumentation
(``phase1.population`` / ``phase2.market`` / ``phase3.auctions``), so
the bench measures exactly what ``python -m repro.obs report`` shows
for a real run, and ``phases_detail`` breaks each phase into its
hottest sub-spans (gather, kernel, per-day loop).

``--compare-scalar`` additionally runs the retained scalar auction loop
(:meth:`SimulationEngine.run_auctions_scalar`) on an identically-seeded
engine and records the batched-vs-scalar speedup.  The default output
file is ``BENCH_engine.json`` in the repository root.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro import obs
from repro.config import default_config, small_config
from repro.records.columnar import read_columns
from repro.records.impressions import ImpressionBuilder
from repro.runner.chunkstore import chunk_to_bytes, load_chunk
from repro.simulator.engine import SimulationEngine
from repro.simulator.market import MarketIndex

# v3: phase-1 sub-spans renamed for the whole-horizon path
# (phase1.draws / phase1.build replace phase1.day) and a `columnar`
# section measuring the .npc chunk codec's throughput.
# v4: a `resources` section (repro.obs.resources summary: peak/mean
# RSS, CPU utilization, GC pauses) sampled over the traced run.
SCHEMA = "repro.bench_engine/v4"
_REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = _REPO_ROOT / "BENCH_engine.json"
DEFAULT_HISTORY = _REPO_ROOT / "BENCH_history.jsonl"

#: Span name of each reported phase (JSON key -> engine span).
PHASE_SPANS = {
    "population_s": "phase1.population",
    "market_build_s": "phase2.market",
    "auctions_s": "phase3.auctions",
}

#: Sub-spans reported per phase in ``phases_detail``.
DETAIL_TOP_N = 5


def _build_config(quick: bool, seed: int | None):
    if quick:
        return small_config() if seed is None else small_config(seed=seed)
    return default_config() if seed is None else default_config(seed=seed)


def _descendant_totals(spans: list[dict], root_id: int) -> dict[str, dict]:
    """Aggregate every descendant of ``root_id`` by span name."""
    children: dict[int, list[dict]] = {}
    for span in spans:
        children.setdefault(span["parent"], []).append(span)
    totals: dict[str, dict] = {}
    frontier = [root_id]
    while frontier:
        parent = frontier.pop()
        for span in children.get(parent, ()):
            bucket = totals.setdefault(
                span["name"], {"count": 0, "total_s": 0.0}
            )
            bucket["count"] += 1
            bucket["total_s"] += span["dur"]
            frontier.append(span["id"])
    return {
        name: {"count": agg["count"], "total_s": round(agg["total_s"], 4)}
        for name, agg in totals.items()
    }


def _run_phases(config) -> dict:
    engine = SimulationEngine(config)
    sampler = obs.ResourceSampler()
    sampler.start()
    try:
        with obs.capture() as sink:
            result = engine.run()
    finally:
        resources = sampler.stop()
    spans = [e for e in sink.events if e["kind"] == "span"]
    by_name = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(span)

    phases: dict[str, float] = {}
    detail: dict[str, dict] = {}
    for key, span_name in PHASE_SPANS.items():
        phase_spans = by_name.get(span_name, [])
        phases[key] = round(sum(s["dur"] for s in phase_spans), 4)
        sub = {}
        for phase_span in phase_spans:
            for name, agg in _descendant_totals(spans, phase_span["id"]).items():
                bucket = sub.setdefault(name, {"count": 0, "total_s": 0.0})
                bucket["count"] += agg["count"]
                bucket["total_s"] = round(
                    bucket["total_s"] + agg["total_s"], 4
                )
        top = sorted(sub.items(), key=lambda kv: -kv[1]["total_s"])
        detail[span_name] = dict(top[:DETAIL_TOP_N])
    phases["total_s"] = round(sum(s["dur"] for s in by_name.get("run", [])), 4)

    rows = len(result.impressions)
    auctions_s = phases["auctions_s"]
    return {
        "phases": phases,
        "phases_detail": detail,
        "impressions": {
            "rows": rows,
            "rows_per_sec": (
                round(rows / auctions_s, 1) if auctions_s > 0 else None
            ),
        },
        "columnar": _bench_columnar(result, config.days),
        "resources": resources,
    }


def _bench_columnar(result, days: int) -> dict:
    """Throughput of the ``.npc`` chunk codec on this run's rows.

    Measures the three operations the durable-run machinery performs:
    serializing a chunk, replaying it whole, and the analysis layer's
    two-column seekable read.
    """
    columns = result.impressions.to_columns()
    rows = len(result.impressions)
    t0 = time.perf_counter()
    blob = chunk_to_bytes(columns, "columnar", 0, days)
    write_s = time.perf_counter() - t0
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench-chunk.npc"
        path.write_bytes(blob)
        t0 = time.perf_counter()
        load_chunk(path, "columnar")
        read_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        read_columns(path, names=["day", "spend"])
        subset_s = time.perf_counter() - t0

    def _rate(seconds: float):
        return round(rows / seconds, 1) if seconds > 0 else None

    return {
        "rows": rows,
        "bytes": len(blob),
        "write_rows_per_sec": _rate(write_s),
        "read_rows_per_sec": _rate(read_s),
        "subset_read_s": round(subset_s, 4),
    }


def _run_scalar_oracle(config) -> float:
    """Phase-3 wall-clock of the scalar loop on a fresh same-seed engine."""
    engine = SimulationEngine(config)
    accounts, _ = engine.generate_population()
    market = MarketIndex(accounts)
    builder = ImpressionBuilder()
    t0 = time.perf_counter()
    engine.run_auctions_scalar(market, builder)
    return time.perf_counter() - t0


def _print_trend(history_path: Path) -> None:
    """One line placing the just-appended row against its baseline.

    Best-effort: the bench must never fail because the trend reader
    choked on an old history layout.  Full tables (and the CI gate)
    live in ``python -m repro.obs trend``.
    """
    from repro.obs.history import load_history, trend_report

    try:
        report = trend_report(load_history(history_path))
    except (OSError, ValueError):
        return
    latest = next(
        (
            group
            for group in report["groups"]
            if f"{group['preset']}/days={group['days']}/seed={group['seed']}"
            == report["latest_key"]
        ),
        None,
    )
    if latest is None:
        return
    total = latest["metrics"]["total_s"]
    if total["regression"] is None:
        print(
            "trend: first measurement for this workload "
            "(no baseline yet; gate with `python -m repro.obs trend`)"
        )
    else:
        print(
            f"trend: total {total['value']:.2f}s vs baseline median "
            f"{total['baseline']:.2f}s ({total['regression']:+.1%})"
        )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(prog="bench-engine", description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the fast test-scale configuration",
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help="output JSON path (default: BENCH_engine.json at repo root)",
    )
    parser.add_argument(
        "--compare-scalar",
        action="store_true",
        help="also run the scalar oracle auction loop and record the speedup",
    )
    parser.add_argument(
        "--append-history",
        action="store_true",
        help="also append a compact record to the benchmark history file",
    )
    parser.add_argument(
        "--history-out",
        type=Path,
        default=DEFAULT_HISTORY,
        help=(
            "history JSONL path for --append-history "
            "(default: BENCH_history.jsonl at repo root)"
        ),
    )
    args = parser.parse_args(argv)

    config = _build_config(args.quick, args.seed)
    record = {
        "schema": SCHEMA,
        # timezone-aware UTC: time.strftime's %z is empty on platforms
        # whose struct_time carries no offset, yielding a naive stamp.
        "measured_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": {
            "preset": "quick" if args.quick else "default",
            "seed": config.seed,
            "days": config.days,
            "auctions_per_day": config.query.auctions_per_day,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
    }
    record.update(_run_phases(config))
    if args.compare_scalar:
        scalar_s = _run_scalar_oracle(config)
        batched_s = record["phases"]["auctions_s"]
        record["scalar_oracle"] = {
            "auctions_s": round(scalar_s, 4),
            "speedup_batched_over_scalar": (
                round(scalar_s / batched_s, 2) if batched_s > 0 else None
            ),
        }

    args.out.write_text(json.dumps(record, indent=2) + "\n")
    if args.append_history:
        # One compact line per measurement: enough to plot the perf
        # trajectory across PRs (and for `repro.obs diff` consumers)
        # without carrying the full nested detail of BENCH_engine.json.
        history_line = {
            "measured_at": record["measured_at"],
            "preset": record["config"]["preset"],
            "seed": record["config"]["seed"],
            "days": record["config"]["days"],
            "phases": record["phases"],
            "rows": record["impressions"]["rows"],
            "rows_per_sec": record["impressions"]["rows_per_sec"],
            "columnar_write_rows_per_sec": record["columnar"][
                "write_rows_per_sec"
            ],
        }
        with args.history_out.open("a") as handle:
            handle.write(
                json.dumps(history_line, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
        print(f"appended history -> {args.history_out}")
        _print_trend(args.history_out)
    phases = record["phases"]
    print(
        f"population {phases['population_s']:.2f}s | "
        f"market {phases['market_build_s']:.2f}s | "
        f"auctions {phases['auctions_s']:.2f}s | "
        f"{record['impressions']['rows']} rows "
        f"({record['impressions']['rows_per_sec']} rows/s)"
    )
    if "scalar_oracle" in record:
        oracle = record["scalar_oracle"]
        print(
            f"scalar oracle auctions {oracle['auctions_s']:.2f}s "
            f"-> batched speedup {oracle['speedup_batched_over_scalar']}x"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
