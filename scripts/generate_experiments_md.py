"""Generate EXPERIMENTS.md: paper-vs-measured for every figure/table.

Runs all 21 experiments against the full-scale simulation and renders a
markdown report.  Usage:

    python scripts/generate_experiments_md.py [--small] [-o EXPERIMENTS.md]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro import default_config, small_config
from repro.experiments import ExperimentContext, experiment_ids, run_experiment

# Paper-reported values per headline metric (numbers or qualitative).
PAPER_TARGETS: dict[str, dict[str, str]] = {
    "fig1": {
        "mean_share_first_half": "~0.35-0.45 (\"more than a third\")",
        "mean_share_second_half": ">0.5 near the end",
    },
    "fig2": {
        "pre_ad_shutdown_share": "0.35",
        "median_lifetime_from_registration_y1": "<1 day",
        "median_lifetime_from_first_ad_y1": "~0.33 d (most within 8h)",
        "p90_lifetime_from_first_ad_y1": "<=4 days",
    },
    "fig3": {
        "late_over_early_spend": "~0.5 (activity nearly halves)",
        "out_of_window_share": "substantial (factor ~2 under-report)",
    },
    "fig4": {
        "top10pct_click_share": ">0.95",
        "top10pct_spend_share": "0.80-0.90",
    },
    "fig5": {"median_ratio": "fraud clearly faster (right-shifted CDF)"},
    "fig6": {
        "fraud_median_rate": "separated at low volume",
        "nonfraud_high_volume_median_rate": "blends with fraud at high volume",
    },
    "fig7": {
        "nf_over_f_median_ads": ">10x",
        "nf_over_f_median_keywords": ">10x",
    },
    "fig8": {
        "techsupport_collapse_ratio": "near-zero after the ban",
    },
    "fig9": {
        "above_default_both_fraud": "0.17",
        "above_default_both_nonfraud": "~0.34 (roughly double)",
        "fraud_share_with_no_exact": "0.60",
        "nonfraud_share_with_no_exact": "~0.50",
    },
    "fig10": {
        "nf_median_affected": "<0.006",
        "nf_p95_affected": "<0.20",
        "f_median_affected": ">0.90",
    },
    "fig11": {
        "f_median_spend_affected": "~0.99 of fraud spend affected",
        "nf_median_spend_affected": "small",
    },
    "fig12": {
        "nf_top_position_organic": "~0.20",
        "nf_top_position_influenced": "~0.10",
    },
    "fig13": {
        "f_top_position_organic": "~5% above NF organic",
        "f_top_position_influenced": "~10% drop",
    },
    "fig14": {
        "ctr_drop_factor": "~2x median drop; ~50% near-zero CTR",
    },
    "fig15": {
        "high_volume_cpc_increase": "~+30% (high volume); <5% random",
    },
    "fig16": {
        "f_near_zero_ctr_organic": "a few percent",
        "f_near_zero_ctr_influenced": "~a third",
    },
    "fig17": {"f_cpc_increase_factor": "~2x"},
    "tab1": {"top_country_share": "US 0.503 of fraud registrations"},
    "tab2": {"n_categories": "5 sample categories"},
    "tab3": {
        "top_country_share_of_fraud": "US 0.61",
        "dirtiest_country_fraud_share": "BR <0.06",
    },
    "tab4": {
        "fraud_exact_share": "0.616",
        "fraud_phrase_share": "0.311 (over-represented)",
        "nonfraud_exact_share": "0.679",
        "nonfraud_phrase_share": "0.233",
    },
}


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--small", action="store_true")
    parser.add_argument("-o", "--output", type=Path,
                        default=Path("EXPERIMENTS.md"))
    args = parser.parse_args(argv)
    config = small_config() if args.small else default_config()
    context = ExperimentContext(config)

    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Every figure and table of the paper's evaluation, regenerated "
        "from the synthetic marketplace (see DESIGN.md for the "
        "substitution rationale). Absolute numbers are synthetic; the "
        "claim is that the *shape* — orderings, rough factors, regime "
        "changes — matches the paper.",
        "",
        f"Configuration: seed={config.seed}, days={config.days}, "
        f"registrations/day={config.population.registrations_per_day}, "
        f"sampled auctions/day={config.query.auctions_per_day}.",
        "",
        "Regenerate any row with `python -m repro.experiments <id>`; "
        "benchmarks live in `benchmarks/test_<id>.py`.",
        "",
    ]
    for experiment_id in experiment_ids():
        output = run_experiment(experiment_id, context)
        lines.append(f"## {experiment_id}: {output.title}")
        lines.append("")
        targets = PAPER_TARGETS.get(experiment_id, {})
        lines.append("| metric | paper | measured |")
        lines.append("|---|---|---|")
        for key, value in output.metrics.items():
            paper = targets.get(key, "—")
            lines.append(f"| {key} | {paper} | {value:.4g} |")
        for key, paper in targets.items():
            if key not in output.metrics:
                lines.append(f"| {key} | {paper} | (see chart/table) |")
        lines.append("")
        for note in output.notes:
            lines.append(f"> {note}")
        lines.append("")
        print(f"{experiment_id}: ok ({len(output.metrics)} metrics)")

    args.output.write_text("\n".join(lines) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
