"""Quickstart: simulate a small marketplace and reproduce two artifacts.

Run:
    python examples/quickstart.py
"""

from repro import run_simulation, small_config
from repro.analysis import (
    SubsetBuilder,
    clicks_by_match_type,
    fraud_lifetimes,
    preads_shutdown_share,
)
from repro.plotting import render_cdfs, render_series_table
from repro.timeline import Window


def main() -> None:
    config = small_config(seed=42, days=120)
    print(f"simulating {config.days} days ...")
    result = run_simulation(config)

    fraud = result.fraud_accounts()
    print(f"accounts: {len(result.accounts)}  "
          f"labeled fraud: {len(fraud)}  "
          f"impression rows: {len(result.impressions)}")
    print(f"share of fraud shutdowns before any ad: "
          f"{preads_shutdown_share(result):.0%}")

    # Figure 2: fraud account lifetimes.
    curves = fraud_lifetimes(result)
    populated = {k: v for k, v in curves.curves.items() if len(v) > 0}
    print()
    print(render_cdfs(populated, "Fraud account lifetimes (days)", logx=True,
                      xlabel="days"))

    # Table 4: click share by match type.
    window = Window(30.0, 120.0, "demo window")
    rows = [
        [r.match_type, f"{100 * r.fraud_click_share:.1f}%",
         f"{100 * r.nonfraud_click_share:.1f}%"]
        for r in clicks_by_match_type(result, window)
    ]
    print(render_series_table(
        ["match type", "fraud clicks", "non-fraud clicks"], rows,
        "Click share by match type",
    ))

    # Build the paper's subsets for further analysis.
    subsets = SubsetBuilder(result, window, target_size=500).build_many()
    print("subset sizes:",
          {name: len(subset) for name, subset in subsets.items()})


if __name__ == "__main__":
    main()
