"""Policy intervention study: the third-party tech-support ban.

Section 7 argues targeted policy changes are the most effective fraud
instrument the platform has.  This example runs the same marketplace
twice -- with and without the ban -- and compares the tech-support
vertical's fraudulent spend trajectory (Figure 8's signature collapse).

Run:
    python examples/policy_intervention.py
"""

import numpy as np

from repro import run_simulation, small_config
from repro.analysis.verticals import vertical_spend_by_month
from repro.plotting import render_lines


def techsupport_series(ban_day):
    config = small_config(seed=1009, days=240)
    config = config.with_detection(techsupport_ban_day=ban_day)
    result = run_simulation(config)
    series = vertical_spend_by_month(result)
    return np.asarray(series.series["techsupport"])


def main() -> None:
    ban_day = 120.0
    print("running marketplace WITH the tech-support ban ...")
    banned = techsupport_series(ban_day)
    print("running marketplace WITHOUT the ban ...")
    unbanned = techsupport_series(None)

    months = np.arange(len(banned), dtype=float)
    print()
    print(render_lines(
        {
            "with ban (day 120)": (months, banned),
            "without ban": (months, unbanned),
        },
        "Monthly fraudulent tech-support spend (normalized)",
        xlabel="month",
        ylabel="normalized spend",
    ))

    half = len(banned) // 2
    def tail_share(series):
        total = series.sum()
        return series[half:].sum() / total if total > 0 else 0.0

    print(f"post-midpoint spend share: with ban {tail_share(banned):.1%}, "
          f"without ban {tail_share(unbanned):.1%}")
    print("The ban collapses the vertical; background detection alone "
          "does not.")


if __name__ == "__main__":
    main()
