"""Dataset export: write the paper's three datasets to disk and reload.

The simulator produces the same record families the paper works from:
customer/ad records, impression/click records, and fraud detection
records.  This example exports them (CSV + JSONL), reloads the
impression table, and recomputes Table 3 from the files -- the workflow
of an analyst starting from raw logs.

Run:
    python examples/dataset_export.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro import run_simulation, small_config
from repro.records import (
    read_impressions_csv,
    write_impressions_csv,
    write_records_jsonl,
)
from repro.analysis.geography import fraud_clicks_by_country
from repro.plotting import render_series_table
from repro.timeline import Window


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="repro-datasets-")
    )
    out_dir.mkdir(parents=True, exist_ok=True)

    config = small_config(seed=5, days=90)
    print(f"simulating {config.days} days ...")
    result = run_simulation(config)

    customers_path = out_dir / "customers.jsonl"
    detections_path = out_dir / "detections.jsonl"
    impressions_path = out_dir / "impressions.csv"
    n_customers = write_records_jsonl(result.customer_records(), customers_path)
    n_detections = write_records_jsonl(result.detections, detections_path)
    write_impressions_csv(result.impressions, impressions_path)
    print(f"wrote {n_customers} customer records -> {customers_path}")
    print(f"wrote {n_detections} detection records -> {detections_path}")
    print(f"wrote {len(result.impressions)} impression rows -> "
          f"{impressions_path}")

    # Reload and recompute Table 3 from the files.
    reloaded = read_impressions_csv(impressions_path)
    assert len(reloaded) == len(result.impressions)

    class FileBacked:
        impressions = reloaded
        accounts = result.accounts
        total_days = config.days

    window = Window(20.0, 90.0, "export window")
    rows = [
        [r.country, f"{100 * r.share_of_fraud:.1f}%",
         f"{100 * r.share_of_country:.2f}%"]
        for r in fraud_clicks_by_country(FileBacked, window)[:8]
    ]
    print()
    print(render_series_table(
        ["country", "% of fraud", "% of country"], rows,
        "Table 3 recomputed from exported files",
    ))


if __name__ == "__main__":
    main()
