"""Detection tuning: the aggressiveness / fraud-loss tradeoff.

Sweeps the behavioural detection hazards and reports how fraud account
lifetimes and the platform's fraud exposure (fraud share of clicks and
spend) respond -- the tradeoff a real trust-and-safety team tunes.

Run:
    python examples/detection_tuning.py
"""

import numpy as np

from repro import run_simulation, small_config
from repro.analysis.lifetimes import fraud_lifetimes
from repro.plotting import render_series_table


def run_at(hazard_scale: float):
    config = small_config(seed=77, days=150)
    detection = config.detection
    config = config.with_detection(
        behavior_hazard=detection.behavior_hazard * hazard_scale,
        prolific_behavior_hazard=detection.prolific_behavior_hazard
        * hazard_scale,
        rate_hazard_per_decade=detection.rate_hazard_per_decade * hazard_scale,
        content_filter_prob=min(
            0.95, detection.content_filter_prob * hazard_scale
        ),
    )
    result = run_simulation(config)
    table = result.impressions
    fraud_clicks = table.clicks[table.fraud_labeled].sum()
    fraud_spend = table.spend[table.fraud_labeled].sum()
    curve = fraud_lifetimes(result)["Year 1 (account)"]
    return {
        "median_lifetime": curve.median if len(curve) else float("nan"),
        "fraud_click_share": fraud_clicks / max(1.0, table.clicks.sum()),
        "fraud_spend_share": fraud_spend / max(1.0, table.spend.sum()),
    }


def main() -> None:
    rows = []
    for scale in (0.25, 0.5, 1.0, 2.0, 4.0):
        print(f"running with detection strength x{scale} ...")
        stats = run_at(scale)
        rows.append([
            f"x{scale}",
            f"{stats['median_lifetime']:.2f} d",
            f"{100 * stats['fraud_click_share']:.2f}%",
            f"{100 * stats['fraud_spend_share']:.2f}%",
        ])
    print()
    print(render_series_table(
        ["strength", "median fraud lifetime", "fraud click share",
         "fraud spend share"],
        rows,
        "Detection aggressiveness sweep",
    ))
    print("Stronger detection shortens fraud lifetimes and shrinks the "
          "platform's fraud exposure, with diminishing returns -- the "
          "paper's Section 7 diagnosis.")


if __name__ == "__main__":
    main()
