"""Anomaly-detection baseline study (the paper's Section 7 argument).

Fits a feature-based anomaly scorer on the marketplace's legitimate
advertisers and asks: how well would one more behavioural detector do?
The paper's diagnosis -- detectable fraud is already caught, and the
survivors "do not behave substantially differently from legitimate
advertisers" -- shows up as a large recall gap between the full fraud
population and the pipeline's survivors.

Run:
    python examples/anomaly_baseline.py
"""

from repro import run_simulation, small_config
from repro.detection import evaluate_anomaly_detector
from repro.plotting import render_series_table


def main() -> None:
    config = small_config(seed=2024, days=180)
    print(f"simulating {config.days} days ...")
    result = run_simulation(config)

    rows = []
    for flag_rate in (0.02, 0.05, 0.10, 0.20):
        evaluation = evaluate_anomaly_detector(result, flag_rate=flag_rate)
        rows.append([
            f"{flag_rate:.0%}",
            f"{evaluation.precision:.2f}",
            f"{evaluation.recall:.2f}",
            (
                f"{evaluation.survivor_recall:.2f}"
                if evaluation.survivor_recall == evaluation.survivor_recall
                else "n/a"
            ),
            f"{evaluation.auc_proxy:.2f}",
        ])
    print()
    print(render_series_table(
        ["review budget", "precision", "recall (all fraud)",
         "recall (pipeline survivors)", "AUC"],
        rows,
        "Anomaly baseline vs ground truth",
    ))
    print(
        "The detector separates fraud from non-fraud in aggregate (high "
        "AUC), but at realistic review budgets recall stays low and the "
        "pipeline's survivors are recalled no better than fraud at "
        "large -- one more behavioural detector buys little beyond the "
        "existing pipeline, the paper's diminishing-returns diagnosis."
    )


if __name__ == "__main__":
    main()
