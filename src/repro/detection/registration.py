"""Registration-time screening.

"35% of all account shutdowns occur before the advertiser account is
able to display even one ad" (Section 4.1): stringent validation of new
accounts (credit-card verification and friends) catches a large slice
of fraud before it ever posts.
"""

from __future__ import annotations

import numpy as np

from ..behavior.profiles import AdvertiserProfile
from ..config import DetectionConfig
from .hazards import sample_exponential_delay

__all__ = ["screen_registration"]


def screen_registration(
    profile: AdvertiserProfile,
    created_time: float,
    config: DetectionConfig,
    rng: np.random.Generator,
) -> float | None:
    """Shutdown time if the account is screened out at registration.

    Returns None if the account passes screening.  Legitimate accounts
    always pass (false positives at registration are modeled within the
    friendly-fire probability downstream).  Stolen payment instruments
    raise the screen probability; evasion skill lowers it.
    """
    if not profile.is_fraud:
        return None
    probability = config.registration_screen_prob
    if profile.uses_stolen_payment:
        probability = min(0.95, probability * 1.25)
    probability *= 1.0 - 0.6 * profile.evasion_skill
    if rng.random() >= probability:
        return None
    return created_time + sample_exponential_delay(
        config.registration_screen_mean_days, rng
    )
