"""Baseline anomaly detector over account features (Section 7 study).

The paper's Discussion argues that "new anomaly detection strategies
are likely to have diminishing returns": the fraud that survives the
existing pipeline "does not behave substantially differently from
legitimate advertisers".  This module makes that claim testable: a
feature-based anomaly scorer (the kind of detector a platform would
bolt on) is trained on the simulated population and evaluated against
ground truth -- overall, and restricted to the survivors the pipeline
missed.

The detector is deliberately simple and standard: per-feature robust
z-scores against the legitimate population, combined into one score.
It is a *baseline*, not a contribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulator.results import AccountSummary, SimulationResult

__all__ = [
    "FEATURE_NAMES",
    "account_features",
    "AnomalyScorer",
    "DetectorEvaluation",
    "evaluate_anomaly_detector",
]

FEATURE_NAMES: tuple[str, ...] = (
    "log_activity_scale",
    "log_n_ads",
    "log_n_keywords",
    "keywords_per_ad",
    "broad_bid_share",
    "exact_bid_share",
    "log_n_domains",
    "dubious_vertical",
)


def account_features(account: AccountSummary) -> np.ndarray:
    """The behavioural feature vector a platform could compute at
    posting time (no label leakage: nothing here depends on detection
    outcomes)."""
    from ..taxonomy.verticals import vertical

    n_ads = max(1, account.n_ads)
    n_keywords = max(1, account.n_keywords)
    total_bids = float(account.bid_count_by_match.sum())
    broad_share = (
        account.bid_count_by_match[2] / total_bids if total_bids > 0 else 0.0
    )
    exact_share = (
        account.bid_count_by_match[0] / total_bids if total_bids > 0 else 0.0
    )
    dubious = float(any(vertical(v).dubious for v in account.verticals))
    return np.array(
        [
            np.log10(account.activity_scale),
            np.log10(n_ads),
            np.log10(n_keywords),
            n_keywords / n_ads,
            broad_share,
            exact_share,
            np.log10(max(1, account.n_domains)),
            dubious,
        ]
    )


@dataclass
class AnomalyScorer:
    """Robust z-score anomaly detector fit on legitimate accounts."""

    medians: np.ndarray
    scales: np.ndarray

    @classmethod
    def fit(cls, accounts: list[AccountSummary]) -> "AnomalyScorer":
        """Fit location/scale per feature on a reference population."""
        if not accounts:
            raise ValueError("cannot fit on an empty population")
        matrix = np.stack([account_features(a) for a in accounts])
        medians = np.median(matrix, axis=0)
        mad = np.median(np.abs(matrix - medians), axis=0)
        scales = np.where(mad > 1e-9, 1.4826 * mad, 1.0)
        return cls(medians=medians, scales=scales)

    def score(self, account: AccountSummary) -> float:
        """Mean absolute robust z-score across features."""
        z = (account_features(account) - self.medians) / self.scales
        return float(np.mean(np.abs(z)))

    def score_many(self, accounts: list[AccountSummary]) -> np.ndarray:
        """Scores for many accounts at once."""
        return np.asarray([self.score(a) for a in accounts])


@dataclass(frozen=True)
class DetectorEvaluation:
    """Precision/recall of the anomaly baseline at one threshold."""

    threshold: float
    precision: float
    recall: float
    #: Recall restricted to ground-truth fraud the pipeline *missed*
    #: (undetected survivors) -- the population the paper says blends in.
    survivor_recall: float
    auc_proxy: float
    n_scored: int


def evaluate_anomaly_detector(
    result: SimulationResult,
    flag_rate: float = 0.05,
) -> DetectorEvaluation:
    """Fit on labeled-nonfraud accounts, score everyone, evaluate vs
    ground truth.

    Args:
        result: A finished simulation.
        flag_rate: Fraction of accounts the platform is willing to send
            to manual review; the threshold is that score quantile.
    """
    if not 0.0 < flag_rate < 1.0:
        raise ValueError("flag_rate must be in (0, 1)")
    posting = [a for a in result.accounts if a.posted_ads]
    reference = [a for a in posting if not a.labeled_fraud]
    if not reference:
        raise ValueError("no labeled-nonfraud accounts to fit on")
    scorer = AnomalyScorer.fit(reference)
    scores = scorer.score_many(posting)
    truth = np.asarray([a.is_fraud_ground_truth for a in posting])
    survivors = np.asarray(
        [a.is_fraud_ground_truth and not a.labeled_fraud for a in posting]
    )

    threshold = float(np.quantile(scores, 1.0 - flag_rate))
    flagged = scores >= threshold
    true_positives = float((flagged & truth).sum())
    precision = true_positives / max(1.0, flagged.sum())
    recall = true_positives / max(1.0, truth.sum())
    survivor_recall = (
        float((flagged & survivors).sum()) / survivors.sum()
        if survivors.any()
        else float("nan")
    )
    # Rank-based AUC proxy (probability a random fraud outranks a
    # random nonfraud).
    fraud_scores = scores[truth]
    clean_scores = scores[~truth]
    if fraud_scores.size and clean_scores.size:
        ranks = np.searchsorted(np.sort(clean_scores), fraud_scores)
        auc = float(ranks.mean() / clean_scores.size)
    else:
        auc = float("nan")
    return DetectorEvaluation(
        threshold=threshold,
        precision=precision,
        recall=recall,
        survivor_recall=survivor_recall,
        auc_proxy=auc,
        n_scored=len(posting),
    )
