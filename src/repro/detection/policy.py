"""Policy engine and change log.

The paper's most dramatic intervention: early in Year 2 the platform
prohibited marketing of third-party technical support services outright
(previously only false affiliation claims were banned).  The policy
engine applies that change: tech-support accounts alive at the ban are
swept shortly after, and accounts posting tech-support ads *after* the
ban are caught almost immediately by the newly-blacklisted vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import DetectionConfig
from ..matching.blacklist import Blacklist

__all__ = ["PolicyChange", "PolicyEngine"]

BANNED_VERTICAL = "techsupport"
#: Mean days from ban to sweep for accounts alive at the ban.
SWEEP_MEAN_DAYS = 6.0
#: Content-filter catch probability for banned-vertical ads post-ban.
POST_BAN_CATCH_PROB = 0.97


@dataclass(frozen=True)
class PolicyChange:
    """One entry in the policy change log."""

    day: float
    description: str
    banned_vertical: str


@dataclass
class PolicyEngine:
    """Applies policy changes to accounts and the blacklist."""

    config: DetectionConfig
    changes: list[PolicyChange] = field(default_factory=list)

    @classmethod
    def from_config(cls, config: DetectionConfig) -> "PolicyEngine":
        """Build the engine with the configured change log."""
        engine = cls(config=config)
        if config.techsupport_ban_day is not None:
            engine.changes.append(
                PolicyChange(
                    day=config.techsupport_ban_day,
                    description=(
                        "Prohibit marketing of third-party technical "
                        "support services"
                    ),
                    banned_vertical=BANNED_VERTICAL,
                )
            )
        return engine

    def apply_to_blacklist(self, blacklist: Blacklist, day: float) -> None:
        """Enact any change effective at ``day`` on the blacklist."""
        for change in self.changes:
            if change.day <= day and change.banned_vertical == BANNED_VERTICAL:
                blacklist.enact_techsupport_ban()

    def vertical_banned_at(self, vertical: str, time: float) -> bool:
        """Whether a policy bans the vertical at the given time."""
        return any(
            change.banned_vertical == vertical and time >= change.day
            for change in self.changes
        )

    def sweep_time(
        self,
        verticals: tuple[str, ...],
        created_time: float,
        first_ad_time: float,
        rng: np.random.Generator,
    ) -> float | None:
        """Shutdown time imposed by policy changes, or None.

        Accounts in a banned vertical that exist before the ban are
        swept shortly after it; accounts that *start* in a banned
        vertical after the ban are caught almost immediately.
        """
        times: list[float] = []
        for change in self.changes:
            if change.banned_vertical not in verticals:
                continue
            if first_ad_time >= change.day:
                if rng.random() < POST_BAN_CATCH_PROB:
                    times.append(first_ad_time + float(rng.exponential(0.3)))
            else:
                times.append(change.day + float(rng.exponential(SWEEP_MEAN_DAYS)))
        return min(times) if times else None
