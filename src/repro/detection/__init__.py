"""Anti-fraud detection pipeline and baseline detectors."""

from .anomaly import (
    AnomalyScorer,
    DetectorEvaluation,
    account_features,
    evaluate_anomaly_detector,
)

from .content_filter import content_filter_catch_prob, evaluate_content
from .hazards import hardening_multiplier, sample_exponential_delay
from .payment import sample_payment_detection
from .pipeline import DetectionOutcome, DetectionPipeline
from .policy import PolicyChange, PolicyEngine
from .rate_monitor import expected_impression_rate, rate_hazard, sample_rate_detection
from .registration import screen_registration

__all__ = [
    "AnomalyScorer",
    "DetectorEvaluation",
    "account_features",
    "evaluate_anomaly_detector",
    "DetectionOutcome",
    "DetectionPipeline",
    "PolicyChange",
    "PolicyEngine",
    "content_filter_catch_prob",
    "evaluate_content",
    "hardening_multiplier",
    "sample_exponential_delay",
    "sample_payment_detection",
    "expected_impression_rate",
    "rate_hazard",
    "sample_rate_detection",
    "screen_registration",
]
