"""The end-to-end anti-fraud pipeline.

Stages (Sections 2-4): registration screening, content filtering at ad
posting, rate monitoring, payment-network signals, behavioural
detection backed by manual review, and policy sweeps.  The account's
shutdown time is the earliest firing stage; a small share of fraud
evades the study entirely and a (low) friendly-fire rate hits
legitimate accounts.

The pipeline evaluates an account once its ads are materialized, which
lets the content filter scan the *actual* ad copy and keywords the
account created (including evasive copy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..behavior.factory import MaterializedAccount
from ..behavior.profiles import AdvertiserProfile
from ..config import DetectionConfig, QueryConfig
from ..entities.enums import AdvertiserKind, ShutdownReason
from ..matching.blacklist import Blacklist
from ..records.schemas import DetectionRecord
from .content_filter import evaluate_content
from .hazards import hardening_multiplier
from .payment import sample_payment_detection
from .policy import PolicyEngine
from .rate_monitor import sample_rate_detection
from .registration import screen_registration

__all__ = ["DetectionOutcome", "DetectionPipeline"]

#: Share of behavioural detections attributed to manual review.
MANUAL_REVIEW_SHARE = 0.4


@dataclass(frozen=True)
class DetectionOutcome:
    """Final enforcement decision for one account."""

    shutdown_time: float | None
    reason: ShutdownReason | None
    labeled_fraud: bool

    @property
    def detected(self) -> bool:
        """Whether any stage fired within the study."""
        return self.shutdown_time is not None


class DetectionPipeline:
    """Stateful pipeline owning the blacklist and policy engine."""

    def __init__(
        self,
        config: DetectionConfig,
        query_config: QueryConfig,
        total_days: float,
    ) -> None:
        self.config = config
        self.query_config = query_config
        self.total_days = total_days
        self.blacklist = Blacklist.default()
        self.policy = PolicyEngine.from_config(config)
        self.records: list[DetectionRecord] = []

    def _hardening(self, time: float) -> float:
        return hardening_multiplier(time, self.total_days, self.config.hardening_factor)

    def screen_registration(
        self,
        profile: AdvertiserProfile,
        created_time: float,
        rng: np.random.Generator,
    ) -> float | None:
        """Registration-time screen; returns the shutdown time if caught."""
        return screen_registration(profile, created_time, self.config, rng)

    def _behavioral_time(
        self,
        profile: AdvertiserProfile,
        first_ad_time: float,
        rng: np.random.Generator,
    ) -> float:
        if profile.kind is AdvertiserKind.FRAUD_PROLIFIC:
            hazard = self.config.prolific_behavior_hazard
        else:
            hazard = self.config.behavior_hazard
        hazard *= self._hardening(first_ad_time)
        return first_ad_time + float(rng.exponential(1.0 / hazard))

    def evaluate_fraud_account(
        self,
        account: MaterializedAccount,
        first_ad_time: float,
        rng: np.random.Generator,
    ) -> DetectionOutcome:
        """Decide when (and by which stage) a posting fraud account dies."""
        profile = account.profile
        # Make sure any policy effective by now is on the blacklist, so
        # the content filter sees (for example) the tech-support terms.
        self.policy.apply_to_blacklist(self.blacklist, first_ad_time)
        if rng.random() < self.config.evade_study_prob:
            return DetectionOutcome(None, None, False)

        hardening = self._hardening(first_ad_time)
        candidates: list[tuple[float, ShutdownReason]] = []
        content_time = evaluate_content(
            account, first_ad_time, self.blacklist, self.config, hardening, rng
        )
        if content_time is not None:
            candidates.append((content_time, ShutdownReason.CONTENT_FILTER))
        rate_time = sample_rate_detection(
            profile, first_ad_time, self.query_config, self.config, hardening, rng
        )
        if rate_time is not None:
            candidates.append((rate_time, ShutdownReason.RATE_MONITOR))
        payment_time = sample_payment_detection(
            profile, first_ad_time, self.config, hardening, rng
        )
        if payment_time is not None:
            candidates.append((payment_time, ShutdownReason.PAYMENT_FRAUD))
        behavioral_time = self._behavioral_time(profile, first_ad_time, rng)
        behavioral_reason = (
            ShutdownReason.MANUAL_REVIEW
            if rng.random() < MANUAL_REVIEW_SHARE
            else ShutdownReason.BEHAVIORAL
        )
        candidates.append((behavioral_time, behavioral_reason))
        policy_time = self.policy.sweep_time(
            profile.verticals, account.advertiser.created_time, first_ad_time, rng
        )
        if policy_time is not None:
            candidates.append((policy_time, ShutdownReason.POLICY_CHANGE))

        time, reason = min(candidates, key=lambda item: item[0])
        return DetectionOutcome(time, reason, True)

    def evaluate_legitimate_account(
        self,
        created_time: float,
        rng: np.random.Generator,
        horizon: float,
    ) -> DetectionOutcome:
        """Friendly fire: rare mistaken shutdown of a legitimate account."""
        if rng.random() >= self.config.friendly_fire_prob:
            return DetectionOutcome(None, None, False)
        time = float(rng.uniform(created_time, max(created_time + 1.0, horizon)))
        return DetectionOutcome(time, ShutdownReason.FRIENDLY_FIRE, True)

    def commit(
        self,
        advertiser_id: int,
        outcome: DetectionOutcome,
        domains: list[str] | None = None,
    ) -> None:
        """Record an enforcement action and grow the domain blacklist."""
        if outcome.shutdown_time is None or outcome.reason is None:
            return
        # Per-stage shutdown telemetry; counter/ledger bumps only -- the
        # pipeline's RNG draws happened before commit() is reached.
        obs.counter(f"detection.shutdowns.{outcome.reason.value}").inc()
        ledger = obs.dayledger()
        if ledger is not None:
            ledger.record_shutdown(outcome.shutdown_time, outcome.reason.value)
        self.records.append(
            DetectionRecord.make(
                advertiser_id,
                outcome.shutdown_time,
                outcome.reason,
                outcome.labeled_fraud,
            )
        )
        if outcome.labeled_fraud and domains:
            for domain in domains:
                self.blacklist.add_domain(domain)
