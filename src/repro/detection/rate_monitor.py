"""Rate-based anomaly detection.

Fraudsters push impressions faster than typical legitimate accounts
(Figure 5), so rate checks catch many low-volume fraudulent users --
but "the most successful fraudulent users blend in with their
non-fraudulent counterparts" (Figure 6): high-volume legitimate
advertisers have comparable rates, so prolific operators are only
weakly exposed to this detector.
"""

from __future__ import annotations

import math

import numpy as np

from ..behavior.profiles import AdvertiserProfile
from ..config import DetectionConfig, QueryConfig
from ..entities.enums import AdvertiserKind

__all__ = ["expected_impression_rate", "rate_hazard", "sample_rate_detection"]

#: Dampening applied to prolific operators, who blend in with
#: high-volume legitimate advertisers.
PROLIFIC_RATE_DAMPENING = 0.03
#: Rough average number of matching sampled queries per day for an
#: always-on account (used only as a planning proxy by the detector).
MATCHED_QUERIES_PER_DAY = 2.0


def expected_impression_rate(
    profile: AdvertiserProfile, query_config: QueryConfig
) -> float:
    """Planning proxy for an account's impressions/day."""
    return (
        profile.participation_prob
        * MATCHED_QUERIES_PER_DAY
        * query_config.volume_weight
        * profile.n_ads**0.25
    )


def rate_hazard(
    profile: AdvertiserProfile,
    query_config: QueryConfig,
    config: DetectionConfig,
) -> float:
    """Daily detection hazard contributed by the rate monitor."""
    if not profile.is_fraud:
        return 0.0
    rate = expected_impression_rate(profile, query_config)
    if rate <= config.rate_threshold:
        return 0.0
    hazard = config.rate_hazard_per_decade * math.log10(rate / config.rate_threshold)
    if profile.kind is AdvertiserKind.FRAUD_PROLIFIC:
        hazard *= PROLIFIC_RATE_DAMPENING
    return hazard


def sample_rate_detection(
    profile: AdvertiserProfile,
    first_ad_time: float,
    query_config: QueryConfig,
    config: DetectionConfig,
    hardening: float,
    rng: np.random.Generator,
) -> float | None:
    """Shutdown time from the rate monitor, or None."""
    hazard = rate_hazard(profile, query_config, config) * hardening
    if hazard <= 0:
        return None
    return first_ad_time + float(rng.exponential(1.0 / hazard))
