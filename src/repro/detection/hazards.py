"""Hazard-rate helpers for the detection pipeline."""

from __future__ import annotations

import numpy as np

__all__ = ["sample_exponential_delay", "hardening_multiplier"]


def sample_exponential_delay(
    mean_days: float, rng: np.random.Generator
) -> float:
    """An exponential delay with the given mean (days)."""
    if mean_days <= 0:
        raise ValueError("mean_days must be > 0")
    return float(rng.exponential(mean_days))


def hardening_multiplier(
    time: float, total_days: float, hardening_factor: float
) -> float:
    """Detection-strength multiplier at simulation time ``time``.

    Ramps linearly from 1 at the start of the study to
    ``hardening_factor`` at the end -- the platform's defenses improve
    over the two years, which is what drives the near-halving of
    fraudulent activity in Figure 3.
    """
    if total_days <= 0:
        raise ValueError("total_days must be > 0")
    fraction = min(1.0, max(0.0, time / total_days))
    return 1.0 + (hardening_factor - 1.0) * fraction
