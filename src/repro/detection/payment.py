"""Payment-instrument fraud detection.

"For the portion of fraudulent advertisers who use illegitimate payment
mechanisms, fraud is often detectable in the form of chargebacks or
other indications from the payment network" (Section 3.2).  Chargeback
signals arrive with a lognormal delay after the account starts
spending.
"""

from __future__ import annotations

import numpy as np

from ..behavior.profiles import AdvertiserProfile
from ..config import DetectionConfig

__all__ = ["sample_payment_detection"]


def sample_payment_detection(
    profile: AdvertiserProfile,
    first_ad_time: float,
    config: DetectionConfig,
    hardening: float,
    rng: np.random.Generator,
) -> float | None:
    """Shutdown time from payment-network signals, or None.

    Only accounts on stolen instruments are exposed; hardening shortens
    the delay (better payment-network integration over time).
    """
    if not profile.uses_stolen_payment:
        return None
    delay = float(rng.lognormal(config.chargeback_mu, config.chargeback_sigma))
    return first_ad_time + delay / hardening
