"""Content filtering at ad-posting time.

When new ads are created the platform vets the ad text, keywords and
destination site.  Blacklisted terms (trademarks, tech-support policy
vocabulary after the ban), un-obfuscated phone numbers, and blacklisted
domains are near-certain catches; scammy-but-unlisted copy is caught
heuristically.  Evasion (homoglyphs, phone obfuscation) degrades the
scanner, but obfuscation itself is an anomaly signal
(:func:`repro.matching.evasion.obfuscation_score`).
"""

from __future__ import annotations

import numpy as np

from ..behavior.factory import MaterializedAccount
from ..config import DetectionConfig
from ..entities.enums import AdvertiserKind
from ..matching.blacklist import Blacklist
from ..matching.evasion import deobfuscate, obfuscation_score
from .hazards import sample_exponential_delay

__all__ = ["content_filter_catch_prob", "evaluate_content"]

#: Probability the de-obfuscation pass recovers an account's evasive
#: writing style (one style per operator, so one recall draw).
DEOBFUSCATION_RECALL = 0.30
#: Catch probability when a blacklist violation is plainly visible.
PLAIN_VIOLATION_CATCH = 0.95
#: Anomaly catch contribution when copy looks heavily obfuscated.
OBFUSCATION_ANOMALY_CATCH = 0.25


def content_filter_catch_prob(
    account: MaterializedAccount,
    blacklist: Blacklist,
    config: DetectionConfig,
    hardening: float,
) -> float:
    """Probability the content filter flags this account at posting.

    Evidence is aggregated at the *account* level: an operator uses one
    copy/evasion style across their ads, so a plainly-visible violation
    anywhere is one (near-certain) catch, a style that only a
    de-obfuscation pass can see is one recall-limited catch, and heavy
    obfuscation itself is an anomaly signal.  The population's
    heuristic base rate (scammy-but-unlisted copy) stacks on top --
    more ads and keywords mean "greater surface area ... to detect
    dubious activity" (Section 5.2).
    """
    profile = account.profile
    if profile.kind is AdvertiserKind.FRAUD_PROLIFIC:
        base = config.prolific_content_filter_prob
    else:
        base = config.content_filter_prob
    base = min(0.97, base * hardening)

    plain_violation = False
    hidden_violation = False
    max_suspicion = 0.0
    for campaign in account.advertiser.campaigns:
        for ad in campaign.ads:
            text = ad.copy.text()
            if blacklist.scan_text(text) or blacklist.is_domain_blacklisted(
                ad.destination_domain
            ):
                plain_violation = True
            elif blacklist.scan_text(deobfuscate(text)):
                hidden_violation = True
            max_suspicion = max(max_suspicion, obfuscation_score(text))
        for bid in campaign.bids:
            if blacklist.term_hits(bid.phrase):
                plain_violation = True

    evasion_discount = 1.0 - 0.5 * profile.evasion_skill
    miss = 1.0 - base
    if plain_violation:
        miss *= 1.0 - PLAIN_VIOLATION_CATCH * evasion_discount
    if hidden_violation:
        miss *= 1.0 - DEOBFUSCATION_RECALL * PLAIN_VIOLATION_CATCH * evasion_discount
    if max_suspicion > 0:
        miss *= 1.0 - OBFUSCATION_ANOMALY_CATCH * min(1.0, max_suspicion)
    return 1.0 - max(0.0, miss)


def evaluate_content(
    account: MaterializedAccount,
    first_ad_time: float,
    blacklist: Blacklist,
    config: DetectionConfig,
    hardening: float,
    rng: np.random.Generator,
) -> float | None:
    """Shutdown time from the content filter, or None if it misses."""
    probability = content_filter_catch_prob(
        account, blacklist, config, hardening
    )
    if rng.random() >= probability:
        return None
    return first_ad_time + sample_exponential_delay(
        config.content_filter_mean_days, rng
    )
