"""Figure 16: fraud-on-fraud competition's effect on fraud CTR."""

from __future__ import annotations

from ..analysis.competition import ctr_distributions
from .base import Chart, ExperimentContext, ExperimentOutput

EXPERIMENT_ID = "fig16"
TITLE = "CTR with/without fraud competition (fraudulent, dubious verticals)"

SUBSETS = ("F with clicks", "F volume weight")


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    window = context.primary_window()
    builder = context.subsets(window)
    subsets = {name: builder.build(name) for name in SUBSETS}
    analyzer = context.analyzer(window, dubious_only=True)
    curves = ctr_distributions(analyzer, subsets)
    populated = {k: v for k, v in curves.curves.items() if len(v)}
    metrics = {}
    organic = populated.get("F with clicks (organic)")
    influenced = populated.get("F with clicks (influenced)")
    if organic is not None and influenced is not None:
        metrics["f_near_zero_ctr_organic"] = organic.at(1e-4)
        metrics["f_near_zero_ctr_influenced"] = influenced.at(1e-4)
        metrics["f_median_ctr_organic"] = organic.median
        metrics["f_median_ctr_influenced"] = influenced.median
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        charts=[
            Chart(
                title=f"Average CTR per fraud advertiser ({window.label})",
                cdfs=populated,
                logx=True,
                xlabel="average CTR",
            )
        ],
        metrics=metrics,
        notes=[
            "Paper: fraud advertisers are accustomed to high-fraud "
            "competition; the near-zero-CTR share jumps from a few "
            "percent to ~a third, but the median moves much less than "
            "for non-fraudulent advertisers."
        ],
    )
