"""Table 4: match-type distribution of clicks, fraud vs non-fraud."""

from __future__ import annotations

from ..analysis.bidding import clicks_by_match_type
from .base import ExperimentContext, ExperimentOutput, Table

EXPERIMENT_ID = "tab4"
TITLE = "Match-type distribution of clicks on fraudulent ads"


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    window = context.primary_window()
    rows_data = clicks_by_match_type(context.result, window)
    rows = [
        [
            r.match_type,
            f"{100 * r.fraud_click_share:.2f}%",
            f"{100 * r.fraud_share_of_type:.2f}%",
            f"{100 * r.nonfraud_click_share:.2f}%",
        ]
        for r in rows_data
    ]
    by_type = {r.match_type: r for r in rows_data}
    metrics = {}
    if "phrase" in by_type:
        metrics["fraud_phrase_share"] = by_type["phrase"].fraud_click_share
        metrics["nonfraud_phrase_share"] = by_type["phrase"].nonfraud_click_share
    if "exact" in by_type:
        metrics["fraud_exact_share"] = by_type["exact"].fraud_click_share
        metrics["nonfraud_exact_share"] = by_type["exact"].nonfraud_click_share
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[
            Table(
                title=f"Clicks by match type ({window.label})",
                headers=["type", "% of fraud", "% of type", "non-fraudulent %"],
                rows=rows,
            )
        ],
        metrics=metrics,
        notes=[
            "Paper: exact 61.6% (fraud) vs 67.9% (non-fraud); phrase is "
            "considerably over-represented for fraud (31.1% vs 23.3%); "
            "broad 7.3% vs 8.8%."
        ],
    )
