"""Figure 11: proportion of spend affected by fraudulent competition."""

from __future__ import annotations

from ..analysis.competition import affected_share_distributions
from .base import Chart, ExperimentContext, ExperimentOutput
from .fig10_affected_impressions import SUBSETS

EXPERIMENT_ID = "fig11"
TITLE = "Proportion of spend incurred beside fraudulent ads"


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    window = context.primary_window()
    builder = context.subsets(window)
    subsets = {name: builder.build(name) for name in SUBSETS}
    analyzer = context.analyzer(window)
    shares = affected_share_distributions(analyzer, subsets, by="spend")
    populated = {k: v for k, v in shares.curves.items() if len(v)}
    metrics = {}
    fr = populated.get("F with clicks")
    if fr is not None:
        metrics["f_median_spend_affected"] = fr.median
    nf = populated.get("NF with clicks")
    if nf is not None:
        metrics["nf_median_spend_affected"] = nf.median
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        charts=[
            Chart(
                title=f"Spend affected by fraud competition ({window.label})",
                cdfs=populated,
                xlabel="proportion of spend affected",
            )
        ],
        metrics=metrics,
        notes=[
            "Paper: fraudulent advertisers waste most of their money "
            "competing with each other -- ~99% of fraud spend is affected "
            "versus ~92% of fraud impressions."
        ],
    )
