"""Table 1: top-five registration countries of fraudulent advertisers."""

from __future__ import annotations

from ..analysis.geography import registration_country_table
from .base import ExperimentContext, ExperimentOutput, Table

EXPERIMENT_ID = "tab1"
TITLE = "Top-five countries of fraudulent advertisers at registration"

SUBSETS = ("Fraud", "F with clicks", "F volume weight", "F spend weight")


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    builder = context.subsets()
    subsets = {name: builder.build(name) for name in SUBSETS}
    table = registration_country_table(subsets, top=5)
    rows = []
    for name in SUBSETS:
        entries = table.get(name, [])
        row = [name]
        for country, pct in entries:
            row.append(f"{country} {pct:.1f}")
        while len(row) < 6:
            row.append("-")
        rows.append(row)
    top_country, top_pct = (table["Fraud"][0] if table.get("Fraud") else ("?", 0.0))
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[
            Table(
                title="Top-5 registration countries per fraud subset (%)",
                headers=["subset", "#1", "#2", "#3", "#4", "#5"],
                rows=rows,
            )
        ],
        metrics={"top_country_share": top_pct / 100.0},
        notes=[
            "Paper ('all fraud' row): US 50.3, IN 17.2, GB 14.3, BR 2.5, "
            "AU 1.8 -- fraud registrations skew to English-speaking "
            "countries, primarily the US and India."
        ],
    )
