"""Figure 2: CDFs of fraudulent account lifetimes."""

from __future__ import annotations

from ..analysis.lifetimes import fraud_lifetimes, preads_shutdown_share
from .base import Chart, ExperimentContext, ExperimentOutput

EXPERIMENT_ID = "fig2"
TITLE = "Fraudulent account lifetimes (from registration and first ad)"


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    curves = fraud_lifetimes(context.result)
    populated = {k: v for k, v in curves.curves.items() if len(v) > 0}
    year1_ad = curves.curves.get("Year 1 (ad)")
    year1_account = curves.curves.get("Year 1 (account)")
    metrics = {"pre_ad_shutdown_share": preads_shutdown_share(context.result)}
    if year1_account is not None and len(year1_account):
        metrics["median_lifetime_from_registration_y1"] = year1_account.median
    if year1_ad is not None and len(year1_ad):
        metrics["median_lifetime_from_first_ad_y1"] = year1_ad.median
        metrics["p90_lifetime_from_first_ad_y1"] = year1_ad.quantile(0.9)
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        charts=[
            Chart(
                title="Lifetime CDFs (days, log axis)",
                cdfs=populated,
                logx=True,
                xlabel="days",
            )
        ],
        metrics=metrics,
        notes=[
            "Paper: median fraud account survives <1 day from creation; "
            "most posting accounts die within ~8h of the first ad and 90% "
            "of shutdowns land within 4 days of posting.  Lifetimes are "
            "similar in both years."
        ],
    )
