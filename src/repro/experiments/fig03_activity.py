"""Figure 3: weekly aggregate fraudulent activity over time."""

from __future__ import annotations

from ..analysis.activity import weekly_fraud_activity
from .base import Chart, ExperimentContext, ExperimentOutput

EXPERIMENT_ID = "fig3"
TITLE = "Weekly fraudulent spend and clicks, in/out of the 90-day window"


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    activity = weekly_fraud_activity(context.result)
    weeks = activity.weeks.astype(float)
    spend_chart = Chart(
        title="Normalized weekly fraud spend",
        series={
            "in-window": (weeks, activity.spend_in_window),
            "out-of-window": (weeks, activity.spend_out_of_window),
        },
        xlabel="week",
        ylabel="normalized spend",
    )
    clicks_chart = Chart(
        title="Weekly fraud clicks",
        series={
            "in-window": (weeks, activity.clicks_in_window),
            "out-of-window": (weeks, activity.clicks_out_of_window),
        },
        xlabel="week",
        ylabel="clicks",
    )
    half = max(1, len(weeks) // 2)
    early = float(activity.spend_in_window[2:half].mean())
    late = float(activity.spend_in_window[half:-2].mean()) if len(weeks) > 6 else early
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        charts=[spend_chart, clicks_chart],
        metrics={
            "late_over_early_spend": late / max(early, 1e-12),
            "out_of_window_share": float(
                activity.spend_out_of_window.sum()
                / max(
                    1e-12,
                    activity.spend_in_window.sum()
                    + activity.spend_out_of_window.sum(),
                )
            ),
        },
        notes=[
            "Paper: in-window fraudulent activity nearly halves across the "
            "study; the out-of-window series necessarily decays to zero "
            "about three months before the end."
        ],
    )
