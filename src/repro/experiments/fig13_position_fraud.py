"""Figure 13: fraud competition's effect on fraud ad positions."""

from __future__ import annotations

from ..analysis.competition import position_distributions, top_position_probability
from .base import Chart, ExperimentContext, ExperimentOutput

EXPERIMENT_ID = "fig13"
TITLE = "Ad position with/without fraud competition (fraudulent)"

SUBSETS = ("F with clicks", "F volume weight")


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    window = context.primary_window()
    builder = context.subsets(window)
    subsets = {name: builder.build(name) for name in SUBSETS}
    analyzer = context.analyzer(window)
    curves = position_distributions(analyzer, subsets)
    populated = {k: v for k, v in curves.curves.items() if len(v)}
    organic = top_position_probability(
        analyzer, subsets["F with clicks"], influenced=False
    )
    influenced = top_position_probability(
        analyzer, subsets["F with clicks"], influenced=True
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        charts=[
            Chart(
                title=f"Ad position CDFs ({window.label})",
                cdfs=populated,
                xlabel="ad position",
            )
        ],
        metrics={
            "f_top_position_organic": organic,
            "f_top_position_influenced": influenced,
        },
        notes=[
            "Paper: fraud advertisers are ~5% more likely than non-fraud "
            "to take the top slot absent fraud competition; competing "
            "with each other drops their top-slot probability ~10%."
        ],
    )
