"""Figure 4: concentration of fraudulent spend/clicks across advertisers."""

from __future__ import annotations

from ..analysis.concentration import fraud_concentration, top_share
from ..analysis.aggregates import aggregate_by_advertiser
from ..timeline import Window, named_windows
from .base import Chart, ExperimentContext, ExperimentOutput

EXPERIMENT_ID = "fig4"
TITLE = "Cumulative proportion of fraudulent spend/clicks per advertiser"


def _windows_for(context: ExperimentContext) -> dict[str, Window]:
    days = context.config.days
    windows = {
        label: window
        for label, window in named_windows().items()
        if window.end <= days
    }
    if not windows:
        windows = {"whole run": Window(0.0, float(days), "whole run")}
    return windows


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    windows = _windows_for(context)
    curves = fraud_concentration(context.result, windows)
    spend_chart = Chart(
        title="Cumulative fraud spend share (advertisers by decreasing spend)",
        series=curves.spend,
        logx=True,
        xlabel="proportion of advertisers",
        ylabel="cumulative share",
    )
    clicks_chart = Chart(
        title="Cumulative fraud click share",
        series=curves.clicks,
        logx=True,
        xlabel="proportion of advertisers",
        ylabel="cumulative share",
    )
    # Headline: top-10% shares in the primary window.
    window = context.primary_window()
    table = context.result.impressions.in_window(window.start, window.end)
    agg = aggregate_by_advertiser(table, table.fraud_labeled)
    metrics = {}
    if len(agg):
        metrics["top10pct_click_share"] = top_share(agg.clicks)
        metrics["top10pct_spend_share"] = top_share(agg.spend)
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        charts=[spend_chart, clicks_chart],
        metrics=metrics,
        notes=[
            "Paper: the top 10% of fraud advertisers by clicks collect >95% "
            "of fraudulent clicks and 80-90% of fraudulent spend."
        ],
    )
