"""Figure 5: impression-rate distributions, fraud vs non-fraud."""

from __future__ import annotations

from ..analysis.rates import impression_rates
from .base import Chart, ExperimentContext, ExperimentOutput

EXPERIMENT_ID = "fig5"
TITLE = "Impression rate (impressions/day) per advertiser"


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    window = context.primary_window()
    rates = impression_rates(context.result, window)
    metrics = {}
    if len(rates.fraud) and len(rates.nonfraud):
        metrics["fraud_median_rate"] = rates.fraud.median
        metrics["nonfraud_median_rate"] = rates.nonfraud.median
        metrics["median_ratio"] = rates.fraud.median / max(
            rates.nonfraud.median, 1e-12
        )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        charts=[
            Chart(
                title=f"Impression rate CDFs ({window.label})",
                cdfs={"Fraud": rates.fraud, "Nonfraud": rates.nonfraud},
                logx=True,
                xlabel="impressions per day",
            )
        ],
        metrics=metrics,
        notes=[
            "Paper: fraudsters show ads more rapidly than legitimate "
            "counterparts -- the fraud CDF sits clearly to the right."
        ],
    )
