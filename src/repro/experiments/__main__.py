"""Command line interface: regenerate the paper's figures and tables.

Examples::

    python -m repro.experiments all
    python -m repro.experiments fig2 tab4 --small
    python -m repro.experiments fig8 --export out/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..config import default_config, small_config
from ..plotting.series import export_series_csv
from .base import ExperimentContext
from .registry import EXPERIMENTS, experiment_ids, run_experiment


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids or 'all' (known: {', '.join(experiment_ids())})",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="use the fast test-scale configuration",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the simulation seed"
    )
    parser.add_argument(
        "--export",
        type=Path,
        default=None,
        help="directory to export each chart's series as CSV",
    )
    args = parser.parse_args(argv)

    requested = (
        experiment_ids()
        if "all" in args.experiments
        else list(dict.fromkeys(args.experiments))
    )
    unknown = [e for e in requested if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    if args.small:
        config = small_config() if args.seed is None else small_config(seed=args.seed)
    else:
        config = (
            default_config() if args.seed is None else default_config(seed=args.seed)
        )
    context = ExperimentContext(config)
    for experiment_id in requested:
        output = run_experiment(experiment_id, context)
        print(output.render())
        if args.export is not None:
            args.export.mkdir(parents=True, exist_ok=True)
            for index, chart in enumerate(output.charts):
                path = args.export / f"{experiment_id}_chart{index}.csv"
                export_series_csv(chart.as_series(), path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
