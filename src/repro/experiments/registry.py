"""Experiment registry: id -> (title, runner)."""

from __future__ import annotations

from typing import Callable

from ..errors import ExperimentError
from .base import ExperimentContext, ExperimentOutput
from . import (
    fig01_registrations,
    fig02_lifetimes,
    fig03_activity,
    fig04_concentration,
    fig05_rates,
    fig06_rate_clicks,
    fig07_targeting,
    fig08_verticals,
    fig09_bidding,
    fig10_affected_impressions,
    fig11_affected_spend,
    fig12_position_nonfraud,
    fig13_position_fraud,
    fig14_ctr_nonfraud,
    fig15_cpc_nonfraud,
    fig16_ctr_fraud,
    fig17_cpc_fraud,
    tab01_countries,
    tab02_example_ads,
    tab03_click_countries,
    tab04_match_types,
)

__all__ = ["EXPERIMENTS", "run_experiment", "experiment_ids"]

_MODULES = (
    fig01_registrations,
    fig02_lifetimes,
    fig03_activity,
    fig04_concentration,
    fig05_rates,
    fig06_rate_clicks,
    fig07_targeting,
    fig08_verticals,
    fig09_bidding,
    fig10_affected_impressions,
    fig11_affected_spend,
    fig12_position_nonfraud,
    fig13_position_fraud,
    fig14_ctr_nonfraud,
    fig15_cpc_nonfraud,
    fig16_ctr_fraud,
    fig17_cpc_fraud,
    tab01_countries,
    tab02_example_ads,
    tab03_click_countries,
    tab04_match_types,
)

EXPERIMENTS: dict[str, tuple[str, Callable[[ExperimentContext], ExperimentOutput]]] = {
    module.EXPERIMENT_ID: (module.TITLE, module.run) for module in _MODULES
}


def experiment_ids() -> list[str]:
    """All registered experiment ids, in paper order."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str, context: ExperimentContext
) -> ExperimentOutput:
    """Run one experiment by id against the shared context."""
    try:
        _, runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(EXPERIMENTS)}"
        ) from None
    return runner(context)
