"""Per-figure/table experiments reproducing the paper's evaluation.

Run them from the command line::

    python -m repro.experiments all

or programmatically::

    from repro import default_config
    from repro.experiments import ExperimentContext, run_experiment
    output = run_experiment("fig2", ExperimentContext(default_config()))
    print(output.render())
"""

from .base import Chart, ExperimentContext, ExperimentOutput, Table
from .registry import EXPERIMENTS, experiment_ids, run_experiment

__all__ = [
    "Chart",
    "Table",
    "ExperimentContext",
    "ExperimentOutput",
    "EXPERIMENTS",
    "experiment_ids",
    "run_experiment",
]
