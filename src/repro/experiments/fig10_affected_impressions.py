"""Figure 10: proportion of impressions affected by fraudulent competition."""

from __future__ import annotations

from ..analysis.competition import affected_share_distributions
from .base import Chart, ExperimentContext, ExperimentOutput

EXPERIMENT_ID = "fig10"
TITLE = "Proportion of impressions shown beside fraudulent ads"

SUBSETS = (
    "F spend weight",
    "F volume weight",
    "F with clicks",
    "NF spend weight",
    "NF volume weight",
    "NF with clicks",
)


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    window = context.primary_window()
    builder = context.subsets(window)
    subsets = {name: builder.build(name) for name in SUBSETS}
    analyzer = context.analyzer(window)
    shares = affected_share_distributions(analyzer, subsets, by="impressions")
    populated = {k: v for k, v in shares.curves.items() if len(v)}
    metrics = {}
    nf = populated.get("NF with clicks")
    fr = populated.get("F with clicks")
    if nf is not None:
        metrics["nf_median_affected"] = nf.median
        metrics["nf_p95_affected"] = nf.quantile(0.95)
    if fr is not None:
        metrics["f_median_affected"] = fr.median
        metrics["f_p95_affected"] = fr.quantile(0.95)
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        charts=[
            Chart(
                title=f"Impressions affected by fraud competition ({window.label})",
                cdfs=populated,
                xlabel="proportion of impressions affected",
            )
        ],
        metrics=metrics,
        notes=[
            "Paper: the median legitimate advertiser has <0.6% of "
            "impressions beside a fraudulent ad (95th pct <20%); the "
            "median fraudulent advertiser has >90% -- fraudsters crowd "
            "into the same niches."
        ],
    )
