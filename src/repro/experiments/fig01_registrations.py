"""Figure 1: proportion of new registrations later marked fraudulent."""

from __future__ import annotations

import numpy as np

from ..analysis.registration import fraud_registration_share
from .base import Chart, ExperimentContext, ExperimentOutput

EXPERIMENT_ID = "fig1"
TITLE = "Proportion of active advertisers subsequently marked fraudulent"


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    series = fraud_registration_share(context.result)
    months = np.arange(len(series.months), dtype=float)
    half = max(1, len(series.months) // 2)
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        charts=[
            Chart(
                title="Fraud share of monthly registrations",
                series={"fraud share": (months, series.fraud_share)},
                xlabel="month index (0 = 1/Y1)",
                ylabel="proportion",
            )
        ],
        metrics={
            "mean_share_first_half": float(series.fraud_share[:half].mean()),
            "mean_share_second_half": float(series.fraud_share[half:].mean()),
            "max_share": float(series.fraud_share.max()),
        },
        notes=[
            "Paper: generally more than a third, and near the end more "
            "than half, of daily registrations are eventually fraudulent."
        ],
    )
