"""Figure 17: fraud-on-fraud competition's effect on fraud CPC."""

from __future__ import annotations

from ..analysis.competition import cpc_distributions
from .base import Chart, ExperimentContext, ExperimentOutput

EXPERIMENT_ID = "fig17"
TITLE = "CPC with/without fraud competition (fraudulent, dubious verticals)"

SUBSETS = ("F with clicks", "F volume weight")


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    window = context.primary_window()
    builder = context.subsets(window)
    subsets = {name: builder.build(name) for name in SUBSETS}
    norm_subset = builder.build("NF with clicks")
    analyzer = context.analyzer(window, dubious_only=True)
    curves = cpc_distributions(analyzer, subsets, norm_subset)
    populated = {k: v for k, v in curves.curves.items() if len(v)}
    metrics = {"cpc_norm_usd": curves.norm}
    organic = populated.get("F with clicks (organic)")
    influenced = populated.get("F with clicks (influenced)")
    if organic is not None and influenced is not None and organic.median > 0:
        metrics["f_cpc_increase_factor"] = influenced.median / organic.median
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        charts=[
            Chart(
                title=f"Normalized average CPC per fraud advertiser ({window.label})",
                cdfs=populated,
                logx=True,
                xlabel="CPC / median organic CPC of 'NF with clicks'",
            )
        ],
        metrics=metrics,
        notes=[
            "Paper: fraud CPC roughly doubles when competing with other "
            "fraud, across all fraud subsets."
        ],
    )
