"""Figure 6: impression rate vs clicks received."""

from __future__ import annotations

import numpy as np

from ..analysis.rates import rate_vs_clicks
from .base import Chart, ExperimentContext, ExperimentOutput

EXPERIMENT_ID = "fig6"
TITLE = "Relationship between impression rate and clicks received"


def _binned_median(
    rate: np.ndarray, clicks: np.ndarray, n_bins: int = 24
) -> tuple[np.ndarray, np.ndarray]:
    """Median clicks per log-rate bin (renders the scatter's trend)."""
    keep = (rate > 0) & (clicks >= 0)
    rate, clicks = rate[keep], clicks[keep]
    if rate.size == 0:
        return np.empty(0), np.empty(0)
    log_rate = np.log10(rate)
    edges = np.linspace(log_rate.min(), log_rate.max() + 1e-9, n_bins + 1)
    xs, ys = [], []
    for i in range(n_bins):
        mask = (log_rate >= edges[i]) & (log_rate < edges[i + 1])
        if mask.sum() >= 3:
            xs.append(10 ** ((edges[i] + edges[i + 1]) / 2))
            ys.append(float(np.median(clicks[mask])))
    return np.asarray(xs), np.asarray(ys)


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    window = context.primary_window()
    scatter = rate_vs_clicks(context.result, window)
    fraud_trend = _binned_median(scatter.fraud_rate, scatter.fraud_clicks)
    nonfraud_trend = _binned_median(scatter.nonfraud_rate, scatter.nonfraud_clicks)
    metrics = {}
    # Separation at low volume, blending at high volume: compare the
    # rate distributions of accounts below/above the click median.
    for label, rates, clicks in (
        ("fraud", scatter.fraud_rate, scatter.fraud_clicks),
        ("nonfraud", scatter.nonfraud_rate, scatter.nonfraud_clicks),
    ):
        if clicks.size:
            high = clicks > np.percentile(clicks, 90)
            if high.any():
                metrics[f"{label}_high_volume_median_rate"] = float(
                    np.median(rates[high])
                )
            metrics[f"{label}_median_rate"] = float(np.median(rates))
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        charts=[
            Chart(
                title=f"Median clicks vs impression rate ({window.label})",
                series={
                    "Fraud": fraud_trend,
                    "Nonfraud": nonfraud_trend,
                },
                logx=True,
                xlabel="impressions per day",
                ylabel="median clicks",
            )
        ],
        metrics=metrics,
        notes=[
            "Paper: populations separate at low click volumes but the "
            "most prolific fraud accounts blend in with high-volume "
            "legitimate advertisers."
        ],
    )
