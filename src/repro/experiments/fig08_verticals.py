"""Figure 8: primary verticals targeted by fraudulent advertisers."""

from __future__ import annotations

import numpy as np

from ..analysis.verticals import vertical_spend_by_month
from ..timeline import day_to_month
from .base import Chart, ExperimentContext, ExperimentOutput

EXPERIMENT_ID = "fig8"
TITLE = "Monthly fraudulent spend per vertical (normalized)"


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    series = vertical_spend_by_month(context.result)
    months = np.arange(len(series.months), dtype=float)
    top = series.top_verticals(10)
    chart = Chart(
        title="Normalized fraud spend by vertical",
        series={name: (months, series.series[name]) for name in top},
        xlabel="month index",
        ylabel="normalized spend",
    )
    metrics = {}
    ban_day = context.config.detection.techsupport_ban_day
    tech = series.series.get("techsupport")
    if ban_day is not None and tech is not None and ban_day < context.config.days:
        ban_month = day_to_month(ban_day)
        before = float(tech[max(0, ban_month - 3) : ban_month].mean())
        after_start = min(len(tech) - 1, ban_month + 1)
        after = float(tech[after_start : after_start + 3].mean())
        metrics["techsupport_before_ban"] = before
        metrics["techsupport_after_ban"] = after
        metrics["techsupport_collapse_ratio"] = after / max(before, 1e-12)
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        charts=[chart],
        metrics=metrics,
        notes=[
            "Paper: techsupport is by far the top fraud-spend vertical in "
            "Year 2 Q1, then collapses at the third-party tech-support "
            "policy ban -- the study's most dramatic intervention."
        ],
    )
