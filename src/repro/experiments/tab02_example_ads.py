"""Table 2: example ads from popular fraud categories."""

from __future__ import annotations

from ..taxonomy.adcopy import sample_table2
from .base import ExperimentContext, ExperimentOutput, Table

EXPERIMENT_ID = "tab2"
TITLE = "Example ads from selected popular categories"


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    rows = [[cat, title, body] for cat, title, body in sample_table2()]
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[
            Table(
                title="Representative ad copy per category",
                headers=["category", "ad title", "ad body"],
                rows=rows,
            )
        ],
        metrics={"n_categories": float(len(rows))},
        notes=[
            "Brand names are fictional stand-ins (the paper shows real "
            "trademarks: COACH, Discord, Target); the copy style mirrors "
            "the paper's examples."
        ],
    )
