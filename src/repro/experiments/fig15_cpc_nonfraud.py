"""Figure 15: fraud competition's effect on non-fraud CPC (dubious verticals)."""

from __future__ import annotations

from ..analysis.competition import cpc_distributions
from .base import Chart, ExperimentContext, ExperimentOutput

EXPERIMENT_ID = "fig15"
TITLE = "CPC with/without fraud competition (non-fraudulent, dubious verticals)"

SUBSETS = ("NF with clicks", "NF volume weight")


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    window = context.primary_window()
    builder = context.subsets(window)
    subsets = {name: builder.build(name) for name in SUBSETS}
    analyzer = context.analyzer(window, dubious_only=True)
    curves = cpc_distributions(analyzer, subsets, subsets["NF with clicks"])
    populated = {k: v for k, v in curves.curves.items() if len(v)}
    metrics = {"cpc_norm_usd": curves.norm}
    organic = populated.get("NF volume weight (organic)")
    influenced = populated.get("NF volume weight (influenced)")
    if organic is not None and influenced is not None and organic.median > 0:
        metrics["high_volume_cpc_increase"] = (
            influenced.median / organic.median - 1.0
        )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        charts=[
            Chart(
                title=f"Normalized average CPC per advertiser ({window.label})",
                cdfs=populated,
                logx=True,
                xlabel="CPC / median organic CPC of 'NF with clicks'",
            )
        ],
        metrics=metrics,
        notes=[
            "Paper: high-volume advertisers in dubious verticals see ~30% "
            "median CPC increases under fraud competition; randomly chosen "
            "advertisers see <5%."
        ],
    )
