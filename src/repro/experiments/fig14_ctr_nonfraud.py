"""Figure 14: fraud competition's effect on non-fraud CTR (dubious verticals)."""

from __future__ import annotations

from ..analysis.competition import ctr_distributions
from .base import Chart, ExperimentContext, ExperimentOutput

EXPERIMENT_ID = "fig14"
TITLE = "CTR with/without fraud competition (non-fraudulent, dubious verticals)"

SUBSETS = ("NF with clicks", "NF volume weight")


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    window = context.primary_window()
    builder = context.subsets(window)
    subsets = {name: builder.build(name) for name in SUBSETS}
    analyzer = context.analyzer(window, dubious_only=True)
    curves = ctr_distributions(analyzer, subsets)
    populated = {k: v for k, v in curves.curves.items() if len(v)}
    metrics = {}
    organic = populated.get("NF with clicks (organic)")
    influenced = populated.get("NF with clicks (influenced)")
    if organic is not None and influenced is not None:
        metrics["nf_median_ctr_organic"] = organic.median
        metrics["nf_median_ctr_influenced"] = influenced.median
        if influenced.median > 0:
            metrics["ctr_drop_factor"] = organic.median / influenced.median
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        charts=[
            Chart(
                title=f"Average CTR per advertiser ({window.label})",
                cdfs=populated,
                logx=True,
                xlabel="average CTR",
            )
        ],
        metrics=metrics,
        notes=[
            "Paper: under fraud competition ~50% of non-fraudulent "
            "advertisers fall to near-zero CTR; even high-volume ones "
            "lose ~2x in the median case."
        ],
    )
