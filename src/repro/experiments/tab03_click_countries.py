"""Table 3: country distribution of fraudulent clicks."""

from __future__ import annotations

from ..analysis.geography import fraud_clicks_by_country
from .base import ExperimentContext, ExperimentOutput, Table

EXPERIMENT_ID = "tab3"
TITLE = "Country distribution of fraudulent clicks"


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    window = context.primary_window()
    rows_data = fraud_clicks_by_country(context.result, window)
    rows = [
        [
            r.country,
            f"{100 * r.share_of_fraud:.1f}%",
            f"{100 * r.share_of_country:.2f}%",
        ]
        for r in rows_data[:10]
    ]
    metrics = {}
    if rows_data:
        metrics["top_country_share_of_fraud"] = rows_data[0].share_of_fraud
        dirtiest = max(rows_data, key=lambda r: r.share_of_country)
        metrics["dirtiest_country_fraud_share"] = dirtiest.share_of_country
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[
            Table(
                title=f"Fraud clicks by country ({window.label})",
                headers=["country", "% of fraud", "% of country"],
                rows=rows,
            )
        ],
        metrics=metrics,
        notes=[
            "Paper: US 61% of fraud clicks (<2% of US clicks); Brazil has "
            "the greatest per-country fraud share (<6%); UK and France "
            "are notably cleaner (<1%)."
        ],
    )
