"""Experiment plumbing.

Each experiment module exposes ``run(context) -> ExperimentOutput``.
The shared :class:`ExperimentContext` memoizes the expensive
intermediates (subset builders, competition analyzers) so running all
21 experiments costs one simulation plus one pass of each analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.cdf import Ecdf
from ..analysis.competition import CompetitionAnalyzer
from ..analysis.subsets import SubsetBuilder
from ..config import SimulationConfig
from ..plotting.ascii import render_cdfs, render_lines, render_series_table
from ..simulator.cache import cached_simulation
from ..simulator.results import SimulationResult
from ..timeline import Window, quarter_window

__all__ = ["ExperimentOutput", "ExperimentContext", "Chart", "Table"]

#: Subset size used by experiments.  The paper samples ~10,000 from
#: millions of advertisers; our marketplace holds ~12k non-fraudulent
#: accounts, so 2,000 preserves the paper's subset-of-population
#: semantics (a 10k target would simply take everyone) and keeps the
#: matched-sampling step fast.
SUBSET_TARGET = 2_000


@dataclass(frozen=True)
class Chart:
    """One renderable chart: either raw series or ECDF curves."""

    title: str
    series: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    cdfs: dict[str, Ecdf] = field(default_factory=dict)
    logx: bool = False
    xlabel: str = ""
    ylabel: str = ""

    def render(self) -> str:
        """ASCII rendering of the chart."""
        if self.cdfs:
            return render_cdfs(
                self.cdfs, self.title, logx=self.logx, xlabel=self.xlabel
            )
        return render_lines(
            self.series,
            self.title,
            logx=self.logx,
            xlabel=self.xlabel,
            ylabel=self.ylabel,
        )

    def as_series(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """The chart's data as named (x, y) arrays."""
        if self.cdfs:
            return {name: (c.x, c.y) for name, c in self.cdfs.items()}
        return dict(self.series)


@dataclass(frozen=True)
class Table:
    """One renderable table."""

    title: str
    headers: list[str]
    rows: list[list]

    def render(self) -> str:
        return render_series_table(self.headers, self.rows, self.title)


@dataclass(frozen=True)
class ExperimentOutput:
    """What one experiment produced."""

    experiment_id: str
    title: str
    charts: list[Chart] = field(default_factory=list)
    tables: list[Table] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Headline scalars, for EXPERIMENTS.md's paper-vs-measured records.
    metrics: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"=== {self.experiment_id}: {self.title} ==="]
        for table in self.tables:
            parts.append(table.render())
        for chart in self.charts:
            parts.append(chart.render())
        if self.metrics:
            parts.append(
                "metrics: "
                + ", ".join(f"{k}={v:.4g}" for k, v in self.metrics.items())
            )
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts) + "\n"


class ExperimentContext:
    """Shared state for a batch of experiments over one simulation."""

    def __init__(
        self,
        config: SimulationConfig,
        result: SimulationResult | None = None,
        subset_target: int = SUBSET_TARGET,
    ) -> None:
        self.config = config
        self._result = result
        self.subset_target = subset_target
        self._builders: dict[str, SubsetBuilder] = {}
        self._analyzers: dict[tuple[str, bool], CompetitionAnalyzer] = {}

    @property
    def result(self) -> SimulationResult:
        """The (lazily simulated) shared result."""
        if self._result is None:
            self._result = cached_simulation(self.config)
        return self._result

    def primary_window(self) -> Window:
        """The paper's workhorse window: Year 1 Q2.

        Falls back to the simulated span's second quarter-length chunk
        for short (test) configurations.
        """
        window = quarter_window(1, 2)
        if window.end <= self.config.days:
            return window
        days = self.config.days
        return Window(days * 0.25, days * 0.75, "short-run window")

    def subsets(self, window: Window | None = None) -> SubsetBuilder:
        """Memoized subset builder for a window."""
        window = window or self.primary_window()
        key = f"{window.start}:{window.end}"
        builder = self._builders.get(key)
        if builder is None:
            builder = SubsetBuilder(
                self.result, window, target_size=self.subset_target
            )
            self._builders[key] = builder
        return builder

    def analyzer(
        self, window: Window | None = None, dubious_only: bool = False
    ) -> CompetitionAnalyzer:
        window = window or self.primary_window()
        key = (f"{window.start}:{window.end}", dubious_only)
        analyzer = self._analyzers.get(key)
        if analyzer is None:
            analyzer = CompetitionAnalyzer(
                self.result, window, dubious_only=dubious_only
            )
            self._analyzers[key] = analyzer
        return analyzer
