"""Figure 7: ads and keyword sets created/modified per account."""

from __future__ import annotations

from ..analysis.targeting import targeting_distributions
from .base import Chart, ExperimentContext, ExperimentOutput

EXPERIMENT_ID = "fig7"
TITLE = "Ads/keywords created and modified per account, by subset"

_PANELS = (
    ("ads_created", "(a) Ads created"),
    ("kw_created", "(b) Keyword sets bid on"),
    ("ads_modified", "(c) Ads modified"),
    ("kw_modified", "(d) Keyword sets modified"),
)


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    window = context.primary_window()
    subsets = context.subsets(window).build_many()
    distributions = targeting_distributions(subsets, window)
    charts = [
        Chart(
            title=f"{label} (normalized by 'NF with clicks' median)",
            cdfs={
                name: curve
                for name, curve in distributions.panel(kind).items()
                if len(curve) > 0
            },
            logx=True,
            xlabel="normalized count",
        )
        for kind, label in _PANELS
    ]
    f_ads = distributions.panel("ads_created").get("F with clicks")
    nf_ads = distributions.panel("ads_created").get("NF with clicks")
    f_kw = distributions.panel("kw_created").get("F with clicks")
    nf_kw = distributions.panel("kw_created").get("NF with clicks")
    metrics = {}
    if f_ads is not None and nf_ads is not None and len(f_ads) and len(nf_ads):
        metrics["nf_over_f_median_ads"] = nf_ads.median / max(f_ads.median, 1e-9)
    if f_kw is not None and nf_kw is not None and len(f_kw) and len(nf_kw):
        metrics["nf_over_f_median_keywords"] = nf_kw.median / max(
            f_kw.median, 1e-9
        )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        charts=charts,
        metrics=metrics,
        notes=[
            "Paper: fraud accounts create over an order of magnitude fewer "
            "ads and keywords than non-fraudulent counterparts, while "
            "maintaining (modifying) them at similar rates."
        ],
    )
