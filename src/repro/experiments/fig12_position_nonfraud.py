"""Figure 12: fraud competition's effect on non-fraud ad positions."""

from __future__ import annotations

from ..analysis.competition import position_distributions, top_position_probability
from .base import Chart, ExperimentContext, ExperimentOutput

EXPERIMENT_ID = "fig12"
TITLE = "Ad position with/without fraud competition (non-fraudulent)"

SUBSETS = ("NF with clicks", "NF volume weight")


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    window = context.primary_window()
    builder = context.subsets(window)
    subsets = {name: builder.build(name) for name in SUBSETS}
    analyzer = context.analyzer(window)
    curves = position_distributions(analyzer, subsets)
    populated = {k: v for k, v in curves.curves.items() if len(v)}
    organic = top_position_probability(
        analyzer, subsets["NF with clicks"], influenced=False
    )
    influenced = top_position_probability(
        analyzer, subsets["NF with clicks"], influenced=True
    )
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        charts=[
            Chart(
                title=f"Ad position CDFs ({window.label})",
                cdfs=populated,
                xlabel="ad position",
            )
        ],
        metrics={
            "nf_top_position_organic": organic,
            "nf_top_position_influenced": influenced,
        },
        notes=[
            "Paper: the median non-fraudulent advertiser reaches the top "
            "slot ~20% of the time organically, ~10% under fraud "
            "competition -- roughly one position lost."
        ],
    )
