"""Figure 9: match-type usage and bid levels per advertiser."""

from __future__ import annotations

from ..analysis.bidding import (
    above_default_share,
    bid_level_distributions,
    match_mix_distributions,
)
from .base import Chart, ExperimentContext, ExperimentOutput

EXPERIMENT_ID = "fig9"
TITLE = "Use of exact/phrase/broad matching and bids per match type"

_SUBSETS = (
    "F with clicks",
    "NF with clicks",
    "F spend weight",
    "NF spend match",
    "F volume weight",
    "NF volume match",
    "NF rate match",
)


def run(context: ExperimentContext) -> ExperimentOutput:
    """Regenerate this artifact from the shared simulation context."""
    window = context.primary_window()
    builder = context.subsets(window)
    subsets = {name: builder.build(name) for name in _SUBSETS}
    mixes = match_mix_distributions(subsets)
    levels = bid_level_distributions(
        subsets, context.config.auction.default_max_bid
    )
    charts = []
    for match_name, panel in (("broad", "(a)"), ("exact", "(b)"), ("phrase", "(c)")):
        charts.append(
            Chart(
                title=f"{panel} Proportion of bids that are '{match_name}'",
                cdfs={
                    k: v for k, v in mixes.curves[match_name].items() if len(v)
                },
                xlabel="proportion of advertiser's bids",
            )
        )
    for match_name, panel in (("broad", "(d)"), ("exact", "(e)"), ("phrase", "(f)")):
        charts.append(
            Chart(
                title=f"{panel} Average '{match_name}' bid (normalized by default)",
                cdfs={
                    k: v for k, v in levels.curves[match_name].items() if len(v)
                },
                logx=True,
                xlabel="normalized average bid",
            )
        )
    fraud_exact = mixes.curves["exact"].get("F with clicks")
    nonfraud_exact = mixes.curves["exact"].get("NF with clicks")
    metrics = {
        "above_default_both_fraud": above_default_share(subsets["F with clicks"]),
        "above_default_both_nonfraud": above_default_share(
            subsets["NF with clicks"]
        ),
    }
    if fraud_exact is not None and len(fraud_exact):
        metrics["fraud_share_with_no_exact"] = fraud_exact.at(0.0)
    if nonfraud_exact is not None and len(nonfraud_exact):
        metrics["nonfraud_share_with_no_exact"] = nonfraud_exact.at(0.0)
    return ExperimentOutput(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        charts=charts,
        metrics=metrics,
        notes=[
            "Paper: fraud skews away from exact matching toward "
            "phrase/broad; median max bids equal the default for both "
            "populations; ~17% of fraud bids above default on both exact "
            "and phrase vs roughly double that for legitimate advertisers."
        ],
    )
