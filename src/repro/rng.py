"""Deterministic random-number streams.

Every stochastic component in the simulator draws from its own named
stream derived from the root seed.  This keeps runs reproducible and --
critically for ablation experiments -- keeps unrelated components
decoupled: changing how many draws the detection pipeline makes does not
perturb the query stream.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["stream", "stream_seed"]


def stream_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for the stream ``name``.

    The derivation hashes the stream name so that streams are
    independent of the order in which they are created.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def stream(root_seed: int, name: str) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the named stream."""
    return np.random.Generator(np.random.PCG64(stream_seed(root_seed, name)))
