"""Deterministic random-number streams.

Every stochastic component in the simulator draws from its own named
stream derived from the root seed.  This keeps runs reproducible and --
critically for ablation experiments -- keeps unrelated components
decoupled: changing how many draws the detection pipeline makes does not
perturb the query stream.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["stream", "stream_seed", "choice_cdf", "draw_index"]


def stream_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for the stream ``name``.

    The derivation hashes the stream name so that streams are
    independent of the order in which they are created.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def stream(root_seed: int, name: str) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the named stream."""
    return np.random.Generator(np.random.PCG64(stream_seed(root_seed, name)))


def choice_cdf(probs) -> np.ndarray:
    """Cumulative distribution replicating ``Generator.choice``'s internals.

    ``Generator.choice(n, p=probs)`` normalizes the cumulative sum of
    ``p`` and inverts one uniform draw through it with a right-sided
    ``searchsorted``.  Precomputing that CDF once lets hot paths replace
    each ``choice`` call with :func:`draw_index` -- the same single
    ``random()`` draw, the same float operations, hence the *same*
    resulting index and generator state, without re-validating and
    re-accumulating ``p`` on every call.
    """
    cdf = np.asarray(probs, dtype=np.float64).cumsum()
    cdf /= cdf[-1]
    return cdf


def draw_index(rng: np.random.Generator, cdf: np.ndarray) -> int:
    """One categorical draw through a :func:`choice_cdf` table.

    Bit-identical (value and stream state) to
    ``int(rng.choice(len(p), p=p))`` for the probabilities the CDF was
    built from; consumes exactly one uniform.
    """
    return int(cdf.searchsorted(rng.random(), side="right"))
