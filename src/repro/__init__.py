"""repro: a synthetic search-ad marketplace and the analysis library
reproducing "Exploring the Dynamics of Search Advertiser Fraud"
(DeBlasio, Guha, Voelker, Snoeren -- IMC 2017).

Quickstart::

    from repro import small_config, run_simulation
    result = run_simulation(small_config())
    print(len(result.fraud_accounts()), "fraud accounts")

The per-figure/table experiments live in :mod:`repro.experiments`; run
``python -m repro.experiments all`` to regenerate every paper artifact.
"""

from . import obs
from ._version import __version__
from .config import (
    AuctionConfig,
    BehaviorConfig,
    ClickConfig,
    DetectionConfig,
    PopulationConfig,
    QueryConfig,
    SimulationConfig,
    default_config,
    small_config,
)
from .errors import (
    AnalysisError,
    ConfigError,
    ExperimentError,
    RecordError,
    ReproError,
    SimulationError,
    SubsetError,
)
from .obs import setup_logging
from .simulator import (
    SimulationEngine,
    SimulationResult,
    cached_simulation,
    run_simulation,
)
from .timeline import Window, named_windows, quarter_window

__all__ = [
    "__version__",
    "obs",
    "setup_logging",
    "SimulationConfig",
    "PopulationConfig",
    "QueryConfig",
    "AuctionConfig",
    "ClickConfig",
    "BehaviorConfig",
    "DetectionConfig",
    "default_config",
    "small_config",
    "ReproError",
    "ConfigError",
    "SimulationError",
    "AnalysisError",
    "SubsetError",
    "RecordError",
    "ExperimentError",
    "SimulationEngine",
    "SimulationResult",
    "run_simulation",
    "cached_simulation",
    "Window",
    "named_windows",
    "quarter_window",
]
