"""Paper-reported calibration targets.

Each target couples a measured quantity (computed from a
:class:`~repro.simulator.results.SimulationResult`) with the band the
paper reports.  Bands are deliberately wide where the paper is
qualitative; the validation suite is a drift alarm, not a curve fit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TargetBand", "CheckResult"]


@dataclass(frozen=True)
class TargetBand:
    """An acceptance band for one measured quantity.

    Attributes:
        name: Stable identifier (used in reports).
        paper: Human-readable statement of the paper's value.
        low/high: Inclusive acceptance bounds; ``None`` means unbounded.
        section: Paper section/figure the target comes from.
    """

    name: str
    paper: str
    low: float | None
    high: float | None
    section: str

    def check(self, measured: float) -> "CheckResult":
        """Evaluate a measured value against the band."""
        ok = True
        if measured != measured:  # NaN
            ok = False
        else:
            if self.low is not None and measured < self.low:
                ok = False
            if self.high is not None and measured > self.high:
                ok = False
        return CheckResult(target=self, measured=measured, ok=ok)


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one target check."""

    target: TargetBand
    measured: float
    ok: bool

    def render(self) -> str:
        """One-line human-readable check outcome."""
        status = "ok  " if self.ok else "MISS"
        return (
            f"[{status}] {self.target.name:<42} "
            f"paper: {self.target.paper:<28} measured: {self.measured:.4g} "
            f"({self.target.section})"
        )
