"""The validation suite: measure everything, check against the paper.

Usage::

    from repro import default_config, run_simulation
    from repro.validation import run_validation, render_report

    result = run_simulation(default_config())
    checks = run_validation(result)
    print(render_report(checks))

Bands are generous around the paper's reported values; a MISS flags
calibration drift worth investigating, not necessarily a bug.
"""

from __future__ import annotations

import numpy as np

from ..analysis import (
    CompetitionAnalyzer,
    SubsetBuilder,
    above_default_share,
    advertiser_effectiveness,
    clicks_by_match_type,
    fraud_clicks_by_country,
    fraud_domain_usage,
    fraud_lifetimes,
    impression_rates,
    preads_shutdown_share,
    top_position_probability,
    top_share,
    weekly_fraud_activity,
)
from ..analysis.aggregates import aggregate_by_advertiser
from ..simulator.results import SimulationResult
from ..timeline import Window, quarter_window
from .targets import CheckResult, TargetBand

__all__ = ["run_validation", "render_report", "checks_to_json", "measure_all"]


def _primary_window(result: SimulationResult) -> Window:
    window = quarter_window(1, 2)
    if window.end <= result.config.days:
        return window
    days = result.config.days
    return Window(days * 0.25, days * 0.75, "short-run window")


def measure_all(result: SimulationResult) -> dict[str, float]:
    """Compute every validated quantity from one simulation."""
    table = result.impressions
    window = _primary_window(result)
    measures: dict[str, float] = {}

    # -- Section 4: scale --------------------------------------------
    fraud_accounts = result.fraud_accounts()
    measures["fraud_registration_share"] = len(fraud_accounts) / max(
        1, len(result.accounts)
    )
    measures["pre_ad_shutdown_share"] = preads_shutdown_share(result)
    lifetimes = fraud_lifetimes(result)
    year1 = lifetimes.curves.get("Year 1 (account)")
    if year1 is not None and len(year1):
        measures["median_lifetime_from_registration"] = year1.median
    year1_ad = lifetimes.curves.get("Year 1 (ad)")
    if year1_ad is not None and len(year1_ad):
        measures["p90_lifetime_from_first_ad"] = year1_ad.quantile(0.9)
    fraud_rows = table.fraud_labeled
    measures["fraud_click_share"] = float(
        table.clicks[fraud_rows].sum() / max(1.0, table.clicks.sum())
    )
    activity = weekly_fraud_activity(result)
    half = len(activity.spend_in_window) // 2
    if half > 4:
        early = float(activity.spend_in_window[2:half].mean())
        late = float(activity.spend_in_window[half:-2].mean())
        measures["late_over_early_fraud_spend"] = late / max(early, 1e-12)
    window_table = table.in_window(window.start, window.end)
    fraud_agg = aggregate_by_advertiser(window_table, window_table.fraud_labeled)
    if len(fraud_agg) >= 10:
        measures["top10pct_fraud_click_share"] = top_share(fraud_agg.clicks)
        measures["top10pct_fraud_spend_share"] = top_share(fraud_agg.spend)

    # -- Section 5: behaviour ----------------------------------------
    rates = impression_rates(result, window)
    if len(rates.fraud) and len(rates.nonfraud):
        measures["fraud_rate_ratio"] = rates.fraud.median / max(
            rates.nonfraud.median, 1e-12
        )
    builder = SubsetBuilder(result, window, target_size=10_000)
    f_clicks = builder.build("F with clicks")
    nf_clicks = builder.build("NF with clicks")
    f_kws = np.median([a.n_keywords for a in f_clicks.accounts])
    nf_kws = np.median([a.n_keywords for a in nf_clicks.accounts])
    measures["footprint_gap_keywords"] = nf_kws / max(f_kws, 1.0)
    measures["above_default_fraud"] = above_default_share(f_clicks)
    measures["above_default_nonfraud"] = above_default_share(nf_clicks)

    t3 = fraud_clicks_by_country(result, window)
    if t3:
        measures["top_country_fraud_click_share"] = t3[0].share_of_fraud
        measures["dirtiest_country_rate"] = max(
            r.share_of_country for r in t3
        )
    t4 = {r.match_type: r for r in clicks_by_match_type(result, window)}
    if "phrase" in t4 and not np.isnan(t4["phrase"].fraud_click_share):
        measures["fraud_phrase_click_share"] = t4["phrase"].fraud_click_share
        measures["nonfraud_exact_click_share"] = t4["exact"].nonfraud_click_share

    domains = fraud_domain_usage(result)
    measures["single_domain_share"] = domains.single_domain_share
    measures["three_or_fewer_domains_share"] = domains.three_or_fewer_share

    effectiveness = advertiser_effectiveness(result, window)
    if not np.isnan(effectiveness.top_fraud_cpc_quantile):
        measures["top_fraud_cpc_quantile"] = effectiveness.top_fraud_cpc_quantile

    # -- Section 6: competition --------------------------------------
    analyzer = CompetitionAnalyzer(result, window)
    nf_shares = [
        analyzer.affected_impression_share(a.advertiser_id)
        for a in nf_clicks.accounts
    ]
    nf_shares = [s for s in nf_shares if not np.isnan(s)]
    f_shares = [
        analyzer.affected_impression_share(a.advertiser_id)
        for a in f_clicks.accounts
    ]
    f_shares = [s for s in f_shares if not np.isnan(s)]
    if nf_shares:
        measures["nf_median_affected"] = float(np.median(nf_shares))
        measures["nf_p95_affected"] = float(np.percentile(nf_shares, 95))
    if f_shares:
        measures["f_median_affected"] = float(np.median(f_shares))
    organic = top_position_probability(analyzer, nf_clicks, influenced=False)
    influenced = top_position_probability(analyzer, nf_clicks, influenced=True)
    if organic == organic and influenced == influenced and organic > 0:
        measures["nf_top_position_drop"] = influenced / organic
    return measures


#: The acceptance bands, keyed by measure name.
TARGETS: tuple[TargetBand, ...] = (
    TargetBand("fraud_registration_share", "1/3 .. >1/2", 0.30, 0.60, "Fig 1"),
    TargetBand("pre_ad_shutdown_share", "0.35", 0.20, 0.50, "Sec 4.1"),
    TargetBand("median_lifetime_from_registration", "<1 day", None, 1.5, "Fig 2"),
    TargetBand("p90_lifetime_from_first_ad", "<=4 days", None, 6.0, "Fig 2"),
    TargetBand("fraud_click_share", "small (~1-3%)", 0.002, 0.06, "Sec 4.2"),
    TargetBand("late_over_early_fraud_spend", "~0.5 (halves)", 0.2, 0.9, "Fig 3"),
    TargetBand("top10pct_fraud_click_share", ">0.95", 0.60, None, "Fig 4"),
    TargetBand("top10pct_fraud_spend_share", "0.8-0.9", 0.65, 1.0, "Fig 4"),
    TargetBand("fraud_rate_ratio", "fraud faster", 1.5, None, "Fig 5"),
    TargetBand("footprint_gap_keywords", ">10x", 4.0, None, "Fig 7"),
    TargetBand("above_default_fraud", "0.17", 0.05, 0.35, "Sec 5.3"),
    TargetBand("above_default_nonfraud", "~0.34", 0.15, 0.55, "Sec 5.3"),
    TargetBand("top_country_fraud_click_share", "US 0.61", 0.45, None, "Tab 3"),
    TargetBand("dirtiest_country_rate", "BR <6% (tops ~1 in 20)", 0.01, 0.25, "Tab 3"),
    TargetBand("fraud_phrase_click_share", "0.311 over-represented", 0.15, 0.60, "Tab 4"),
    TargetBand("nonfraud_exact_click_share", "0.679", 0.45, 0.85, "Tab 4"),
    TargetBand("single_domain_share", "0.74", 0.5, 0.95, "Sec 5.2.4"),
    TargetBand("three_or_fewer_domains_share", "0.96", 0.85, 1.0, "Sec 5.2.4"),
    TargetBand("top_fraud_cpc_quantile", "upper end of CPC dist", 0.5, None, "Sec 4.2"),
    TargetBand("nf_median_affected", "<0.006", None, 0.05, "Fig 10"),
    TargetBand("nf_p95_affected", "<0.20", None, 0.30, "Fig 10"),
    TargetBand("f_median_affected", ">0.90", 0.5, None, "Fig 10"),
    TargetBand("nf_top_position_drop", "0.20 -> 0.10 (~0.5x)", 0.3, 1.0, "Fig 12"),
)


def run_validation(result: SimulationResult) -> list[CheckResult]:
    """Measure the simulation and check every paper target."""
    measures = measure_all(result)
    checks = []
    for target in TARGETS:
        if target.name in measures:
            checks.append(target.check(measures[target.name]))
    return checks


def render_report(checks: list[CheckResult]) -> str:
    """Human-readable validation report."""
    lines = [check.render() for check in checks]
    misses = sum(1 for check in checks if not check.ok)
    lines.append(f"-- {len(checks) - misses}/{len(checks)} targets in band")
    return "\n".join(lines)


def checks_to_json(checks: list[CheckResult]) -> dict:
    """Machine-readable validation outcome (``--json`` / run registry).

    NaN measurements serialize as ``null`` so the payload stays strict
    JSON (a NaN measure is always a MISS, so no information is lost).
    """
    rows = []
    for check in checks:
        target = check.target
        measured = float(check.measured)
        rows.append(
            {
                "name": target.name,
                "ok": bool(check.ok),
                "measured": measured if measured == measured else None,
                "low": target.low,
                "high": target.high,
                "paper": target.paper,
                "section": target.section,
            }
        )
    return {
        "schema": "repro.validation/v1",
        "passed": sum(1 for check in checks if check.ok),
        "total": len(checks),
        "checks": rows,
    }
