"""Validation against the paper's reported values."""

from .suite import (
    TARGETS,
    checks_to_json,
    measure_all,
    render_report,
    run_validation,
)
from .targets import CheckResult, TargetBand

__all__ = [
    "TARGETS",
    "checks_to_json",
    "measure_all",
    "run_validation",
    "render_report",
    "CheckResult",
    "TargetBand",
]
