"""Command line validation: simulate and check every paper target.

    python -m repro.validation [--small] [--seed N]
"""

from __future__ import annotations

import argparse
import sys

from ..config import default_config, small_config
from ..simulator.cache import cached_simulation
from .suite import render_report, run_validation


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(prog="repro-validate")
    parser.add_argument("--small", action="store_true",
                        help="use the fast test-scale configuration")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any target misses its band",
    )
    args = parser.parse_args(argv)
    if args.small:
        config = small_config() if args.seed is None else small_config(seed=args.seed)
    else:
        config = (
            default_config() if args.seed is None else default_config(seed=args.seed)
        )
    result = cached_simulation(config)
    checks = run_validation(result)
    print(render_report(checks))
    if args.strict and any(not check.ok for check in checks):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
