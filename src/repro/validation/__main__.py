"""Command line validation: simulate and check every paper target.

    python -m repro.validation [--small] [--seed N] [--json] [--out PATH]
    python -m repro.validation --run-dir RUNS/x [--json] [--out PATH]

``--run-dir`` validates an existing *completed* checkpoint-runner run
instead of simulating fresh: the configuration is rebuilt from the
manifest's embedded copy (hash-verified), and the result is
reconstructed from the durable chunks without re-simulating a day.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .. import obs
from ..config import default_config, small_config
from ..errors import ReproError
from ..simulator.cache import cached_simulation
from .suite import checks_to_json, render_report, run_validation

log = obs.get_logger("validation.cli")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(prog="repro-validate")
    parser.add_argument("--small", action="store_true",
                        help="use the fast test-scale configuration")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any target misses its band",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable check payload instead of text",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also write the JSON payload to this path (atomic)",
    )
    parser.add_argument(
        "--run-dir",
        type=Path,
        default=None,
        help="validate a completed checkpoint-runner run directory "
        "(config comes from its manifest; --small/--seed are rejected)",
    )
    args = parser.parse_args(argv)
    obs.setup_logging()
    if args.run_dir is not None:
        if args.small or args.seed is not None:
            parser.error("--run-dir takes its config from the manifest; "
                         "drop --small/--seed")
        return _validate_run_dir(args)
    if args.small:
        config = small_config() if args.seed is None else small_config(seed=args.seed)
    else:
        config = (
            default_config() if args.seed is None else default_config(seed=args.seed)
        )
    # A failed simulation or validation run must exit 2 (mirroring the
    # runner CLI), not escape as a traceback: before this guard,
    # ``--strict`` in a shell pipeline could conflate "targets missed"
    # with "validator crashed".
    try:
        result = cached_simulation(config)
        checks = run_validation(result)
    except ReproError as exc:
        log.error("%s", exc)
        return 2
    payload = checks_to_json(checks)
    if args.out is not None:
        from ..records.atomic import atomic_write_text

        atomic_write_text(args.out, json.dumps(payload, indent=2) + "\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_report(checks))
    if args.strict and any(not check.ok for check in checks):
        return 1
    return 0


def _validate_run_dir(args: argparse.Namespace) -> int:
    """Validate the simulation a completed run directory durably holds."""
    from ..runner import CheckpointRunner, RunManifest
    from ..runner.manifest import MANIFEST_NAME

    try:
        manifest = RunManifest.load(args.run_dir / MANIFEST_NAME)
        if manifest.phase != "complete":
            log.error(
                "%s: run is in phase %r; finish it before validating",
                args.run_dir, manifest.phase,
            )
            return 2
        config = manifest.simulation_config()
        if config is None:
            log.error(
                "%s: manifest predates embedded configs; re-run or pass "
                "the config explicitly via the runner CLI", args.run_dir,
            )
            return 2
        # A completed run resumes without simulating a day: snapshots
        # and chunks are checksum-verified and reloaded.  Telemetry and
        # ledger sinks stay off -- validation must not mutate the run.
        runner = CheckpointRunner(
            config, args.run_dir, telemetry=False, ledger=False
        )
        result = runner.run(resume=True)
        checks = run_validation(result)
    except ReproError as exc:
        log.error("%s", exc)
        return 2
    payload = checks_to_json(checks)
    if args.out is not None:
        from ..records.atomic import atomic_write_text

        atomic_write_text(args.out, json.dumps(payload, indent=2) + "\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_report(checks))
    if args.strict and any(not check.ok for check in checks):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
