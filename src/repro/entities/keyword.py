"""Keyword bids."""

from __future__ import annotations

from dataclasses import dataclass, field

from .enums import MatchType

__all__ = ["KeywordBid"]


@dataclass
class KeywordBid:
    """A (keyword phrase, match type, max bid) offer.

    Advertisers "may also specify a different maximum bid for each match
    type and keyword combination" (Section 5.3), so the bid lives on the
    (keyword, match type) pair rather than on the keyword alone.

    Attributes:
        keyword: Normalized keyword phrase tokens.
        match_type: Exact, phrase or broad matching.
        max_bid: Maximum cost-per-click the advertiser will pay, USD.
        created_day: Simulation time the bid was created.
        modified_count: How many times the bid was edited afterwards
            (Figure 7d counts keyword-set modifications).
    """

    keyword: tuple[str, ...]
    match_type: MatchType
    max_bid: float
    created_day: float
    modified_count: int = field(default=0)

    def __post_init__(self) -> None:
        if not self.keyword:
            raise ValueError("keyword phrase must be non-empty")
        if self.max_bid <= 0:
            raise ValueError("max_bid must be > 0")

    @classmethod
    def bulk(
        cls,
        keywords: list[tuple[str, ...]],
        match_types: list[MatchType],
        max_bids: list[float],
        created_days: list[float],
    ) -> list[KeywordBid]:
        """Construct many bids at once, validating array-wise.

        Equivalent to calling the constructor per element but with the
        per-instance ``__post_init__`` checks hoisted into two upfront
        passes -- the batched materializer creates millions of bids per
        full-scale run.
        """
        if not all(keywords):
            raise ValueError("keyword phrase must be non-empty")
        if max_bids and min(max_bids) <= 0:
            raise ValueError("max_bid must be > 0")
        bids: list[KeywordBid] = []
        append = bids.append
        new = cls.__new__
        for keyword, match_type, max_bid, created in zip(
            keywords, match_types, max_bids, created_days
        ):
            bid = new(cls)
            bid.keyword = keyword
            bid.match_type = match_type
            bid.max_bid = max_bid
            bid.created_day = created
            bid.modified_count = 0
            append(bid)
        return bids

    @property
    def phrase(self) -> str:
        """The keyword as a human-readable string."""
        return " ".join(self.keyword)

    def record_modification(self) -> None:
        """Count one edit to this bid."""
        self.modified_count += 1
