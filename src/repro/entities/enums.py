"""Enumerations shared across the marketplace."""

from __future__ import annotations

import enum

__all__ = ["MatchType", "AdvertiserKind", "AccountStatus", "ShutdownReason"]


class MatchType(enum.Enum):
    """Bing's three keyword match types (Section 5.3)."""

    EXACT = "exact"
    PHRASE = "phrase"
    BROAD = "broad"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class AdvertiserKind(enum.Enum):
    """Ground-truth population an account belongs to.

    ``FRAUD_PROLIFIC`` models the small set of operators who dominate
    fraudulent spend/clicks (Figure 4): they invest in evasion, survive
    far longer, and focus on fewer, more lucrative verticals.
    """

    LEGITIMATE = "legitimate"
    FRAUD_TYPICAL = "fraud_typical"
    FRAUD_PROLIFIC = "fraud_prolific"

    @property
    def is_fraud(self) -> bool:
        """Whether the kind is a fraud population."""
        return self is not AdvertiserKind.LEGITIMATE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class AccountStatus(enum.Enum):
    """Lifecycle state of an advertiser account."""

    ACTIVE = "active"
    SHUTDOWN = "shutdown"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class ShutdownReason(enum.Enum):
    """Which detection stage shut the account down."""

    REGISTRATION_SCREEN = "registration_screen"
    CONTENT_FILTER = "content_filter"
    RATE_MONITOR = "rate_monitor"
    PAYMENT_FRAUD = "payment_fraud"
    BEHAVIORAL = "behavioral"
    MANUAL_REVIEW = "manual_review"
    POLICY_CHANGE = "policy_change"
    FRIENDLY_FIRE = "friendly_fire"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
