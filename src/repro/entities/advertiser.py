"""Advertiser account entity."""

from __future__ import annotations

from dataclasses import dataclass, field

from .campaign import Campaign
from .enums import AccountStatus, AdvertiserKind, ShutdownReason

__all__ = ["Advertiser"]


@dataclass
class Advertiser:
    """An advertiser account -- the paper's unit of accountability.

    Ground truth (``kind``) and the platform's label (``labeled_fraud``)
    are deliberately separate: the analyses, like the paper's, work from
    what the detection pipeline *finds*, so fraud that evades detection
    for the whole study is analysed as non-fraudulent.

    Attributes:
        advertiser_id: Globally unique identifier.
        kind: Ground-truth population.
        created_time: Registration time (fractional days).
        country: Registration country code.
        language: Registration language.
        currency: Home currency.
        activity_scale: Per-account traffic multiplier (heavy-tailed).
        quality: Intrinsic targeting quality in [0, ~2]; enters the
            auction's quality score.
        evasion_skill: In [0, 1]; reduces blacklist/content detection.
        uses_stolen_payment: Whether payment-instrument fraud is in play
            (enables chargeback detection, removes spend discipline).
        status/shutdown_time/shutdown_reason: Lifecycle outcome.
        labeled_fraud: Whether the platform shut the account down as
            fraudulent by the end of the study.
        first_ad_time: When the account first posted an ad, if ever.
        campaigns: Campaigns owned by the account.
    """

    advertiser_id: int
    kind: AdvertiserKind
    created_time: float
    country: str
    language: str
    currency: str
    activity_scale: float
    quality: float
    evasion_skill: float = 0.0
    uses_stolen_payment: bool = False
    status: AccountStatus = AccountStatus.ACTIVE
    shutdown_time: float | None = None
    shutdown_reason: ShutdownReason | None = None
    labeled_fraud: bool = False
    first_ad_time: float | None = None
    campaigns: list[Campaign] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.activity_scale <= 0:
            raise ValueError("activity_scale must be > 0")
        if self.quality <= 0:
            raise ValueError("quality must be > 0")
        if not 0.0 <= self.evasion_skill <= 1.0:
            raise ValueError("evasion_skill must be in [0, 1]")

    @property
    def is_fraud(self) -> bool:
        """Ground-truth fraud flag."""
        return self.kind.is_fraud

    @property
    def is_active(self) -> bool:
        """Whether the account has not been shut down."""
        return self.status is AccountStatus.ACTIVE

    def active_at(self, time: float) -> bool:
        """Whether the account exists and is not yet shut down at ``time``."""
        if time < self.created_time:
            return False
        return self.shutdown_time is None or time < self.shutdown_time

    def shutdown(self, time: float, reason: ShutdownReason, as_fraud: bool) -> None:
        """Freeze the account at ``time``.

        Raises:
            ValueError: if the account is already shut down or the
                shutdown would predate registration.
        """
        if self.status is AccountStatus.SHUTDOWN:
            raise ValueError(f"advertiser {self.advertiser_id} already shut down")
        if time < self.created_time:
            raise ValueError("shutdown cannot predate registration")
        self.status = AccountStatus.SHUTDOWN
        self.shutdown_time = time
        self.shutdown_reason = reason
        self.labeled_fraud = as_fraud

    def record_first_ad(self, time: float) -> None:
        """Note the first ad posting (idempotent; keeps the earliest)."""
        if self.first_ad_time is None or time < self.first_ad_time:
            self.first_ad_time = time

    def lifetime_from_registration(self) -> float | None:
        """Days from registration to shutdown, if shut down."""
        if self.shutdown_time is None:
            return None
        return self.shutdown_time - self.created_time

    def lifetime_from_first_ad(self) -> float | None:
        """Days from first ad posting to shutdown, if both happened."""
        if self.shutdown_time is None or self.first_ad_time is None:
            return None
        return max(0.0, self.shutdown_time - self.first_ad_time)

    def all_ads(self):
        """Iterate every ad across campaigns."""
        for campaign in self.campaigns:
            yield from campaign.ads

    def all_bids(self):
        """Iterate every keyword bid across campaigns."""
        for campaign in self.campaigns:
            yield from campaign.bids
