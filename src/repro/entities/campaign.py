"""Campaign entities."""

from __future__ import annotations

from dataclasses import dataclass, field

from .ad import Ad
from .keyword import KeywordBid

__all__ = ["Campaign"]


@dataclass
class Campaign:
    """A campaign groups ads and keyword bids under one vertical/market.

    Attributes:
        campaign_id: Globally unique identifier.
        advertiser_id: Owning account.
        vertical: Vertical name the campaign targets.
        target_country: Market the campaign's ads run in.
        created_day: Simulation time of creation.
        ads: Advertisements in the campaign.
        bids: Keyword bids in the campaign.
    """

    campaign_id: int
    advertiser_id: int
    vertical: str
    target_country: str
    created_day: float
    ads: list[Ad] = field(default_factory=list)
    bids: list[KeywordBid] = field(default_factory=list)

    def add_ad(self, ad: Ad) -> None:
        """Attach an ad; it must carry this campaign's id."""
        if ad.campaign_id != self.campaign_id:
            raise ValueError("ad belongs to a different campaign")
        self.ads.append(ad)

    def add_bid(self, bid: KeywordBid) -> None:
        """Attach a keyword bid."""
        self.bids.append(bid)

    def extend_ads(self, ads: list[Ad]) -> None:
        """Attach many ads; all must carry this campaign's id."""
        for ad in ads:
            if ad.campaign_id != self.campaign_id:
                raise ValueError("ad belongs to a different campaign")
        self.ads.extend(ads)

    def extend_bids(self, bids: list[KeywordBid]) -> None:
        """Attach many keyword bids."""
        self.bids.extend(bids)

    @classmethod
    def bulk(
        cls,
        campaign_ids: list[int],
        advertiser_id: int,
        verticals: list[str],
        target_countries: list[str],
        created_day: float,
    ) -> list[Campaign]:
        """One campaign per (vertical, target country) pair."""
        return [
            cls(
                campaign_id=campaign_id,
                advertiser_id=advertiser_id,
                vertical=vertical,
                target_country=target,
                created_day=created_day,
            )
            for campaign_id, vertical, target in zip(
                campaign_ids, verticals, target_countries
            )
        ]
