"""Campaign entities."""

from __future__ import annotations

from dataclasses import dataclass, field

from .ad import Ad
from .keyword import KeywordBid

__all__ = ["Campaign"]


@dataclass
class Campaign:
    """A campaign groups ads and keyword bids under one vertical/market.

    Attributes:
        campaign_id: Globally unique identifier.
        advertiser_id: Owning account.
        vertical: Vertical name the campaign targets.
        target_country: Market the campaign's ads run in.
        created_day: Simulation time of creation.
        ads: Advertisements in the campaign.
        bids: Keyword bids in the campaign.
    """

    campaign_id: int
    advertiser_id: int
    vertical: str
    target_country: str
    created_day: float
    ads: list[Ad] = field(default_factory=list)
    bids: list[KeywordBid] = field(default_factory=list)

    def add_ad(self, ad: Ad) -> None:
        """Attach an ad; it must carry this campaign's id."""
        if ad.campaign_id != self.campaign_id:
            raise ValueError("ad belongs to a different campaign")
        self.ads.append(ad)

    def add_bid(self, bid: KeywordBid) -> None:
        """Attach a keyword bid."""
        self.bids.append(bid)
