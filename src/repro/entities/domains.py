"""Domain and URL generation.

Section 5.2.4: Bing blacklists domains aggressively, so fraudulent
advertisers use URLs "typically unique to that account"; the only
domains *shared* between fraudulent advertisers are third-party services
that also serve legitimate traffic -- URL shorteners and affiliate
networks.  74% of fraudulent advertisers use a single domain and 96% use
three or fewer, but accounts with multiple ads average ~3 domains with a
90th percentile near 20.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SHORTENER_DOMAINS",
    "AFFILIATE_DOMAINS",
    "shared_domains",
    "unique_domain",
    "sample_domain_count",
]

#: URL-shortening services (shared, also serve non-fraudulent traffic).
SHORTENER_DOMAINS: tuple[str, ...] = ("lnk.ly", "shrt.io", "tny.cc")

#: Affiliate networks fraudsters monetize through (e.g. MaxBounty-like).
AFFILIATE_DOMAINS: tuple[str, ...] = (
    "bountymax.com",
    "clickpays.net",
    "leadriver.com",
    "offervault.biz",
)

_SYLLABLES = (
    "soft", "tech", "deal", "shop", "best", "pro", "fast", "easy", "top",
    "max", "vip", "go", "my", "the", "web", "net", "hub", "zone", "spot",
    "mart", "store", "plaza", "world", "land", "city",
)
_TLDS = (".com", ".net", ".info", ".biz", ".org", ".co")


def shared_domains() -> tuple[str, ...]:
    """All third-party domains that may appear across many accounts."""
    return SHORTENER_DOMAINS + AFFILIATE_DOMAINS


def unique_domain(rng: np.random.Generator) -> str:
    """Generate a pseudo-random domain effectively unique to one account."""
    parts = [
        _SYLLABLES[int(rng.integers(len(_SYLLABLES)))] for _ in range(2)
    ]
    suffix = int(rng.integers(10, 9999))
    tld = _TLDS[int(rng.integers(len(_TLDS)))]
    return f"{''.join(parts)}{suffix}{tld}"


def sample_domain_count(
    rng: np.random.Generator, n_ads: int, is_fraud: bool
) -> int:
    """Number of distinct destination domains an account uses.

    Fraud accounts are mostly single-domain (shutdown comes too fast to
    rotate), but multi-ad accounts rotate more: mean ~3, long tail to ~20.
    """
    if n_ads <= 1:
        return 1
    if not is_fraud:
        # Legitimate advertisers typically anchor everything on one site.
        return 1 if rng.random() < 0.9 else 2
    if rng.random() < 0.55:
        return 1
    # Heavy-tailed rotation for multi-ad fraud accounts.
    count = 1 + int(rng.geometric(0.35))
    if rng.random() < 0.1:
        count += int(rng.integers(5, 18))
    return min(count, max(1, n_ads))
