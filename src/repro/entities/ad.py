"""Advertisement entities."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..taxonomy.adcopy import AdCopy

__all__ = ["Ad"]


@dataclass
class Ad:
    """A single advertisement.

    Attributes:
        ad_id: Globally unique identifier.
        campaign_id: Owning campaign.
        copy: Title/body text shown to users.
        display_domain: Domain shown in the ad.
        destination_domain: Domain the click lands on (may be a
            shortener or affiliate network distinct from the display).
        created_day: Simulation time of creation.
        modified_count: Number of edits after creation (Figure 7c).
        engagement: Relative attractiveness multiplier applied to the
            vertical's base click-through rate.
    """

    ad_id: int
    campaign_id: int
    copy: AdCopy
    display_domain: str
    destination_domain: str
    created_day: float
    engagement: float = 1.0
    modified_count: int = field(default=0)

    def __post_init__(self) -> None:
        if self.engagement <= 0:
            raise ValueError("engagement must be > 0")

    def record_modification(self) -> None:
        """Count one edit to this ad."""
        self.modified_count += 1
