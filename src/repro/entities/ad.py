"""Advertisement entities."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..taxonomy.adcopy import AdCopy

__all__ = ["Ad"]


@dataclass
class Ad:
    """A single advertisement.

    Attributes:
        ad_id: Globally unique identifier.
        campaign_id: Owning campaign.
        copy: Title/body text shown to users.
        display_domain: Domain shown in the ad.
        destination_domain: Domain the click lands on (may be a
            shortener or affiliate network distinct from the display).
        created_day: Simulation time of creation.
        modified_count: Number of edits after creation (Figure 7c).
        engagement: Relative attractiveness multiplier applied to the
            vertical's base click-through rate.
    """

    ad_id: int
    campaign_id: int
    copy: AdCopy
    display_domain: str
    destination_domain: str
    created_day: float
    engagement: float = 1.0
    modified_count: int = field(default=0)

    def __post_init__(self) -> None:
        if self.engagement <= 0:
            raise ValueError("engagement must be > 0")

    @classmethod
    def bulk(
        cls,
        ad_ids: list[int],
        campaign_ids: list[int],
        copies: list[AdCopy],
        display_domains: list[str],
        destination_domains: list[str],
        created_days: list[float],
        engagements: list[float],
    ) -> list[Ad]:
        """Construct many ads at once, validating array-wise.

        Same semantics as per-element construction; the ``engagement``
        check from ``__post_init__`` runs once over the whole batch.
        """
        if engagements and min(engagements) <= 0:
            raise ValueError("engagement must be > 0")
        ads: list[Ad] = []
        append = ads.append
        new = cls.__new__
        for ad_id, campaign_id, copy, display, destination, created, engagement in zip(
            ad_ids,
            campaign_ids,
            copies,
            display_domains,
            destination_domains,
            created_days,
            engagements,
        ):
            ad = new(cls)
            ad.ad_id = ad_id
            ad.campaign_id = campaign_id
            ad.copy = copy
            ad.display_domain = display
            ad.destination_domain = destination
            ad.created_day = created
            ad.engagement = engagement
            ad.modified_count = 0
            append(ad)
        return ads

    def record_modification(self) -> None:
        """Count one edit to this ad."""
        self.modified_count += 1
