"""Marketplace entities: advertisers, campaigns, ads, keyword bids."""

from .ad import Ad
from .advertiser import Advertiser
from .campaign import Campaign
from .domains import (
    AFFILIATE_DOMAINS,
    SHORTENER_DOMAINS,
    sample_domain_count,
    shared_domains,
    unique_domain,
)
from .enums import AccountStatus, AdvertiserKind, MatchType, ShutdownReason
from .keyword import KeywordBid

__all__ = [
    "Ad",
    "Advertiser",
    "Campaign",
    "KeywordBid",
    "AccountStatus",
    "AdvertiserKind",
    "MatchType",
    "ShutdownReason",
    "AFFILIATE_DOMAINS",
    "SHORTENER_DOMAINS",
    "sample_domain_count",
    "shared_domains",
    "unique_domain",
]
