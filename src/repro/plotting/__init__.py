"""ASCII rendering and CSV export of figure data."""

from .ascii import render_cdfs, render_lines, render_series_table
from .series import export_cdfs_csv, export_series_csv

__all__ = [
    "render_cdfs",
    "render_lines",
    "render_series_table",
    "export_cdfs_csv",
    "export_series_csv",
]
