"""Numeric series export for external plotting."""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..analysis.cdf import Ecdf

__all__ = ["export_series_csv", "export_cdfs_csv"]


def export_series_csv(
    series: dict[str, tuple[np.ndarray, np.ndarray]], path: str | Path
) -> None:
    """Write named (x, y) series as long-format CSV (series, x, y)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", "x", "y"])
        for name, (x, y) in series.items():
            for xv, yv in zip(np.asarray(x), np.asarray(y)):
                writer.writerow([name, float(xv), float(yv)])


def export_cdfs_csv(curves: dict[str, Ecdf], path: str | Path) -> None:
    """Write named ECDFs as long-format CSV."""
    export_series_csv(
        {name: (curve.x, curve.y) for name, curve in curves.items()}, path
    )
