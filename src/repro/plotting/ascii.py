"""ASCII chart rendering.

No plotting backend is available offline, so figures are rendered as
terminal charts: multi-series line plots on linear or log x-axes.  The
goal is shape inspection -- enough to eyeball each figure against the
paper -- with exact values available via the CSV exports
(:mod:`repro.plotting.series`).
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.cdf import Ecdf

__all__ = ["render_lines", "render_cdfs", "render_series_table"]

_GLYPHS = "ox+*#@%&"


def _format_axis_value(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000 or magnitude < 0.01:
        return f"{value:.1e}"
    return f"{value:.3g}"


def render_lines(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    title: str,
    width: int = 72,
    height: int = 18,
    logx: bool = False,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named (x, y) series as an ASCII chart."""
    populated = {
        name: (np.asarray(x, dtype=float), np.asarray(y, dtype=float))
        for name, (x, y) in series.items()
        if len(x) > 0
    }
    if not populated:
        return f"{title}\n  (no data)\n"
    all_x = np.concatenate([x for x, _ in populated.values()])
    all_y = np.concatenate([y for _, y in populated.values()])
    if logx:
        positive = all_x[all_x > 0]
        if positive.size == 0:
            return f"{title}\n  (no positive x data for log axis)\n"
        x_lo, x_hi = math.log10(positive.min()), math.log10(positive.max())
    else:
        x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, glyph: str) -> None:
        """Place one glyph on the grid."""
        if logx:
            if x <= 0:
                return
            x = math.log10(x)
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        if 0 <= col < width and 0 <= row < height:
            grid[height - 1 - row][col] = glyph

    legend = []
    for index, (name, (x, y)) in enumerate(populated.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        legend.append(f"  {glyph} {name}")
        # Densify: interpolate onto the column grid so lines look solid.
        for col in range(width):
            if logx:
                gx = 10 ** (x_lo + (x_hi - x_lo) * col / (width - 1))
            else:
                gx = x_lo + (x_hi - x_lo) * col / (width - 1)
            gy = float(np.interp(gx, x, y))
            plot(gx, gy, glyph)

    lines = [title]
    top_label = _format_axis_value(y_hi)
    bottom_label = _format_axis_value(y_lo)
    pad = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        prefix = (
            top_label.rjust(pad)
            if row_index == 0
            else bottom_label.rjust(pad)
            if row_index == height - 1
            else " " * pad
        )
        lines.append(f"{prefix} |{''.join(row)}|")
    x_axis = (
        f"{' ' * pad}  {_format_axis_value(10**x_lo if logx else x_lo)}"
        f"{' ' * (width - 16)}"
        f"{_format_axis_value(10**x_hi if logx else x_hi)}"
    )
    lines.append(x_axis)
    if xlabel or ylabel:
        lines.append(f"{' ' * pad}  x: {xlabel}{'  (log)' if logx else ''}"
                     + (f"   y: {ylabel}" if ylabel else ""))
    lines.extend(legend)
    return "\n".join(lines) + "\n"


def render_cdfs(
    curves: dict[str, Ecdf],
    title: str,
    logx: bool = False,
    xlabel: str = "",
    **kwargs,
) -> str:
    """Render named ECDFs as an ASCII chart."""
    series = {name: (curve.x, curve.y) for name, curve in curves.items()}
    return render_lines(
        series, title, logx=logx, xlabel=xlabel, ylabel="CDF", **kwargs
    )


def render_series_table(
    headers: list[str], rows: list[list], title: str = ""
) -> str:
    """Render a simple fixed-width text table."""
    text_rows = [
        [
            f"{cell:.4g}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in text_rows), default=0))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"
