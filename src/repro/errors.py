"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this package derive from
:class:`ReproError` so callers can catch package-level failures with a
single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A simulation or analysis configuration is invalid."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class AnalysisError(ReproError):
    """An analysis was asked to operate on unsuitable data."""


class SubsetError(AnalysisError):
    """A subset could not be constructed (e.g. empty candidate pool)."""


class RecordError(ReproError):
    """A record store was used inconsistently (schema mismatch, etc.)."""


class ExperimentError(ReproError):
    """An experiment failed to run or an unknown experiment was requested."""
