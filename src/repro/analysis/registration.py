"""Registration analysis (Figure 1).

Monthly proportion of new account registrations that are *eventually*
labeled fraudulent -- "generally more than a third, and near the end
more than half".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulator.results import SimulationResult
from ..timeline import day_to_month, month_label

__all__ = ["RegistrationSeries", "fraud_registration_share"]


@dataclass(frozen=True)
class RegistrationSeries:
    """Per-month registrations and the share later labeled fraudulent."""

    months: list[str]
    registrations: np.ndarray
    fraud_share: np.ndarray

    def __len__(self) -> int:
        return len(self.months)


def fraud_registration_share(result: SimulationResult) -> RegistrationSeries:
    """Figure 1's series from the customer dataset."""
    n_months = day_to_month(result.total_days - 1) + 1
    total = np.zeros(n_months)
    fraud = np.zeros(n_months)
    for account in result.accounts:
        month = day_to_month(account.created_time)
        total[month] += 1
        if account.labeled_fraud:
            fraud[month] += 1
    share = np.divide(fraud, total, out=np.zeros(n_months), where=total > 0)
    return RegistrationSeries(
        months=[month_label(m) for m in range(n_months)],
        registrations=total,
        fraud_share=share,
    )
