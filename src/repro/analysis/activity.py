"""Weekly fraudulent activity (Figure 3).

Splits each week's fraudulent spend and clicks into *in-window*
(the account was detected within 90 days of the activity) and
*out-of-window* (detected later).  The out-of-window series necessarily
decays to zero near the end of the study -- the paper uses that to
argue its own numbers under-report fraud.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulator.results import SimulationResult
from ..timeline import DAYS_PER_WEEK

__all__ = ["WeeklyActivity", "weekly_fraud_activity", "DETECTION_WINDOW_DAYS"]

DETECTION_WINDOW_DAYS = 90.0


@dataclass(frozen=True)
class WeeklyActivity:
    """Weekly fraud activity, spend normalized by the series maximum."""

    weeks: np.ndarray
    spend_in_window: np.ndarray
    spend_out_of_window: np.ndarray
    clicks_in_window: np.ndarray
    clicks_out_of_window: np.ndarray
    #: The raw maximum weekly spend used for normalization (Figure 8
    #: normalizes by the same value).
    spend_norm: float

    def __len__(self) -> int:
        return len(self.weeks)


def weekly_fraud_activity(result: SimulationResult) -> WeeklyActivity:
    """Figure 3's four series."""
    table = result.impressions
    fraud_rows = table.fraud_labeled
    n_weeks = result.total_days // DAYS_PER_WEEK + 1

    shutdown_by_id = {
        a.advertiser_id: (a.shutdown_time if a.shutdown_time is not None else np.inf)
        for a in result.accounts
        if a.labeled_fraud
    }
    days = table.day[fraud_rows]
    ids = table.advertiser_id[fraud_rows]
    spend = table.spend[fraud_rows]
    clicks = table.clicks[fraud_rows]
    detection = np.asarray(
        [shutdown_by_id.get(int(i), np.inf) for i in ids], dtype=float
    )
    in_window = (detection - days) <= DETECTION_WINDOW_DAYS
    weeks = (days // DAYS_PER_WEEK).astype(int)

    def weekly(mask: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Sum values into weekly bins."""
        return np.bincount(weeks[mask], weights=values[mask], minlength=n_weeks)

    spend_in = weekly(in_window, spend)
    spend_out = weekly(~in_window, spend)
    clicks_in = weekly(in_window, clicks)
    clicks_out = weekly(~in_window, clicks)
    norm = float(max(spend_in.max(initial=0.0), spend_out.max(initial=0.0), 1e-12))
    return WeeklyActivity(
        weeks=np.arange(n_weeks),
        spend_in_window=spend_in / norm,
        spend_out_of_window=spend_out / norm,
        clicks_in_window=clicks_in,
        clicks_out_of_window=clicks_out,
        spend_norm=norm,
    )
