"""Phishing and impersonation analysis (Section 5.2.2).

"By the numbers, phishing-type scams historically make up only a small
percentage of the total fraudulent advertising activity ... most
phishing accounts are shut down quickly."  Aggressive brand
blacklisting forces the fraudster to name the institution to
impersonate it -- exactly the content the filter watches for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..records.codes import vertical_code
from ..simulator.results import SimulationResult

__all__ = ["PhishingStats", "phishing_summary"]

PHISHING_VERTICALS = ("phishing", "impersonation")


@dataclass(frozen=True)
class PhishingStats:
    """How phishing/impersonation fraud compares to other fraud."""

    phishing_spend_share: float
    impersonation_spend_share: float
    phishing_median_lifetime: float
    other_fraud_median_lifetime: float
    n_phishing_accounts: int


def phishing_summary(result: SimulationResult) -> PhishingStats:
    """Spend share and lifetimes for phishing-type fraud."""
    table = result.impressions
    fraud_rows = table.fraud_labeled
    fraud_spend = float(table.spend[fraud_rows].sum())

    def vertical_spend(name: str) -> float:
        """Fraud spend attributed to one vertical."""
        code = vertical_code(name)
        return float(table.spend[fraud_rows & (table.vertical == code)].sum())

    phishing_lifetimes = []
    other_lifetimes = []
    n_phishing = 0
    for account in result.fraud_accounts():
        if account.shutdown_time is None:
            continue
        lifetime = account.shutdown_time - account.created_time
        if set(account.verticals) & set(PHISHING_VERTICALS):
            phishing_lifetimes.append(lifetime)
            n_phishing += 1
        else:
            other_lifetimes.append(lifetime)

    return PhishingStats(
        phishing_spend_share=(
            vertical_spend("phishing") / fraud_spend if fraud_spend > 0 else 0.0
        ),
        impersonation_spend_share=(
            vertical_spend("impersonation") / fraud_spend
            if fraud_spend > 0
            else 0.0
        ),
        phishing_median_lifetime=(
            float(np.median(phishing_lifetimes))
            if phishing_lifetimes
            else float("nan")
        ),
        other_fraud_median_lifetime=(
            float(np.median(other_lifetimes)) if other_lifetimes else float("nan")
        ),
        n_phishing_accounts=n_phishing,
    )
