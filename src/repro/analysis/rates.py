"""Impression-rate analyses (Figures 5 and 6).

Figure 5: fraudsters show ads faster than their legitimate
counterparts.  Figure 6: at high click volumes the populations blend --
the most successful fraud accounts post at rates indistinguishable from
big legitimate advertisers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulator.results import SimulationResult
from ..timeline import Window
from .aggregates import aggregate_by_advertiser
from .cdf import Ecdf, ecdf

__all__ = ["RateDistributions", "RateScatter", "impression_rates", "rate_vs_clicks"]


@dataclass(frozen=True)
class RateDistributions:
    """Impressions-per-day CDFs, fraud vs non-fraud (Figure 5)."""

    fraud: Ecdf
    nonfraud: Ecdf


@dataclass(frozen=True)
class RateScatter:
    """(rate, clicks) points per advertiser by population (Figure 6)."""

    fraud_rate: np.ndarray
    fraud_clicks: np.ndarray
    nonfraud_rate: np.ndarray
    nonfraud_clicks: np.ndarray


def _per_account_rates(
    result: SimulationResult, window: Window
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(fraud rates, fraud clicks, nonfraud rates, nonfraud clicks)."""
    table = result.impressions.in_window(window.start, window.end)
    agg = aggregate_by_advertiser(table)
    impressions, clicks, _ = agg.as_dicts()
    fraud_rates, fraud_clicks = [], []
    nonfraud_rates, nonfraud_clicks = [], []
    for account in result.accounts:
        imp = impressions.get(account.advertiser_id, 0.0)
        if imp <= 0:
            continue
        days = account.active_days_in(window.start, window.end)
        if days <= 0:
            continue
        rate = imp / days
        clk = clicks.get(account.advertiser_id, 0.0)
        if account.labeled_fraud:
            fraud_rates.append(rate)
            fraud_clicks.append(clk)
        else:
            nonfraud_rates.append(rate)
            nonfraud_clicks.append(clk)
    return (
        np.asarray(fraud_rates),
        np.asarray(fraud_clicks),
        np.asarray(nonfraud_rates),
        np.asarray(nonfraud_clicks),
    )


def impression_rates(result: SimulationResult, window: Window) -> RateDistributions:
    """Figure 5: per-advertiser impressions/day distributions."""
    fraud_rate, _, nonfraud_rate, _ = _per_account_rates(result, window)
    return RateDistributions(fraud=ecdf(fraud_rate), nonfraud=ecdf(nonfraud_rate))


def rate_vs_clicks(result: SimulationResult, window: Window) -> RateScatter:
    """Figure 6: impression rate against clicks received."""
    fraud_rate, fraud_clicks, nonfraud_rate, nonfraud_clicks = _per_account_rates(
        result, window
    )
    return RateScatter(
        fraud_rate=fraud_rate,
        fraud_clicks=fraud_clicks,
        nonfraud_rate=nonfraud_rate,
        nonfraud_clicks=nonfraud_clicks,
    )
