"""Advertiser subset construction (Section 3.3).

Eleven subset types, each ~``target_size`` advertisers drawn from the
pool active during a measurement window:

Fraudulent: ``Fraud`` (uniform over alive), ``F with clicks``,
``F spend weight``, ``F volume weight``.

Non-fraudulent: ``Nonfraud``, ``NF with clicks``, ``NF spend weight``,
``NF volume weight`` plus three *matched* subsets that correct for the
demographic differences between populations: ``NF spend match`` (to
``F spend weight`` by money spent), ``NF volume match`` (to
``F volume weight`` by click volume) and ``NF rate match`` (to
``F volume weight`` by click *rate* -- clicks divided by the days the
account could have been active inside the window).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SubsetError
from ..records.impressions import ImpressionTable
from ..rng import stream
from ..simulator.results import AccountSummary, SimulationResult
from ..timeline import Window
from .aggregates import aggregate_by_advertiser

__all__ = [
    "Subset",
    "SubsetBuilder",
    "FRAUD_SUBSETS",
    "NONFRAUD_SUBSETS",
    "ALL_SUBSETS",
]

FRAUD_SUBSETS = ("Fraud", "F with clicks", "F spend weight", "F volume weight")
NONFRAUD_SUBSETS = (
    "Nonfraud",
    "NF with clicks",
    "NF spend weight",
    "NF volume weight",
    "NF spend match",
    "NF volume match",
    "NF rate match",
)
ALL_SUBSETS = FRAUD_SUBSETS + NONFRAUD_SUBSETS


@dataclass(frozen=True)
class Subset:
    """A named sample of advertiser accounts."""

    name: str
    accounts: tuple[AccountSummary, ...]

    def __len__(self) -> int:
        return len(self.accounts)

    def ids(self) -> np.ndarray:
        """Member advertiser ids as a sorted-free array."""
        return np.asarray(
            [a.advertiser_id for a in self.accounts], dtype=np.int64
        )


class SubsetBuilder:
    """Builds every subset type for one measurement window.

    The builder aggregates the window's impressions once and reuses the
    per-advertiser clicks/spend for all weighted and matched subsets.
    """

    def __init__(
        self,
        result: SimulationResult,
        window: Window,
        target_size: int = 10_000,
        seed: int | None = None,
    ) -> None:
        if target_size < 1:
            raise SubsetError("target_size must be >= 1")
        self.result = result
        self.window = window
        self.target_size = target_size
        self._root_seed = result.config.seed if seed is None else seed
        self._table: ImpressionTable = result.impressions.in_window(
            window.start, window.end
        )
        self._agg = aggregate_by_advertiser(self._table)
        self._imp, self._clicks, self._spend = self._agg.as_dicts()
        self._fraud_pool = [
            a
            for a in result.accounts
            if a.labeled_fraud and a.alive_during(window.start, window.end)
        ]
        self._nonfraud_pool = [
            a
            for a in result.accounts
            if not a.labeled_fraud and a.alive_during(window.start, window.end)
        ]

    # -- helpers -------------------------------------------------------

    def clicks_of(self, account: AccountSummary) -> float:
        """Window clicks for one account."""
        return self._clicks.get(account.advertiser_id, 0.0)

    def spend_of(self, account: AccountSummary) -> float:
        """Window spend for one account."""
        return self._spend.get(account.advertiser_id, 0.0)

    def impressions_of(self, account: AccountSummary) -> float:
        """Window impressions for one account."""
        return self._imp.get(account.advertiser_id, 0.0)

    def rate_of(self, account: AccountSummary) -> float:
        """Clicks per possible-active day within the window."""
        days = account.active_days_in(self.window.start, self.window.end)
        if days <= 0:
            return 0.0
        return self.clicks_of(account) / days

    def _stream(self, name: str) -> np.random.Generator:
        """A dedicated stream per subset name: ``build`` is idempotent
        and independent of call order."""
        return stream(
            self._root_seed,
            f"subsets:{self.window.label}:{self.window.start}:{name}",
        )

    def _uniform(self, pool: list[AccountSummary], name: str) -> Subset:
        if not pool:
            raise SubsetError(f"{name}: empty candidate pool")
        size = min(self.target_size, len(pool))
        picks = self._stream(name).choice(len(pool), size=size, replace=False)
        return Subset(name, tuple(pool[int(i)] for i in picks))

    def _weighted(
        self, pool: list[AccountSummary], metric, name: str
    ) -> Subset:
        values = np.asarray([metric(a) for a in pool], dtype=float)
        positive = values > 0
        if not positive.any():
            raise SubsetError(f"{name}: no accounts with positive weight")
        candidates = [a for a, keep in zip(pool, positive) if keep]
        weights = values[positive]
        weights = weights / weights.sum()
        size = min(self.target_size, len(candidates))
        picks = self._stream(name).choice(
            len(candidates), size=size, replace=False, p=weights
        )
        return Subset(name, tuple(candidates[int(i)] for i in picks))

    def _matched(
        self,
        reference: Subset,
        pool: list[AccountSummary],
        metric,
        name: str,
    ) -> Subset:
        """Greedy nearest-metric matching without replacement.

        Reference accounts are processed in decreasing metric order so
        the rare heavy accounts claim their closest counterparts first.
        """
        if not pool:
            raise SubsetError(f"{name}: empty candidate pool")
        candidates = sorted(pool, key=metric)
        values = np.asarray([metric(a) for a in candidates], dtype=float)
        used = np.zeros(len(candidates), dtype=bool)
        chosen: list[AccountSummary] = []
        targets = sorted(
            (metric(a) for a in reference.accounts), reverse=True
        )
        for target in targets:
            index = int(np.searchsorted(values, target))
            # The nearest unused candidate is the first unused entry on
            # either side of the insertion point (values are sorted).
            left = index - 1
            while left >= 0 and used[left]:
                left -= 1
            right = index
            while right < len(candidates) and used[right]:
                right += 1
            if left < 0 and right >= len(candidates):
                break  # pool exhausted
            if left < 0:
                best = right
            elif right >= len(candidates):
                best = left
            else:
                best = (
                    left
                    if abs(values[left] - target) <= abs(values[right] - target)
                    else right
                )
            used[best] = True
            chosen.append(candidates[best])
        if not chosen:
            raise SubsetError(f"{name}: matching produced no accounts")
        return Subset(name, tuple(chosen))

    # -- public API ----------------------------------------------------

    def build(self, name: str) -> Subset:
        """Build one subset by its paper label."""
        fraud, nonfraud = self._fraud_pool, self._nonfraud_pool
        if name == "Fraud":
            return self._uniform(fraud, name)
        if name == "Nonfraud":
            return self._uniform(nonfraud, name)
        if name == "F with clicks":
            return self._uniform(
                [a for a in fraud if self.clicks_of(a) > 0], name
            )
        if name == "NF with clicks":
            return self._uniform(
                [a for a in nonfraud if self.clicks_of(a) > 0], name
            )
        if name == "F spend weight":
            return self._weighted(fraud, self.spend_of, name)
        if name == "NF spend weight":
            return self._weighted(nonfraud, self.spend_of, name)
        if name == "F volume weight":
            return self._weighted(fraud, self.clicks_of, name)
        if name == "NF volume weight":
            return self._weighted(nonfraud, self.clicks_of, name)
        if name == "NF spend match":
            reference = self.build("F spend weight")
            return self._matched(reference, nonfraud, self.spend_of, name)
        if name == "NF volume match":
            reference = self.build("F volume weight")
            return self._matched(reference, nonfraud, self.clicks_of, name)
        if name == "NF rate match":
            reference = self.build("F volume weight")
            return self._matched(reference, nonfraud, self.rate_of, name)
        if name == "NF keyword overlap":
            return self._keyword_overlap(name)
        raise SubsetError(f"unknown subset: {name!r}")

    def _keyword_overlap(self, name: str) -> Subset:
        """Non-fraudulent advertisers sharing verticals with the most
        prolific fraud spenders (Section 6.1's overlap sample).

        Even these advertisers see only a small share of their
        impressions beside fraud (<2% in the paper's median case).
        """
        fraud_spenders = sorted(
            self._fraud_pool, key=self.spend_of, reverse=True
        )
        top = fraud_spenders[: max(1, len(fraud_spenders) // 10)]
        hot_verticals = {v for a in top for v in a.verticals}
        if not hot_verticals:
            raise SubsetError(f"{name}: no fraud spend in window")
        pool = [
            a
            for a in self._nonfraud_pool
            if set(a.verticals) & hot_verticals and self.impressions_of(a) > 0
        ]
        return self._uniform(pool, name)

    def build_many(self, names=ALL_SUBSETS) -> dict[str, Subset]:
        """Build several subsets keyed by name."""
        return {name: self.build(name) for name in names}
