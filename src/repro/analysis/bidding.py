"""Bidding-style analyses (Figure 9, Table 4, Section 5.3)."""

from __future__ import annotations

from dataclasses import dataclass

from ..entities.enums import MatchType
from ..records.codes import MATCH_CODES
from ..simulator.results import SimulationResult
from ..timeline import Window
from .cdf import Ecdf, ecdf
from .subsets import Subset

__all__ = [
    "MatchMixDistributions",
    "BidLevelDistributions",
    "MatchTypeClickRow",
    "match_mix_distributions",
    "bid_level_distributions",
    "clicks_by_match_type",
    "above_default_share",
]

_MATCH_NAMES = ("exact", "phrase", "broad")


@dataclass(frozen=True)
class MatchMixDistributions:
    """Figure 9(a-c): per-advertiser share of bids per match type."""

    #: match name -> subset name -> CDF of proportions
    curves: dict[str, dict[str, Ecdf]]


@dataclass(frozen=True)
class BidLevelDistributions:
    """Figure 9(d-f): per-advertiser average bid per match type.

    Values are normalized by the platform's default maximum bid, as in
    the paper.
    """

    curves: dict[str, dict[str, Ecdf]]


@dataclass(frozen=True)
class MatchTypeClickRow:
    """One row of Table 4."""

    match_type: str
    fraud_click_share: float
    fraud_share_of_type: float
    nonfraud_click_share: float


def match_mix_distributions(subsets: dict[str, Subset]) -> MatchMixDistributions:
    """Per-subset CDFs of the proportion of an advertiser's bids that
    use each match type."""
    curves: dict[str, dict[str, Ecdf]] = {name: {} for name in _MATCH_NAMES}
    for subset_name, subset in subsets.items():
        shares = {name: [] for name in _MATCH_NAMES}
        for account in subset.accounts:
            total = float(account.bid_count_by_match.sum())
            if total <= 0:
                continue
            for code, name in enumerate(_MATCH_NAMES):
                shares[name].append(account.bid_count_by_match[code] / total)
        for name in _MATCH_NAMES:
            curves[name][subset_name] = ecdf(shares[name])
    return MatchMixDistributions(curves)


def bid_level_distributions(
    subsets: dict[str, Subset], default_max_bid: float
) -> BidLevelDistributions:
    """Per-subset CDFs of normalized average bids per match type."""
    curves: dict[str, dict[str, Ecdf]] = {name: {} for name in _MATCH_NAMES}
    for subset_name, subset in subsets.items():
        averages = {name: [] for name in _MATCH_NAMES}
        for account in subset.accounts:
            for code, name in enumerate(_MATCH_NAMES):
                count = account.bid_count_by_match[code]
                if count > 0:
                    averages[name].append(
                        account.bid_sum_by_match[code] / count / default_max_bid
                    )
        for name in _MATCH_NAMES:
            curves[name][subset_name] = ecdf(averages[name])
    return BidLevelDistributions(curves)


def clicks_by_match_type(
    result: SimulationResult, window: Window
) -> list[MatchTypeClickRow]:
    """Table 4: the match-type distribution of clicks received.

    ``fraud_share_of_type`` is the fraudulent share of all clicks that
    arrived through the given match type.
    """
    table = result.impressions.in_window(window.start, window.end)
    fraud = table.fraud_labeled
    rows = []
    fraud_total = float(table.clicks[fraud].sum())
    nonfraud_total = float(table.clicks[~fraud].sum())
    for match_type in (MatchType.EXACT, MatchType.PHRASE, MatchType.BROAD):
        code = MATCH_CODES[match_type]
        of_type = table.match_type == code
        fraud_clicks = float(table.clicks[of_type & fraud].sum())
        nonfraud_clicks = float(table.clicks[of_type & ~fraud].sum())
        type_total = fraud_clicks + nonfraud_clicks
        rows.append(
            MatchTypeClickRow(
                match_type=match_type.value,
                fraud_click_share=(
                    fraud_clicks / fraud_total if fraud_total > 0 else float("nan")
                ),
                fraud_share_of_type=(
                    fraud_clicks / type_total if type_total > 0 else float("nan")
                ),
                nonfraud_click_share=(
                    nonfraud_clicks / nonfraud_total
                    if nonfraud_total > 0
                    else float("nan")
                ),
            )
        )
    return rows


def above_default_share(subset: Subset) -> float:
    """Share of a subset bidding above the default on BOTH exact and
    phrase matches (the paper: ~17% of fraud vs roughly double that for
    non-fraudulent advertisers).

    Advertisers without both bid types count in the denominator and
    cannot satisfy the condition.
    """
    if not subset.accounts:
        return float("nan")
    exact_code = MATCH_CODES[MatchType.EXACT]
    phrase_code = MATCH_CODES[MatchType.PHRASE]
    above = 0
    for account in subset.accounts:
        aboves = account.bid_above_default_by_match
        if aboves[exact_code] > 0 and aboves[phrase_code] > 0:
            above += 1
    return above / len(subset.accounts)
