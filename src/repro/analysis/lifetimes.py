"""Fraud account lifetime analysis (Figure 2 and Section 4.1 claims)."""

from __future__ import annotations

from dataclasses import dataclass

from ..simulator.results import SimulationResult
from ..timeline import DAYS_PER_YEAR
from .cdf import Ecdf, ecdf

__all__ = ["LifetimeCdfs", "fraud_lifetimes", "preads_shutdown_share"]


@dataclass(frozen=True)
class LifetimeCdfs:
    """Lifetime CDFs per detection year, from two time origins."""

    #: keys like "Year 1 (account)", "Year 2 (ad)"
    curves: dict[str, Ecdf]

    def __getitem__(self, key: str) -> Ecdf:
        return self.curves[key]

    def keys(self):
        """Curve labels, e.g. 'Year 1 (account)'."""
        return self.curves.keys()


def fraud_lifetimes(result: SimulationResult) -> LifetimeCdfs:
    """Figure 2: fraud lifetimes from registration and from first ad.

    Accounts are split by the year their detection landed in, matching
    the paper's "detected as fraud in first and second year" framing.
    """
    from_account: dict[int, list[float]] = {1: [], 2: []}
    from_ad: dict[int, list[float]] = {1: [], 2: []}
    for account in result.accounts:
        if not account.labeled_fraud or account.shutdown_time is None:
            continue
        year = 1 if account.shutdown_time < DAYS_PER_YEAR else 2
        from_account[year].append(account.shutdown_time - account.created_time)
        if account.first_ad_time is not None:
            from_ad[year].append(
                max(0.0, account.shutdown_time - account.first_ad_time)
            )
    curves = {}
    for year in (1, 2):
        curves[f"Year {year} (account)"] = ecdf(from_account[year])
        curves[f"Year {year} (ad)"] = ecdf(from_ad[year])
    return LifetimeCdfs(curves)


def preads_shutdown_share(result: SimulationResult) -> float:
    """Share of fraud shutdowns that happened before any ad showed.

    The paper reports 35%.
    """
    shutdowns = [
        a
        for a in result.accounts
        if a.labeled_fraud and a.shutdown_time is not None
    ]
    if not shutdowns:
        return float("nan")
    pre_ad = sum(
        1
        for a in shutdowns
        if a.first_ad_time is None or a.shutdown_time <= a.first_ad_time
    )
    return pre_ad / len(shutdowns)
