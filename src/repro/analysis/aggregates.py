"""Per-advertiser aggregation of the impression table."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..records.impressions import ImpressionTable

__all__ = ["AdvertiserAggregates", "aggregate_by_advertiser"]


@dataclass(frozen=True)
class AdvertiserAggregates:
    """Totals per advertiser over some slice of the impression table."""

    advertiser_ids: np.ndarray
    impressions: np.ndarray
    clicks: np.ndarray
    spend: np.ndarray

    def __len__(self) -> int:
        return len(self.advertiser_ids)

    def _index_of(self, advertiser_id: int) -> int | None:
        index = int(np.searchsorted(self.advertiser_ids, advertiser_id))
        if (
            index < len(self.advertiser_ids)
            and self.advertiser_ids[index] == advertiser_id
        ):
            return index
        return None

    def impressions_of(self, advertiser_id: int) -> float:
        """Total impressions for one advertiser (0.0 if absent)."""
        index = self._index_of(advertiser_id)
        return float(self.impressions[index]) if index is not None else 0.0

    def clicks_of(self, advertiser_id: int) -> float:
        """Total clicks for one advertiser (0.0 if absent)."""
        index = self._index_of(advertiser_id)
        return float(self.clicks[index]) if index is not None else 0.0

    def spend_of(self, advertiser_id: int) -> float:
        """Total spend for one advertiser (0.0 if absent)."""
        index = self._index_of(advertiser_id)
        return float(self.spend[index]) if index is not None else 0.0

    def as_dicts(self) -> tuple[dict, dict, dict]:
        """(impressions, clicks, spend) keyed by advertiser id."""
        ids = self.advertiser_ids.tolist()
        return (
            dict(zip(ids, self.impressions.tolist())),
            dict(zip(ids, self.clicks.tolist())),
            dict(zip(ids, self.spend.tolist())),
        )


def aggregate_by_advertiser(
    table: ImpressionTable, mask: np.ndarray | None = None
) -> AdvertiserAggregates:
    """Sum impressions (weights), clicks and spend per advertiser.

    Args:
        table: The impression slice to aggregate.
        mask: Optional boolean row filter applied first.
    """
    ids = table.advertiser_id
    weight = table.weight
    clicks = table.clicks
    spend = table.spend
    if mask is not None:
        ids, weight, clicks, spend = ids[mask], weight[mask], clicks[mask], spend[mask]
    if ids.size == 0:
        empty = np.empty(0)
        return AdvertiserAggregates(np.empty(0, dtype=np.int64), empty, empty, empty)
    unique, inverse = np.unique(ids, return_inverse=True)
    return AdvertiserAggregates(
        advertiser_ids=unique,
        impressions=np.bincount(inverse, weights=weight),
        clicks=np.bincount(inverse, weights=clicks),
        spend=np.bincount(inverse, weights=spend),
    )
