"""Vertical spend dynamics (Figure 8, Section 5.2.1).

Monthly fraudulent spend per vertical, normalized by the same value as
Figure 3's spend normalization.  The signature shape: ``techsupport``
dominates fraud spend until the Year-2 policy ban, then collapses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..records.codes import vertical_name
from ..simulator.results import SimulationResult
from ..taxonomy.verticals import dubious_vertical_names
from ..timeline import day_to_month, month_label
from .activity import weekly_fraud_activity

__all__ = ["VerticalSpendSeries", "vertical_spend_by_month"]


@dataclass(frozen=True)
class VerticalSpendSeries:
    """Per-vertical monthly fraud spend (normalized)."""

    months: list[str]
    #: vertical name -> normalized spend per month
    series: dict[str, np.ndarray]
    norm: float

    def top_verticals(self, count: int = 10) -> list[str]:
        """Vertical names ranked by total normalized spend."""
        totals = {name: float(values.sum()) for name, values in self.series.items()}
        return sorted(totals, key=totals.get, reverse=True)[:count]


def vertical_spend_by_month(
    result: SimulationResult,
    min_monthly_spend: float = 0.0,
) -> VerticalSpendSeries:
    """Figure 8's series.

    Args:
        result: Simulation output.
        min_monthly_spend: If positive, only count advertisers whose
            spend in a month exceeds this (the paper labels advertisers
            with >$2000 spend in a month); zero counts all fraud spend.
    """
    table = result.impressions
    fraud_rows = table.fraud_labeled
    n_months = day_to_month(result.total_days - 1) + 1
    months = np.asarray([day_to_month(d) for d in table.day[fraud_rows]])
    verticals = table.vertical[fraud_rows]
    spend = table.spend[fraud_rows]
    ids = table.advertiser_id[fraud_rows]

    if min_monthly_spend > 0:
        # Advertiser x month spend filter.
        key = ids * n_months + months
        unique, inverse = np.unique(key, return_inverse=True)
        totals = np.bincount(inverse, weights=spend)
        keep = totals[inverse] >= min_monthly_spend
        months, verticals, spend = months[keep], verticals[keep], spend[keep]

    norm = weekly_fraud_activity(result).spend_norm
    series: dict[str, np.ndarray] = {}
    for name in dubious_vertical_names():
        series[name] = np.zeros(n_months)
    for month, vert, amount in zip(months, verticals, spend):
        name = vertical_name(int(vert))
        if name in series:
            series[name][int(month)] += amount
    for name in series:
        series[name] = series[name] / norm
    return VerticalSpendSeries(
        months=[month_label(m) for m in range(n_months)],
        series=series,
        norm=norm,
    )
