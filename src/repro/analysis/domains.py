"""Domain usage analysis (Section 5.2.4).

"74% of fraudulent advertisers use a single domain in their
advertisements, and 96% use 3 or fewer, [but] most accounts are shut
down so quickly that these figures are misleading.  Predicating on
accounts that have multiple ads moves the mean case to 3 domains, with
the 90th percentile having nearly 20."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulator.results import SimulationResult

__all__ = ["DomainStats", "fraud_domain_usage"]


@dataclass(frozen=True)
class DomainStats:
    """Distributional facts about fraud accounts' destination domains."""

    single_domain_share: float
    three_or_fewer_share: float
    multi_ad_mean: float
    multi_ad_p90: float
    n_accounts: int
    n_multi_ad_accounts: int


def fraud_domain_usage(result: SimulationResult) -> DomainStats:
    """Domain-count statistics over fraud accounts that posted ads."""
    counts = []
    multi_ad_counts = []
    for account in result.fraud_accounts():
        if account.n_ads == 0 or account.n_domains == 0:
            continue
        counts.append(account.n_domains)
        if account.n_ads > 1:
            multi_ad_counts.append(account.n_domains)
    if not counts:
        nan = float("nan")
        return DomainStats(nan, nan, nan, nan, 0, 0)
    array = np.asarray(counts)
    multi = np.asarray(multi_ad_counts) if multi_ad_counts else np.empty(0)
    return DomainStats(
        single_domain_share=float((array == 1).mean()),
        three_or_fewer_share=float((array <= 3).mean()),
        multi_ad_mean=float(multi.mean()) if multi.size else float("nan"),
        multi_ad_p90=(
            float(np.percentile(multi, 90)) if multi.size else float("nan")
        ),
        n_accounts=len(counts),
        n_multi_ad_accounts=len(multi_ad_counts),
    )
