"""Advertiser effectiveness (Section 4.2).

CTR and CPC comparisons between populations: fraud click-through rates
run slightly *below* their non-fraudulent counterparts except for the
highest-spending fraud accounts, and the top fraud spenders live in the
upper end of the CPC distribution ("CPCs regularly in the several tens
of dollars").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simulator.results import SimulationResult
from ..timeline import Window
from .aggregates import aggregate_by_advertiser

__all__ = ["EffectivenessStats", "advertiser_effectiveness"]


@dataclass(frozen=True)
class EffectivenessStats:
    """Per-population CTR/CPC summaries over one window."""

    fraud_median_ctr: float
    nonfraud_median_ctr: float
    top_fraud_median_ctr: float
    fraud_median_cpc: float
    nonfraud_median_cpc: float
    top_fraud_median_cpc: float
    #: Quantile of the top fraud spenders' median CPC within the
    #: non-fraud CPC distribution (the paper: "almost everyone else").
    top_fraud_cpc_quantile: float


def _medians(ctrs: np.ndarray, cpcs: np.ndarray) -> tuple[float, float]:
    ctr = float(np.median(ctrs)) if ctrs.size else float("nan")
    cpc = float(np.median(cpcs)) if cpcs.size else float("nan")
    return ctr, cpc


def advertiser_effectiveness(
    result: SimulationResult,
    window: Window,
    top_spend_fraction: float = 0.1,
) -> EffectivenessStats:
    """Section 4.2's CTR/CPC comparison.

    ``top_spend_fraction`` selects the highest-spending fraud accounts
    (by window spend) as the "most successful few".
    """
    table = result.impressions.in_window(window.start, window.end)
    agg = aggregate_by_advertiser(table)
    fraud_ids = set(int(i) for i in result.labeled_fraud_ids())

    rows = []
    for index, advertiser_id in enumerate(agg.advertiser_ids):
        impressions = agg.impressions[index]
        clicks = agg.clicks[index]
        spend = agg.spend[index]
        if impressions <= 0:
            continue
        ctr = clicks / impressions
        cpc = spend / clicks if clicks > 0 else np.nan
        rows.append((int(advertiser_id) in fraud_ids, ctr, cpc, spend))

    fraud = [(ctr, cpc, spend) for is_fraud, ctr, cpc, spend in rows if is_fraud]
    nonfraud = [(ctr, cpc, _) for is_fraud, ctr, cpc, _ in rows if not is_fraud]
    fraud_ctr = np.asarray([r[0] for r in fraud])
    fraud_cpc = np.asarray([r[1] for r in fraud if not np.isnan(r[1])])
    nonfraud_ctr = np.asarray([r[0] for r in nonfraud])
    nonfraud_cpc = np.asarray([r[1] for r in nonfraud if not np.isnan(r[1])])

    if fraud:
        spends = np.asarray([r[2] for r in fraud])
        cutoff = np.quantile(spends, 1.0 - top_spend_fraction)
        top = [(ctr, cpc) for ctr, cpc, spend in fraud if spend >= cutoff]
        top_ctr = np.asarray([t[0] for t in top])
        top_cpc = np.asarray([t[1] for t in top if not np.isnan(t[1])])
    else:
        top_ctr = top_cpc = np.empty(0)

    fraud_median_ctr, fraud_median_cpc = _medians(fraud_ctr, fraud_cpc)
    nonfraud_median_ctr, nonfraud_median_cpc = _medians(
        nonfraud_ctr, nonfraud_cpc
    )
    top_median_ctr, top_median_cpc = _medians(top_ctr, top_cpc)
    if nonfraud_cpc.size and not np.isnan(top_median_cpc):
        quantile = float(np.mean(nonfraud_cpc <= top_median_cpc))
    else:
        quantile = float("nan")
    return EffectivenessStats(
        fraud_median_ctr=fraud_median_ctr,
        nonfraud_median_ctr=nonfraud_median_ctr,
        top_fraud_median_ctr=top_median_ctr,
        fraud_median_cpc=fraud_median_cpc,
        nonfraud_median_cpc=nonfraud_median_cpc,
        top_fraud_median_cpc=top_median_cpc,
        top_fraud_cpc_quantile=quantile,
    )
