"""Targeting footprint (Figure 7).

Distributions of the number of ads and keyword sets created or modified
per account within a measurement window, per subset, normalized by the
median creation count of 'NF with clicks' (per the figure caption).
Fraud keeps its footprint more than an order of magnitude smaller:
more ads and keywords are "greater surface area for Bing to detect
dubious activity".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from ..simulator.results import AccountSummary
from ..timeline import Window
from .cdf import Ecdf, ecdf
from .subsets import Subset

__all__ = ["TargetingDistributions", "targeting_distributions", "count_in_window"]

_KINDS = ("ads_created", "kw_created", "ads_modified", "kw_modified")


def count_in_window(times: np.ndarray, window: Window) -> int:
    """Events with ``start <= t < end``."""
    if times.size == 0:
        return 0
    return int(np.count_nonzero((times >= window.start) & (times < window.end)))


def _counts(account: AccountSummary, kind: str, window: Window) -> int:
    if kind == "ads_created":
        return count_in_window(account.ad_creation_times, window)
    if kind == "kw_created":
        return count_in_window(account.kw_creation_times, window)
    if kind == "ads_modified":
        return count_in_window(account.ad_mod_times, window)
    if kind == "kw_modified":
        return count_in_window(account.kw_mod_times, window)
    raise AnalysisError(f"unknown targeting kind: {kind!r}")


@dataclass(frozen=True)
class TargetingDistributions:
    """Per-subset CDFs for the four panels of Figure 7.

    Values are normalized by the median *creation* count of the
    'NF with clicks' subset (ads for ad panels, keywords for keyword
    panels), so 1.0 on the x-axis is "the typical clicked legitimate
    advertiser's footprint".
    """

    curves: dict[str, dict[str, Ecdf]]
    norms: dict[str, float]

    def panel(self, kind: str) -> dict[str, Ecdf]:
        """Curves for one of the four Figure 7 panels."""
        if kind not in _KINDS:
            raise AnalysisError(f"unknown panel: {kind!r}")
        return self.curves[kind]


def targeting_distributions(
    subsets: dict[str, Subset], window: Window
) -> TargetingDistributions:
    """Figure 7 from pre-built subsets."""
    if "NF with clicks" not in subsets:
        raise AnalysisError("Figure 7 normalization needs 'NF with clicks'")
    reference = subsets["NF with clicks"]
    ad_norm = float(
        np.median([_counts(a, "ads_created", window) for a in reference.accounts])
    )
    kw_norm = float(
        np.median([_counts(a, "kw_created", window) for a in reference.accounts])
    )
    norms = {
        "ads_created": max(ad_norm, 1.0),
        "ads_modified": max(ad_norm, 1.0),
        "kw_created": max(kw_norm, 1.0),
        "kw_modified": max(kw_norm, 1.0),
    }
    curves: dict[str, dict[str, Ecdf]] = {kind: {} for kind in _KINDS}
    for kind in _KINDS:
        for name, subset in subsets.items():
            values = np.asarray(
                [_counts(a, kind, window) for a in subset.accounts], dtype=float
            )
            curves[kind][name] = ecdf(values / norms[kind])
    return TargetingDistributions(curves=curves, norms=norms)
