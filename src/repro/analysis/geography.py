"""Geographic distribution of fraud (Table 1, Table 3, Section 5.2.3)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..records.codes import country_name
from ..simulator.results import SimulationResult
from ..timeline import Window
from .subsets import Subset

__all__ = [
    "CountryClickRow",
    "fraud_clicks_by_country",
    "registration_country_table",
]


@dataclass(frozen=True)
class CountryClickRow:
    """One row of Table 3."""

    country: str
    share_of_fraud: float
    share_of_country: float


def fraud_clicks_by_country(
    result: SimulationResult, window: Window
) -> list[CountryClickRow]:
    """Table 3: where fraudulent clicks land.

    ``share_of_fraud`` is the country's share of all fraudulent clicks;
    ``share_of_country`` is the fraudulent share of that country's
    clicks.  Sorted by share_of_fraud descending.
    """
    table = result.impressions.in_window(window.start, window.end)
    n_countries = int(table.country.max(initial=0)) + 1
    fraud = table.fraud_labeled
    fraud_clicks = np.bincount(
        table.country[fraud], weights=table.clicks[fraud], minlength=n_countries
    )
    all_clicks = np.bincount(
        table.country, weights=table.clicks, minlength=n_countries
    )
    total_fraud = fraud_clicks.sum()
    rows = []
    for code in range(n_countries):
        if all_clicks[code] <= 0:
            continue
        rows.append(
            CountryClickRow(
                country=country_name(code),
                share_of_fraud=(
                    float(fraud_clicks[code] / total_fraud) if total_fraud > 0 else 0.0
                ),
                share_of_country=float(fraud_clicks[code] / all_clicks[code]),
            )
        )
    rows.sort(key=lambda r: r.share_of_fraud, reverse=True)
    return rows


def registration_country_table(
    subsets: dict[str, Subset], top: int = 5
) -> dict[str, list[tuple[str, float]]]:
    """Table 1: top registration countries per fraud subset.

    Returns, per subset name, the top ``top`` (country, percentage)
    pairs.
    """
    output: dict[str, list[tuple[str, float]]] = {}
    for name, subset in subsets.items():
        counts: dict[str, int] = {}
        for account in subset.accounts:
            counts[account.country] = counts.get(account.country, 0) + 1
        total = max(1, len(subset.accounts))
        ranked = sorted(counts.items(), key=lambda item: item[1], reverse=True)
        output[name] = [
            (country, 100.0 * count / total) for country, count in ranked[:top]
        ]
    return output
