"""The paper's measurement methodology, as a reusable library."""

from .activity import DETECTION_WINDOW_DAYS, WeeklyActivity, weekly_fraud_activity
from .aggregates import AdvertiserAggregates, aggregate_by_advertiser
from .bidding import (
    BidLevelDistributions,
    MatchMixDistributions,
    MatchTypeClickRow,
    above_default_share,
    bid_level_distributions,
    clicks_by_match_type,
    match_mix_distributions,
)
from .cdf import Ecdf, ecdf, lorenz_curve, quantile, weighted_ecdf
from .competition import (
    CompetitionAnalyzer,
    affected_share_distributions,
    cpc_distributions,
    ctr_distributions,
    position_distributions,
    top_position_probability,
)
from .concentration import ConcentrationCurves, fraud_concentration, top_share
from .domains import DomainStats, fraud_domain_usage
from .effectiveness import EffectivenessStats, advertiser_effectiveness
from .geography import (
    CountryClickRow,
    fraud_clicks_by_country,
    registration_country_table,
)
from .lifetimes import LifetimeCdfs, fraud_lifetimes, preads_shutdown_share
from .rates import (
    RateDistributions,
    RateScatter,
    impression_rates,
    rate_vs_clicks,
)
from .registration import RegistrationSeries, fraud_registration_share
from .subsets import (
    ALL_SUBSETS,
    FRAUD_SUBSETS,
    NONFRAUD_SUBSETS,
    Subset,
    SubsetBuilder,
)
from .targeting import TargetingDistributions, targeting_distributions
from .verticals import VerticalSpendSeries, vertical_spend_by_month

__all__ = [
    "Ecdf",
    "ecdf",
    "weighted_ecdf",
    "quantile",
    "lorenz_curve",
    "AdvertiserAggregates",
    "aggregate_by_advertiser",
    "Subset",
    "SubsetBuilder",
    "ALL_SUBSETS",
    "FRAUD_SUBSETS",
    "NONFRAUD_SUBSETS",
    "RegistrationSeries",
    "fraud_registration_share",
    "LifetimeCdfs",
    "fraud_lifetimes",
    "preads_shutdown_share",
    "WeeklyActivity",
    "weekly_fraud_activity",
    "DETECTION_WINDOW_DAYS",
    "ConcentrationCurves",
    "fraud_concentration",
    "top_share",
    "DomainStats",
    "fraud_domain_usage",
    "EffectivenessStats",
    "advertiser_effectiveness",
    "RateDistributions",
    "RateScatter",
    "impression_rates",
    "rate_vs_clicks",
    "TargetingDistributions",
    "targeting_distributions",
    "VerticalSpendSeries",
    "vertical_spend_by_month",
    "CountryClickRow",
    "fraud_clicks_by_country",
    "registration_country_table",
    "MatchMixDistributions",
    "BidLevelDistributions",
    "MatchTypeClickRow",
    "match_mix_distributions",
    "bid_level_distributions",
    "clicks_by_match_type",
    "above_default_share",
    "CompetitionAnalyzer",
    "affected_share_distributions",
    "position_distributions",
    "ctr_distributions",
    "cpc_distributions",
    "top_position_probability",
]
