"""Empirical distribution utilities shared by the analyses."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError

__all__ = ["Ecdf", "ecdf", "weighted_ecdf", "quantile", "lorenz_curve"]


@dataclass(frozen=True)
class Ecdf:
    """An empirical CDF: ``F(x[i]) = y[i]``, x sorted ascending."""

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise AnalysisError("ECDF arrays must align")

    def __len__(self) -> int:
        return len(self.x)

    def at(self, value: float) -> float:
        """F(value): share of mass at or below ``value``."""
        if len(self.x) == 0:
            return float("nan")
        index = np.searchsorted(self.x, value, side="right")
        if index == 0:
            return 0.0
        return float(self.y[index - 1])

    def quantile(self, q: float) -> float:
        """Smallest x with F(x) >= q."""
        if not 0.0 <= q <= 1.0:
            raise AnalysisError(f"quantile must be in [0, 1], got {q}")
        if len(self.x) == 0:
            return float("nan")
        index = int(np.searchsorted(self.y, q, side="left"))
        index = min(index, len(self.x) - 1)
        return float(self.x[index])

    @property
    def median(self) -> float:
        """The 0.5 quantile."""
        return self.quantile(0.5)


def ecdf(values) -> Ecdf:
    """Unweighted empirical CDF of ``values``."""
    array = np.asarray(values, dtype=float)
    array = array[~np.isnan(array)]
    if array.size == 0:
        return Ecdf(np.empty(0), np.empty(0))
    x = np.sort(array)
    y = np.arange(1, len(x) + 1) / len(x)
    return Ecdf(x, y)


def weighted_ecdf(values, weights) -> Ecdf:
    """Weighted empirical CDF (mass ``weights[i]`` at ``values[i]``)."""
    array = np.asarray(values, dtype=float)
    w = np.asarray(weights, dtype=float)
    if array.shape != w.shape:
        raise AnalysisError("values and weights must align")
    keep = ~np.isnan(array) & (w > 0)
    array, w = array[keep], w[keep]
    if array.size == 0:
        return Ecdf(np.empty(0), np.empty(0))
    order = np.argsort(array)
    x = array[order]
    y = np.cumsum(w[order])
    y = y / y[-1]
    return Ecdf(x, y)


def quantile(values, q: float) -> float:
    """Convenience quantile of raw values."""
    return ecdf(values).quantile(q)


def lorenz_curve(values) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative-share curve over entities sorted in *decreasing* order.

    Returns (proportion of entities, cumulative proportion of total),
    matching Figure 4's axes ("advertisers are in decreasing order of
    spend").
    """
    array = np.asarray(values, dtype=float)
    array = array[~np.isnan(array)]
    if array.size == 0 or array.sum() <= 0:
        raise AnalysisError("lorenz_curve needs positive total mass")
    descending = np.sort(array)[::-1]
    cumulative = np.cumsum(descending) / descending.sum()
    proportion = np.arange(1, len(descending) + 1) / len(descending)
    return proportion, cumulative
