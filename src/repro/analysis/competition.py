"""Fraud-competition analyses (Section 6, Figures 10-17).

An advertiser "competes with fraud" on an impression when an ad from a
*different* eventually-labeled-fraud advertiser was shown on the same
results page.  Impressions with such competition are *influenced*;
the rest are *organic*.

The analyzer pre-sorts the window's impression rows by advertiser so
per-account statistics are O(log n) lookups plus a contiguous slice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..records.codes import vertical_code
from ..simulator.results import SimulationResult
from ..taxonomy.verticals import dubious_vertical_names
from ..timeline import Window
from .cdf import Ecdf, ecdf, weighted_ecdf
from .subsets import Subset

__all__ = [
    "CompetitionAnalyzer",
    "AffectedShares",
    "PositionCurves",
    "EngagementCurves",
    "affected_share_distributions",
    "position_distributions",
    "ctr_distributions",
    "cpc_distributions",
    "top_position_probability",
]


class CompetitionAnalyzer:
    """Window-scoped competition statistics."""

    def __init__(
        self,
        result: SimulationResult,
        window: Window,
        dubious_only: bool = False,
    ) -> None:
        table = result.impressions.in_window(window.start, window.end)
        if dubious_only:
            dubious = np.asarray(
                [vertical_code(name) for name in dubious_vertical_names()]
            )
            table = table.select(np.isin(table.vertical, dubious))
        order = np.argsort(table.advertiser_id, kind="stable")
        self._ids = table.advertiser_id[order]
        self._weight = table.weight[order]
        self._clicks = table.clicks[order]
        self._spend = table.spend[order]
        self._position = table.position[order]
        self._influenced = table.has_fraud_competition[order]
        self._co_fraud = (
            table.n_fraud_shown[order]
            - table.fraud_labeled[order].astype(np.int16)
        )
        self.window = window

    def __len__(self) -> int:
        return len(self._ids)

    def _range(self, advertiser_id: int) -> tuple[int, int]:
        lo = int(np.searchsorted(self._ids, advertiser_id, side="left"))
        hi = int(np.searchsorted(self._ids, advertiser_id, side="right"))
        return lo, hi

    def affected_impression_share(self, advertiser_id: int) -> float:
        """Share of the account's impressions shown beside fraud."""
        lo, hi = self._range(advertiser_id)
        total = self._weight[lo:hi].sum()
        if total <= 0:
            return float("nan")
        return float(self._weight[lo:hi][self._influenced[lo:hi]].sum() / total)

    def affected_spend_share(self, advertiser_id: int) -> float:
        """Share of the account's spend incurred beside fraud."""
        lo, hi = self._range(advertiser_id)
        total = self._spend[lo:hi].sum()
        if total <= 0:
            return float("nan")
        return float(self._spend[lo:hi][self._influenced[lo:hi]].sum() / total)

    def ctr(self, advertiser_id: int, influenced: bool) -> float:
        """Average CTR over the account's organic or influenced rows."""
        lo, hi = self._range(advertiser_id)
        mask = self._influenced[lo:hi] == influenced
        impressions = self._weight[lo:hi][mask].sum()
        if impressions <= 0:
            return float("nan")
        return float(self._clicks[lo:hi][mask].sum() / impressions)

    def cpc(self, advertiser_id: int, influenced: bool) -> float:
        """Average cost per click over organic or influenced rows."""
        lo, hi = self._range(advertiser_id)
        mask = self._influenced[lo:hi] == influenced
        clicks = self._clicks[lo:hi][mask].sum()
        if clicks <= 0:
            return float("nan")
        return float(self._spend[lo:hi][mask].sum() / clicks)

    def pooled_positions(
        self, advertiser_ids: np.ndarray, influenced: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """(positions, weights) pooled over the given accounts."""
        member = np.isin(self._ids, advertiser_ids)
        mask = member & (self._influenced == influenced)
        return self._position[mask], self._weight[mask]

    def co_fraud_counts(
        self, advertiser_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(competitor counts, weights) over the accounts' influenced rows.

        Section 6.1 (prose): non-fraudulent advertisers facing fraud are
        "almost always faced with only a single fraudulent ad", while
        fraudulent advertisers usually compete with more than one.
        """
        member = np.isin(self._ids, advertiser_ids)
        mask = member & self._influenced
        return self._co_fraud[mask], self._weight[mask]


@dataclass(frozen=True)
class AffectedShares:
    """Figure 10/11: per-subset CDFs of affected share per advertiser."""

    curves: dict[str, Ecdf]


@dataclass(frozen=True)
class PositionCurves:
    """Figure 12/13: weighted position CDFs, organic vs influenced."""

    #: "<subset> (organic)" / "<subset> (influenced)" -> CDF
    curves: dict[str, Ecdf]


@dataclass(frozen=True)
class EngagementCurves:
    """Figure 14-17: per-subset CDFs of CTR or normalized CPC."""

    curves: dict[str, Ecdf]
    #: For CPC figures, the median organic CPC used as the normalizer.
    norm: float = 1.0


def affected_share_distributions(
    analyzer: CompetitionAnalyzer,
    subsets: dict[str, Subset],
    by: str = "impressions",
) -> AffectedShares:
    """Figure 10 (``by='impressions'``) / Figure 11 (``by='spend'``)."""
    share = (
        analyzer.affected_impression_share
        if by == "impressions"
        else analyzer.affected_spend_share
    )
    curves = {}
    for name, subset in subsets.items():
        values = [share(a.advertiser_id) for a in subset.accounts]
        curves[name] = ecdf(values)
    return AffectedShares(curves)


def position_distributions(
    analyzer: CompetitionAnalyzer, subsets: dict[str, Subset]
) -> PositionCurves:
    """Figure 12/13: ad-position CDFs with and without fraud competition."""
    curves = {}
    for name, subset in subsets.items():
        ids = subset.ids()
        for influenced, label in ((False, "organic"), (True, "influenced")):
            positions, weights = analyzer.pooled_positions(ids, influenced)
            curves[f"{name} ({label})"] = weighted_ecdf(positions, weights)
    return PositionCurves(curves)


def ctr_distributions(
    analyzer: CompetitionAnalyzer, subsets: dict[str, Subset]
) -> EngagementCurves:
    """Figure 14/16: per-advertiser CTR, organic vs influenced."""
    curves = {}
    for name, subset in subsets.items():
        for influenced, label in ((False, "organic"), (True, "influenced")):
            values = [
                analyzer.ctr(a.advertiser_id, influenced) for a in subset.accounts
            ]
            curves[f"{name} ({label})"] = ecdf(values)
    return EngagementCurves(curves)


def cpc_distributions(
    analyzer: CompetitionAnalyzer,
    subsets: dict[str, Subset],
    norm_subset: Subset,
) -> EngagementCurves:
    """Figure 15/17: per-advertiser CPC normalized by the median organic
    CPC of ``norm_subset`` (the paper uses 'NF with clicks (organic)')."""
    norm_values = [
        analyzer.cpc(a.advertiser_id, influenced=False)
        for a in norm_subset.accounts
    ]
    norm_values = [v for v in norm_values if not np.isnan(v)]
    norm = float(np.median(norm_values)) if norm_values else 1.0
    if norm <= 0:
        norm = 1.0
    curves = {}
    for name, subset in subsets.items():
        for influenced, label in ((False, "organic"), (True, "influenced")):
            values = [
                analyzer.cpc(a.advertiser_id, influenced) / norm
                for a in subset.accounts
            ]
            curves[f"{name} ({label})"] = ecdf(values)
    return EngagementCurves(curves, norm=norm)


def top_position_probability(
    analyzer: CompetitionAnalyzer, subset: Subset, influenced: bool
) -> float:
    """Probability (by impression mass) of holding the #1 ad position."""
    positions, weights = analyzer.pooled_positions(subset.ids(), influenced)
    total = weights.sum()
    if total <= 0:
        return float("nan")
    return float(weights[positions == 1].sum() / total)
