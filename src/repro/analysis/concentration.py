"""Spend/click concentration across fraud advertisers (Figure 4).

"In most time periods, the top 10% of advertisers, as ordered by number
of clicks received, collectively account for more than 95% of all
fraudulent clicks ... the top 10% of advertisers make up 80-90% of
spend."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from ..simulator.results import SimulationResult
from ..timeline import Window
from .aggregates import aggregate_by_advertiser
from .cdf import lorenz_curve

__all__ = ["ConcentrationCurves", "fraud_concentration", "top_share"]


@dataclass(frozen=True)
class ConcentrationCurves:
    """Cumulative spend/click share curves per measurement window."""

    #: window label -> (advertiser proportion, cumulative spend share)
    spend: dict[str, tuple[np.ndarray, np.ndarray]]
    #: window label -> (advertiser proportion, cumulative click share)
    clicks: dict[str, tuple[np.ndarray, np.ndarray]]


def top_share(values: np.ndarray, top_fraction: float = 0.1) -> float:
    """Share of the total held by the top ``top_fraction`` of entities."""
    if not 0 < top_fraction <= 1:
        raise AnalysisError("top_fraction must be in (0, 1]")
    array = np.sort(np.asarray(values, dtype=float))[::-1]
    total = array.sum()
    if total <= 0:
        return float("nan")
    count = max(1, int(np.ceil(top_fraction * len(array))))
    return float(array[:count].sum() / total)


def fraud_concentration(
    result: SimulationResult, windows: dict[str, Window]
) -> ConcentrationCurves:
    """Figure 4's curves over fraud advertisers active in each window.

    Fraud advertisers with zero activity in a window do not appear in
    the impression logs for it and are excluded, matching the paper's
    per-advertiser accounting of observed spend/clicks.
    """
    fraud_ids = set(int(i) for i in result.labeled_fraud_ids())
    spend_curves: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    click_curves: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for label, window in windows.items():
        table = result.impressions.in_window(window.start, window.end)
        agg = aggregate_by_advertiser(table)
        is_fraud = np.asarray(
            [int(i) in fraud_ids for i in agg.advertiser_ids], dtype=bool
        )
        spend = agg.spend[is_fraud]
        clicks = agg.clicks[is_fraud]
        if spend.sum() > 0:
            spend_curves[label] = lorenz_curve(spend)
        if clicks.sum() > 0:
            click_curves[label] = lorenz_curve(clicks)
    return ConcentrationCurves(spend=spend_curves, clicks=click_curves)
