"""repro.obs: structured tracing, metrics, and run telemetry.

A zero-dependency observability layer threaded through the whole
simulation stack:

* **spans** (:mod:`~repro.obs.trace`) -- context-manager/decorator
  timing with monotonic clocks and parent/child nesting;
* **metrics** (:mod:`~repro.obs.metrics`) -- counters, gauges, and
  fixed-bucket histograms with module-level handles cheap enough for
  hot loops;
* **sinks** (:mod:`~repro.obs.sink`) -- no-op default, stderr logging
  (:mod:`~repro.obs.logsetup`), and a crash-safe JSONL file sink the
  checkpoint runner writes into its run directory;
* **profiling** (:mod:`~repro.obs.profile`) -- opt-in per-phase
  cProfile dumps via ``REPRO_PROFILE=1``;
* **reporting** -- ``python -m repro.obs report <run-dir>`` renders
  ``telemetry.jsonl`` into a phase-tree timing table and metric
  summary (:mod:`~repro.obs.report`);
* **analysis** -- the read side: deterministic anomaly/change-point
  detection over the day ledger (:mod:`~repro.obs.analyze`),
  self-contained HTML dashboards (:mod:`~repro.obs.dash`), and
  bench-history trend gating (:mod:`~repro.obs.history`), all via
  ``python -m repro.obs analyze|dash|trend``.  None are imported here:
  the write side stays import-light for the engine's hot path.

The package-level functions (:func:`span`, :func:`event`,
:func:`counter`, ...) operate on one process-global tracer and metrics
registry, which is what the instrumented modules use.  The hard
invariant: nothing in this layer ever touches the named RNG streams,
so a fully traced run is bit-identical to an untraced one.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from .logsetup import LOG_LEVEL_ENV, get_logger, setup_logging
from .metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profile import PROFILE_ENV, maybe_profile, profiling_enabled
from .progress import PROGRESS_NAME, ProgressSink, load_progress
from .resources import ResourceSampler
from .sink import (
    TELEMETRY_NAME,
    JsonlSink,
    LogSink,
    MemorySink,
    NullSink,
    Sink,
)
from .timeseries import DAYLEDGER_NAME, DayLedger
from .trace import DEFAULT_WORKER_ID, WORKER_ID_ENV, Span, Tracer

__all__ = [
    "Counter",
    "DayLedger",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LogSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "ProgressSink",
    "ResourceSampler",
    "Sink",
    "Span",
    "Tracer",
    "DAYLEDGER_NAME",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_WORKER_ID",
    "HEARTBEAT_ENV",
    "LOG_LEVEL_ENV",
    "PROFILE_ENV",
    "PROGRESS_NAME",
    "TELEMETRY_NAME",
    "WORKER_ID_ENV",
    "add_sink",
    "capture",
    "counter",
    "dayledger",
    "event",
    "gauge",
    "get_logger",
    "heartbeat_every",
    "histogram",
    "load_progress",
    "maybe_profile",
    "metrics",
    "profiling_enabled",
    "publish_metrics",
    "publish_resources",
    "remove_sink",
    "set_dayledger",
    "set_worker_id",
    "setup_logging",
    "span",
    "trace",
    "tracer",
    "worker_id",
]

#: Days between progress heartbeat events in the engine's day loops.
HEARTBEAT_ENV = "REPRO_OBS_HEARTBEAT_EVERY"
DEFAULT_HEARTBEAT_EVERY = 25

_TRACER = Tracer()
_METRICS = MetricsRegistry()
_DAYLEDGER: DayLedger | None = None


def dayledger() -> DayLedger | None:
    """The attached day ledger, or ``None`` when none is collecting.

    Instrumented call sites fetch this once per day (never per row) and
    skip all ledger work when it returns ``None`` -- an unledgered run
    pays one attribute read per day.
    """
    return _DAYLEDGER


def set_dayledger(ledger: DayLedger | None) -> DayLedger | None:
    """Attach (or with ``None`` detach) the process-global day ledger.

    Returns the previously attached ledger so callers can restore it --
    the checkpoint runner attaches its run's ledger for the duration of
    :meth:`~repro.runner.runner.CheckpointRunner.run` and restores the
    prior value on exit.
    """
    global _DAYLEDGER
    previous = _DAYLEDGER
    _DAYLEDGER = ledger
    return previous


def tracer() -> Tracer:
    """The process-global tracer the instrumented modules emit to."""
    return _TRACER


def metrics() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _METRICS


def worker_id() -> str:
    """The process-global worker id (``w0`` unless sharded)."""
    return _TRACER.worker_id


def set_worker_id(worker: str) -> str:
    """Label this process's spans/events/metrics with ``worker``.

    A sharded worker process calls this (or sets ``REPRO_OBS_WORKER_ID``
    before import) so every telemetry payload it emits carries its
    identity; ``repro.obs merge`` later combines the per-worker streams.
    Returns the previous id so tests can restore it.
    """
    previous = _TRACER.worker_id
    _TRACER.set_worker_id(worker)
    _METRICS.worker_id = str(worker)
    return previous


def span(name: str, **attrs):
    """Open a span on the global tracer (context manager)."""
    return _TRACER.span(name, **attrs)


def trace(name: str | None = None):
    """Decorator form of :func:`span` on the global tracer."""
    return _TRACER.trace(name)


def event(name: str, **attrs) -> None:
    """Emit a point event on the global tracer."""
    _TRACER.event(name, **attrs)


def counter(name: str) -> Counter:
    """Get-or-create a counter in the global registry."""
    return _METRICS.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge in the global registry."""
    return _METRICS.gauge(name)


def histogram(
    name: str, buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS
) -> Histogram:
    """Get-or-create a fixed-bucket histogram in the global registry."""
    return _METRICS.histogram(name, buckets)


def add_sink(sink: Sink) -> None:
    """Attach a sink to the global tracer."""
    _TRACER.add_sink(sink)


def remove_sink(sink: Sink) -> None:
    """Detach a sink from the global tracer."""
    _TRACER.remove_sink(sink)


@contextmanager
def capture() -> Iterator[MemorySink]:
    """Collect every event emitted inside the block (tests, benches)."""
    sink = MemorySink()
    _TRACER.add_sink(sink)
    try:
        yield sink
    finally:
        _TRACER.remove_sink(sink)


def _tag_worker(payload: dict) -> dict:
    if _TRACER.worker_id != DEFAULT_WORKER_ID:
        payload["w"] = _TRACER.worker_id
    return payload


def publish_metrics() -> None:
    """Emit a cumulative metrics snapshot event to the attached sinks."""
    if _TRACER.sinks:
        _TRACER.emit(
            _tag_worker(
                {
                    "t": round(_TRACER.now(), 6),
                    "kind": "metrics",
                    "data": _METRICS.snapshot(),
                }
            )
        )


def publish_resources(summary: dict) -> None:
    """Emit a resource-envelope event (see :mod:`repro.obs.resources`)."""
    if _TRACER.sinks:
        _TRACER.emit(
            _tag_worker(
                {
                    "t": round(_TRACER.now(), 6),
                    "kind": "resources",
                    "data": summary,
                }
            )
        )


#: Malformed ``REPRO_OBS_HEARTBEAT_EVERY`` values already warned about
#: (one warning per distinct value, not one per day loop).
_HEARTBEAT_WARNED: set[str] = set()


def heartbeat_every() -> int:
    """Day interval between heartbeat events (0 disables them).

    Read from ``REPRO_OBS_HEARTBEAT_EVERY`` on every call so tests and
    long-lived processes can adjust it.  A malformed value falls back
    to the clamped default with a warning (once per distinct value) --
    a typo in a telemetry knob must never abort a simulation -- and
    negative values clamp to 0 (disabled).
    """
    raw = os.environ.get(HEARTBEAT_ENV)
    if raw is None:
        return DEFAULT_HEARTBEAT_EVERY
    try:
        return max(0, int(raw))
    except ValueError:
        if raw not in _HEARTBEAT_WARNED:
            _HEARTBEAT_WARNED.add(raw)
            get_logger("obs").warning(
                "%s=%r is not an integer; using the default of %d days",
                HEARTBEAT_ENV,
                raw,
                DEFAULT_HEARTBEAT_EVERY,
            )
        return DEFAULT_HEARTBEAT_EVERY
