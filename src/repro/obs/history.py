"""Bench-history trends: ``python -m repro.obs trend``.

``scripts/bench_engine.py --append-history`` has been appending one
compact JSON line per measurement to ``BENCH_history.jsonl`` since
PR 5 -- write-only until now.  This module is its consumer: it turns
the history into per-metric trend reports and a CI gate, so a perf
regression fails the build instead of waiting for someone to eyeball
the file.

**Grouping.**  Rows are comparable only within the same workload, so
they are grouped by ``(preset, days, seed)`` -- a quick-preset CI row
never gets judged against a default-preset workstation row.

**Baseline rule.**  Within a group, the newest row is the candidate
and its baseline is the **median of the last K prior rows**
(:data:`DEFAULT_BASELINE_K`, per metric, not per row -- medians of
each metric independently).  Median-of-K absorbs one-off machine
hiccups that a single-predecessor comparison would inherit; a group
with no prior rows has no baseline and is reported (and gated) as
``n/a`` rather than failing retroactively.

**Metrics.**  Phase wall-clock seconds (``population_s``,
``market_build_s``, ``auctions_s``) and ``total_s``, where *larger is
worse*; and throughput (``rows_per_sec``,
``columnar_write_rows_per_sec``), where *smaller is worse* -- both
kinds normalize to a "regression fraction" that is positive when the
candidate is worse, so one threshold convention covers everything.

``--fail-on`` rules (repeatable / comma-separable):

``phase=FRAC``
    Fail if any individual phase regressed by more than ``FRAC``
    relative to its baseline median.
``total=FRAC``
    Fail if ``total_s`` regressed by more than ``FRAC``.
``throughput=FRAC``
    Fail if any throughput metric dropped by more than ``FRAC``.

Exit codes mirror ``repro.obs diff``: 0 -- reported (and every rule
held), 1 -- a rule violated, 2 -- unreadable history or malformed
rule.  The history file is append-only (plain ``open("a")``, not the
atomic rewrite protocol), so a torn final line is possible after a
crash; like the ledger reader, trailing garbage is skipped with one
notice instead of failing the gate.
"""

from __future__ import annotations

import json
from pathlib import Path

from .logsetup import get_logger

__all__ = [
    "DEFAULT_HISTORY_NAME",
    "DEFAULT_BASELINE_K",
    "load_history",
    "trend_report",
    "parse_trend_fail_on",
    "evaluate_trend_fail_on",
    "render_trend",
]

log = get_logger("obs.history")

#: Default history file name (resolved against the current directory,
#: which for CI and the bench script is the repository root).
DEFAULT_HISTORY_NAME = "BENCH_history.jsonl"

#: Rows (per group) the rolling baseline median is computed over.
DEFAULT_BASELINE_K = 5

#: Time metrics (seconds; larger is a regression).  ``total_s`` is
#: carried separately because the gate thresholds it independently.
_PHASE_METRICS = ("population_s", "market_build_s", "auctions_s")

#: Throughput metrics (rows/s; smaller is a regression).
_THROUGHPUT_METRICS = ("rows_per_sec", "columnar_write_rows_per_sec")


def load_history(path: str | Path) -> list[dict]:
    """Parse a benchmark history JSONL file into row dicts.

    Raises ``FileNotFoundError`` when the file is missing.  Trailing
    malformed lines (the file is appended without the atomic-rewrite
    protocol, so a crash can tear the tail) are skipped with one
    logged notice; a malformed line *followed by healthy rows* is real
    corruption and raises ``ValueError``.
    """
    path = Path(path)
    rows: list[dict] = []
    bad: list[int] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            bad.append(lineno)
            continue
        if not isinstance(row, dict) or "phases" not in row:
            bad.append(lineno)
            continue
        if bad:
            raise ValueError(
                f"{path}:{bad[0]}: malformed history line followed by "
                f"healthy rows (corruption, not a torn tail)"
            )
        rows.append(row)
    if bad:
        log.warning(
            "%s: skipped %d malformed trailing line(s) starting at line %d "
            "(torn append tail)",
            path,
            len(bad),
            bad[0],
        )
    return rows


def _group_key(row: dict) -> tuple:
    return (
        str(row.get("preset", "?")),
        row.get("days"),
        row.get("seed"),
    )


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _metric_value(row: dict, metric: str) -> float | None:
    if metric in _THROUGHPUT_METRICS:
        value = row.get(metric)
    else:
        value = (row.get("phases") or {}).get(metric)
    return float(value) if isinstance(value, (int, float)) else None


def _baseline(prior: list[dict], metric: str, k: int) -> float | None:
    values = [
        v
        for row in prior[-k:]
        if (v := _metric_value(row, metric)) is not None
    ]
    return _median(values) if values else None


def trend_report(rows: list[dict], baseline_k: int = DEFAULT_BASELINE_K) -> dict:
    """Per-group trend of the newest row against its rolling baseline.

    Returns ``{"groups": [...], "latest_key": str | None}`` where each
    group record carries the candidate row's metrics, the baseline
    medians, and the signed regression fraction per metric (positive =
    worse).  ``latest_key`` names the group of the newest row overall
    (by file order) -- the measurement a CI gate just appended.
    """
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        groups.setdefault(_group_key(row), []).append(row)

    records = []
    for key in sorted(groups, key=lambda k: (k[0], str(k[1]), str(k[2]))):
        members = groups[key]
        candidate = members[-1]
        prior = members[:-1]
        metrics: dict[str, dict] = {}
        for metric in (*_PHASE_METRICS, "total_s", *_THROUGHPUT_METRICS):
            value = _metric_value(candidate, metric)
            base = _baseline(prior, metric, baseline_k) if prior else None
            regression = None
            if value is not None and base is not None and base > 0:
                if metric in _THROUGHPUT_METRICS:
                    regression = base / value - 1.0 if value > 0 else None
                else:
                    regression = value / base - 1.0
            metrics[metric] = {
                "value": value,
                "baseline": base,
                "regression": regression,
            }
        records.append(
            {
                "preset": key[0],
                "days": key[1],
                "seed": key[2],
                "rows": len(members),
                "measured_at": candidate.get("measured_at"),
                "metrics": metrics,
            }
        )

    latest_key = _group_key(rows[-1]) if rows else None
    return {
        "baseline_k": baseline_k,
        "groups": records,
        "latest_key": (
            f"{latest_key[0]}/days={latest_key[1]}/seed={latest_key[2]}"
            if latest_key
            else None
        ),
    }


_TREND_RULES = ("phase", "total", "throughput")


def parse_trend_fail_on(specs: list[str]) -> dict[str, float]:
    """Parse trend ``--fail-on`` rules; raises ``ValueError`` when
    malformed (same grammar as the diff gate's)."""
    rules: dict[str, float] = {}
    for spec in specs:
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, raw = part.partition("=")
            if not sep:
                raise ValueError(
                    f"--fail-on rule {part!r} must be name=threshold"
                )
            name = name.strip()
            if name not in _TREND_RULES:
                raise ValueError(
                    f"unknown --fail-on rule {name!r} "
                    f"(known: {', '.join(_TREND_RULES)})"
                )
            try:
                rules[name] = float(raw)
            except ValueError:
                raise ValueError(
                    f"--fail-on {name}: threshold {raw!r} is not a number"
                ) from None
    return rules


def evaluate_trend_fail_on(report: dict, rules: dict[str, float]) -> list[str]:
    """Violation messages for a trend report under the gate rules.

    Every group's candidate is gated (CI may interleave quick and
    default measurements); a metric with no baseline is skipped --
    the first measurement of a workload cannot regress.
    """
    violations: list[str] = []
    for group in report["groups"]:
        label = (
            f"{group['preset']}/days={group['days']}/seed={group['seed']}"
        )
        metrics = group["metrics"]

        def check(metric: str, threshold: float, kind: str) -> None:
            data = metrics[metric]
            regression = data["regression"]
            if regression is None or regression <= threshold:
                return
            if kind == "throughput":
                detail = (
                    f"{data['baseline']:.1f} -> {data['value']:.1f} rows/s"
                )
            else:
                detail = f"{data['baseline']:.3f}s -> {data['value']:.3f}s"
            violations.append(
                f"{kind}: {label} {metric} regressed {detail} "
                f"(+{regression:.0%} > {threshold:.0%})"
            )

        if "phase" in rules:
            for metric in _PHASE_METRICS:
                check(metric, rules["phase"], "phase")
        if "total" in rules:
            check("total_s", rules["total"], "total")
        if "throughput" in rules:
            for metric in _THROUGHPUT_METRICS:
                check(metric, rules["throughput"], "throughput")
    return violations


def render_trend(report: dict) -> str:
    """Human-readable trend table."""
    groups = report["groups"]
    if not groups:
        return "no benchmark history rows"
    lines = [
        f"bench trend (baseline: median of last {report['baseline_k']} "
        f"prior rows per group)"
    ]
    for group in groups:
        lines.append("")
        lines.append(
            f"{group['preset']}/days={group['days']}/seed={group['seed']}: "
            f"{group['rows']} row(s), latest {group['measured_at']}"
        )
        header = (
            f"  {'metric':<28} {'latest':>12} {'baseline':>12} {'delta':>8}"
        )
        lines.append(header)
        for metric, data in group["metrics"].items():
            value = data["value"]
            base = data["baseline"]
            regression = data["regression"]
            fv = f"{value:,.1f}" if value is not None else "-"
            fb = f"{base:,.1f}" if base is not None else "n/a"
            fr = f"{regression:+.1%}" if regression is not None else "-"
            lines.append(f"  {metric:<28} {fv:>12} {fb:>12} {fr:>8}")
    return "\n".join(lines)
