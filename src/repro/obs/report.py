"""Render a run's ``telemetry.jsonl`` into a human-readable report.

The report has three sections:

* **span tree** -- every span aggregated by its name-path (the chain
  of ancestor span names), rendered as an indented timing table with
  count / total / mean / max columns;
* **events** -- point events (checkpoints, heartbeats, faults)
  aggregated by name, with the attributes of the last occurrence;
* **metrics** -- the *last* metrics snapshot in the file (snapshots
  are cumulative, so the last one is the run's final state);
* **resources** -- the resource envelope (peak/mean RSS, CPU
  utilization, GC pauses per phase) when the run recorded one
  (:mod:`~repro.obs.resources`).

Used by ``python -m repro.obs report <run-dir>``; importable directly
for tests and notebooks.  ``report_json`` produces the same content as
a machine-readable document (``repro.report/v1``) for
``report --json [--out]``.
"""

from __future__ import annotations

import json
from pathlib import Path

from .sink import TELEMETRY_NAME

__all__ = [
    "load_events",
    "aggregate_spans",
    "last_resources",
    "render_report",
    "report_json",
    "report_path",
]

REPORT_SCHEMA = "repro.report/v1"


def report_path(target: str | Path) -> Path:
    """Resolve a run directory or explicit file path to the JSONL file."""
    path = Path(target)
    if path.is_dir():
        return path / TELEMETRY_NAME
    return path


def load_events(path: str | Path) -> list[dict]:
    """Parse a telemetry JSONL file into a list of event dicts.

    Raises ``ValueError`` naming the offending line on malformed
    content -- the atomic-flush protocol means a healthy file never
    contains a torn line, so damage is worth surfacing loudly.
    """
    events: list[dict] = []
    text = Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{lineno}: malformed telemetry line ({exc})"
            ) from None
        if not isinstance(event, dict):
            raise ValueError(f"{path}:{lineno}: event is not a JSON object")
        events.append(event)
    return events


def aggregate_spans(events: list[dict]) -> dict[tuple[str, ...], dict]:
    """Aggregate span events by name-path.

    Returns ``{(root, ..., name): {"count", "total", "max"}}``.  Spans
    whose parent never made it to the file (an open span lost in a
    crash) are treated as roots.
    """
    spans = [e for e in events if e.get("kind") == "span"]
    by_id = {e["id"]: e for e in spans if "id" in e}
    aggregated: dict[tuple[str, ...], dict] = {}
    for span in spans:
        names = [str(span.get("name", "?"))]
        parent = span.get("parent")
        hops = 0
        while parent is not None and parent in by_id and hops < 64:
            ancestor = by_id[parent]
            names.append(str(ancestor.get("name", "?")))
            parent = ancestor.get("parent")
            hops += 1
        path = tuple(reversed(names))
        record = aggregated.setdefault(
            path, {"count": 0, "total": 0.0, "max": 0.0}
        )
        duration = float(span.get("dur", 0.0))
        record["count"] += 1
        record["total"] += duration
        record["max"] = max(record["max"], duration)
    return aggregated


def _render_span_tree(aggregated: dict[tuple[str, ...], dict]) -> list[str]:
    name_width = max(
        [len("  " * (len(path) - 1) + path[-1]) for path in aggregated],
        default=4,
    )
    name_width = max(name_width, len("span"))
    lines = [
        f"{'span':<{name_width}}  {'count':>7}  {'total_s':>10}  "
        f"{'mean_s':>10}  {'max_s':>10}"
    ]

    def walk(prefix: tuple[str, ...]) -> None:
        depth = len(prefix)
        children = sorted(
            {
                path[: depth + 1]
                for path in aggregated
                if len(path) > depth and path[:depth] == prefix
            },
            key=lambda p: -aggregated.get(p, {"total": 0.0})["total"],
        )
        for child in children:
            record = aggregated.get(child)
            if record is not None:
                label = "  " * depth + child[-1]
                mean = record["total"] / record["count"]
                lines.append(
                    f"{label:<{name_width}}  {record['count']:>7}  "
                    f"{record['total']:>10.3f}  {mean:>10.4f}  "
                    f"{record['max']:>10.4f}"
                )
            walk(child)

    walk(())
    return lines


def _render_events(events: list[dict]) -> list[str]:
    point_events = [e for e in events if e.get("kind") == "event"]
    if not point_events:
        return []
    by_name: dict[str, dict] = {}
    for event in point_events:
        name = str(event.get("name", "?"))
        record = by_name.setdefault(name, {"count": 0, "last": {}})
        record["count"] += 1
        record["last"] = event.get("attrs") or {}
    lines = ["events:"]
    for name in sorted(by_name):
        record = by_name[name]
        last = ", ".join(f"{k}={v}" for k, v in record["last"].items())
        suffix = f"  (last: {last})" if last else ""
        lines.append(f"  {name} x{record['count']}{suffix}")
    return lines


def _render_metrics(events: list[dict]) -> list[str]:
    snapshot = None
    for event in events:
        if event.get("kind") == "metrics":
            snapshot = event.get("data")
    if not snapshot:
        return []
    lines = ["metrics (last snapshot):"]
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    histograms = snapshot.get("histograms") or {}
    width = max(
        (len(name) for name in (*counters, *gauges, *histograms)), default=4
    )
    if counters:
        lines.append("  counters:")
        for name, value in counters.items():
            lines.append(f"    {name:<{width}}  {value:>14,}")
    if gauges:
        lines.append("  gauges:")
        for name, value in gauges.items():
            lines.append(f"    {name:<{width}}  {value:>14,.1f}")
    if histograms:
        lines.append("  histograms:")
        for name, data in histograms.items():
            count = data.get("count", 0)
            total = data.get("sum", 0.0)
            mean = total / count if count else 0.0
            lines.append(
                f"    {name:<{width}}  count={count} sum={total:.3f} "
                f"mean={mean:.4f}"
            )
    return lines


def last_resources(events: list[dict]) -> dict | None:
    """The final resource-envelope payload in a telemetry stream."""
    summary = None
    for event in events:
        if event.get("kind") == "resources":
            summary = event.get("data")
    return summary


def _render_resources(events: list[dict]) -> list[str]:
    summary = last_resources(events)
    if not summary:
        return []
    lines = ["resources:"]

    def describe(label: str, stats: dict) -> str:
        gc = stats.get("gc") or {}
        return (
            f"  {label:<18} rss peak {stats.get('rss_peak_kb', 0) / 1024:.1f}M"
            f" mean {stats.get('rss_mean_kb', 0) / 1024:.1f}M"
            f"  cpu {stats.get('cpu_utilization', 0.0):.0%}"
            f" ({stats.get('cpu_s', 0.0):.2f}s/"
            f"{stats.get('wall_s', 0.0):.2f}s)"
            f"  gc {gc.get('collections', 0)}x"
            f" {gc.get('pause_total_s', 0.0) * 1000:.1f}ms"
        )

    overall = summary.get("overall")
    if overall:
        lines.append(describe("overall", overall))
    for name, stats in sorted((summary.get("phases") or {}).items()):
        lines.append(describe(name, stats))
    return lines


def report_json(
    events: list[dict], source: str | Path | None = None
) -> dict:
    """The report as a machine-readable document (``repro.report/v1``).

    Same content as :func:`render_report`: the aggregated span tree
    (name-paths joined with ``/``), event counts with last attrs, the
    final metrics snapshot, and the resource envelope when recorded.
    """
    aggregated = aggregate_spans(events)
    spans = []
    for path in sorted(aggregated):
        record = aggregated[path]
        spans.append(
            {
                "path": "/".join(path),
                "count": record["count"],
                "total_s": round(record["total"], 6),
                "mean_s": round(record["total"] / record["count"], 6),
                "max_s": round(record["max"], 6),
            }
        )
    by_name: dict[str, dict] = {}
    for event in events:
        if event.get("kind") != "event":
            continue
        name = str(event.get("name", "?"))
        record = by_name.setdefault(name, {"count": 0, "last_attrs": {}})
        record["count"] += 1
        record["last_attrs"] = event.get("attrs") or {}
    metrics = None
    for event in events:
        if event.get("kind") == "metrics":
            metrics = event.get("data")
    return {
        "schema": REPORT_SCHEMA,
        "source": str(source) if source is not None else None,
        "events": len(events),
        "spans": spans,
        "events_by_name": {name: by_name[name] for name in sorted(by_name)},
        "metrics": metrics,
        "resources": last_resources(events),
    }


def _layout_notices(aggregated: dict[tuple[str, ...], dict]) -> list[str]:
    """Informational notes about recognizably old span layouts.

    Aggregation is generic (any span tree renders), so a pre-columnar
    run directory never crashes the report -- but its Phase-1 tree uses
    the retired per-day layout, and silently rendering it invites
    apples-to-oranges comparisons with whole-horizon runs.  Say so.
    """
    notices: list[str] = []
    if any(path[-1] == "phase1.day" for path in aggregated):
        notices.append(
            "note: legacy per-day phase1 span layout (phase1.day); "
            "recorded before the whole-horizon draws/build split"
        )
    return notices


def render_report(events: list[dict], source: str | Path | None = None) -> str:
    """Full text report for one telemetry event list."""
    header = "telemetry report" + (f": {source}" if source else "")
    sections: list[list[str]] = [[header, f"{len(events)} events"]]
    aggregated = aggregate_spans(events)
    notices = _layout_notices(aggregated)
    if notices:
        sections.append(notices)
    if aggregated:
        sections.append(_render_span_tree(aggregated))
    event_lines = _render_events(events)
    if event_lines:
        sections.append(event_lines)
    metric_lines = _render_metrics(events)
    if metric_lines:
        sections.append(metric_lines)
    resource_lines = _render_resources(events)
    if resource_lines:
        sections.append(resource_lines)
    return "\n\n".join("\n".join(section) for section in sections)
