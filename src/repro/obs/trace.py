"""Zero-dependency span tracer.

A :class:`Tracer` measures named spans of work with a monotonic clock
(:func:`time.perf_counter` by default), nests them parent/child via a
span stack, and emits one structured event per *finished* span to every
attached sink.  With no sinks attached, spans still time themselves but
nothing is built or emitted -- the instrumentation left permanently in
the hot paths costs a couple of clock reads per span.

The hard invariant of the whole ``repro.obs`` layer is enforced here by
construction: tracing **never touches the named RNG streams**.  Span
ids come from a process-local counter, timings from the monotonic
clock, and no code path draws randomness -- a fully traced run is
bit-identical to an untraced one (``tests/obs/test_determinism.py``
pins this down).

Event payloads are plain dicts so any sink can serialize them::

    {"t": 3.21, "kind": "span", "name": "phase3.day", "id": 17,
     "parent": 5, "start": 2.95, "dur": 0.26, "attrs": {"day": 4}}

``t`` and ``start`` are seconds since the tracer's epoch (its
construction time), so they are comparable within one process and
monotone even across wall-clock jumps.

Every tracer carries a **worker id** (default ``w0``, overridable via
the ``REPRO_OBS_WORKER_ID`` environment variable or
:meth:`Tracer.set_worker_id`).  Payloads from a non-default worker gain
a ``"w"`` field; the default worker emits exactly the historical
payload shape, so single-process telemetry files are byte-identical to
pre-worker-dimension ones and a reader treats a missing ``"w"`` as
``w0``.  This is the observability groundwork for process sharding:
each worker process sets its own id, and ``repro.obs merge`` combines
the per-worker streams into one canonical file.
"""

from __future__ import annotations

import itertools
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import wraps
from typing import Callable, Iterator

__all__ = ["DEFAULT_WORKER_ID", "WORKER_ID_ENV", "Span", "Tracer"]

#: Worker id assumed for any event without an explicit ``"w"`` field.
DEFAULT_WORKER_ID = "w0"

#: Environment variable a sharded worker process sets before importing
#: the engine, so every span/event it emits carries its id.
WORKER_ID_ENV = "REPRO_OBS_WORKER_ID"


@dataclass
class Span:
    """One timed region of work; live spans sit on the tracer's stack."""

    name: str
    span_id: int
    parent_id: int | None
    start: float
    attrs: dict = field(default_factory=dict)
    end: float | None = None

    @property
    def duration(self) -> float | None:
        """Seconds from start to end, or ``None`` while still open."""
        if self.end is None:
            return None
        return self.end - self.start


class Tracer:
    """Context-manager/decorator spans with pluggable sinks."""

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        worker_id: str | None = None,
    ) -> None:
        self._clock = clock
        self._epoch = clock()
        self._ids = itertools.count(1)
        self._stack: list[Span] = []
        self._sinks: list = []
        if worker_id is None:
            worker_id = os.environ.get(WORKER_ID_ENV) or DEFAULT_WORKER_ID
        self._worker_id = str(worker_id)

    # -- clock ---------------------------------------------------------

    def now(self) -> float:
        """Monotonic seconds since this tracer was created."""
        return self._clock() - self._epoch

    # -- worker dimension ----------------------------------------------

    @property
    def worker_id(self) -> str:
        """This tracer's worker id (``w0`` unless sharded)."""
        return self._worker_id

    def set_worker_id(self, worker_id: str) -> None:
        """Re-label every event emitted from now on with ``worker_id``."""
        self._worker_id = str(worker_id)

    def _tagged(self, payload: dict) -> dict:
        """Attach the ``"w"`` dimension for non-default workers.

        The default worker emits the historical payload shape, so a
        single-process run's telemetry stays byte-identical to the
        pre-worker-dimension format.
        """
        if self._worker_id != DEFAULT_WORKER_ID:
            payload["w"] = self._worker_id
        return payload

    # -- sink management -----------------------------------------------

    @property
    def sinks(self) -> tuple:
        return tuple(self._sinks)

    def add_sink(self, sink) -> None:
        """Attach a sink; it receives every event emitted from now on."""
        self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        """Detach a sink (no-op if it is not attached)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def flush(self) -> None:
        """Flush every attached sink (durable sinks persist buffers)."""
        for sink in self._sinks:
            sink.flush()

    def emit(self, payload: dict) -> None:
        """Hand a pre-built event to every sink."""
        for sink in self._sinks:
            sink.emit(payload)

    # -- spans and events ----------------------------------------------

    def current_span(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Time a region; emits one span event on exit (sinks attached).

        Nesting is tracked by a stack, so a span opened inside another
        records that span as its parent -- the report CLI reconstructs
        the phase tree from these parent pointers.
        """
        parent = self._stack[-1].span_id if self._stack else None
        record = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent,
            start=self.now(),
            attrs=dict(attrs) if attrs else {},
        )
        self._stack.append(record)
        try:
            yield record
        finally:
            self._stack.pop()
            record.end = self.now()
            if self._sinks:
                self.emit(
                    self._tagged(
                        {
                            "t": round(record.end, 6),
                            "kind": "span",
                            "name": record.name,
                            "id": record.span_id,
                            "parent": record.parent_id,
                            "start": round(record.start, 6),
                            "dur": round(record.end - record.start, 6),
                            "attrs": record.attrs,
                        }
                    )
                )

    def trace(self, name: str | None = None):
        """Decorator form of :meth:`span` (span name defaults to the
        function's qualified name)."""

        def decorate(fn):
            label = name if name is not None else fn.__qualname__

            @wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(label):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    def event(self, name: str, **attrs) -> None:
        """Emit a point-in-time event (heartbeats, checkpoints, faults)."""
        if self._sinks:
            self.emit(
                self._tagged(
                    {
                        "t": round(self.now(), 6),
                        "kind": "event",
                        "name": name,
                        "attrs": attrs,
                    }
                )
            )
