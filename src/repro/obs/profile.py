"""Opt-in cProfile hooks.

Setting ``REPRO_PROFILE=1`` in the environment makes
:func:`maybe_profile` wrap the enclosed block in a
:class:`cProfile.Profile` and dump ``<name>.prof`` into the given
directory (the checkpoint runner passes its run dir, so a profiled run
leaves ``phase1.prof`` / ``phase3.prof`` next to ``telemetry.jsonl``).
With the variable unset (or ``0``/``false``/empty) the context manager
is inert -- production runs pay nothing.

Inspect a dump with the stdlib::

    python -m pstats RUNS/x/phase3.prof
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

__all__ = ["PROFILE_ENV", "profiling_enabled", "maybe_profile"]

PROFILE_ENV = "REPRO_PROFILE"

_FALSY = ("", "0", "false", "no", "off")


def profiling_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` requests per-phase profile dumps."""
    return os.environ.get(PROFILE_ENV, "").strip().lower() not in _FALSY


@contextmanager
def maybe_profile(name: str, out_dir: str | Path) -> Iterator[object | None]:
    """Profile the block into ``<out_dir>/<name>.prof`` when enabled."""
    if not profiling_enabled():
        yield None
        return
    import cProfile

    profile = cProfile.Profile()
    target = Path(out_dir)
    target.mkdir(parents=True, exist_ok=True)
    profile.enable()
    try:
        yield profile
    finally:
        profile.disable()
        profile.dump_stats(target / f"{name}.prof")
