"""Run registry: index checkpoint-runner run directories.

Every completed (or in-flight) run directory already carries the
artifacts that describe it -- ``MANIFEST.json``, ``telemetry.jsonl``,
``dayledger.jsonl``, ``validation.json`` / ``validation_report.txt``
and any ``BENCH*.json`` dropped next to them.  The registry condenses
each into one summary record and writes the collection to ``runs.json``
so cross-run tooling (and humans) can answer "what runs do I have and
how did they do?" without re-parsing every artifact::

    python -m repro.obs runs index RUNS/          # write RUNS/runs.json
    python -m repro.obs runs list RUNS/           # table to stdout
    python -m repro.obs runs show RUNS/x          # one run, full JSON

Reading is strictly best-effort: a run directory missing any artifact
(telemetry disabled, validation never run, pre-ledger layout) still
indexes -- the corresponding summary section is simply ``null``.  Only
a directory without a readable ``MANIFEST.json`` is skipped (it is not
a run directory).
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from .analyze import ANALYZE_NAME
from .progress import load_progress
from .report import aggregate_spans, load_events, report_path
from .timeseries import DAYLEDGER_NAME, load_rows, policy_days, rows_to_series

__all__ = [
    "RUNS_INDEX_NAME",
    "VALIDATION_JSON_NAME",
    "PHASE_NAMES",
    "live_status",
    "summarize_run",
    "index_runs",
    "phase_totals",
    "load_validation",
]

RUNS_INDEX_NAME = "runs.json"
VALIDATION_JSON_NAME = "validation.json"
VALIDATION_REPORT_NAME = "validation_report.txt"

#: Top-level phase span names whose totals the registry (and diff)
#: extract from a run's telemetry.
PHASE_NAMES: tuple[str, ...] = (
    "phase1.population",
    "phase2.market",
    "phase3.auctions",
    "runner.run",
)

#: ``[ok  ] name ... measured: 1.234 (...)`` -- the stable line format
#: of ``validation_report.txt``, the fallback when no JSON payload was
#: written.
_REPORT_LINE = re.compile(
    r"^\[(?P<status>ok\s*|MISS)\]\s+(?P<name>\S+)\s+.*"
    r"measured:\s+(?P<measured>\S+)"
)


def phase_totals(events: list[dict]) -> dict[str, float]:
    """Total seconds per phase span name, from telemetry events.

    Aggregates by the *leaf* span name so nesting depth (engine-driven
    vs runner-driven runs) does not matter.
    """
    totals: dict[str, float] = {}
    for path, record in aggregate_spans(events).items():
        name = path[-1]
        if name in PHASE_NAMES:
            totals[name] = totals.get(name, 0.0) + float(record["total"])
    return totals


def last_metrics(events: list[dict]) -> dict | None:
    """The final cumulative metrics snapshot in a telemetry stream."""
    snapshot = None
    for event in events:
        if event.get("kind") == "metrics":
            snapshot = event.get("data")
    return snapshot


def load_validation(run_dir: str | Path) -> dict | None:
    """Validation pass/miss info for a run directory, if any.

    Prefers the machine-readable ``validation.json``; falls back to
    parsing the stable line format of ``validation_report.txt``.
    Returns ``{"passed", "total", "ok": [names], "miss": [names]}`` or
    ``None`` when the run has no validation artifact.
    """
    run_dir = Path(run_dir)
    json_path = run_dir / VALIDATION_JSON_NAME
    if json_path.exists():
        try:
            payload = json.loads(json_path.read_text())
            checks = payload["checks"]
            ok = [c["name"] for c in checks if c["ok"]]
            miss = [c["name"] for c in checks if not c["ok"]]
        except (json.JSONDecodeError, KeyError, TypeError):
            return None
        return {"passed": len(ok), "total": len(checks), "ok": ok, "miss": miss}
    report = run_dir / VALIDATION_REPORT_NAME
    if report.exists():
        ok, miss = [], []
        for line in report.read_text().splitlines():
            match = _REPORT_LINE.match(line)
            if match is None:
                continue
            bucket = ok if match.group("status").startswith("ok") else miss
            bucket.append(match.group("name"))
        if ok or miss:
            return {
                "passed": len(ok),
                "total": len(ok) + len(miss),
                "ok": ok,
                "miss": miss,
            }
    return None


def _ledger_summary(run_dir: Path) -> dict | None:
    path = run_dir / DAYLEDGER_NAME
    if not path.exists():
        return None
    try:
        rows = load_rows(path)
    except (OSError, ValueError):
        return None
    series = rows_to_series(rows)

    def total(name: str) -> float:
        return float(sum(series.get(name, ())))

    clicks = total("clicks")
    spend = total("spend")
    return {
        "days": len(rows),
        "registrations": total("registrations_legit")
        + total("registrations_fraud"),
        "registrations_fraud": total("registrations_fraud"),
        # All stages together; per-stage series stay in the ledger.
        "shutdowns": float(
            sum(
                sum(values)
                for name, values in series.items()
                if name.startswith("shutdowns.")
            )
        ),
        "impressions": total("impressions"),
        "clicks": clicks,
        "spend": spend,
        "fraud_click_share": total("fraud_clicks") / clicks if clicks else 0.0,
        "fraud_spend_share": total("fraud_spend") / spend if spend else 0.0,
        "policy_days": policy_days(rows),
    }


def _analysis_summary(run_dir: Path) -> dict | None:
    """Condensed ``analyze.json`` totals, when the artifact exists.

    Best-effort like every other section: a missing or unreadable
    analysis (pre-analyzer run dirs) summarizes as ``None``, never an
    error -- run ``python -m repro.obs analyze <run-dir>`` to create
    it.
    """
    path = run_dir / ANALYZE_NAME
    if not path.exists():
        return None
    try:
        document = json.loads(path.read_text())
        totals = document["totals"]
        return {
            "anomalies": int(totals["anomalies"]),
            "unexplained_anomalies": int(totals["unexplained_anomalies"]),
            "level_shifts": int(totals["level_shifts"]),
        }
    except (OSError, ValueError, KeyError, TypeError):
        return None


#: Post-hoc artifacts the index records the presence of (the read-side
#: outputs: analysis document, dashboard page).
_ARTIFACT_NAMES = (ANALYZE_NAME, "dashboard.html")


def _bench_summary(run_dir: Path) -> dict | None:
    benches = sorted(run_dir.glob("BENCH*.json"))
    if not benches:
        return None
    summaries = {}
    for path in benches:
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict):
            summaries[path.name] = {
                key: payload.get(key)
                for key in ("schema", "preset", "rows", "rows_per_sec", "phases")
                if key in payload
            }
    return summaries or None


def live_status(run_dir: str | Path) -> dict | None:
    """The ``progress.json`` sidecar condensed for the registry.

    Returns ``{"status", "phase", "day", "days", "eta_s",
    "days_per_sec", "degraded", "updated_unix"}`` or ``None`` for
    pre-sidecar run directories (runs recorded before the live-progress
    layer, or with telemetry disabled) -- the table renders those with
    a fallback notice rather than guessing.
    """
    progress = load_progress(run_dir)
    if progress is None:
        return None
    return {
        "status": progress.get("status"),
        "phase": progress.get("phase"),
        "day": progress.get("day"),
        "days": progress.get("days"),
        "eta_s": progress.get("eta_s"),
        "days_per_sec": progress.get("days_per_sec"),
        "degraded": bool(progress.get("degraded")),
        "updated_unix": progress.get("updated_unix"),
    }


def summarize_run(run_dir: str | Path) -> dict | None:
    """One registry record for a run directory.

    Returns ``None`` when the directory has no readable manifest (not a
    run directory); otherwise every other section is best-effort.
    """
    run_dir = Path(run_dir)
    try:
        manifest = json.loads((run_dir / "MANIFEST.json").read_text())
        if not isinstance(manifest, dict):
            return None
    except (OSError, json.JSONDecodeError):
        return None

    chunks = manifest.get("chunks") or []
    summary: dict = {
        "dir": run_dir.name,
        "path": str(run_dir),
        "seed": manifest.get("seed"),
        "days": manifest.get("days"),
        "phase": manifest.get("phase"),
        # Pre-columnar manifests never wrote the key; those runs are
        # npz by construction (mirrors RunManifest.load's default).
        "chunk_format": manifest.get("chunk_format", "npz"),
        "config_sha256": manifest.get("config_sha256"),
        "package_version": manifest.get("package_version"),
        "chunks": len(chunks),
        "rows": sum(int(c.get("rows", 0)) for c in chunks),
        "phases_s": None,
        "live": live_status(run_dir),
        "validation": load_validation(run_dir),
        "ledger": _ledger_summary(run_dir),
        "analysis": _analysis_summary(run_dir),
        "artifacts": sorted(
            name for name in _ARTIFACT_NAMES if (run_dir / name).exists()
        ),
        "bench": _bench_summary(run_dir),
    }
    telemetry = report_path(run_dir)
    if telemetry.exists():
        try:
            summary["phases_s"] = phase_totals(load_events(telemetry))
        except ValueError:
            pass
    return summary


def index_runs(root: str | Path, out: str | Path | None = None) -> dict:
    """Scan ``root`` for run directories and build (optionally persist)
    the ``runs.json`` index.

    ``root`` may itself be a run directory or a directory of run
    directories; both shapes index.  The index is written atomically
    when ``out`` is given.
    """
    root = Path(root)
    candidates: list[Path] = []
    if root.is_dir():
        candidates = [root, *sorted(p for p in root.iterdir() if p.is_dir())]
    runs = []
    seen: set[str] = set()
    for candidate in candidates:
        summary = summarize_run(candidate)
        if summary is not None and summary["path"] not in seen:
            seen.add(summary["path"])
            runs.append(summary)
    index = {"schema": "repro.runs/v1", "root": str(root), "runs": runs}
    if out is not None:
        from ..records.atomic import atomic_write_text

        atomic_write_text(out, json.dumps(index, indent=2, sort_keys=True) + "\n")
    return index


def _status_cell(live: dict | None) -> str:
    """One table cell for a run's live status."""
    if live is None:
        return "-"
    status = str(live.get("status") or "?")
    if live.get("degraded"):
        status += "!"
    if status.startswith("running"):
        from .progress import _format_eta

        status += f" {_format_eta(live.get('eta_s'))}"
    return status


def render_runs_table(index: dict) -> str:
    """Human-readable table for ``runs list``."""
    runs = index.get("runs") or []
    if not runs:
        return f"no run directories under {index.get('root')}"
    header = (
        f"{'run':<24} {'phase':<9} {'seed':>10} {'days':>6} {'rows':>10} "
        f"{'valid':>7} {'ledger':>7} {'anom':>6} {'status':<18}"
    )
    lines = [header, "-" * len(header)]
    pre_sidecar = 0
    for run in runs:
        validation = run.get("validation")
        valid = (
            f"{validation['passed']}/{validation['total']}"
            if validation
            else "-"
        )
        ledger = run.get("ledger")
        live = run.get("live")
        if live is None:
            pre_sidecar += 1
        analysis = run.get("analysis")
        if analysis is None:
            # No analyze.json yet: distinct from "analyzed, 0 found".
            anom = "-"
        elif analysis["unexplained_anomalies"]:
            anom = f"{analysis['unexplained_anomalies']}!"
        else:
            anom = str(analysis["anomalies"])
        lines.append(
            f"{run['dir']:<24} {str(run.get('phase')):<9} "
            f"{str(run.get('seed')):>10} {str(run.get('days')):>6} "
            f"{run.get('rows', 0):>10} {valid:>7} "
            f"{(str(ledger['days']) + 'd') if ledger else '-':>7} "
            f"{anom:>6} {_status_cell(live):<18}"
        )
    if pre_sidecar:
        lines.append(
            f"note: {pre_sidecar} run(s) predate the progress sidecar "
            f"(no progress.json); status shown as '-'"
        )
    return "\n".join(lines)
