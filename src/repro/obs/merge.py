"""Deterministic merge of per-worker run fragments.

The ROADMAP's process-sharding item splits one run across N worker
processes, each writing its own telemetry/ledger fragment into its own
directory.  ``python -m repro.obs merge <dir> [dirs...] --out <dir>``
combines those fragments back into the canonical single-stream layout
every existing tool (report, registry, diff, export) already reads --
the observability groundwork that must exist *before* any worker pool
does.

Merge contract:

* **Deterministic**: fragments are ordered by worker id (natural sort,
  directory name as tie-break), so the output bytes are identical for
  any input order.
* **Identity on one fragment**: a single-worker merge copies
  ``telemetry.jsonl`` and ``dayledger.jsonl`` byte-for-byte, so a
  merged unsharded run is indistinguishable from the original run
  directory (the CI gate diffs the two with ``--fail-on drift=0``).
* **Telemetry**: fragments concatenate in worker order; span ids (and
  parent pointers) are offset past every id already emitted -- the
  same scheme :class:`~repro.obs.sink.JsonlSink` uses across
  crash/resume boundaries -- and events missing a ``"w"`` tag gain
  their fragment's worker id, so the merged stream stays pid-aware for
  ``repro.obs export``.  When two or more fragments carry final
  metrics snapshots, one merged snapshot (counters summed, gauges
  max-combined, histograms bucket-summed) is appended.
* **Ledger**: rows merge day by day -- integer and float accumulators
  sum, shutdown stage maps add up, ``policy_change`` ORs -- and the
  derived ratios (fraud shares, mean CPC, mainline depth) are
  recomputed from the summed raw fields, exactly as
  :class:`~repro.obs.timeseries.DayLedger` derives them.
* A ``merge.json`` record (schema ``repro.merge/v1``) documents the
  inputs and worker ids; it contains no timestamps, keeping the whole
  output directory reproducible.
"""

from __future__ import annotations

import json
from pathlib import Path

from .export import worker_sort_key
from .progress import load_progress
from .sink import TELEMETRY_NAME
from .timeseries import (
    DAYLEDGER_NAME,
    _MARKET_FLOAT_FIELDS,
    _MARKET_INT_FIELDS,
    load_rows,
)
from .trace import DEFAULT_WORKER_ID

__all__ = ["MERGE_RECORD_NAME", "MergeError", "merge_runs"]

#: Audit record written next to the merged artifacts.
MERGE_RECORD_NAME = "merge.json"

MERGE_SCHEMA = "repro.merge/v1"


class MergeError(ValueError):
    """A fragment is unreadable or the fragment set is inconsistent."""


class _Fragment:
    """One input run directory's mergeable artifacts."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.telemetry_text: str | None = None
        self.events: list[dict] = []
        self.ledger_rows: list[dict] | None = None
        self.worker: str | None = None

        telemetry = path / TELEMETRY_NAME
        if telemetry.exists():
            self.telemetry_text = telemetry.read_text()
            for lineno, line in enumerate(
                self.telemetry_text.splitlines(), start=1
            ):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise MergeError(
                        f"{telemetry}:{lineno}: malformed telemetry ({exc})"
                    ) from None
                if not isinstance(event, dict):
                    raise MergeError(
                        f"{telemetry}:{lineno}: event is not a JSON object"
                    )
                self.events.append(event)
                if self.worker is None and "w" in event:
                    self.worker = str(event["w"])

        ledger = path / DAYLEDGER_NAME
        if ledger.exists():
            try:
                self.ledger_rows = load_rows(ledger)
            except ValueError as exc:
                raise MergeError(str(exc)) from None

        if self.worker is None:
            progress = load_progress(path)
            if progress and progress.get("worker"):
                self.worker = str(progress["worker"])


def _load_fragments(inputs: list[Path]) -> list[_Fragment]:
    fragments = []
    for path in inputs:
        path = Path(path)
        if not path.is_dir():
            raise MergeError(f"{path}: not a run directory")
        fragments.append(_Fragment(path))
    # Canonical order first (explicit worker id, then directory name),
    # then fill in ids for fragments that never declared one -- the
    # assignment is positional over the sorted order, so it does not
    # depend on the order the caller passed the inputs in.
    fragments.sort(
        key=lambda f: (
            worker_sort_key(f.worker) if f.worker else ("", -1),
            f.path.name,
        )
    )
    taken = {f.worker for f in fragments if f.worker}
    next_free = 0
    for fragment in fragments:
        if fragment.worker is None:
            while f"w{next_free}" in taken:
                next_free += 1
            fragment.worker = f"w{next_free}"
            taken.add(fragment.worker)
    fragments.sort(key=lambda f: (worker_sort_key(f.worker), f.path.name))
    workers = [f.worker for f in fragments]
    if len(set(workers)) != len(workers):
        raise MergeError(f"duplicate worker ids across fragments: {workers}")
    return fragments


def _merge_telemetry(fragments: list[_Fragment]) -> str | None:
    """Concatenate event streams with resume-style span-id offsets."""
    with_events = [f for f in fragments if f.telemetry_text is not None]
    if not with_events:
        return None
    if len(with_events) == 1 and len(fragments) == 1:
        # Identity merge: the canonical unsplit layout, byte-for-byte.
        return with_events[0].telemetry_text

    lines: list[str] = []
    offset = 0
    snapshots: list[tuple[str, dict, float]] = []
    for fragment in with_events:
        max_id = offset
        last_snapshot: tuple[dict, float] | None = None
        for event in fragment.events:
            event = dict(event)
            if event.get("kind") == "span" and isinstance(
                event.get("id"), int
            ):
                event["id"] += offset
                if event.get("parent") is not None:
                    event["parent"] += offset
                max_id = max(max_id, event["id"])
            if "w" not in event:
                event["w"] = fragment.worker
            if event.get("kind") == "metrics" and isinstance(
                event.get("data"), dict
            ):
                last_snapshot = (event["data"], float(event.get("t", 0.0)))
            lines.append(
                json.dumps(event, separators=(",", ":"), default=str)
            )
        offset = max_id
        if last_snapshot is not None:
            snapshots.append((fragment.worker, *last_snapshot))

    if len(snapshots) >= 2:
        lines.append(
            json.dumps(
                {
                    "t": round(max(t for _, _, t in snapshots), 6),
                    "kind": "metrics",
                    "data": _merge_snapshots(snapshots),
                },
                separators=(",", ":"),
            )
        )
    return "\n".join(lines) + "\n"


def _merge_snapshots(snapshots: list[tuple[str, dict, float]]) -> dict:
    """Combine per-worker final metrics snapshots into one."""
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for _, data, _ in snapshots:
        for name, value in (data.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in (data.get("gauges") or {}).items():
            gauges[name] = max(gauges.get(name, value), value)
        for name, hist in (data.get("histograms") or {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "buckets": list(hist.get("buckets", ())),
                    "counts": list(hist.get("counts", ())),
                    "count": hist.get("count", 0),
                    "sum": hist.get("sum", 0.0),
                }
            elif merged["buckets"] == list(hist.get("buckets", ())):
                merged["counts"] = [
                    a + b for a, b in zip(merged["counts"], hist["counts"])
                ]
                merged["count"] += hist.get("count", 0)
                merged["sum"] = round(merged["sum"] + hist.get("sum", 0.0), 6)
    return {
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "histograms": {name: histograms[name] for name in sorted(histograms)},
        "workers": [worker for worker, _, _ in snapshots],
    }


def _merge_ledgers(fragments: list[_Fragment]) -> str | None:
    """Day-wise sum of ledger fragments, derived fields recomputed."""
    with_rows = [f for f in fragments if f.ledger_rows is not None]
    if not with_rows:
        return None
    if len(with_rows) == 1 and len(fragments) == 1:
        return (with_rows[0].path / DAYLEDGER_NAME).read_text()

    by_day: dict[int, list[dict]] = {}
    for fragment in with_rows:
        for row in fragment.ledger_rows:
            by_day.setdefault(int(row["day"]), []).append(row)

    lines: list[str] = []
    for day in sorted(by_day):
        rows = by_day[day]
        merged: dict = {
            "day": day,
            "registrations_legit": sum(
                int(r.get("registrations_legit", 0)) for r in rows
            ),
            "registrations_fraud": sum(
                int(r.get("registrations_fraud", 0)) for r in rows
            ),
        }
        shutdowns: dict[str, int] = {}
        for row in rows:
            for stage, count in (row.get("shutdowns") or {}).items():
                shutdowns[str(stage)] = shutdowns.get(str(stage), 0) + int(count)
        merged["shutdowns"] = dict(sorted(shutdowns.items()))
        if any(row.get("policy_change") for row in rows):
            merged["policy_change"] = True
        market_rows = [r for r in rows if "rows" in r]
        if market_rows:
            for name in _MARKET_INT_FIELDS:
                merged[name] = sum(int(r.get(name, 0)) for r in market_rows)
            for name in _MARKET_FLOAT_FIELDS:
                merged[name] = float(
                    sum(float(r.get(name, 0.0)) for r in market_rows)
                )
            clicks = merged["clicks"]
            spend = merged["spend"]
            auctions = merged["auctions"]
            merged["fraud_click_share"] = (
                merged["fraud_clicks"] / clicks if clicks else 0.0
            )
            merged["fraud_spend_share"] = (
                merged["fraud_spend"] / spend if spend else 0.0
            )
            merged["mean_cpc"] = spend / clicks if clicks else 0.0
            merged["mainline_depth"] = (
                merged["mainline_slots"] / auctions if auctions else 0.0
            )
        lines.append(
            json.dumps(merged, sort_keys=True, separators=(",", ":"))
        )
    return "\n".join(lines) + "\n"


def merge_runs(inputs: list[str | Path], out_dir: str | Path) -> dict:
    """Merge per-worker fragments into ``out_dir``; returns a summary.

    The summary (also persisted as ``merge.json``) records the worker
    order, input directories, and artifact sizes.  Raises
    :class:`MergeError` on unreadable fragments or duplicate worker
    ids.
    """
    from ..records.atomic import atomic_write_text

    fragments = _load_fragments([Path(p) for p in inputs])
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    telemetry_text = _merge_telemetry(fragments)
    if telemetry_text is not None:
        atomic_write_text(out_dir / TELEMETRY_NAME, telemetry_text)
    ledger_text = _merge_ledgers(fragments)
    if ledger_text is not None:
        atomic_write_text(out_dir / DAYLEDGER_NAME, ledger_text)

    record = {
        "schema": MERGE_SCHEMA,
        "workers": [f.worker for f in fragments],
        "inputs": [str(f.path) for f in fragments],
        "telemetry_events": (
            sum(len(f.events) for f in fragments)
            if telemetry_text is not None
            else 0
        ),
        "ledger_days": (
            len(ledger_text.splitlines()) if ledger_text is not None else 0
        ),
    }
    atomic_write_text(
        out_dir / MERGE_RECORD_NAME,
        json.dumps(record, indent=2, sort_keys=True) + "\n",
    )
    return record


def default_worker_id() -> str:
    """Convenience re-export for callers labelling fragments."""
    return DEFAULT_WORKER_ID
