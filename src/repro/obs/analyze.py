"""Deterministic anomaly and change-point detection over the day ledger.

The write side of :mod:`repro.obs` records a per-day marketplace-health
timeseries (``dayledger.jsonl``); this module is the read side that
*interprets* it.  Three detectors, all zero-dependency arithmetic on
the ledger rows (no numpy, no RNG, no clocks -- same rows in, same
document out, byte for byte):

* **point anomalies** -- per series, a rolling-median + MAD robust
  z-score over a trailing window.  A day whose value sits more than
  ``z_threshold`` scaled median-absolute-deviations away from the
  trailing median is flagged.  This is the Clicktok framing (fraud
  detection as anomaly detection over traffic timeseries) pointed at
  our own health series.
* **level shifts** -- per series, a two-window mean-shift detector:
  for every candidate day the means of the ``window`` days before and
  after are compared, normalized by the robust standard error of the
  mean difference (pooled MAD-based scale times ``sqrt(2/window)``).
  Local maxima of that score above ``shift_threshold`` are reported as
  change points -- the Year-2 policy ban (the paper's Figure-3 regime
  shift) surfaces here as a level shift in the shutdown and fraud-share
  series.
* **policy effects** -- for every ``policy_change`` day in the ledger,
  pre/post window means per series over the same ±28-day window
  :mod:`repro.obs.diff` uses (:data:`~repro.obs.diff.POLICY_WINDOW_DAYS`,
  computed by the very same helper), so ``analyze``'s effect sizes are
  numerically identical to ``repro.obs diff``'s policy-window means.

Anomalies that land inside the post-policy settling window of a
recorded policy change are marked ``near_policy`` and *excluded* from
the ``--fail-on anomalies=N`` gate: the policy-day shutdown spike is
the paper's headline event, not a data-quality problem.  Everything
else counts as unexplained.

``python -m repro.obs analyze <run-dir>`` writes the document to
``<run-dir>/analyze.json`` (schema ``repro.analyze/v1``, atomic write,
byte-deterministic) and prints a text summary; ``--json`` prints the
document instead, ``--out`` redirects the artifact.  Like every reader
in this package the analyzer never perturbs the run: it opens the
ledger read-only and touches no RNG stream
(``tests/obs/test_analyze.py`` asserts the run directory's simulation
artifacts stay byte-identical).
"""

from __future__ import annotations

import json
from pathlib import Path

from .timeseries import DAYLEDGER_NAME, load_rows, policy_days, rows_to_series

__all__ = [
    "ANALYZE_NAME",
    "ANALYZE_SCHEMA",
    "DEFAULT_WINDOW",
    "DEFAULT_Z_THRESHOLD",
    "DEFAULT_SHIFT_THRESHOLD",
    "rolling_mad_scores",
    "detect_anomalies",
    "detect_level_shifts",
    "policy_effects",
    "analyze_rows",
    "analyze_run",
    "render_analysis",
]

#: Analysis artifact name inside a run directory.
ANALYZE_NAME = "analyze.json"
ANALYZE_SCHEMA = "repro.analyze/v1"

#: Trailing/flanking window length, in days.  Matches the diff's
#: ±28-day policy-window convention so every windowed statistic in the
#: package talks about the same four weeks.
DEFAULT_WINDOW = 28

#: Robust z-score above which a day is a point anomaly.  3.5 is the
#: classic Iglewicz-Hoaglin cutoff for modified z-scores.
DEFAULT_Z_THRESHOLD = 3.5

#: Normalized mean-shift score above which a candidate day is a level
#: shift.  The score is a two-sample z on window *means* (normalized by
#: the robust standard error, not per-day deviation), so under i.i.d.
#: noise it is roughly standard normal -- 8.0 keeps week-scale drift
#: out while regime changes (startup growth, the Year-2 ban) score
#: comfortably above it.
DEFAULT_SHIFT_THRESHOLD = 8.0

#: Scale factor making the MAD a consistent estimator of the standard
#: deviation under normality (Iglewicz & Hoaglin's 0.6745).
_MAD_SCALE = 0.6745

#: Same role for the mean absolute deviation, the fallback scale when
#: the MAD is 0 (sparse count series -- fraud clicks on a mostly-quiet
#: ledger are 0 on more than half the days, so their MAD vanishes and
#: every nonzero day would otherwise score infinite).
_MEANAD_SCALE = 0.7979

#: Days after a policy change during which anomalies are "explained by
#: policy" (the post-window the effect sizes are computed over).
_POLICY_SETTLE_DAYS = DEFAULT_WINDOW


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _mad(values: list[float], center: float) -> float:
    return _median([abs(v - center) for v in values])


def _robust_scale(values: list[float], center: float) -> float:
    """MAD-based deviation scale with the Iglewicz-Hoaglin fallback.

    Returns the scaled MAD when it is nonzero, else the scaled mean
    absolute deviation, else 0.0 (an exactly-constant window).  Both
    are normalized to estimate one standard deviation, so callers
    divide by this directly.
    """
    mad = _mad(values, center)
    if mad > 0.0:
        return mad / _MAD_SCALE
    mean_ad = sum(abs(v - center) for v in values) / len(values)
    if mean_ad > 0.0:
        return mean_ad / _MEANAD_SCALE
    return 0.0


def rolling_mad_scores(
    values: list[float], window: int = DEFAULT_WINDOW
) -> list[tuple[float, float, float] | None]:
    """Per-day ``(z, median, mad)`` over a trailing window.

    Day ``i`` is scored against the ``window`` days strictly before it;
    the first ``window`` days have no full trailing context and score
    ``None`` (a detector that judged day 3 against 2 neighbours would
    flag startup transients forever).  The scale is the window's MAD
    with the mean-absolute-deviation fallback (:func:`_robust_scale`);
    only an *exactly constant* window scores a deviation as infinite --
    on a flat series even a tiny move is maximally surprising.
    """
    scores: list[tuple[float, float, float] | None] = []
    for i, value in enumerate(values):
        if i < window:
            scores.append(None)
            continue
        context = values[i - window : i]
        med = _median(context)
        scale = _robust_scale(context, med)
        if scale == 0.0:
            z = 0.0 if value == med else float("inf")
        else:
            z = (value - med) / scale
        scores.append((z, med, scale))
    return scores


def detect_anomalies(
    values: list[float],
    window: int = DEFAULT_WINDOW,
    z_threshold: float = DEFAULT_Z_THRESHOLD,
) -> list[dict]:
    """Days whose robust z-score exceeds ``z_threshold`` in magnitude."""
    anomalies: list[dict] = []
    for day, scored in enumerate(rolling_mad_scores(values, window)):
        if scored is None:
            continue
        z, med, _ = scored
        if abs(z) > z_threshold:
            anomalies.append(
                {
                    "day": day,
                    "value": round(values[day], 6),
                    "z": round(z, 3) if z not in (float("inf"), float("-inf"))
                    else ("inf" if z > 0 else "-inf"),
                    "baseline_median": round(med, 6),
                }
            )
    return anomalies


def detect_level_shifts(
    values: list[float],
    window: int = DEFAULT_WINDOW,
    shift_threshold: float = DEFAULT_SHIFT_THRESHOLD,
) -> list[dict]:
    """Change points where the windowed mean jumps between regimes.

    For every day ``t`` with a full ``window`` on each side, the score
    is a robust two-sample z on the window *means*:
    ``|mean(post) - mean(pre)| / se`` where ``se`` is the averaged
    robust scale of both windows (:func:`_robust_scale`: MAD with
    mean-AD fallback, each around its own median) scaled by
    ``sqrt(2 / window)`` -- the standard error of a difference of two
    ``window``-day means, so comparable day-scale noise scores ~1
    regardless of window length.  The ``se`` is floored by 1% of the
    jump itself, capping the score at 100: a regime shift on an
    exactly-constant series (both scales 0) still scores large but
    finite instead of exploding toward an epsilon floor.  Scores above
    ``shift_threshold`` are non-maximum-suppressed within ``window``
    days so one regime change reports one day.
    """
    n = len(values)
    se_factor = (2.0 / window) ** 0.5
    scores: list[tuple[int, float, float, float]] = []
    for t in range(window, n - window + 1):
        pre = values[t - window : t]
        post = values[t : t + window]
        pre_mean = sum(pre) / len(pre)
        post_mean = sum(post) / len(post)
        jump = abs(post_mean - pre_mean)
        pooled = (
            _robust_scale(pre, _median(pre))
            + _robust_scale(post, _median(post))
        ) / 2.0
        se = max(pooled * se_factor, jump / 100.0, 1e-12)
        score = jump / se
        if score > shift_threshold:
            scores.append((t, score, pre_mean, post_mean))

    shifts: list[dict] = []
    for t, score, pre_mean, post_mean in scores:
        better_neighbour = any(
            other_t != t
            and abs(other_t - t) < window
            and (other_score, -other_t) > (score, -t)
            for other_t, other_score, _, _ in scores
        )
        if better_neighbour:
            continue
        shifts.append(
            {
                "day": t,
                "score": round(score, 3),
                "pre_mean": round(pre_mean, 6),
                "post_mean": round(post_mean, 6),
            }
        )
    return shifts


def policy_effects(rows: list[dict]) -> dict[str, dict[str, dict]]:
    """Per-policy-day pre/post window means and effect sizes.

    Reuses :func:`repro.obs.diff._window_means` (and its
    ``POLICY_WINDOW_DAYS`` constant), so the means here are numerically
    identical to the ``a:``/``b:`` policy-window means ``repro.obs
    diff`` prints for the same ledger.
    """
    # Imported lazily: diff imports registry, and registry imports this
    # module's ANALYZE_NAME -- a module-level import would be a cycle.
    from .diff import _window_means

    effects: dict[str, dict[str, dict]] = {}
    series = rows_to_series(rows)
    for day in policy_days(rows):
        per_series: dict[str, dict] = {}
        for name, (pre, post) in sorted(_window_means(series, day).items()):
            delta = post - pre
            per_series[name] = {
                "pre_mean": pre,
                "post_mean": post,
                "delta": delta,
                "relative": (
                    delta / abs(pre) if pre != 0.0 else (0.0 if delta == 0.0 else None)
                ),
            }
        effects[str(day)] = per_series
    return effects


def _near_policy(day: int, policy: list[int], symmetric: bool = False) -> bool:
    """True when ``day`` falls in a policy day's settling window.

    Point anomalies settle *after* the policy day (``[p, p + settle]``);
    level shifts check symmetrically (``symmetric=True``): the
    two-window detector's score peaks anywhere its post window overlaps
    the regime change, up to ``window`` days before the policy day
    itself.
    """
    if symmetric:
        return any(abs(day - p) <= _POLICY_SETTLE_DAYS for p in policy)
    return any(0 <= day - p <= _POLICY_SETTLE_DAYS for p in policy)


def analyze_rows(
    rows: list[dict],
    window: int = DEFAULT_WINDOW,
    z_threshold: float = DEFAULT_Z_THRESHOLD,
    shift_threshold: float = DEFAULT_SHIFT_THRESHOLD,
) -> dict:
    """Full analysis document for one ledger's rows (no I/O)."""
    series = rows_to_series(rows)
    policy = policy_days(rows)

    anomalies: dict[str, list[dict]] = {}
    shifts: dict[str, list[dict]] = {}
    total = unexplained = 0
    for name in sorted(series):
        values = series[name]
        found = detect_anomalies(values, window, z_threshold)
        for anomaly in found:
            anomaly["near_policy"] = _near_policy(int(anomaly["day"]), policy)
            total += 1
            if not anomaly["near_policy"]:
                unexplained += 1
        if found:
            anomalies[name] = found
        shifted = detect_level_shifts(values, window, shift_threshold)
        for shift in shifted:
            shift["near_policy"] = _near_policy(
                int(shift["day"]), policy, symmetric=True
            )
        if shifted:
            shifts[name] = shifted

    return {
        "schema": ANALYZE_SCHEMA,
        "days": len(rows),
        "params": {
            "window": window,
            "z_threshold": z_threshold,
            "shift_threshold": shift_threshold,
        },
        "policy_days": policy,
        "anomalies": anomalies,
        "level_shifts": shifts,
        "policy_effects": policy_effects(rows),
        "totals": {
            "anomalies": total,
            "unexplained_anomalies": unexplained,
            "level_shifts": sum(len(s) for s in shifts.values()),
        },
    }


def analyze_run(run_dir: str | Path, **params) -> dict:
    """Analyze one run directory's ledger.

    Raises ``FileNotFoundError`` when the directory or its
    ``dayledger.jsonl`` is missing -- unlike the registry this command
    produces an artifact, so a silent no-op would masquerade as a
    healthy analysis.
    """
    run_dir = Path(run_dir)
    ledger = run_dir / DAYLEDGER_NAME
    if not ledger.exists():
        raise FileNotFoundError(f"{run_dir}: no {DAYLEDGER_NAME} to analyze")
    # No ``source`` field: the artifact's bytes must be a function of
    # the ledger alone, and two runs with identical ledgers live in
    # differently-named directories (CI cmp-gates exactly that pair).
    return analyze_rows(load_rows(ledger), **params)


def analysis_to_text(document: dict, source: str | Path | None = None) -> str:
    """Human-readable summary of an analysis document."""
    header = "ledger analysis" + (f": {source}" if source else "")
    lines = [header]
    totals = document["totals"]
    lines.append(
        f"{document['days']} day(s): {totals['anomalies']} anomal"
        f"{'y' if totals['anomalies'] == 1 else 'ies'} "
        f"({totals['unexplained_anomalies']} unexplained), "
        f"{totals['level_shifts']} level shift(s)"
    )
    if document["policy_days"]:
        days = ", ".join(str(d) for d in document["policy_days"])
        lines.append(f"policy change day(s): {days}")

    if document["level_shifts"]:
        lines.append("")
        lines.append("level shifts (two-window mean jump):")
        for name, shifts in document["level_shifts"].items():
            for shift in shifts:
                tag = "  [policy]" if shift["near_policy"] else ""
                lines.append(
                    f"  {name:<28} day {shift['day']:>4}  "
                    f"{shift['pre_mean']:.4g} -> {shift['post_mean']:.4g}  "
                    f"(score {shift['score']:g}){tag}"
                )

    if document["anomalies"]:
        lines.append("")
        lines.append("point anomalies (|robust z| > threshold):")
        for name, anomalies in document["anomalies"].items():
            for anomaly in anomalies:
                tag = "  [policy]" if anomaly["near_policy"] else ""
                lines.append(
                    f"  {name:<28} day {anomaly['day']:>4}  "
                    f"value {anomaly['value']:g} "
                    f"(median {anomaly['baseline_median']:g}, "
                    f"z {anomaly['z']}){tag}"
                )

    effects = document["policy_effects"]
    if effects:
        lines.append("")
        lines.append(
            "policy effects (±28d window means, matching repro.obs diff):"
        )
        key_series = (
            "shutdowns.policy_change",
            "fraud_click_share",
            "fraud_spend_share",
            "registrations_fraud",
            "spend",
        )
        for day, per_series in effects.items():
            lines.append(f"  day {day}:")
            for name in key_series:
                effect = per_series.get(name)
                if effect is None:
                    continue
                rel = effect["relative"]
                rel_text = f" ({rel:+.1%})" if isinstance(rel, float) else ""
                lines.append(
                    f"    {name:<26} {effect['pre_mean']:.4g} -> "
                    f"{effect['post_mean']:.4g}{rel_text}"
                )
    if not (document["anomalies"] or document["level_shifts"] or effects):
        lines.append("nothing unusual: no anomalies, shifts, or policy days")
    return "\n".join(lines)


#: Backwards-compatible alias used by the dashboard.
render_analysis = analysis_to_text


def analysis_json(document: dict) -> str:
    """Canonical byte-deterministic serialization of a document."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def parse_analyze_fail_on(specs: list[str]) -> dict[str, float]:
    """Parse ``--fail-on`` rules for ``analyze`` (``anomalies=N``,
    ``level_shifts=N``); raises ``ValueError`` on malformed input."""
    known = ("anomalies", "level_shifts")
    rules: dict[str, float] = {}
    for spec in specs:
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, raw = part.partition("=")
            if not sep:
                raise ValueError(f"--fail-on rule {part!r} must be name=N")
            name = name.strip()
            if name not in known:
                raise ValueError(
                    f"unknown --fail-on rule {name!r} (known: "
                    f"{', '.join(known)})"
                )
            try:
                rules[name] = float(raw)
            except ValueError:
                raise ValueError(
                    f"--fail-on {name}: threshold {raw!r} is not a number"
                ) from None
    return rules


def evaluate_analyze_fail_on(document: dict, rules: dict[str, float]) -> list[str]:
    """Violation messages for an analysis document under the gate rules.

    ``anomalies=N`` budgets *unexplained* anomalies only -- a spike
    inside a policy day's settling window is the experiment working,
    not a regression.  ``level_shifts=N`` budgets shifts away from
    policy days the same way.
    """
    violations: list[str] = []
    totals = document["totals"]
    if "anomalies" in rules:
        unexplained = totals["unexplained_anomalies"]
        if unexplained > rules["anomalies"]:
            violations.append(
                f"anomalies: {unexplained} unexplained anomal"
                f"{'y' if unexplained == 1 else 'ies'} "
                f"(> {rules['anomalies']:g}; {totals['anomalies']} total "
                f"incl. policy-window days)"
            )
    if "level_shifts" in rules:
        unexplained_shifts = sum(
            1
            for shifts in document["level_shifts"].values()
            for shift in shifts
            if not shift["near_policy"]
        )
        if unexplained_shifts > rules["level_shifts"]:
            violations.append(
                f"level_shifts: {unexplained_shifts} shift(s) away from "
                f"policy days (> {rules['level_shifts']:g})"
            )
    return violations
