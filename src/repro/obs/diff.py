"""Cross-run comparison: ``python -m repro.obs diff <run-a> <run-b>``.

Compares two checkpoint-runner run directories along every axis the
run artifacts record:

* **phase timings** -- total seconds per phase span (from each run's
  ``telemetry.jsonl``), with the relative regression of B against A;
* **final metrics** -- the last cumulative counter snapshot of each
  run, flagging counters whose values differ;
* **validation** -- the pass/miss sets (``validation.json`` or the
  report text), flagging targets that passed in A but miss in B;
* **day-ledger series** -- the per-day marketplace-health timeseries
  (``dayledger.jsonl``), reporting the maximum relative divergence per
  series and, when either run records a policy change, the pre/post
  policy-window means so regime shifts can be compared across runs.

``--fail-on`` turns the comparison into a CI gate.  Rules (repeatable,
comma-separable):

``drift=FRAC``
    Fail if any ledger series diverges relatively by more than
    ``FRAC`` on any day (``drift=0`` demands byte-level agreement --
    what a fresh vs. resumed same-seed pair must satisfy).
``phase_time=FRAC``
    Fail if any phase of B took more than ``(1 + FRAC)`` times its A
    duration (``phase_time=0.25`` = "no phase regressed by >25%").
``validation=N``
    Fail if more than ``N`` targets that passed in A miss in B.
``degraded=N``
    Fail if run B degraded more than ``N`` auxiliary writes: its final
    ``io.degraded`` + ``io.giveups`` counters (``degraded=0`` demands
    a run that never lost a telemetry or ledger flush).
``rss=FRAC``
    Fail if run B's overall peak RSS grew by more than ``FRAC``
    relative to A's, from the resource envelope each run's telemetry
    records (``rss=0.2`` = "no more than 20% extra resident memory").

Exit codes: 0 -- compared (and every rule held); 1 -- at least one
rule violated; 2 -- a run directory was unreadable or a rule
malformed.  A rule whose inputs are missing on *both* sides is skipped
(nothing to compare); missing on one side only is a violation of that
rule, because "the artifact disappeared" is itself a regression.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from .registry import (
    PHASE_NAMES,
    last_metrics,
    load_validation,
    phase_totals,
)
from .report import last_resources, load_events, report_path
from .timeseries import DAYLEDGER_NAME, load_rows, policy_days, rows_to_series

__all__ = [
    "DIFF_SCHEMA",
    "RunData",
    "RunDiff",
    "load_run",
    "diff_runs",
    "diff_json",
    "parse_fail_on",
    "evaluate_fail_on",
    "render_diff",
]

DIFF_SCHEMA = "repro.diff/v1"

#: Days on each side of a policy change over which window means are
#: computed (four weeks -- matches the paper's quarter-scale framing of
#: the Year-2 regime shift without washing it out).
POLICY_WINDOW_DAYS = 28

#: Ledger series whose day totals are compared under ``drift=``.
#: Derived ratios are recomputed from these, so comparing the raw sums
#: plus the derived values adds no information but costs nothing.


@dataclass
class RunData:
    """Everything the diff reads from one run directory."""

    path: Path
    phases: dict[str, float] | None
    metrics: dict | None
    validation: dict | None
    ledger_rows: list[dict] | None
    #: On-disk impression chunk format, from ``MANIFEST.json``
    #: (``"npz"`` for pre-columnar manifests, ``None`` without a
    #: readable manifest).  Informational only: the diff never reads
    #: chunk bytes, so runs in different formats stay fully comparable.
    chunk_format: str | None = None
    #: Resource envelope (:mod:`repro.obs.resources` summary) from the
    #: run's telemetry, ``None`` when the run recorded none.
    resources: dict | None = None
    notes: list[str] = field(default_factory=list)


@dataclass
class RunDiff:
    """The comparison of two runs, axis by axis."""

    a: RunData
    b: RunData
    #: phase -> (seconds_a, seconds_b), phases present in either run.
    phases: dict[str, tuple[float | None, float | None]]
    #: counter -> (value_a, value_b), only where the values differ.
    counter_deltas: dict[str, tuple[float, float]]
    #: targets that passed in A but miss (or vanished) in B.
    new_misses: list[str]
    #: series name -> max relative divergence across days.
    series_divergence: dict[str, float]
    #: policy day -> series -> {"a": (pre, post), "b": (pre, post)}.
    policy_windows: dict[int, dict[str, dict[str, tuple[float, float]]]]


def load_run(run_dir: str | Path) -> RunData:
    """Read one run directory's comparable artifacts (best-effort)."""
    run_dir = Path(run_dir)
    if not run_dir.is_dir():
        raise FileNotFoundError(f"{run_dir}: not a run directory")
    data = RunData(
        path=run_dir, phases=None, metrics=None, validation=None,
        ledger_rows=None,
    )
    telemetry = report_path(run_dir)
    if telemetry.exists():
        try:
            events = load_events(telemetry)
            data.phases = phase_totals(events)
            data.metrics = last_metrics(events)
            data.resources = last_resources(events)
        except ValueError as exc:
            data.notes.append(f"telemetry unreadable: {exc}")
    else:
        data.notes.append("no telemetry.jsonl")
    manifest_path = run_dir / "MANIFEST.json"
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text())
            if isinstance(manifest, dict):
                data.chunk_format = str(manifest.get("chunk_format", "npz"))
        except (OSError, ValueError):
            data.notes.append("manifest unreadable")
    data.validation = load_validation(run_dir)
    if data.validation is None:
        data.notes.append("no validation artifact")
    ledger = run_dir / DAYLEDGER_NAME
    if ledger.exists():
        try:
            data.ledger_rows = load_rows(ledger)
        except ValueError as exc:
            data.notes.append(f"ledger unreadable: {exc}")
    else:
        data.notes.append(f"no {DAYLEDGER_NAME}")
    return data


def _relative_divergence(a: float, b: float) -> float:
    if a == b:
        return 0.0
    scale = max(abs(a), abs(b))
    if scale == 0.0 or math.isnan(a) or math.isnan(b):
        return math.inf
    return abs(a - b) / scale


def _window_means(
    series: dict[str, list[float]], day: int
) -> dict[str, tuple[float, float]]:
    """(pre, post) window means per series around a policy day."""
    out: dict[str, tuple[float, float]] = {}
    for name, values in series.items():
        pre = values[max(0, day - POLICY_WINDOW_DAYS) : day]
        post = values[day : day + POLICY_WINDOW_DAYS]
        out[name] = (
            float(sum(pre) / len(pre)) if pre else 0.0,
            float(sum(post) / len(post)) if post else 0.0,
        )
    return out


def diff_runs(a: RunData, b: RunData) -> RunDiff:
    """Compare two loaded runs along every recorded axis."""
    phases: dict[str, tuple[float | None, float | None]] = {}
    for name in PHASE_NAMES:
        in_a = a.phases.get(name) if a.phases else None
        in_b = b.phases.get(name) if b.phases else None
        if in_a is not None or in_b is not None:
            phases[name] = (in_a, in_b)

    counter_deltas: dict[str, tuple[float, float]] = {}
    counters_a = (a.metrics or {}).get("counters") or {}
    counters_b = (b.metrics or {}).get("counters") or {}
    for name in sorted({*counters_a, *counters_b}):
        va = float(counters_a.get(name, 0))
        vb = float(counters_b.get(name, 0))
        if va != vb:
            counter_deltas[name] = (va, vb)

    new_misses: list[str] = []
    if a.validation is not None and b.validation is not None:
        ok_b = set(b.validation["ok"])
        new_misses = [name for name in a.validation["ok"] if name not in ok_b]

    series_divergence: dict[str, float] = {}
    policy_windows: dict[int, dict] = {}
    if a.ledger_rows is not None and b.ledger_rows is not None:
        series_a = rows_to_series(a.ledger_rows)
        series_b = rows_to_series(b.ledger_rows)
        n_days = max(len(a.ledger_rows), len(b.ledger_rows))
        for name in sorted({*series_a, *series_b}):
            va = series_a.get(name, [])
            vb = series_b.get(name, [])
            worst = 0.0
            for day in range(n_days):
                xa = va[day] if day < len(va) else 0.0
                xb = vb[day] if day < len(vb) else 0.0
                worst = max(worst, _relative_divergence(xa, xb))
            series_divergence[name] = worst
        if len(a.ledger_rows) != len(b.ledger_rows):
            series_divergence["__days__"] = math.inf
        for day in sorted(
            {*policy_days(a.ledger_rows), *policy_days(b.ledger_rows)}
        ):
            policy_windows[day] = {
                name: {
                    "a": means_a,
                    "b": _window_means(series_b, day).get(name, (0.0, 0.0)),
                }
                for name, means_a in _window_means(series_a, day).items()
            }

    return RunDiff(
        a=a,
        b=b,
        phases=phases,
        counter_deltas=counter_deltas,
        new_misses=new_misses,
        series_divergence=series_divergence,
        policy_windows=policy_windows,
    )


# ----------------------------------------------------------------------
# --fail-on rules
# ----------------------------------------------------------------------

_RULES = ("drift", "phase_time", "validation", "degraded", "rss")


def parse_fail_on(specs: list[str]) -> dict[str, float]:
    """Parse ``--fail-on`` rule strings into ``{rule: threshold}``.

    Accepts repeated flags and comma-separated lists; raises
    ``ValueError`` on an unknown rule or malformed threshold.
    """
    rules: dict[str, float] = {}
    for spec in specs:
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, raw = part.partition("=")
            if not sep:
                raise ValueError(
                    f"--fail-on rule {part!r} must be name=threshold"
                )
            name = name.strip()
            if name not in _RULES:
                raise ValueError(
                    f"unknown --fail-on rule {name!r} "
                    f"(known: {', '.join(_RULES)})"
                )
            try:
                rules[name] = float(raw)
            except ValueError:
                raise ValueError(
                    f"--fail-on {name}: threshold {raw!r} is not a number"
                ) from None
    return rules


def evaluate_fail_on(diff: RunDiff, rules: dict[str, float]) -> list[str]:
    """Apply parsed rules to a diff; returns violation messages.

    A rule whose inputs exist in neither run is skipped; inputs present
    in one run but not the other violate the rule (a vanished artifact
    is a regression, not a pass).
    """
    violations: list[str] = []

    if "drift" in rules:
        threshold = rules["drift"]
        has_a = diff.a.ledger_rows is not None
        has_b = diff.b.ledger_rows is not None
        if has_a != has_b:
            missing = diff.b.path if has_a else diff.a.path
            violations.append(
                f"drift: {missing} has no readable {DAYLEDGER_NAME}"
            )
        else:
            for name, divergence in sorted(diff.series_divergence.items()):
                if divergence > threshold:
                    violations.append(
                        f"drift: series {name!r} diverges by "
                        f"{divergence:.3g} > {threshold:g}"
                    )

    if "phase_time" in rules:
        threshold = rules["phase_time"]
        for name, (sec_a, sec_b) in sorted(diff.phases.items()):
            if sec_a is None or sec_b is None or sec_a <= 0:
                continue
            regression = sec_b / sec_a - 1.0
            if regression > threshold:
                violations.append(
                    f"phase_time: {name} regressed "
                    f"{sec_a:.3f}s -> {sec_b:.3f}s "
                    f"(+{regression:.0%} > {threshold:.0%})"
                )

    if "degraded" in rules:
        budget = rules["degraded"]
        metrics_b = diff.b.metrics
        if metrics_b is None:
            # A run whose telemetry sink itself degraded away cannot
            # testify about its own health -- that absence is the
            # violation, same as the other rules' vanished-artifact
            # handling.
            violations.append(
                f"degraded: {diff.b.path} has no readable telemetry to "
                f"prove it ran undegraded"
            )
        else:
            counters_b = metrics_b.get("counters") or {}
            degraded = float(counters_b.get("io.degraded", 0)) + float(
                counters_b.get("io.giveups", 0)
            )
            if degraded > budget:
                violations.append(
                    f"degraded: run b degraded {degraded:g} auxiliary "
                    f"write(s) (io.degraded + io.giveups > {budget:g})"
                )

    if "rss" in rules:
        threshold = rules["rss"]
        peak_a = ((diff.a.resources or {}).get("overall") or {}).get(
            "rss_peak_kb"
        )
        peak_b = ((diff.b.resources or {}).get("overall") or {}).get(
            "rss_peak_kb"
        )
        if peak_a is None and peak_b is None:
            pass  # neither run sampled resources: nothing to compare
        elif peak_a is None or peak_b is None:
            missing = diff.b.path if peak_b is None else diff.a.path
            violations.append(
                f"rss: {missing} has no resource envelope in its telemetry"
            )
        elif peak_a > 0 and peak_b / peak_a - 1.0 > threshold:
            violations.append(
                f"rss: peak RSS grew {peak_a / 1024:.1f}M -> "
                f"{peak_b / 1024:.1f}M "
                f"(+{peak_b / peak_a - 1.0:.0%} > {threshold:.0%})"
            )

    if "validation" in rules:
        budget = rules["validation"]
        has_a = diff.a.validation is not None
        has_b = diff.b.validation is not None
        if has_a and not has_b:
            violations.append(
                f"validation: {diff.b.path} has no validation artifact"
            )
        elif len(diff.new_misses) > budget:
            names = ", ".join(diff.new_misses)
            violations.append(
                f"validation: {len(diff.new_misses)} previously-passing "
                f"target(s) now miss (> {budget:g}): {names}"
            )

    return violations


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------


def _validation_summary(data: RunData) -> dict | None:
    if data.validation is None:
        return None
    return {
        "passed": data.validation["passed"],
        "total": data.validation["total"],
        "miss": sorted(data.validation["miss"]),
    }


def diff_json(
    diff: RunDiff,
    rules: dict[str, float] | None = None,
    violations: list[str] | None = None,
) -> dict:
    """The diff as a machine-readable document (``repro.diff/v1``).

    Same content as :func:`render_diff` -- phase timings, counter
    deltas, validation pass/miss, per-series divergence, policy-window
    means, resource peaks, notes -- plus the evaluated ``--fail-on``
    rules and their violations when a gate ran, so a CI consumer reads
    one artifact instead of scraping stdout.
    """
    phases = {
        name: {
            "a": sec_a,
            "b": sec_b,
            "regression": (
                sec_b / sec_a - 1.0 if sec_a and sec_b and sec_a > 0 else None
            ),
        }
        for name, (sec_a, sec_b) in sorted(diff.phases.items())
    }
    policy_windows = {
        str(day): {
            name: {
                "a": list(windows["a"]),
                "b": list(windows["b"]),
            }
            for name, windows in sorted(per_series.items())
        }
        for day, per_series in sorted(diff.policy_windows.items())
    }

    def peak(data: RunData) -> float | None:
        return ((data.resources or {}).get("overall") or {}).get(
            "rss_peak_kb"
        )

    document = {
        "schema": DIFF_SCHEMA,
        "run_a": str(diff.a.path),
        "run_b": str(diff.b.path),
        "phases_s": phases,
        "counter_deltas": {
            name: {"a": va, "b": vb}
            for name, (va, vb) in sorted(diff.counter_deltas.items())
        },
        "validation": {
            "a": _validation_summary(diff.a),
            "b": _validation_summary(diff.b),
            "new_misses": list(diff.new_misses),
        },
        # inf (day-count mismatch, NaN series) is not valid JSON; keep
        # the document strict-parseable for non-Python consumers.
        "series_divergence": {
            name: (divergence if math.isfinite(divergence) else "inf")
            for name, divergence in sorted(diff.series_divergence.items())
        },
        "policy_windows": policy_windows,
        "rss_peak_kb": {"a": peak(diff.a), "b": peak(diff.b)},
        "chunk_formats": {
            "a": diff.a.chunk_format,
            "b": diff.b.chunk_format,
        },
        "notes": {"a": list(diff.a.notes), "b": list(diff.b.notes)},
    }
    if rules is not None:
        document["fail_on"] = dict(sorted(rules.items()))
        document["violations"] = list(violations or [])
    return document


def render_diff(diff: RunDiff, top_series: int = 12) -> str:
    """Human-readable diff report."""
    lines = [f"run diff: {diff.a.path}  vs  {diff.b.path}", ""]

    lines.append("phase timings (s):")
    if diff.phases:
        for name, (sec_a, sec_b) in diff.phases.items():
            fa = f"{sec_a:.3f}" if sec_a is not None else "-"
            fb = f"{sec_b:.3f}" if sec_b is not None else "-"
            delta = ""
            if sec_a and sec_b:
                delta = f"  ({sec_b / sec_a - 1.0:+.1%})"
            lines.append(f"  {name:<20} {fa:>10}  {fb:>10}{delta}")
    else:
        lines.append("  (no telemetry in either run)")

    lines.append("")
    lines.append("final counters differing:")
    if diff.counter_deltas:
        for name, (va, vb) in diff.counter_deltas.items():
            lines.append(f"  {name:<32} {va:>14g}  {vb:>14g}")
    else:
        lines.append("  (none)")

    lines.append("")
    lines.append("validation:")
    for label, data in (("a", diff.a.validation), ("b", diff.b.validation)):
        if data is None:
            lines.append(f"  {label}: no validation artifact")
        else:
            lines.append(f"  {label}: {data['passed']}/{data['total']} in band")
    if diff.new_misses:
        lines.append(f"  newly missing in b: {', '.join(diff.new_misses)}")

    lines.append("")
    lines.append("day-ledger series (max relative divergence):")
    if diff.series_divergence:
        ranked = sorted(
            diff.series_divergence.items(), key=lambda kv: -kv[1]
        )
        shown = 0
        for name, divergence in ranked:
            if shown >= top_series and divergence == 0.0:
                break
            lines.append(f"  {name:<28} {divergence:.4g}")
            shown += 1
        zeros = sum(1 for _, d in ranked if d == 0.0)
        if zeros and shown < len(ranked):
            lines.append(f"  ... {len(ranked) - shown} more series identical")
    else:
        lines.append("  (no ledger in one or both runs)")

    if diff.policy_windows:
        lines.append("")
        lines.append(
            f"policy-change windows (+/-{POLICY_WINDOW_DAYS}d means, "
            f"pre -> post):"
        )
        key_series = (
            "fraud_click_share",
            "fraud_spend_share",
            "registrations_fraud",
            "spend",
        )
        for day, per_series in diff.policy_windows.items():
            lines.append(f"  day {day}:")
            for name in key_series:
                windows = per_series.get(name)
                if windows is None:
                    continue
                (pa, qa), (pb, qb) = windows["a"], windows["b"]
                lines.append(
                    f"    {name:<22} a: {pa:.4g} -> {qa:.4g}   "
                    f"b: {pb:.4g} -> {qb:.4g}"
                )

    peak_a = ((diff.a.resources or {}).get("overall") or {}).get(
        "rss_peak_kb"
    )
    peak_b = ((diff.b.resources or {}).get("overall") or {}).get(
        "rss_peak_kb"
    )
    if peak_a is not None or peak_b is not None:
        fa = f"{peak_a / 1024:.1f}M" if peak_a is not None else "-"
        fb = f"{peak_b / 1024:.1f}M" if peak_b is not None else "-"
        delta = ""
        if peak_a and peak_b:
            delta = f"  ({peak_b / peak_a - 1.0:+.1%})"
        lines.append("")
        lines.append(f"peak RSS: {fa:>10}  {fb:>10}{delta}")

    notes = [f"a: {n}" for n in diff.a.notes] + [
        f"b: {n}" for n in diff.b.notes
    ]
    if (
        diff.a.chunk_format is not None
        and diff.b.chunk_format is not None
        and diff.a.chunk_format != diff.b.chunk_format
    ):
        notes.append(
            f"chunk formats differ (a: {diff.a.chunk_format}, "
            f"b: {diff.b.chunk_format}); the diff never reads chunk "
            f"bytes, so every axis above is format-independent"
        )
    if notes:
        lines.append("")
        lines.append("notes:")
        lines.extend(f"  {note}" for note in notes)
    return "\n".join(lines)
