"""Package-wide logging setup.

One idempotent entry point, :func:`setup_logging`, configures the
``repro`` logger tree with a stderr handler so CLI diagnostics and
:class:`~repro.obs.sink.LogSink` telemetry share a single, consistent
channel.  User-facing CLI *output* (reports, summaries) stays on
stdout via ``print``; everything diagnostic goes through ``logging``
to stderr -- that is the package convention the ``__main__`` modules
follow.

The handler resolves ``sys.stderr`` at emit time rather than capturing
it at construction, so redirection (including pytest's ``capsys``)
always sees the messages.  The default level is INFO, overridable with
the ``REPRO_LOG_LEVEL`` environment variable or the ``level``
argument.
"""

from __future__ import annotations

import logging
import os
import sys

__all__ = ["LOG_LEVEL_ENV", "setup_logging", "get_logger"]

LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: Marker attribute identifying the handler this module installed.
_HANDLER_MARK = "_repro_obs_handler"


class _DynamicStderrHandler(logging.StreamHandler):
    """StreamHandler bound to the *current* ``sys.stderr``."""

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value):  # StreamHandler.setStream compatibility
        pass


def _resolve_level(level: int | str | None) -> int:
    if level is None:
        level = os.environ.get(LOG_LEVEL_ENV, "INFO")
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            resolved = logging.INFO
        return resolved
    return int(level)


def setup_logging(level: int | str | None = None) -> logging.Logger:
    """Configure (once) and return the root ``repro`` logger.

    Safe to call from every CLI entry point: the first call installs
    the stderr handler, later calls only adjust the level.
    """
    logger = logging.getLogger("repro")
    resolved = _resolve_level(level)
    for handler in logger.handlers:
        if getattr(handler, _HANDLER_MARK, False):
            logger.setLevel(resolved)
            return logger
    handler = _DynamicStderrHandler()
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    setattr(handler, _HANDLER_MARK, True)
    logger.addHandler(handler)
    logger.setLevel(resolved)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` tree (``get_logger("runner.cli")``)."""
    return logging.getLogger(f"repro.{name}")
