"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat name -> metric map with
get-or-create accessors.  Metric objects are plain attribute bumps --
no locks, no label dicts, no allocation on the hot path -- so the
handles can live at module level next to the code they instrument
(``_ROWS = obs.counter("auction.rows_emitted")``) and be incremented
unconditionally.  :meth:`MetricsRegistry.reset` zeroes values *in
place*, so handles stay valid across resets (tests rely on this).

Histograms use fixed upper-bound buckets chosen at creation:
``observe(v)`` bumps the first bucket whose bound is ``>= v`` (one
final overflow bucket catches the rest).  Nothing here reads a clock
or an RNG -- values come entirely from the caller.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

#: Upper bounds (seconds) suiting per-day / per-phase timings.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 600.0,
)

#: Upper bounds for row/entity counts per operation.
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def _reset(self) -> None:
        self.value = 0


class Gauge:
    """Last-write-wins instantaneous value (e.g. rows/s)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def _reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bucket histogram with running count and sum."""

    __slots__ = ("name", "buckets", "counts", "count", "sum")

    def __init__(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.name = name
        self.buckets = bounds
        # One slot per bound plus the overflow bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0


class MetricsRegistry:
    """Flat registry of named metrics with get-or-create accessors.

    A registry carries the same **worker id** dimension as the tracer
    (default ``w0``): snapshots from a non-default worker are tagged
    with a ``"worker"`` key so ``repro.obs merge`` can attribute (and
    sum) per-worker counters.  The default worker's snapshot shape is
    unchanged from the pre-worker-dimension format.
    """

    def __init__(self, worker_id: str = "w0") -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self.worker_id = str(worker_id)

    def _get(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._metrics))

    def snapshot(self) -> dict:
        """JSON-ready dump: ``{"counters": ..., "gauges": ...,
        "histograms": ...}``, names sorted for stable output."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = {
                    "buckets": list(metric.buckets),
                    "counts": list(metric.counts),
                    "count": metric.count,
                    "sum": round(metric.sum, 6),
                }
        snapshot = {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
        if self.worker_id != "w0":
            snapshot["worker"] = self.worker_id
        return snapshot

    def reset(self) -> None:
        """Zero every metric in place (handles stay valid)."""
        for metric in self._metrics.values():
            metric._reset()
