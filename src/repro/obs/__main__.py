"""Observability CLI: reports, the run registry, and cross-run diffs.

::

    python -m repro.obs report RUNS/x             # timing/metric report
    python -m repro.obs report RUNS/x --json      # machine-readable
    python -m repro.obs watch RUNS/x              # live progress tail
    python -m repro.obs watch RUNS/x --once       # one status line
    python -m repro.obs export RUNS/x --format chrome-trace
    python -m repro.obs merge RUNS/w0 RUNS/w1 --out RUNS/merged
    python -m repro.obs runs index RUNS/          # build RUNS/runs.json
    python -m repro.obs runs list RUNS/           # registry table
    python -m repro.obs runs show RUNS/x          # one run's summary
    python -m repro.obs diff RUNS/a RUNS/b        # compare two runs
    python -m repro.obs diff RUNS/a RUNS/b --fail-on drift=0,phase_time=0.25
    python -m repro.obs analyze RUNS/x            # anomalies -> analyze.json
    python -m repro.obs analyze RUNS/x --fail-on anomalies=0
    python -m repro.obs dash RUNS/x               # -> RUNS/x/dashboard.html
    python -m repro.obs dash RUNS/x --compare RUNS/y --out matrix.html
    python -m repro.obs trend --fail-on total=0.25   # bench-history gate

Reports go to stdout; diagnostics go to stderr via logging.  ``diff``,
``analyze``, and ``trend`` exit 0 when every ``--fail-on`` rule holds,
1 on a violation, and 2 when inputs are unreadable.  ``report`` and
``watch`` on a run with missing telemetry or sidecar print a notice
and exit 0 -- absent telemetry is a normal state (``telemetry=False``
runs, pre-sidecar dirs), not an error.  ``export``, ``merge``,
``analyze``, and ``dash`` exit 2 on unreadable inputs: they produce
artifacts, so a silent no-op would masquerade as success.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from .logsetup import get_logger, setup_logging
from .report import load_events, render_report, report_json, report_path

log = get_logger("obs.cli")


def _print(text: str) -> None:
    """Print, tolerating a consumer that closed the pipe early."""
    try:
        print(text)
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream consumer closed early (`... | head`): normal for a
        # report CLI.  Point stdout at devnull so the interpreter's
        # exit-time flush doesn't raise the same error again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())


def _cmd_report(args: argparse.Namespace) -> int:
    path = report_path(args.target)
    if not path.exists():
        _print(f"no telemetry found at {path} (run recorded none)")
        return 0
    try:
        events = load_events(path)
    except ValueError as exc:
        _print(f"no usable telemetry at {path}: {exc}")
        return 0
    if args.json:
        document = report_json(events, source=path)
        text = json.dumps(document, indent=2, sort_keys=True)
        if args.out is not None:
            from ..records.atomic import atomic_write_text

            atomic_write_text(args.out, text + "\n")
            _print(f"wrote report -> {args.out}")
        else:
            _print(text)
        return 0
    if args.out is not None:
        log.error("--out requires --json")
        return 2
    _print(render_report(events, source=path))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from .progress import PROGRESS_NAME, load_progress, render_progress

    def line() -> str | None:
        progress = load_progress(args.run_dir)
        if progress is None:
            return None
        stale_s = None
        updated = progress.get("updated_unix")
        if updated is not None:
            stale_s = max(0.0, time.time() - float(updated))
            if stale_s < 2 * max(args.interval, 1.0):
                stale_s = None
        return render_progress(progress, stale_s=stale_s)

    if args.once:
        rendered = line()
        if rendered is None:
            _print(
                f"no {PROGRESS_NAME} under {args.run_dir} "
                f"(pre-sidecar run, or not started yet)"
            )
        else:
            _print(rendered)
        return 0

    last = None
    try:
        while True:
            rendered = line()
            if rendered is None:
                if last is None:
                    _print(f"waiting for {PROGRESS_NAME} in {args.run_dir}...")
                    last = "waiting"
            elif rendered != last:
                _print(rendered)
                last = rendered
            if rendered is not None and not rendered.startswith("running"):
                return 0
            time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .export import TRACE_NAME, export_chrome_trace

    path = report_path(args.target)
    if not path.exists():
        log.error("%s: no telemetry to export", path)
        return 2
    try:
        events = load_events(path)
    except ValueError as exc:
        log.error("%s", exc)
        return 2
    out = args.out
    if out is None:
        target = Path(args.target)
        out = (target if target.is_dir() else target.parent) / TRACE_NAME
    export_chrome_trace(events, out)
    _print(f"wrote {args.format} ({len(events)} events) -> {out}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from .merge import MergeError, merge_runs

    try:
        record = merge_runs(args.inputs, args.out)
    except MergeError as exc:
        log.error("%s", exc)
        return 2
    _print(
        f"merged {len(record['inputs'])} fragment(s) "
        f"[{', '.join(record['workers'])}]: "
        f"{record['telemetry_events']} events, "
        f"{record['ledger_days']} ledger day(s) -> {args.out}"
    )
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    from .registry import RUNS_INDEX_NAME, index_runs, render_runs_table, summarize_run

    if args.action == "show":
        summary = summarize_run(args.root)
        if summary is None:
            log.error("%s: no readable run manifest", args.root)
            return 2
        _print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    out = args.out
    if args.action == "index" and out is None:
        out = Path(args.root) / RUNS_INDEX_NAME
    index = index_runs(args.root, out=out)
    if args.action == "index":
        _print(f"indexed {len(index['runs'])} run(s) -> {out}")
    else:
        _print(render_runs_table(index))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from .diff import (
        diff_json,
        diff_runs,
        evaluate_fail_on,
        load_run,
        parse_fail_on,
        render_diff,
    )

    try:
        rules = parse_fail_on(args.fail_on)
    except ValueError as exc:
        log.error("%s", exc)
        return 2
    if args.out is not None and not args.json:
        log.error("--out requires --json")
        return 2
    try:
        data_a = load_run(args.run_a)
        data_b = load_run(args.run_b)
    except FileNotFoundError as exc:
        log.error("%s", exc)
        return 2
    diff = diff_runs(data_a, data_b)
    violations = evaluate_fail_on(diff, rules)
    if args.json:
        document = diff_json(diff, rules=rules or None, violations=violations)
        text = json.dumps(document, indent=2, sort_keys=True)
        if args.out is not None:
            from ..records.atomic import atomic_write_text

            atomic_write_text(args.out, text + "\n")
            _print(f"wrote diff -> {args.out}")
        else:
            _print(text)
        return 1 if violations else 0
    _print(render_diff(diff))
    if violations:
        _print("")
        _print("FAIL:")
        for violation in violations:
            _print(f"  {violation}")
        return 1
    if rules:
        _print("")
        _print(f"ok: {len(rules)} rule(s) held")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from ..records.atomic import atomic_write_text
    from .analyze import (
        ANALYZE_NAME,
        analysis_json,
        analysis_to_text,
        analyze_run,
        evaluate_analyze_fail_on,
        parse_analyze_fail_on,
    )

    try:
        rules = parse_analyze_fail_on(args.fail_on)
    except ValueError as exc:
        log.error("%s", exc)
        return 2
    try:
        document = analyze_run(args.run_dir)
    except (FileNotFoundError, ValueError) as exc:
        log.error("%s", exc)
        return 2
    out = args.out
    if out is None:
        out = Path(args.run_dir) / ANALYZE_NAME
    # The artifact never embeds gate results: its bytes depend only on
    # the ledger, so re-running with different --fail-on rules (or none)
    # leaves it byte-identical -- the determinism CI cmp-gates on.
    atomic_write_text(out, analysis_json(document))
    violations = evaluate_analyze_fail_on(document, rules)
    if args.json:
        # Keep stdout strictly the document; violations go to stderr
        # (the exit code is the machine-readable verdict).
        _print(json.dumps(document, indent=2, sort_keys=True))
        for violation in violations:
            log.error("FAIL: %s", violation)
        return 1 if violations else 0
    _print(analysis_to_text(document, source=args.run_dir))
    _print("")
    _print(f"wrote analysis -> {out}")
    if violations:
        _print("")
        _print("FAIL:")
        for violation in violations:
            _print(f"  {violation}")
        return 1
    if rules:
        _print(f"ok: {len(rules)} rule(s) held")
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    from ..records.atomic import atomic_write_text
    from .dash import DASHBOARD_NAME, render_compare, render_dashboard

    try:
        if args.compare:
            html = render_compare([args.run_dir, *args.compare])
        else:
            html = render_dashboard(args.run_dir)
    except (FileNotFoundError, ValueError) as exc:
        log.error("%s", exc)
        return 2
    out = args.out
    if out is None:
        out = Path(args.run_dir) / DASHBOARD_NAME
    atomic_write_text(out, html)
    kind = f"comparison ({1 + len(args.compare)} runs)" if args.compare else "dashboard"
    _print(f"wrote {kind} -> {out}")
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    from .history import (
        evaluate_trend_fail_on,
        load_history,
        parse_trend_fail_on,
        render_trend,
        trend_report,
    )

    try:
        rules = parse_trend_fail_on(args.fail_on)
    except ValueError as exc:
        log.error("%s", exc)
        return 2
    try:
        rows = load_history(args.history)
    except (FileNotFoundError, ValueError) as exc:
        log.error("%s", exc)
        return 2
    report = trend_report(rows, baseline_k=args.baseline_k)
    _print(render_trend(report))
    violations = evaluate_trend_fail_on(report, rules)
    if violations:
        _print("")
        _print("FAIL:")
        for violation in violations:
            _print(f"  {violation}")
        return 1
    if rules:
        _print("")
        _print(f"ok: {len(rules)} rule(s) held")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and compare run telemetry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render telemetry.jsonl as a timing/metric report"
    )
    report.add_argument(
        "target",
        type=Path,
        help="run directory (containing telemetry.jsonl) or a JSONL file",
    )
    report.add_argument(
        "--json",
        action="store_true",
        help="emit the report as a JSON document (repro.report/v1)",
    )
    report.add_argument(
        "--out",
        type=Path,
        default=None,
        help="with --json: write the document here instead of stdout",
    )
    report.set_defaults(func=_cmd_report)

    watch = sub.add_parser(
        "watch", help="tail a run's progress.json sidecar as status lines"
    )
    watch.add_argument(
        "run_dir", type=Path, help="checkpoint-runner run directory"
    )
    watch.add_argument(
        "--once",
        action="store_true",
        help="print the current status line and exit",
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls (default: 2)",
    )
    watch.set_defaults(func=_cmd_watch)

    export = sub.add_parser(
        "export", help="export telemetry (Chrome trace_event JSON)"
    )
    export.add_argument(
        "target",
        type=Path,
        help="run directory (containing telemetry.jsonl) or a JSONL file",
    )
    export.add_argument(
        "--format",
        choices=("chrome-trace",),
        default="chrome-trace",
        help="output format (default: chrome-trace)",
    )
    export.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path (default: <run-dir>/trace.json)",
    )
    export.set_defaults(func=_cmd_export)

    merge = sub.add_parser(
        "merge", help="merge per-worker run fragments into one layout"
    )
    merge.add_argument(
        "inputs",
        type=Path,
        nargs="+",
        help="per-worker run directories (any order)",
    )
    merge.add_argument(
        "--out",
        type=Path,
        required=True,
        help="directory for the merged telemetry/ledger",
    )
    merge.set_defaults(func=_cmd_merge)

    runs = sub.add_parser(
        "runs", help="index / list / show run directories (runs.json)"
    )
    runs.add_argument(
        "action",
        choices=("index", "list", "show"),
        help="index: write runs.json; list: table; show: one run's JSON",
    )
    runs.add_argument(
        "root",
        type=Path,
        help="directory of run dirs (or, for show, one run dir)",
    )
    runs.add_argument(
        "--out",
        type=Path,
        default=None,
        help="where to write the index (default: <root>/runs.json)",
    )
    runs.set_defaults(func=_cmd_runs)

    diff = sub.add_parser(
        "diff", help="compare two run directories (timings, metrics, ledger)"
    )
    diff.add_argument("run_a", type=Path, help="baseline run directory")
    diff.add_argument("run_b", type=Path, help="candidate run directory")
    diff.add_argument(
        "--fail-on",
        action="append",
        default=[],
        metavar="RULE=THRESHOLD",
        help=(
            "gate rule(s): drift=FRAC (ledger series divergence), "
            "phase_time=FRAC (phase regression), validation=N (new "
            "misses), degraded=N (lost auxiliary writes), rss=FRAC "
            "(peak-RSS growth); repeatable or comma-separated"
        ),
    )
    diff.add_argument(
        "--json",
        action="store_true",
        help="emit the diff as a JSON document (repro.diff/v1)",
    )
    diff.add_argument(
        "--out",
        type=Path,
        default=None,
        help="with --json: write the document here instead of stdout",
    )
    diff.set_defaults(func=_cmd_diff)

    analyze = sub.add_parser(
        "analyze",
        help="detect ledger anomalies/level shifts -> analyze.json",
    )
    analyze.add_argument(
        "run_dir", type=Path, help="run directory containing dayledger.jsonl"
    )
    analyze.add_argument(
        "--json",
        action="store_true",
        help="print the analysis document (repro.analyze/v1) to stdout",
    )
    analyze.add_argument(
        "--out",
        type=Path,
        default=None,
        help="where to write analyze.json (default: <run-dir>/analyze.json)",
    )
    analyze.add_argument(
        "--fail-on",
        action="append",
        default=[],
        metavar="RULE=N",
        help=(
            "gate rule(s): anomalies=N (unexplained point anomalies), "
            "level_shifts=N (shifts away from policy days); repeatable "
            "or comma-separated"
        ),
    )
    analyze.set_defaults(func=_cmd_analyze)

    dash = sub.add_parser(
        "dash", help="render a self-contained HTML dashboard for a run"
    )
    dash.add_argument(
        "run_dir", type=Path, help="checkpoint-runner run directory"
    )
    dash.add_argument(
        "--compare",
        type=Path,
        nargs="+",
        default=[],
        metavar="RUN",
        help="render a comparison matrix of this run vs. the given runs",
    )
    dash.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path (default: <run-dir>/dashboard.html)",
    )
    dash.set_defaults(func=_cmd_dash)

    trend = sub.add_parser(
        "trend", help="benchmark-history trends and the perf CI gate"
    )
    trend.add_argument(
        "--history",
        type=Path,
        default=Path("BENCH_history.jsonl"),
        help="history JSONL path (default: BENCH_history.jsonl)",
    )
    trend.add_argument(
        "--baseline-k",
        type=int,
        default=5,
        help="prior rows per group the baseline median covers (default: 5)",
    )
    trend.add_argument(
        "--fail-on",
        action="append",
        default=[],
        metavar="RULE=FRAC",
        help=(
            "gate rule(s): phase=FRAC (any phase slower than baseline), "
            "total=FRAC (total slower), throughput=FRAC (rows/s lower); "
            "repeatable or comma-separated"
        ),
    )
    trend.set_defaults(func=_cmd_trend)

    args = parser.parse_args(argv)
    setup_logging()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
