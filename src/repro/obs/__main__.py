"""Telemetry report CLI.

Render the phase-tree timing table and metric summary recorded in a
checkpoint-runner run directory (or any telemetry JSONL file)::

    python -m repro.obs report RUNS/x
    python -m repro.obs report RUNS/x/telemetry.jsonl

The report goes to stdout; diagnostics go to stderr via logging.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .logsetup import get_logger, setup_logging
from .report import load_events, render_report, report_path

log = get_logger("obs.cli")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect run telemetry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="render telemetry.jsonl as a timing/metric report"
    )
    report.add_argument(
        "target",
        type=Path,
        help="run directory (containing telemetry.jsonl) or a JSONL file",
    )
    args = parser.parse_args(argv)

    setup_logging()
    path = report_path(args.target)
    if not path.exists():
        log.error("no telemetry found at %s", path)
        return 2
    try:
        events = load_events(path)
    except ValueError as exc:
        log.error("%s", exc)
        return 2
    try:
        print(render_report(events, source=path))
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream consumer closed early (`... | head`): normal for a
        # report CLI.  Point stdout at devnull so the interpreter's
        # exit-time flush doesn't raise the same error again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


if __name__ == "__main__":
    sys.exit(main())
