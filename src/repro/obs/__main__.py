"""Observability CLI: reports, the run registry, and cross-run diffs.

::

    python -m repro.obs report RUNS/x             # timing/metric report
    python -m repro.obs runs index RUNS/          # build RUNS/runs.json
    python -m repro.obs runs list RUNS/           # registry table
    python -m repro.obs runs show RUNS/x          # one run's summary
    python -m repro.obs diff RUNS/a RUNS/b        # compare two runs
    python -m repro.obs diff RUNS/a RUNS/b --fail-on drift=0,phase_time=0.25

Reports go to stdout; diagnostics go to stderr via logging.  ``diff``
exits 0 when every ``--fail-on`` rule holds, 1 on a violation, and 2
when inputs are unreadable.  ``report`` on a run with missing or
damaged telemetry prints a notice and exits 0 -- absent telemetry is a
normal state (``telemetry=False`` runs), not an error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from .logsetup import get_logger, setup_logging
from .report import load_events, render_report, report_path

log = get_logger("obs.cli")


def _print(text: str) -> None:
    """Print, tolerating a consumer that closed the pipe early."""
    try:
        print(text)
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream consumer closed early (`... | head`): normal for a
        # report CLI.  Point stdout at devnull so the interpreter's
        # exit-time flush doesn't raise the same error again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())


def _cmd_report(args: argparse.Namespace) -> int:
    path = report_path(args.target)
    if not path.exists():
        _print(f"no telemetry found at {path} (run recorded none)")
        return 0
    try:
        events = load_events(path)
    except ValueError as exc:
        _print(f"no usable telemetry at {path}: {exc}")
        return 0
    _print(render_report(events, source=path))
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    from .registry import RUNS_INDEX_NAME, index_runs, render_runs_table, summarize_run

    if args.action == "show":
        summary = summarize_run(args.root)
        if summary is None:
            log.error("%s: no readable run manifest", args.root)
            return 2
        _print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    out = args.out
    if args.action == "index" and out is None:
        out = Path(args.root) / RUNS_INDEX_NAME
    index = index_runs(args.root, out=out)
    if args.action == "index":
        _print(f"indexed {len(index['runs'])} run(s) -> {out}")
    else:
        _print(render_runs_table(index))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from .diff import (
        diff_runs,
        evaluate_fail_on,
        load_run,
        parse_fail_on,
        render_diff,
    )

    try:
        rules = parse_fail_on(args.fail_on)
    except ValueError as exc:
        log.error("%s", exc)
        return 2
    try:
        data_a = load_run(args.run_a)
        data_b = load_run(args.run_b)
    except FileNotFoundError as exc:
        log.error("%s", exc)
        return 2
    diff = diff_runs(data_a, data_b)
    _print(render_diff(diff))
    violations = evaluate_fail_on(diff, rules)
    if violations:
        _print("")
        _print("FAIL:")
        for violation in violations:
            _print(f"  {violation}")
        return 1
    if rules:
        _print("")
        _print(f"ok: {len(rules)} rule(s) held")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and compare run telemetry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render telemetry.jsonl as a timing/metric report"
    )
    report.add_argument(
        "target",
        type=Path,
        help="run directory (containing telemetry.jsonl) or a JSONL file",
    )
    report.set_defaults(func=_cmd_report)

    runs = sub.add_parser(
        "runs", help="index / list / show run directories (runs.json)"
    )
    runs.add_argument(
        "action",
        choices=("index", "list", "show"),
        help="index: write runs.json; list: table; show: one run's JSON",
    )
    runs.add_argument(
        "root",
        type=Path,
        help="directory of run dirs (or, for show, one run dir)",
    )
    runs.add_argument(
        "--out",
        type=Path,
        default=None,
        help="where to write the index (default: <root>/runs.json)",
    )
    runs.set_defaults(func=_cmd_runs)

    diff = sub.add_parser(
        "diff", help="compare two run directories (timings, metrics, ledger)"
    )
    diff.add_argument("run_a", type=Path, help="baseline run directory")
    diff.add_argument("run_b", type=Path, help="candidate run directory")
    diff.add_argument(
        "--fail-on",
        action="append",
        default=[],
        metavar="RULE=THRESHOLD",
        help=(
            "gate rule(s): drift=FRAC (ledger series divergence), "
            "phase_time=FRAC (phase regression), validation=N (new "
            "misses); repeatable or comma-separated"
        ),
    )
    diff.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    setup_logging()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
