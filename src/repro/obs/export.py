"""Trace export: recorded spans/events as Chrome ``trace_event`` JSON.

``python -m repro.obs export <run-dir> --format chrome-trace`` converts
a run's ``telemetry.jsonl`` into the Trace Event Format that
``chrome://tracing`` and Perfetto load natively, turning the phase tree
into a visual timeline:

* **spans** become complete (``"ph": "X"``) events -- name, start and
  duration in microseconds, span attrs under ``args`` -- so nesting
  renders as stacked slices;
* **point events** (checkpoints, heartbeats, faults) become instant
  (``"ph": "i"``) events with process scope;
* **metrics snapshots** become counter (``"ph": "C"``) events, one per
  counter, so cumulative series (rows emitted, chunks written) plot as
  staircase tracks under the slices;
* each **worker id** (the ``"w"`` field; absent means ``w0``) maps to
  its own pid with a process-name metadata record, so a merged
  multi-worker file renders as parallel process tracks.

The export is deterministic: workers are ordered by their natural sort
key and events keep their file order within a worker, so the same
telemetry always produces the same JSON bytes.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from .trace import DEFAULT_WORKER_ID

__all__ = [
    "TRACE_NAME",
    "EXPORT_FORMATS",
    "events_to_chrome_trace",
    "export_chrome_trace",
    "worker_sort_key",
]

#: Default export file name inside a run directory.
TRACE_NAME = "trace.json"

EXPORT_FORMATS = ("chrome-trace",)

_NATURAL = re.compile(r"^(.*?)(\d+)$")


def worker_sort_key(worker: str) -> tuple:
    """Natural sort key so ``w2`` orders before ``w10``."""
    match = _NATURAL.match(worker)
    if match is None:
        return (worker, -1)
    return (match.group(1), int(match.group(2)))


def _event_worker(event: dict) -> str:
    return str(event.get("w", DEFAULT_WORKER_ID))


def events_to_chrome_trace(events: list[dict]) -> dict:
    """Build the Trace Event Format payload for one telemetry stream."""
    workers = sorted(
        {_event_worker(e) for e in events} or {DEFAULT_WORKER_ID},
        key=worker_sort_key,
    )
    pid_of = {worker: index + 1 for index, worker in enumerate(workers)}

    trace_events: list[dict] = []
    for worker in workers:
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid_of[worker],
                "tid": 0,
                "args": {"name": f"repro worker {worker}"},
            }
        )

    for event in events:
        pid = pid_of[_event_worker(event)]
        kind = event.get("kind")
        if kind == "span":
            trace_events.append(
                {
                    "ph": "X",
                    "name": str(event.get("name", "?")),
                    "cat": "span",
                    "ts": round(float(event.get("start", 0.0)) * 1e6, 1),
                    "dur": round(float(event.get("dur", 0.0)) * 1e6, 1),
                    "pid": pid,
                    "tid": 1,
                    "args": event.get("attrs") or {},
                }
            )
        elif kind == "event":
            trace_events.append(
                {
                    "ph": "i",
                    "name": str(event.get("name", "?")),
                    "cat": "event",
                    "ts": round(float(event.get("t", 0.0)) * 1e6, 1),
                    "pid": pid,
                    "tid": 1,
                    "s": "p",
                    "args": event.get("attrs") or {},
                }
            )
        elif kind == "metrics":
            counters = (event.get("data") or {}).get("counters") or {}
            ts = round(float(event.get("t", 0.0)) * 1e6, 1)
            for name in sorted(counters):
                trace_events.append(
                    {
                        "ph": "C",
                        "name": name,
                        "ts": ts,
                        "pid": pid,
                        "tid": 0,
                        "args": {"value": counters[name]},
                    }
                )
        # "resources" and unknown kinds carry no timeline geometry.

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def export_chrome_trace(events: list[dict], out: str | Path) -> Path:
    """Serialize the chrome-trace payload atomically to ``out``."""
    from ..records.atomic import atomic_write_text

    out = Path(out)
    payload = events_to_chrome_trace(events)
    atomic_write_text(
        out, json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n"
    )
    return out
