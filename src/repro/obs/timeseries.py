"""Marketplace-health day ledger: per-day timeseries for a whole run.

The paper's core results are *time dynamics* -- fraud share, shutdown
rates, spend regimes around the Year-2 policy change (Figures 1-6).
:class:`DayLedger` collects those same marketplace-health signals as
one row per simulated day, fed by the engine (registrations, per-day
auction aggregates), the detection pipeline (per-stage shutdowns,
bucketed by shutdown day), and the batched auction kernel (candidate /
shown counts), and persists them as ``dayledger.jsonl`` in the
checkpoint-runner run directory.

Like every other piece of :mod:`repro.obs`, the ledger is a **pure
observer**: it never draws randomness, never reads a clock, and only
does arithmetic on values its callers already computed -- a ledgered
run is bit-identical to an unledgered one (``tests/obs/
test_dayledger.py``) and the collection overhead stays under the same
3% budget as the JSONL telemetry sink
(``benchmarks/test_ledger_overhead.py``).

Crash-safety and resume mirror the telemetry sink: the runner flushes
the ledger with the atomic whole-file rewrite protocol
(:mod:`repro.records.atomic`) exactly when the manifest becomes
durable, and a resumed run preloads the durable prefix -- Phase-1
fields always (the Phase-1 snapshot is durable), per-day market fields
only for days before the resume point (later days are re-simulated and
re-accumulated).  Because re-simulated days replay the same draws on
the same arrays in the same order, the final ``dayledger.jsonl`` of an
interrupted-and-resumed run is **byte-identical** to an uninterrupted
run's (``tests/runner/test_dayledger_resume.py``).

Row schema (JSON object per line, keys sorted; floats as Python repr):

``day``
    The simulated day the row describes.
``registrations_legit`` / ``registrations_fraud``
    Accounts registered that day, split by ground truth (Fig 1).
``shutdowns``
    ``{stage: count}`` of enforcement actions whose shutdown time
    lands on this day (Fig 5/6 dynamics; stages are
    :class:`~repro.entities.enums.ShutdownReason` values).
``policy_change``
    ``true`` on days a policy change takes effect (omitted otherwise);
    anchors the diff's policy-window deltas.
``active_accounts``
    Distinct accounts with at least one live offer that day.
``impressions`` / ``clicks`` / ``spend``
    Day totals (``impressions`` is the summed query weight each shown
    row stands in for).
``fraud_clicks`` / ``fraud_spend``
    The slice of the totals on eventually-labeled-fraud accounts.
``rows`` / ``auctions`` / ``mainline_slots``
    Impression rows emitted, auctions that showed at least one ad, and
    mainline placements filled.
``kernel_candidates`` / ``kernel_shown``
    Batched-kernel feed: candidates ranked and ads shown that day.
``fraud_click_share`` / ``fraud_spend_share`` / ``mean_cpc`` /
``mainline_depth``
    Derived at serialization time from the sums above (Figures 3/6 and
    the Section 6 competition framing).
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["DAYLEDGER_NAME", "LEDGER_SERIES", "DayLedger", "load_rows"]

#: Ledger file name inside a checkpoint-runner run directory.
DAYLEDGER_NAME = "dayledger.jsonl"

#: Integer accumulators fed during Phase 3 (market/auction sourced).
_MARKET_INT_FIELDS = (
    "rows",
    "auctions",
    "active_accounts",
    "mainline_slots",
    "kernel_candidates",
    "kernel_shown",
)

#: Float accumulators fed during Phase 3.
_MARKET_FLOAT_FIELDS = (
    "impressions",
    "clicks",
    "fraud_clicks",
    "spend",
    "fraud_spend",
)

#: Every per-day numeric series a ledger row exposes (diffable set).
#: ``shutdowns`` is a nested ``{stage: count}`` map and is flattened to
#: ``shutdowns.<stage>`` series by :meth:`DayLedger.series` and the
#: diff layer.
LEDGER_SERIES: tuple[str, ...] = (
    "registrations_legit",
    "registrations_fraud",
    *_MARKET_INT_FIELDS,
    *_MARKET_FLOAT_FIELDS,
    "fraud_click_share",
    "fraud_spend_share",
    "mean_cpc",
    "mainline_depth",
)


def _zero_market_row() -> dict:
    row: dict = {name: 0 for name in _MARKET_INT_FIELDS}
    row.update({name: 0.0 for name in _MARKET_FLOAT_FIELDS})
    return row


class DayLedger:
    """Per-day marketplace-health accumulator for one run.

    Attach the run's ledger with :func:`repro.obs.set_dayledger` (the
    checkpoint runner does this automatically); instrumented call
    sites fetch it via :func:`repro.obs.dayledger` and skip all work
    when none is attached.
    """

    def __init__(self, days: int | None = None) -> None:
        #: Total simulated days, when known -- used to clamp shutdown
        #: buckets and to emit a row for every day at serialization.
        self.days = days
        self._phase1: dict[int, dict] = {}
        self._shutdowns: dict[int, dict[str, int]] = {}
        self._policy_days: set[int] = set()
        self._market: dict[int, dict] = {}
        self._current: dict | None = None

    # -- Phase-1 feeds (engine day loop, detection pipeline) -----------

    def record_registrations(self, day: int, legit: int, fraud: int) -> None:
        """One Phase-1 day's registrations, split legit/fraud."""
        self._phase1[int(day)] = {
            "registrations_legit": int(legit),
            "registrations_fraud": int(fraud),
        }

    def record_shutdown(self, time: float, stage: str) -> None:
        """One enforcement action, bucketed by its shutdown day."""
        day = int(time)
        if self.days is not None:
            day = min(day, self.days - 1)
        bucket = self._shutdowns.setdefault(day, {})
        bucket[stage] = bucket.get(stage, 0) + 1

    def record_policy_change(self, day: float) -> None:
        """Mark the day a policy change takes effect."""
        self._policy_days.add(int(day))

    # -- Phase-3 feeds (engine auction loop, batched kernel) -----------

    def begin_day(self, day: int) -> None:
        """Open (and zero) the market row for one Phase-3 day.

        Called once per simulated day *before* any market feed, so days
        with no live offers or no shown ads still serialize as explicit
        zero rows.  Subsequent kernel feeds accumulate into this day.
        """
        row = _zero_market_row()
        self._market[int(day)] = row
        self._current = row

    def record_kernel(self, candidates: int, shown: int) -> None:
        """Batched-kernel feed for the currently open day (no-op when
        no day is open -- the kernel also runs in kernel-only tests)."""
        row = self._current
        if row is None:
            return
        row["kernel_candidates"] += int(candidates)
        row["kernel_shown"] += int(shown)

    def record_active_accounts(self, day: int, count: int) -> None:
        """Distinct accounts with live offers on one day."""
        self._market[int(day)]["active_accounts"] = int(count)

    def record_auction_day(
        self,
        day: int,
        *,
        impressions: float,
        clicks: float,
        fraud_clicks: float,
        spend: float,
        fraud_spend: float,
        rows: int,
        auctions: int,
        mainline_slots: int,
    ) -> None:
        """One day's auction aggregates (engine feed, once per day)."""
        row = self._market[int(day)]
        row["impressions"] += float(impressions)
        row["clicks"] += float(clicks)
        row["fraud_clicks"] += float(fraud_clicks)
        row["spend"] += float(spend)
        row["fraud_spend"] += float(fraud_spend)
        row["rows"] += int(rows)
        row["auctions"] += int(auctions)
        row["mainline_slots"] += int(mainline_slots)

    # -- serialization -------------------------------------------------

    def _day_range(self) -> range:
        if self.days is not None:
            return range(self.days)
        seen = (*self._phase1, *self._shutdowns, *self._market)
        return range(max(seen) + 1 if seen else 0)

    def rows(self) -> list[dict]:
        """One merged dict per day, derived fields included, day order."""
        merged: list[dict] = []
        for day in self._day_range():
            row: dict = {"day": day}
            row.update(
                self._phase1.get(
                    day, {"registrations_legit": 0, "registrations_fraud": 0}
                )
            )
            row["shutdowns"] = dict(sorted(self._shutdowns.get(day, {}).items()))
            if day in self._policy_days:
                row["policy_change"] = True
            market = self._market.get(day)
            if market is not None:
                row.update(market)
                clicks = market["clicks"]
                spend = market["spend"]
                auctions = market["auctions"]
                row["fraud_click_share"] = (
                    market["fraud_clicks"] / clicks if clicks else 0.0
                )
                row["fraud_spend_share"] = (
                    market["fraud_spend"] / spend if spend else 0.0
                )
                row["mean_cpc"] = spend / clicks if clicks else 0.0
                row["mainline_depth"] = (
                    market["mainline_slots"] / auctions if auctions else 0.0
                )
            merged.append(row)
        return merged

    def series(self) -> dict[str, list[float]]:
        """Per-series day-indexed values (``shutdowns`` flattened to
        ``shutdowns.<stage>``); days with no market row yield 0."""
        return rows_to_series(self.rows())

    def to_jsonl(self) -> str:
        """Canonical JSONL text (sorted keys, compact separators)."""
        return (
            "\n".join(
                json.dumps(row, sort_keys=True, separators=(",", ":"))
                for row in self.rows()
            )
            + "\n"
        )

    def flush(self, path: str | Path) -> str:
        """Atomically persist the ledger (tmp + fsync + ``os.replace``).

        Returns the serialized text so callers can checksum exactly
        what landed (the checkpoint manifest vouches for the ledger
        this way).
        """
        from ..records.atomic import atomic_write_text

        text = self.to_jsonl()
        atomic_write_text(path, text)
        return text

    # -- resume --------------------------------------------------------

    def preload(self, path: str | Path, market_before: int) -> None:
        """Reload the durable prefix of an interrupted run's ledger.

        Phase-1 fields (registrations, shutdown buckets, policy days)
        are durable with the Phase-1 snapshot and reload for every day;
        market fields reload only for ``day < market_before`` -- later
        days were never checkpointed (or sat in a discarded tail chunk)
        and will be re-accumulated by the resumed day loop.  A missing
        file is not an error: the ledger simply re-covers what the
        resumed process simulates (pre-ledger run dirs stay resumable).
        """
        path = Path(path)
        if not path.exists():
            return
        for row in load_rows(path):
            day = int(row["day"])
            self._phase1[day] = {
                "registrations_legit": int(row.get("registrations_legit", 0)),
                "registrations_fraud": int(row.get("registrations_fraud", 0)),
            }
            shutdowns = row.get("shutdowns") or {}
            if shutdowns:
                self._shutdowns[day] = {
                    str(stage): int(n) for stage, n in shutdowns.items()
                }
            if row.get("policy_change"):
                self._policy_days.add(day)
            if day < market_before and "rows" in row:
                market = _zero_market_row()
                for name in _MARKET_INT_FIELDS:
                    market[name] = int(row.get(name, 0))
                for name in _MARKET_FLOAT_FIELDS:
                    market[name] = float(row.get(name, 0.0))
                self._market[day] = market
        self._current = None


def load_rows(path: str | Path) -> list[dict]:
    """Parse a ``dayledger.jsonl`` file into per-day row dicts.

    The atomic-flush protocol means a *durable* ledger never contains
    a torn line -- but live readers (``watch``, ``analyze`` on a
    still-running run) can race the whole-file rewrite and observe a
    truncated or garbage tail.  Trailing malformed lines are therefore
    skipped with one logged notice and the healthy prefix returned; a
    malformed line *followed by* healthy rows cannot be a rewrite race
    and still raises ``ValueError`` naming the offending line (that is
    damage, and the run doctor's business).
    """
    rows: list[dict] = []
    bad: list[str] = []
    for lineno, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            bad.append(f"{path}:{lineno}: malformed ledger line ({exc})")
            continue
        if not isinstance(row, dict) or "day" not in row:
            bad.append(f"{path}:{lineno}: not a ledger row")
            continue
        if bad:
            raise ValueError(bad[0])
        rows.append(row)
    if bad:
        from .logsetup import get_logger

        get_logger("obs.timeseries").warning(
            "%s; skipped %d trailing line(s) (mid-rewrite tail)",
            bad[0],
            len(bad),
        )
    return rows


def rows_to_series(rows: list[dict]) -> dict[str, list[float]]:
    """Flatten ledger rows into ``{series_name: [value per day]}``.

    Covers every name in :data:`LEDGER_SERIES` plus one
    ``shutdowns.<stage>`` series per stage seen in the rows.  Missing
    values (a day the run never reached) read as 0.
    """
    stages = sorted(
        {stage for row in rows for stage in (row.get("shutdowns") or {})}
    )
    series: dict[str, list[float]] = {name: [] for name in LEDGER_SERIES}
    for stage in stages:
        series[f"shutdowns.{stage}"] = []
    for row in rows:
        for name in LEDGER_SERIES:
            series[name].append(float(row.get(name, 0)))
        shutdowns = row.get("shutdowns") or {}
        for stage in stages:
            series[f"shutdowns.{stage}"].append(float(shutdowns.get(stage, 0)))
    return series


def policy_days(rows: list[dict]) -> list[int]:
    """Days flagged ``policy_change`` in a ledger row list."""
    return [int(row["day"]) for row in rows if row.get("policy_change")]
