"""Telemetry sinks: where tracer events go.

Three concrete sinks cover the package's needs:

* :class:`NullSink` -- swallows everything; the de-facto default is
  simply *no* sinks attached, but an explicit no-op is useful for
  overhead comparisons.
* :class:`LogSink` -- forwards events to the package-wide ``logging``
  tree (``repro.obs``): spans at DEBUG, events/metrics at INFO.  With
  :func:`repro.obs.setup_logging` this replaces scattered ``print()``
  diagnostics.
* :class:`JsonlSink` -- buffers events in memory and persists them as
  ``telemetry.jsonl`` with the same tmp + fsync + ``os.replace``
  protocol the checkpoint manifest uses
  (:mod:`repro.records.atomic`).  :meth:`JsonlSink.flush` rewrites the
  whole file atomically, so a crash at any instant leaves either the
  previous flush or the new one -- always a readable JSONL file, never
  a torn line.  The checkpoint runner flushes at every durable
  checkpoint, so telemetry is exactly as crash-safe as the run state
  it describes.

A resumed run re-opens the existing ``telemetry.jsonl``: the old
events are preloaded as the file's prefix and span/event ids from the
new process are offset past the highest id already recorded, so ids
stay unique across crash/resume process boundaries and the report CLI
can treat the whole file as one run history.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path

__all__ = [
    "TELEMETRY_NAME",
    "Sink",
    "NullSink",
    "MemorySink",
    "LogSink",
    "JsonlSink",
]

#: Telemetry file name inside a checkpoint-runner run directory.
TELEMETRY_NAME = "telemetry.jsonl"


class Sink:
    """Sink interface; subclasses override :meth:`emit`."""

    def emit(self, event: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def flush(self) -> None:
        """Persist buffered events (no-op for unbuffered sinks)."""

    def close(self) -> None:
        """Flush and release resources."""
        self.flush()


class NullSink(Sink):
    """Swallows every event (explicit no-op baseline)."""

    def emit(self, event: dict) -> None:
        pass


class MemorySink(Sink):
    """Collects events in a list -- for tests and the bench harness."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)


class LogSink(Sink):
    """Forwards events to the ``repro.obs`` logger (stderr via
    :func:`repro.obs.setup_logging`)."""

    def __init__(
        self,
        logger: logging.Logger | None = None,
        span_level: int = logging.DEBUG,
        event_level: int = logging.INFO,
    ) -> None:
        self._logger = logger or logging.getLogger("repro.obs")
        self._span_level = span_level
        self._event_level = event_level

    def emit(self, event: dict) -> None:
        kind = event.get("kind")
        if kind == "span":
            self._logger.log(
                self._span_level,
                "span %s dur=%.4fs attrs=%s",
                event.get("name"),
                event.get("dur", 0.0),
                event.get("attrs") or {},
            )
        elif kind == "metrics":
            data = event.get("data") or {}
            self._logger.log(
                self._event_level,
                "metrics snapshot: %d counters, %d gauges, %d histograms",
                len(data.get("counters", ())),
                len(data.get("gauges", ())),
                len(data.get("histograms", ())),
            )
        else:
            self._logger.log(
                self._event_level,
                "%s %s",
                event.get("name"),
                event.get("attrs") or {},
            )


class JsonlSink(Sink):
    """Durable JSONL sink with atomic whole-file flushes (see module
    docstring for the crash-safety and resume contract)."""

    def __init__(self, path: str | Path, load_existing: bool = True) -> None:
        self.path = Path(path)
        self._lines: list[str] = []
        self._dirty = False
        self._id_offset = 0
        if load_existing and self.path.exists():
            for line in self.path.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                self._lines.append(line)
                try:
                    prior = json.loads(line)
                except json.JSONDecodeError:
                    continue
                span_id = prior.get("id")
                if isinstance(span_id, int):
                    self._id_offset = max(self._id_offset, span_id)

    def emit(self, event: dict) -> None:
        if self._id_offset and event.get("kind") == "span":
            event = dict(event)
            event["id"] = event["id"] + self._id_offset
            if event.get("parent") is not None:
                event["parent"] = event["parent"] + self._id_offset
        self._lines.append(json.dumps(event, separators=(",", ":"), default=str))
        self._dirty = True

    def __len__(self) -> int:
        return len(self._lines)

    def flush(self) -> None:
        """Atomically rewrite the telemetry file with every buffered
        event (old file or new file after a crash -- never a torn
        hybrid)."""
        if not self._dirty:
            return
        # Imported here so the tracer/metrics layer stays importable
        # without the records package (it never is in practice, but the
        # obs core should not *require* it).
        from ..records.atomic import atomic_write_text

        atomic_write_text(self.path, "\n".join(self._lines) + "\n")
        self._dirty = False
