"""Self-contained HTML run dashboards: ``python -m repro.obs dash``.

Renders one checkpoint-runner run directory (or a comparison across
several) as a single HTML file with **no external assets** -- styles
inlined, every chart an inline SVG, zero JavaScript -- so the artifact
opens from a CI artifact tab, an scp'd file, or ``file://`` decades
from now.

The output is **byte-deterministic**: same run directory, same bytes.
No clocks, no randomness, no dict-order dependence -- every collection
is explicitly sorted and every float goes through one formatting
helper.  CI renders the dashboard twice and ``cmp``s the two files.

Sections, in order:

* **metadata** -- manifest fields (seed, days, phase, chunk format,
  config digest, package version) plus registry-style ledger totals;
* **sparklines** -- one inline-SVG sparkline per ledger series
  (:data:`~repro.obs.timeseries.LEDGER_SERIES` plus the flattened
  ``shutdowns.*`` stages), with per-day anomaly markers from
  :mod:`repro.obs.analyze` and a vertical rule on every policy-change
  day -- the Figure-1..6 dynamics at a glance;
* **phase timings** -- horizontal bars from the run's telemetry spans;
* **resources** -- the resource envelope (peak/mean RSS, CPU, GC);
* **validation** -- pass/miss targets from ``validation.json``.

``--compare RUN...`` instead emits a multi-run comparison matrix:
ledger/phase/validation summary rows with one column per run, plus a
sparkline grid of the key health series across runs -- the visual
precursor to the scenario sweep harness (one column per swept
scenario).
"""

from __future__ import annotations

from pathlib import Path

from .analyze import analyze_rows
from .diff import RunData, load_run
from .registry import summarize_run
from .timeseries import policy_days, rows_to_series

__all__ = ["DASHBOARD_NAME", "render_dashboard", "render_compare"]

#: Dashboard artifact name inside a run directory.
DASHBOARD_NAME = "dashboard.html"

#: Sparkline geometry (viewBox units; the page scales them via CSS).
_SPARK_W = 220.0
_SPARK_H = 44.0
_PAD = 3.0

#: Series shown in the ``--compare`` sparkline grid (the health series
#: the paper's figures key on).
_COMPARE_SERIES = (
    "registrations_fraud",
    "fraud_click_share",
    "fraud_spend_share",
    "spend",
    "mean_cpc",
    "active_accounts",
)

_CSS = """\
body{font:14px/1.45 system-ui,sans-serif;margin:24px;color:#1a1a2e;
background:#fafafa}
h1{font-size:20px;margin:0 0 4px}
h2{font-size:15px;margin:28px 0 8px;border-bottom:1px solid #ddd;
padding-bottom:3px}
table{border-collapse:collapse;margin:4px 0}
td,th{padding:2px 10px 2px 0;text-align:left;vertical-align:top;
font-variant-numeric:tabular-nums}
th{font-weight:600;color:#444}
.num{text-align:right}
.grid{display:flex;flex-wrap:wrap;gap:10px 18px}
.cell{width:240px}
.cell .name{font-size:12px;color:#444;margin-bottom:1px}
.cell .range{font-size:11px;color:#888}
.miss{color:#b3261e;font-weight:600}
.ok{color:#1e7d32}
.note{color:#888;font-size:12px}
.bar{fill:#4c6ef5}
.spark{fill:none;stroke:#4c6ef5;stroke-width:1.2}
.area{fill:#4c6ef5;fill-opacity:.12;stroke:none}
.anom{fill:#b3261e}
.anompol{fill:#e8912d}
.policy{stroke:#e8912d;stroke-width:1;stroke-dasharray:2 2}
.zero{stroke:#ccc;stroke-width:.5}
"""


def _fmt(value: float) -> str:
    """The one float formatter every SVG coordinate goes through."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


def _num(value) -> str:
    """Human-ish number formatting for table cells (deterministic)."""
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.4g}"
    return f"{int(value):,}"


def _esc(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _scale(values: list[float]) -> tuple[float, float]:
    lo = min(values)
    hi = max(values)
    if lo == hi:
        # Flat series: center the line instead of dividing by zero.
        lo -= 1.0
        hi += 1.0
    return lo, hi


def _spark_svg(
    values: list[float],
    anomalies: list[dict],
    policy: list[int],
) -> str:
    """One sparkline: area + line + policy rules + anomaly dots."""
    n = len(values)
    if n == 0:
        return '<svg class="sparksvg" viewBox="0 0 220 44"></svg>'
    lo, hi = _scale(values)
    span_x = max(n - 1, 1)

    def x(i: int) -> float:
        return _PAD + (_SPARK_W - 2 * _PAD) * i / span_x

    def y(v: float) -> float:
        return _PAD + (_SPARK_H - 2 * _PAD) * (hi - v) / (hi - lo)

    points = " ".join(f"{_fmt(x(i))},{_fmt(y(v))}" for i, v in enumerate(values))
    parts = [
        f'<svg class="sparksvg" viewBox="0 0 {_fmt(_SPARK_W)} '
        f'{_fmt(_SPARK_H)}" width="{_fmt(_SPARK_W)}" '
        f'height="{_fmt(_SPARK_H)}">'
    ]
    if lo < 0.0 < hi:
        zero = _fmt(y(0.0))
        parts.append(
            f'<line class="zero" x1="0" y1="{zero}" '
            f'x2="{_fmt(_SPARK_W)}" y2="{zero}"/>'
        )
    for day in policy:
        if 0 <= day < n:
            px = _fmt(x(day))
            parts.append(
                f'<line class="policy" x1="{px}" y1="0" x2="{px}" '
                f'y2="{_fmt(_SPARK_H)}"/>'
            )
    baseline = _fmt(_SPARK_H - _PAD)
    parts.append(
        f'<polygon class="area" points="{_fmt(x(0))},{baseline} '
        f"{points} {_fmt(x(n - 1))},{baseline}\"/>"
    )
    parts.append(f'<polyline class="spark" points="{points}"/>')
    for anomaly in anomalies:
        day = int(anomaly["day"])
        if 0 <= day < n:
            cls = "anompol" if anomaly.get("near_policy") else "anom"
            parts.append(
                f'<circle class="{cls}" cx="{_fmt(x(day))}" '
                f'cy="{_fmt(y(values[day]))}" r="2.2"/>'
            )
    parts.append("</svg>")
    return "".join(parts)


def _sparkline_section(rows: list[dict], analysis: dict) -> list[str]:
    series = rows_to_series(rows)
    policy = policy_days(rows)
    out = ["<h2>Day-ledger series</h2>"]
    if policy:
        days = ", ".join(str(d) for d in policy)
        out.append(
            f'<p class="note">dashed rule: policy change (day {days}); '
            f"red dot: unexplained anomaly; orange dot: anomaly inside "
            f"a policy settling window</p>"
        )
    out.append('<div class="grid">')
    for name in sorted(series):
        values = series[name]
        anomalies = analysis["anomalies"].get(name, [])
        shifts = analysis["level_shifts"].get(name, [])
        lo, hi = (min(values), max(values)) if values else (0.0, 0.0)
        badges = ""
        if shifts:
            badges += (
                f' <span class="miss">shift@'
                f"{','.join(str(s['day']) for s in shifts)}</span>"
            )
        out.append(
            f'<div class="cell"><div class="name">{_esc(name)}{badges}</div>'
            f"{_spark_svg(values, anomalies, policy)}"
            f'<div class="range">min {_num(lo)} · max {_num(hi)}</div></div>'
        )
    out.append("</div>")
    return out


def _phase_section(phases: dict[str, float] | None) -> list[str]:
    out = ["<h2>Phase timings</h2>"]
    if not phases:
        out.append('<p class="note">no telemetry recorded</p>')
        return out
    longest = max(phases.values()) or 1.0
    out.append("<table>")
    for name in sorted(phases):
        seconds = phases[name]
        width = _fmt(200.0 * seconds / longest)
        out.append(
            f"<tr><th>{_esc(name)}</th>"
            f'<td class="num">{seconds:.3f}s</td>'
            f'<td><svg width="202" height="12" viewBox="0 0 202 12">'
            f'<rect class="bar" x="0" y="1" width="{width}" height="10"/>'
            f"</svg></td></tr>"
        )
    out.append("</table>")
    return out


def _resources_section(resources: dict | None) -> list[str]:
    out = ["<h2>Resources</h2>"]
    if not resources:
        out.append('<p class="note">no resource envelope recorded</p>')
        return out
    out.append(
        "<table><tr><th>scope</th><th>rss peak</th><th>rss mean</th>"
        "<th>cpu</th><th>gc pauses</th></tr>"
    )
    scopes = []
    overall = resources.get("overall")
    if overall:
        scopes.append(("overall", overall))
    scopes.extend(sorted((resources.get("phases") or {}).items()))
    for label, stats in scopes:
        gc = stats.get("gc") or {}
        out.append(
            f"<tr><th>{_esc(label)}</th>"
            f'<td class="num">{stats.get("rss_peak_kb", 0) / 1024:.1f}M</td>'
            f'<td class="num">{stats.get("rss_mean_kb", 0) / 1024:.1f}M</td>'
            f'<td class="num">{stats.get("cpu_utilization", 0.0):.0%}</td>'
            f'<td class="num">{gc.get("collections", 0)}x '
            f'{gc.get("pause_total_s", 0.0) * 1000:.1f}ms</td></tr>'
        )
    out.append("</table>")
    return out


def _validation_section(validation: dict | None) -> list[str]:
    out = ["<h2>Validation</h2>"]
    if validation is None:
        out.append('<p class="note">no validation artifact</p>')
        return out
    out.append(
        f"<p><span class=\"ok\">{validation['passed']}</span>/"
        f"{validation['total']} targets in band</p>"
    )
    if validation["miss"]:
        names = ", ".join(_esc(n) for n in sorted(validation["miss"]))
        out.append(f'<p class="miss">missing: {names}</p>')
    return out


def _metadata_section(run_dir: Path, data: RunData) -> list[str]:
    summary = summarize_run(run_dir) or {}
    ledger = summary.get("ledger") or {}
    rows = [
        ("run", str(run_dir)),
        ("seed", summary.get("seed")),
        ("days", summary.get("days")),
        ("phase", summary.get("phase")),
        ("chunk format", summary.get("chunk_format")),
        ("chunks / rows", f"{summary.get('chunks', 0)} / "
                          f"{_num(summary.get('rows', 0))}"),
        ("config sha256", (summary.get("config_sha256") or "-")[:16]),
        ("package version", summary.get("package_version")),
        ("ledger days", ledger.get("days")),
        ("registrations (fraud)",
         f"{_num(ledger.get('registrations'))} "
         f"({_num(ledger.get('registrations_fraud'))})"),
        ("shutdowns", _num(ledger.get("shutdowns"))),
        ("spend", _num(ledger.get("spend"))),
        ("fraud click share",
         f"{ledger['fraud_click_share']:.4f}" if ledger else "-"),
    ]
    out = ["<h2>Run</h2>", "<table>"]
    for label, value in rows:
        if isinstance(value, (int, float)) or value is None:
            value = _num(value)
        out.append(f"<tr><th>{_esc(label)}</th><td>{_esc(value)}</td></tr>")
    out.append("</table>")
    if data.notes:
        out.append(
            '<p class="note">notes: '
            + "; ".join(_esc(n) for n in data.notes)
            + "</p>"
        )
    return out


def _page(title: str, body: list[str]) -> str:
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>\n{_CSS}</style></head>\n<body>\n"
        f"<h1>{_esc(title)}</h1>\n" + "\n".join(body) + "\n</body></html>\n"
    )


def render_dashboard(run_dir: str | Path) -> str:
    """The full single-run dashboard as an HTML string.

    Raises ``FileNotFoundError`` when ``run_dir`` is not a directory;
    every missing artifact inside it renders as an explicit notice
    instead (a run without telemetry still has a ledger worth seeing,
    and vice versa).
    """
    run_dir = Path(run_dir)
    data = load_run(run_dir)
    body = _metadata_section(run_dir, data)
    if data.ledger_rows is not None:
        analysis = analyze_rows(data.ledger_rows)
        body += _sparkline_section(data.ledger_rows, analysis)
        totals = analysis["totals"]
        body.append(
            f'<p class="note">analysis: {totals["anomalies"]} anomalies '
            f'({totals["unexplained_anomalies"]} unexplained), '
            f'{totals["level_shifts"]} level shift(s)</p>'
        )
    else:
        body.append("<h2>Day-ledger series</h2>")
        body.append('<p class="note">no readable day ledger</p>')
    body += _phase_section(data.phases)
    body += _resources_section(data.resources)
    body += _validation_section(data.validation)
    return _page(f"repro run — {run_dir.name}", body)


# ----------------------------------------------------------------------
# multi-run comparison
# ----------------------------------------------------------------------


def _compare_rows(runs: list["_CompareRun"]) -> list[str]:
    """The summary matrix: one column per run."""

    def row(label: str, cells: list[str], cls: str = "num") -> str:
        tds = "".join(f'<td class="{cls}">{cell}</td>' for cell in cells)
        return f"<tr><th>{_esc(label)}</th>{tds}</tr>"

    headers = "".join(f"<th>{_esc(run.path.name)}</th>" for run in runs)
    out = ["<h2>Comparison matrix</h2>", "<table>",
           f"<tr><th></th>{headers}</tr>"]

    def summary_cell(summary: dict, *path, fmt=_num) -> str:
        value = summary
        for key in path:
            value = (value or {}).get(key) if isinstance(value, dict) else None
        return fmt(value) if value is not None else "-"

    rows: list[tuple[str, tuple, object]] = [
        ("seed", ("seed",), _num),
        ("days", ("days",), _num),
        ("rows", ("rows",), _num),
        ("ledger days", ("ledger", "days"), _num),
        ("registrations", ("ledger", "registrations"), _num),
        ("fraud registrations", ("ledger", "registrations_fraud"), _num),
        ("shutdowns", ("ledger", "shutdowns"), _num),
        ("spend", ("ledger", "spend"), _num),
        ("fraud click share", ("ledger", "fraud_click_share"),
         lambda v: f"{v:.4f}"),
        ("fraud spend share", ("ledger", "fraud_spend_share"),
         lambda v: f"{v:.4f}"),
    ]
    for label, path, fmt in rows:
        out.append(
            row(
                label,
                [summary_cell(run.summary, *path, fmt=fmt) for run in runs],
            )
        )
    phase_names = sorted(
        {name for run in runs for name in (run.data.phases or {})}
    )
    for name in phase_names:
        out.append(
            row(
                f"{name} (s)",
                [
                    f"{run.data.phases[name]:.3f}"
                    if run.data.phases and name in run.data.phases
                    else "-"
                    for run in runs
                ],
            )
        )
    out.append(
        row(
            "validation",
            [
                f"{run.data.validation['passed']}"
                f"/{run.data.validation['total']}"
                if run.data.validation
                else "-"
                for run in runs
            ],
        )
    )
    rss_cells = []
    for run in runs:
        peak = ((run.data.resources or {}).get("overall") or {}).get(
            "rss_peak_kb"
        )
        rss_cells.append(f"{peak / 1024:.1f}M" if peak is not None else "-")
    out.append(row("peak rss", rss_cells))
    out.append(
        row(
            "anomalies (unexplained)",
            [
                (
                    f"{run.analysis['totals']['anomalies']} "
                    f"({run.analysis['totals']['unexplained_anomalies']})"
                )
                if run.analysis is not None
                else "-"
                for run in runs
            ],
        )
    )
    out.append("</table>")
    return out


class _CompareRun:
    """One run's artifacts loaded once for the comparison page."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.data: RunData = load_run(path)  # raises when absent
        self.summary: dict = summarize_run(path) or {}
        self.analysis: dict | None = (
            analyze_rows(self.data.ledger_rows)
            if self.data.ledger_rows is not None
            else None
        )


def _compare_sparklines(runs: list[_CompareRun]) -> list[str]:
    out = ["<h2>Health series per run</h2>"]
    out.append("<table><tr><th></th>")
    for run in runs:
        out.append(f"<th>{_esc(run.path.name)}</th>")
    out.append("</tr>")
    for name in _COMPARE_SERIES:
        cells = []
        for run in runs:
            if run.data.ledger_rows is None or run.analysis is None:
                cells.append('<td class="note">no ledger</td>')
                continue
            series = rows_to_series(run.data.ledger_rows).get(name, [])
            cells.append(
                "<td>"
                + _spark_svg(
                    series,
                    run.analysis["anomalies"].get(name, []),
                    policy_days(run.data.ledger_rows),
                )
                + "</td>"
            )
        out.append(f"<tr><th>{_esc(name)}</th>{''.join(cells)}</tr>")
    out.append("</table>")
    return out


def render_compare(run_dirs: list[str | Path]) -> str:
    """The multi-run comparison dashboard as an HTML string."""
    runs = [_CompareRun(Path(run_dir)) for run_dir in run_dirs]
    body = _compare_rows(runs) + _compare_sparklines(runs)
    names = ", ".join(run.path.name for run in runs)
    return _page(f"repro runs — {names}", body)
