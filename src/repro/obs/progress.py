"""Live progress sidecar: ``progress.json`` in the run directory.

``telemetry.jsonl`` is flushed only when a checkpoint makes the run
state durable, so a long run is a black box *between* checkpoints.  The
:class:`ProgressSink` closes that gap: attached by the checkpoint
runner next to the JSONL sink, it condenses the event stream into one
small JSON object -- current phase, last completed day, throughput,
ETA, counter snapshot, last checkpoint, degradation state -- and
atomically rewrites ``progress.json`` on every heartbeat and checkpoint
event, **independent of the checkpoint-gated telemetry flush**.  The
file is tiny and replaced via the usual tmp + fsync + ``os.replace``
protocol, so a reader (``python -m repro.obs watch``, the run
registry's live-status column, CI) always sees a complete JSON object,
never a torn one.

Like everything in ``repro.obs``, the sink is a pure observer: it
never draws randomness and only does arithmetic on event payloads, so
a run with the sidecar active is bit-identical to one without it
(``tests/obs/test_determinism.py``).  A persistent write failure
degrades -- the simulation must never die for its progress file -- and
is reported once via the ``repro.obs`` logger.

Sidecar schema (``repro.progress/v1``)::

    {"schema": "repro.progress/v1", "worker": "w0",
     "status": "running" | "complete" | "interrupted",
     "phase": "phase1" | "phase3" | ..., "day": 311, "days": 728,
     "days_per_sec": 14.2, "eta_s": 29.4, "heartbeats": 12,
     "counters": {...}, "last_checkpoint": {...},
     "degraded": [...], "elapsed_s": 21.9, "updated_unix": 1754640000.0}

``updated_unix`` is the only wall-clock field (readers use it for
staleness warnings); everything else derives from the monotonic event
stream.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .logsetup import get_logger
from .sink import Sink

__all__ = [
    "PROGRESS_NAME",
    "PROGRESS_SCHEMA",
    "ProgressSink",
    "load_progress",
    "render_progress",
]

#: Sidecar file name inside a checkpoint-runner run directory.
PROGRESS_NAME = "progress.json"

PROGRESS_SCHEMA = "repro.progress/v1"

#: Counters surfaced in the sidecar snapshot (kept small on purpose --
#: the full registry still lands in ``telemetry.jsonl``).
SNAPSHOT_COUNTERS: tuple[str, ...] = (
    "auction.rows_emitted",
    "auction.queries_sampled",
    "runner.chunks_written",
    "io.degraded",
    "io.retries",
)

_log = get_logger("obs.progress")


class ProgressSink(Sink):
    """Condense the event stream into an atomically-updated sidecar."""

    def __init__(
        self,
        run_dir: str | Path,
        days: int | None = None,
        worker_id: str = "w0",
        registry=None,
        wall_clock=time.time,
    ) -> None:
        self.path = Path(run_dir) / PROGRESS_NAME
        self._wall_clock = wall_clock
        if registry is None:
            from . import metrics

            registry = metrics()
        self._registry = registry
        self._warned = False
        self.state: dict = {
            "schema": PROGRESS_SCHEMA,
            "worker": str(worker_id),
            "status": "running",
            "phase": None,
            "day": None,
            "days": days,
            "days_per_sec": None,
            "eta_s": None,
            "heartbeats": 0,
            "counters": {},
            "last_checkpoint": None,
            "degraded": [],
            "elapsed_s": 0.0,
        }

    # -- event stream --------------------------------------------------

    def emit(self, event: dict) -> None:
        kind = event.get("kind")
        if kind != "event":
            return
        name = event.get("name")
        attrs = event.get("attrs") or {}
        state = self.state
        state["elapsed_s"] = round(float(event.get("t", 0.0)), 3)
        if name == "runner.start":
            state["status"] = "running"
            if attrs.get("days") is not None:
                state["days"] = int(attrs["days"])
            self.write()
        elif name == "runner.resume":
            state["status"] = "running"
            state["phase"] = attrs.get("phase")
            if attrs.get("next_day") is not None:
                state["day"] = int(attrs["next_day"]) - 1
            self.write()
        elif name == "heartbeat":
            state["heartbeats"] += 1
            state["phase"] = attrs.get("phase")
            if attrs.get("day") is not None:
                state["day"] = int(attrs["day"])
            if attrs.get("days_per_sec") is not None:
                state["days_per_sec"] = float(attrs["days_per_sec"])
            if attrs.get("eta_s") is not None:
                state["eta_s"] = float(attrs["eta_s"])
            self.write()
        elif name == "runner.checkpoint":
            state["last_checkpoint"] = dict(attrs)
            if attrs.get("day_end") is not None:
                state["day"] = int(attrs["day_end"]) - 1
            self.write()
        elif name == "io.degraded":
            artifact = attrs.get("artifact")
            if artifact and artifact not in state["degraded"]:
                state["degraded"].append(artifact)
            self.write()
        elif name == "runner.complete":
            state["status"] = "complete"
            state["eta_s"] = 0.0
            if state["days"] is not None:
                state["day"] = int(state["days"]) - 1
            self.write()

    def mark(self, status: str) -> None:
        """Force a terminal status (the runner marks ``interrupted`` on
        the way out of a failing run) and persist it."""
        self.state["status"] = status
        self.write()

    def flush(self) -> None:
        self.write()

    # -- persistence ---------------------------------------------------

    def write(self) -> None:
        """Atomically rewrite the sidecar from the current state.

        Failures degrade (warn once, keep simulating): the sidecar is a
        convenience for watchers, never a load-bearing artifact.
        """
        snapshot = self._registry.snapshot()["counters"]
        self.state["counters"] = {
            name: snapshot[name]
            for name in SNAPSHOT_COUNTERS
            if snapshot.get(name)
        }
        payload = dict(self.state)
        payload["updated_unix"] = round(float(self._wall_clock()), 3)
        try:
            from ..records.atomic import atomic_write_text

            atomic_write_text(
                self.path,
                json.dumps(payload, sort_keys=True, separators=(",", ":"))
                + "\n",
            )
        except OSError as exc:
            if not self._warned:
                self._warned = True
                _log.warning(
                    "progress sidecar write failed (%s); the simulation "
                    "continues without live progress",
                    exc,
                )


def load_progress(run_dir: str | Path) -> dict | None:
    """The parsed sidecar of a run directory, or ``None`` when absent
    or unreadable (pre-sidecar run dirs are a normal state)."""
    path = Path(run_dir)
    if path.is_dir():
        path = path / PROGRESS_NAME
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    return payload


def _format_eta(eta_s: float | None) -> str:
    if eta_s is None:
        return "eta ?"
    eta_s = float(eta_s)
    if eta_s >= 3600:
        return f"eta {eta_s / 3600:.1f}h"
    if eta_s >= 60:
        return f"eta {eta_s / 60:.1f}m"
    return f"eta {eta_s:.0f}s"


def render_progress(progress: dict, stale_s: float | None = None) -> str:
    """One status line for a sidecar payload (watch CLI, registry)."""
    status = progress.get("status", "?")
    day = progress.get("day")
    days = progress.get("days")
    parts = [status]
    if progress.get("phase"):
        parts.append(str(progress["phase"]))
    if day is not None and days:
        done = int(day) + 1
        parts.append(f"day {done}/{days} ({done / int(days):.0%})")
    if status == "running":
        if progress.get("days_per_sec"):
            parts.append(f"{float(progress['days_per_sec']):.1f} days/s")
        parts.append(_format_eta(progress.get("eta_s")))
    checkpoint = progress.get("last_checkpoint")
    if checkpoint and checkpoint.get("day_end") is not None:
        parts.append(f"ckpt@{checkpoint['day_end']}")
    degraded = progress.get("degraded")
    if degraded:
        parts.append(f"degraded:{','.join(degraded)}")
    if stale_s is not None and stale_s > 0:
        parts.append(f"stale {stale_s:.0f}s")
    return "  ".join(parts)
