"""Resource profiler: RSS, CPU, and GC pauses per phase.

Sharding and batching decisions need the resource *envelope* of a run
-- how much resident memory each phase holds, how close to one core
the process runs, how much time cyclic GC steals -- not just wall-clock
spans.  :class:`ResourceSampler` measures exactly that with three
zero-RNG instruments:

* a **background thread** samples resident-set size from
  ``/proc/self/statm`` (falling back to ``resource.getrusage`` peak
  RSS where ``/proc`` is absent) on a wall-clock timer;
* **CPU time** comes from ``os.times()`` deltas at phase boundaries,
  giving per-phase utilization (CPU seconds / wall seconds);
* **GC pauses** are measured by a ``gc.callbacks`` pair timing each
  collection with the monotonic clock.

Nothing here touches the named RNG streams -- the sampler thread only
reads ``/proc`` and clocks, the GC callbacks only do float arithmetic
-- so a sampled run is bit-identical to an unsampled one
(``tests/obs/test_determinism.py`` pins this with the sampler active).
The sampling interval is coarse (default 50 ms) and the thread sleeps
on an :class:`threading.Event`, so total overhead stays far inside the
3% telemetry budget (``benchmarks/test_obs_overhead.py``).

The summary lands in three places: a ``{"kind": "resources"}`` event
in ``telemetry.jsonl`` (rendered by ``repro.obs report`` and compared
by ``repro.obs diff --fail-on rss=FRAC``), the ``resources`` section of
``BENCH_engine.json`` (schema v4), and notebooks via
:meth:`ResourceSampler.summary` directly.
"""

from __future__ import annotations

import gc
import os
import threading
import time
from pathlib import Path

__all__ = ["ResourceSampler", "read_rss_kb"]

#: Default wall-clock seconds between RSS samples.
DEFAULT_INTERVAL_S = 0.05

_STATM = Path("/proc/self/statm")


def _page_kb() -> float:
    try:
        return os.sysconf("SC_PAGE_SIZE") / 1024.0
    except (ValueError, OSError, AttributeError):  # pragma: no cover
        return 4.0


_PAGE_KB = _page_kb()


def read_rss_kb() -> float:
    """Current resident-set size in KiB (peak RSS where /proc is absent).

    ``/proc/self/statm`` is one short read with no allocation to speak
    of; platforms without it (macOS) fall back to ``getrusage`` peak
    RSS, which only ever grows -- still useful for the peak statistic.
    """
    try:
        fields = _STATM.read_text().split()
        return float(fields[1]) * _PAGE_KB
    except (OSError, IndexError, ValueError):
        try:
            import resource

            return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        except Exception:  # pragma: no cover - no resource module
            return 0.0


class _PhaseStats:
    """Accumulators for one phase (or the whole run)."""

    __slots__ = (
        "samples",
        "rss_sum_kb",
        "rss_peak_kb",
        "cpu_s",
        "wall_s",
        "gc_collections",
        "gc_pause_total_s",
        "gc_pause_max_s",
    )

    def __init__(self) -> None:
        self.samples = 0
        self.rss_sum_kb = 0.0
        self.rss_peak_kb = 0.0
        self.cpu_s = 0.0
        self.wall_s = 0.0
        self.gc_collections = 0
        self.gc_pause_total_s = 0.0
        self.gc_pause_max_s = 0.0

    def add_sample(self, rss_kb: float) -> None:
        self.samples += 1
        self.rss_sum_kb += rss_kb
        if rss_kb > self.rss_peak_kb:
            self.rss_peak_kb = rss_kb

    def add_gc_pause(self, pause_s: float) -> None:
        self.gc_collections += 1
        self.gc_pause_total_s += pause_s
        if pause_s > self.gc_pause_max_s:
            self.gc_pause_max_s = pause_s

    def to_dict(self) -> dict:
        mean = self.rss_sum_kb / self.samples if self.samples else 0.0
        util = self.cpu_s / self.wall_s if self.wall_s > 0 else 0.0
        return {
            "samples": self.samples,
            "rss_peak_kb": round(self.rss_peak_kb, 1),
            "rss_mean_kb": round(mean, 1),
            "cpu_s": round(self.cpu_s, 4),
            "wall_s": round(self.wall_s, 4),
            "cpu_utilization": round(util, 4),
            "gc": {
                "collections": self.gc_collections,
                "pause_total_s": round(self.gc_pause_total_s, 6),
                "pause_max_s": round(self.gc_pause_max_s, 6),
            },
        }


class ResourceSampler:
    """Background RSS/CPU/GC sampler with per-phase attribution.

    Usage (the checkpoint runner does this automatically)::

        sampler = ResourceSampler()
        sampler.start()
        sampler.set_phase("phase1"); ...run phase 1...
        sampler.set_phase("phase3"); ...run phase 3...
        summary = sampler.stop()

    ``start``/``stop`` are idempotent and the sampler is single-use:
    build a fresh one per run.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        clock=time.perf_counter,
    ) -> None:
        self.interval_s = max(0.005, float(interval_s))
        self._clock = clock
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._overall = _PhaseStats()
        self._phases: dict[str, _PhaseStats] = {}
        self._phase: str | None = None
        self._phase_t0 = 0.0
        self._phase_cpu0 = 0.0
        self._t0 = 0.0
        self._cpu0 = 0.0
        self._gc_t0: float | None = None
        self._gc_callback_installed = False

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _cpu_now(self) -> float:
        times = os.times()
        return float(times.user + times.system)

    def start(self) -> None:
        """Start the sampler thread and install the GC timing hooks."""
        if self.running:
            return
        self._t0 = self._clock()
        self._cpu0 = self._cpu_now()
        self._stop_event.clear()
        if not self._gc_callback_installed:
            gc.callbacks.append(self._on_gc)
            self._gc_callback_installed = True
        self._sample_once()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-obs-resources", daemon=True
        )
        self._thread.start()

    def stop(self) -> dict:
        """Stop sampling, close the open phase, return the summary."""
        self._stop_event.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        if self._gc_callback_installed:
            try:
                gc.callbacks.remove(self._on_gc)
            except ValueError:  # pragma: no cover - already removed
                pass
            self._gc_callback_installed = False
        self._sample_once()
        with self._lock:
            self._close_phase_locked()
            self._overall.cpu_s = self._cpu_now() - self._cpu0
            self._overall.wall_s = self._clock() - self._t0
        return self.summary()

    # -- phase attribution ---------------------------------------------

    def set_phase(self, name: str | None) -> None:
        """Attribute subsequent samples/pauses/CPU to phase ``name``
        (``None`` closes the current phase without opening another)."""
        now = self._clock()
        cpu = self._cpu_now()
        with self._lock:
            self._close_phase_locked(now, cpu)
            self._phase = name
            self._phase_t0 = now
            self._phase_cpu0 = cpu
            if name is not None and name not in self._phases:
                self._phases[name] = _PhaseStats()

    def _close_phase_locked(
        self, now: float | None = None, cpu: float | None = None
    ) -> None:
        if self._phase is None:
            return
        stats = self._phases[self._phase]
        stats.wall_s += (now if now is not None else self._clock()) - self._phase_t0
        stats.cpu_s += (cpu if cpu is not None else self._cpu_now()) - self._phase_cpu0
        self._phase = None

    # -- sampling ------------------------------------------------------

    def _sample_once(self) -> None:
        rss = read_rss_kb()
        with self._lock:
            self._overall.add_sample(rss)
            if self._phase is not None:
                self._phases[self._phase].add_sample(rss)

    def _sample_loop(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            self._sample_once()

    def _on_gc(self, phase: str, info: dict) -> None:
        if phase == "start":
            self._gc_t0 = self._clock()
        elif phase == "stop" and self._gc_t0 is not None:
            pause = self._clock() - self._gc_t0
            self._gc_t0 = None
            with self._lock:
                self._overall.add_gc_pause(pause)
                if self._phase is not None:
                    self._phases[self._phase].add_gc_pause(pause)

    # -- output --------------------------------------------------------

    def summary(self) -> dict:
        """JSON-ready summary: overall + per-phase envelopes."""
        with self._lock:
            return {
                "interval_s": self.interval_s,
                "overall": self._overall.to_dict(),
                "phases": {
                    name: stats.to_dict()
                    for name, stats in sorted(self._phases.items())
                },
            }
