"""Batched account materialization (the Phase-1 hot path).

:func:`materialize_account_batch` is a draw-for-draw replay of
:func:`repro.behavior.factory.materialize_account` that produces
bit-identical output -- same entities, same offers, same RNG stream
state afterwards -- at a fraction of the cost.  The scalar factory is
retained as the differential oracle; the equivalence rests on a small
set of numpy facts the tests pin down:

* ``Generator.random(n)`` yields the same doubles as ``n`` successive
  ``Generator.random()`` calls, so a run of consecutive same-stream
  uniform draws can be issued as one array call.
* ``Generator.choice(n, p=w)`` consumes exactly one uniform and inverts
  it through ``w``'s normalized cumulative sum with a right-sided
  ``searchsorted`` -- precomputing that CDF (see
  :func:`repro.rng.choice_cdf`) replaces each ``choice`` call, value
  and state, without re-validating ``p`` every time.
* ``bisect.bisect_right`` on the CDF as a Python list returns the same
  index as the array ``searchsorted`` (both are right-sided binary
  searches over the identical float64 values), at a fraction of the
  call overhead -- the per-bid match-type draw uses it.

Draws that cannot batch -- ones whose *presence* depends on an earlier
draw, like the brand-avoidance re-draw or the per-entity maintenance
schedule -- stay scalar but drop the per-call fat: cached CDF tables
instead of ``choice``'s argument validation, tuple lookups instead of
per-call dict construction.

Entity *construction* is decoupled from the draws entirely.  The draw
loop records plain columns (pool indices, match codes, floats); the
objects are built afterwards in bulk.  For fraudulent accounts that
happens immediately -- the detection pipeline's content filter reads
the actual ad copy and keywords.  For legitimate accounts nothing
downstream looks at entities until after :meth:`MaterializedAccount.trim`
fixes the dormancy cutoff, so construction is deferred into ``trim``
via :class:`_PendingEntities` and only the *surviving* entities are
ever built -- at full scale roughly a third of all draws fall after
the account's dormancy and are discarded unbuilt.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right

import numpy as np

from .. import obs
from ..auction.quality import MATCH_RELEVANCE
from ..config import SimulationConfig
from ..entities.ad import Ad
from ..entities.advertiser import Advertiser
from ..entities.campaign import Campaign
from ..entities.enums import MatchType
from ..entities.keyword import KeywordBid
from ..taxonomy.adcopy import AdCopy, render_ad, templates_for
from ..taxonomy.geography import country as country_info
from ..taxonomy.keywords import evasive_keyword_tables, keyword_cdf, keyword_pool
from ..taxonomy.verticals import vertical as vertical_info
from .factory import (
    FRAUD_KEYWORD_ZIPF,
    MAX_INDEXED_OFFERS_PER_CAMPAIGN,
    CampaignBidStats,
    IdAllocator,
    MaterializedAccount,
    Offer,
    _assign_mod_counts,
    _creation_times,
    _destination_domains,
)
from .profiles import AdvertiserProfile

__all__ = ["materialize_account_batch"]

#: Match types in stream-draw order; index ``i`` is also the match code
#: (:data:`repro.records.codes.MATCH_CODES` uses the same ordering).
_MATCH_TYPES: tuple[MatchType, ...] = (
    MatchType.EXACT,
    MatchType.PHRASE,
    MatchType.BROAD,
)
_MATCH_RELEVANCE: tuple[float, ...] = tuple(
    MATCH_RELEVANCE[mt] for mt in _MATCH_TYPES
)

# Observability handles (repro.obs): plain attribute bumps driven by
# values the draw loop computed anyway -- no RNG stream is touched.
# ``draws_recorded`` counts recorded draw columns (ad creations,
# keyword picks, maintenance events); ``entities_built`` counts the
# Ad/KeywordBid objects actually constructed, which for legitimate
# accounts is the post-trim survivor set only.
_ACCOUNTS_MATERIALIZED = obs.counter("population.accounts_materialized")
_DRAWS_RECORDED = obs.counter("population.draws_recorded")
_ENTITIES_BUILT = obs.counter("population.entities_built")


class _PendingEntities:
    """Recorded draw columns awaiting entity construction.

    ``finalize(account, end_time)`` builds the Ad/KeywordBid/Offer
    objects whose creation time falls strictly before ``end_time``
    (``None`` keeps everything) and attaches them exactly where the
    scalar factory followed by ``trim(end_time)`` would leave them --
    same objects, same order, same ``modified_count`` assignment.
    """

    __slots__ = (
        "campaigns",
        "ad_ids",
        "copies",
        "engagements",
        "ad_campaign_ids",
        "ad_domains",
        "kw_idx_cols",
        "mcode_cols",
        "max_bid_cols",
        "created_cols",
        "offer_records",
    )

    def __init__(
        self,
        campaigns: list[Campaign],
        ad_ids: list[int],
        copies: list[AdCopy],
        engagements: list[float],
        ad_campaign_ids: list[int],
        ad_domains: list[str],
        kw_idx_cols: list[list[int]],
        mcode_cols: list[list[int]],
        max_bid_cols: list[list[float]],
        created_cols: list[list[float]],
        offer_records: list[tuple],
    ) -> None:
        self.campaigns = campaigns
        self.ad_ids = ad_ids
        self.copies = copies
        self.engagements = engagements
        self.ad_campaign_ids = ad_campaign_ids
        self.ad_domains = ad_domains
        self.kw_idx_cols = kw_idx_cols
        self.mcode_cols = mcode_cols
        self.max_bid_cols = max_bid_cols
        self.created_cols = created_cols
        self.offer_records = offer_records

    def finalize(
        self, account: MaterializedAccount, end_time: float | None
    ) -> None:
        """Build surviving entities onto ``account`` (see class doc)."""
        campaigns = self.campaigns
        n_campaigns = len(campaigns)
        n_ads_full = len(self.ad_ids)
        # Pre-trim totals drive the modification-count split exactly as
        # the scalar path's _assign_mod_counts (which runs before trim).
        ad_mods_full = account.ad_mod_times
        kw_mods_full = account.kw_mod_times
        max_bid_cols = self.max_bid_cols
        n_bids_full = sum(len(col) for col in max_bid_cols)

        if end_time is None:
            n_ads = n_ads_full
        else:
            n_ads = bisect_left(account.ad_creation_times, end_time)
        ads = Ad.bulk(
            self.ad_ids[:n_ads],
            self.ad_campaign_ids[:n_ads],
            self.copies[:n_ads],
            self.ad_domains[:n_ads],
            self.ad_domains[:n_ads],
            account.ad_creation_times[:n_ads],
            self.engagements[:n_ads],
        )
        for index, ad in enumerate(ads):
            campaigns[index % n_campaigns].ads.append(ad)

        if ads and ad_mods_full:
            per_ad, remainder = divmod(len(ad_mods_full), n_ads_full)
            # Scalar assignment order is campaign-major over the
            # *pre-trim* ad list; campaign ``c`` owned ads
            # ``c, c+n, c+2n, ...`` so its pre-trim count is derivable.
            offset = 0
            for pos, campaign in enumerate(campaigns):
                for j, ad in enumerate(campaign.ads):
                    ad.modified_count = per_ad + (1 if offset + j < remainder else 0)
                offset += (n_ads_full - pos + n_campaigns - 1) // n_campaigns

        bids_by_campaign: list[list[KeywordBid]] = []
        bid_stats: list[CampaignBidStats] = []
        bid_offset = 0
        n_bids_kept = 0
        if n_bids_full and kw_mods_full:
            per_bid, bid_remainder = divmod(len(kw_mods_full), n_bids_full)
        else:
            per_bid = bid_remainder = 0
        assign_bid_mods = bool(n_bids_full and kw_mods_full)
        for pos, campaign in enumerate(campaigns):
            kw_idx_col = self.kw_idx_cols[pos]
            mcode_col = self.mcode_cols[pos]
            max_bid_col = max_bid_cols[pos]
            created_col = self.created_cols[pos]
            full = len(max_bid_col)
            if end_time is None:
                keep = full
            else:
                keep = bisect_left(created_col, end_time)
                if keep != full:
                    kw_idx_col = kw_idx_col[:keep]
                    mcode_col = mcode_col[:keep]
                    max_bid_col = max_bid_col[:keep]
                    created_col = created_col[:keep]
            pool = keyword_pool(campaign.vertical)
            bids = KeywordBid.bulk(
                [pool[i] for i in kw_idx_col],
                [_MATCH_TYPES[c] for c in mcode_col],
                max_bid_col,
                created_col,
            )
            if assign_bid_mods:
                for j, bid in enumerate(bids):
                    bid.modified_count = per_bid + (
                        1 if bid_offset + j < bid_remainder else 0
                    )
            campaign.bids = bids
            bids_by_campaign.append(bids)
            bid_stats.append(
                CampaignBidStats(
                    mcodes=np.asarray(mcode_col, dtype=np.int8),
                    max_bids=np.asarray(max_bid_col, dtype=np.float64),
                    created=np.asarray(created_col, dtype=np.float64),
                )
            )
            bid_offset += full
            n_bids_kept += keep

        offers = account.offers
        for (
            ad_index,
            pos,
            bid_pos,
            kw_index,
            match_idx,
            quality,
            click_quality,
            created,
        ) in self.offer_records:
            if end_time is not None and created >= end_time:
                # Offer records are in global ad order, hence sorted by
                # creation time: nothing later survives either.
                break
            campaign = campaigns[pos]
            offers.append(
                Offer(
                    advertiser=account.advertiser,
                    profile=account.profile,
                    vertical=campaign.vertical,
                    country=campaign.target_country,
                    ad=ads[ad_index],
                    bid=bids_by_campaign[pos][bid_pos],
                    kw_index=kw_index,
                    quality=quality,
                    click_quality=click_quality,
                    active_from=created,
                )
            )

        _ENTITIES_BUILT.inc(len(ads) + n_bids_kept + n_campaigns)
        account.bid_stats = bid_stats
        if end_time is not None:
            account.ad_creation_times = account.ad_creation_times[:n_ads]
            account.kw_creation_times = account.kw_creation_times[:n_bids_kept]
            account.ad_mod_times = [t for t in ad_mods_full if t < end_time]
            account.kw_mod_times = [t for t in kw_mods_full if t < end_time]


def materialize_account_batch(
    advertiser: Advertiser,
    profile: AdvertiserProfile,
    first_ad_time: float,
    horizon: float,
    config: SimulationConfig,
    ids: IdAllocator,
    rng: np.random.Generator,
) -> MaterializedAccount:
    """Create campaigns, ads and keyword bids for an account -- fast.

    Bit-identical to :func:`repro.behavior.factory.materialize_account`
    (same entities, same ``rng`` state afterwards) with two deliberate
    differences in *packaging*: :attr:`MaterializedAccount.bid_stats`
    is filled so the engine can summarize without touching every bid
    object again, and for legitimate accounts entity construction is
    deferred into the first :meth:`MaterializedAccount.trim` call,
    which builds only the entities surviving the cutoff.
    """
    account = MaterializedAccount(advertiser=advertiser, profile=profile)
    campaigns = Campaign.bulk(
        [ids.campaign_id() for _ in profile.verticals],
        advertiser.advertiser_id,
        list(profile.verticals),
        list(profile.target_countries),
        first_ad_time,
    )
    advertiser.campaigns.extend(campaigns)
    advertiser.record_first_ad(first_ad_time)

    n_ads = profile.n_ads
    domains = _destination_domains(profile, n_ads, rng)
    ad_times = _creation_times(n_ads, first_ad_time, horizon, rng)
    # Evasion is an operator *style*, decided once per account (same
    # short-circuit as the scalar path: no draw for legitimate accounts).
    evasive = profile.is_fraud and rng.random() < profile.evasion_skill

    is_fraud = profile.is_fraud
    evasion_skill = profile.evasion_skill
    exponent = FRAUD_KEYWORD_ZIPF if is_fraud else 1.1
    # Per-campaign lookup tables and accumulators, unpacked per ad in
    # the hot loop.  Keyword picks and match types are recorded as pool
    # indices / match codes; phrase tuples and enum members are only
    # materialized for entities that survive trimming.
    preps = []
    kw_idx_cols: list[list[int]] = []
    mcode_cols: list[list[int]] = []
    max_bid_cols: list[list[float]] = []
    created_cols: list[list[float]] = []
    for campaign in campaigns:
        vertical_name = campaign.vertical
        avoid = (
            is_fraud
            and evasion_skill > 0
            and vertical_name not in ("impersonation", "phishing")
        )
        kcdf = keyword_cdf(vertical_name, exponent)
        if avoid:
            risky, safe, safe_cdf = evasive_keyword_tables(
                vertical_name, exponent
            )
            safe = safe.tolist()
            safe_cdf = safe_cdf.tolist()
        else:
            risky = safe = safe_cdf = None
        kw_idx_col: list[int] = []
        mcode_col: list[int] = []
        max_bid_col: list[float] = []
        created_col: list[float] = []
        kw_idx_cols.append(kw_idx_col)
        mcode_cols.append(mcode_col)
        max_bid_cols.append(max_bid_col)
        created_cols.append(created_col)
        preps.append(
            (
                vertical_name,
                campaign.campaign_id,
                vertical_info(vertical_name).base_ctr,
                templates_for(vertical_name),
                kcdf,
                kcdf.tolist(),
                avoid,
                risky,
                safe,
                safe_cdf,
                kw_idx_col,
                mcode_col,
                max_bid_col,
                created_col,
            )
        )

    n_campaigns = len(campaigns)
    n_domains = len(domains)
    kw_per_ad = profile.kw_per_ad
    mod_rate = profile.mod_rate_per_entity
    default_bid = config.auction.default_max_bid
    default_clamped = max(0.05, default_bid)
    levels = profile.bid_levels
    mult_table = (levels.exact, levels.phrase, levels.broad)
    mcdf = profile.match_mix.cdf().tolist()
    rel = _MATCH_RELEVANCE
    max_indexed = MAX_INDEXED_OFFERS_PER_CAMPAIGN
    aq_rank = advertiser.quality * profile.rank_gaming
    aq_click = advertiser.quality * profile.realized_ctr_factor

    rand = rng.random
    lognormal = rng.lognormal
    normal = rng.normal
    poisson = rng.poisson
    uniform = rng.uniform
    integers = rng.integers
    np_exp = np.exp
    bisect = bisect_right

    ad_ids = [ids.ad_id() for _ in range(n_ads)]
    copies: list[AdCopy] = []
    engagements: list[float] = []
    ad_campaign_ids: list[int] = []
    ad_domains: list[str] = []
    ad_creation_times: list[float] = []
    kw_creation_times: list[float] = []
    ad_mod_times: list[float] = []
    kw_mod_times: list[float] = []
    indexed = [0] * n_campaigns
    # (ad_index, campaign_pos, bid_pos, kw_index, match_idx, quality,
    #  click_quality, created) -- Offer objects are built at finalize
    # time so they can reference the real Ad/bid objects.
    offer_records: list[tuple] = []
    offer_append = offer_records.append

    for ad_index, created in enumerate(ad_times):
        pos = ad_index % n_campaigns
        (
            vertical_name,
            campaign_id,
            base_ctr,
            templates,
            kcdf,
            kcdf_list,
            avoid,
            risky,
            safe,
            safe_cdf,
            kw_idx_col,
            mcode_col,
            max_bid_col,
            created_col,
        ) = preps[pos]
        if evasive:
            copy = render_ad(vertical_name, rng, evasive=True)
        else:
            copy = templates[int(integers(len(templates)))]
        engagement = float(lognormal(0.0, 0.25))
        copies.append(copy)
        engagements.append(engagement)
        ad_campaign_ids.append(campaign_id)
        ad_domains.append(domains[ad_index % n_domains])
        ad_creation_times.append(created)

        span = horizon - created
        has_mods = span > 0 and mod_rate > 0
        if has_mods:
            rate_span = mod_rate * span
            count = poisson(rate_span)
            if count:
                ad_mod_times += uniform(created, horizon, size=int(count)).tolist()
        else:
            rate_span = 0.0

        if avoid:
            picks = []
            n_safe = len(safe)
            for _ in range(kw_per_ad):
                index = bisect(kcdf_list, rand())
                if risky[index] and rand() < evasion_skill:
                    if n_safe:
                        index = safe[bisect(safe_cdf, rand())]
                picks.append(index)
        elif kw_per_ad <= 16:
            picks = [bisect(kcdf_list, u) for u in rand(kw_per_ad).tolist()]
        else:
            picks = kcdf.searchsorted(rand(kw_per_ad), side="right").tolist()

        quality_base = aq_rank * engagement * base_ctr
        click_base = aq_click * engagement * base_ctr
        n_indexed = indexed[pos]
        n_before = len(max_bid_col)
        kw_append = kw_idx_col.append
        mc_append = mcode_col.append
        mb_append = max_bid_col.append
        seen: set[int] = set()
        seen_add = seen.add
        for kw_index in picks:
            match_idx = bisect(mcdf, rand())
            key = kw_index * 3 + match_idx
            if key in seen:
                continue
            seen_add(key)
            multiplier = mult_table[match_idx]
            if multiplier == 1.0:
                max_bid = default_clamped
            else:
                max_bid = max(
                    0.05,
                    default_bid * multiplier * float(np_exp(normal(0.0, 0.15))),
                )
            kw_append(kw_index)
            mc_append(match_idx)
            mb_append(max_bid)
            if has_mods:
                count = poisson(rate_span)
                if count:
                    kw_mod_times += uniform(
                        created, horizon, size=int(count)
                    ).tolist()
            if n_indexed < max_indexed:
                offer_append(
                    (
                        ad_index,
                        pos,
                        len(max_bid_col) - 1,
                        kw_index,
                        match_idx,
                        quality_base * rel[match_idx],
                        click_base * rel[match_idx],
                        created,
                    )
                )
                n_indexed += 1
        indexed[pos] = n_indexed
        n_accepted = len(max_bid_col) - n_before
        if n_accepted:
            chunk = [created] * n_accepted
            created_col += chunk
            kw_creation_times += chunk

    account.ad_creation_times = ad_creation_times
    account.kw_creation_times = kw_creation_times
    account.ad_mod_times = ad_mod_times
    account.kw_mod_times = kw_mod_times

    pending = _PendingEntities(
        campaigns,
        ad_ids,
        copies,
        engagements,
        ad_campaign_ids,
        ad_domains,
        kw_idx_cols,
        mcode_cols,
        max_bid_cols,
        created_cols,
        offer_records,
    )
    if is_fraud:
        # The detection pipeline's content filter reads the actual ad
        # copy and keywords, so fraud accounts build immediately.
        pending.finalize(account, None)
    else:
        account.pending = pending

    _ACCOUNTS_MATERIALIZED.inc()
    _DRAWS_RECORDED.inc(
        len(ad_creation_times)
        + len(kw_creation_times)
        + len(ad_mod_times)
        + len(kw_mod_times)
    )
    for campaign in campaigns:
        country_info(campaign.target_country)
    return account
