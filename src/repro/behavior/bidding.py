"""Bidding style: match-type mixes and bid levels (Section 5.3).

Calibration targets from the paper:

* ~50% of legitimate and ~60% of fraudulent advertisers have **no exact
  bids at all**; a quarter of legitimate advertisers use exact matches
  at least a third of the time, only ~10% of fraudulent ones do.
* Legitimate advertisers use broad matching <10% of the time; the
  median fraudulent advertiser uses phrase matching in half of cases.
* The median maximum bid equals the platform default for **both**
  populations; ~17% of fraudulent advertisers bid above the default on
  both exact- and phrase-type matches, versus roughly double that for
  legitimate advertisers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AuctionConfig
from ..entities.enums import AdvertiserKind, MatchType

__all__ = ["MatchMix", "BidLevels", "sample_match_mix", "sample_bid_levels"]


@dataclass(frozen=True)
class MatchMix:
    """Per-advertiser probability of choosing each match type per bid."""

    exact: float
    phrase: float
    broad: float

    def __post_init__(self) -> None:
        total = self.exact + self.phrase + self.broad
        if not np.isclose(total, 1.0):
            raise ValueError(f"match mix must sum to 1, got {total}")
        for name in ("exact", "phrase", "broad"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} proportion must be >= 0")

    def as_probs(self) -> tuple[list[MatchType], np.ndarray]:
        """(match types, probabilities) for sampling."""
        return (
            [MatchType.EXACT, MatchType.PHRASE, MatchType.BROAD],
            np.array([self.exact, self.phrase, self.broad]),
        )

    def cdf(self) -> np.ndarray:
        """Cumulative form of :meth:`as_probs`'s probabilities.

        Inverting one uniform through this table (right-sided
        ``searchsorted``) reproduces
        ``rng.choice(3, p=self.as_probs()[1])`` exactly -- the batched
        materializer's per-bid match-type draw.
        """
        from ..rng import choice_cdf

        return choice_cdf(np.array([self.exact, self.phrase, self.broad]))


@dataclass(frozen=True)
class BidLevels:
    """Per-advertiser bid multiplier (relative to default) per match type."""

    exact: float
    phrase: float
    broad: float

    def multiplier(self, match_type: MatchType) -> float:
        """Bid multiplier for one match type."""
        return {
            MatchType.EXACT: self.exact,
            MatchType.PHRASE: self.phrase,
            MatchType.BROAD: self.broad,
        }[match_type]


def _dirichlet(rng: np.random.Generator, alphas: tuple[float, ...]) -> np.ndarray:
    draw = rng.dirichlet(np.asarray(alphas))
    return draw


def sample_match_mix(kind: AdvertiserKind, rng: np.random.Generator) -> MatchMix:
    """Draw an advertiser's match-type mix.

    Zero-inflation flags model advertisers who never touch a match type
    (the paper's "60% of fraudulent advertisers do not have even a
    single exact bid"); the remaining mass is Dirichlet-distributed.
    """
    if kind is AdvertiserKind.FRAUD_PROLIFIC:
        # Prolific operators target precisely -- exact matches on the
        # head terms earn the clicks (Table 4's fraud click mix is
        # exact-heavy even though typical fraud rarely bids exact).
        no_exact = rng.random() < 0.40
        no_broad = rng.random() < 0.40
        alphas = (1.6, 2.8, 0.7)
    elif kind.is_fraud:
        # Account-level zero-inflation composes with small bid counts:
        # ~0.45 here lands the *effective* zero-exact share near the
        # paper's 60% (few-bid accounts add sampling zeros on top).
        no_exact = rng.random() < 0.45
        no_broad = rng.random() < 0.30
        alphas = (1.2, 3.0, 1.2)
    else:
        no_exact = rng.random() < 0.50
        no_broad = rng.random() < 0.45
        alphas = (4.5, 1.2, 0.7)
    weights = _dirichlet(rng, alphas)
    if no_exact:
        weights[0] = 0.0
    if no_broad:
        weights[2] = 0.0
    if weights.sum() <= 0:
        weights = np.array([0.0, 1.0, 0.0])
    weights = weights / weights.sum()
    return MatchMix(float(weights[0]), float(weights[1]), float(weights[2]))


def sample_bid_levels(
    kind: AdvertiserKind,
    value_per_click: float,
    rng: np.random.Generator,
    auction: AuctionConfig,
) -> BidLevels:
    """Draw bid multipliers relative to the platform default bid.

    Most advertisers leave the default untouched (hence the median max
    bid equals the default); those who customize scale with their
    vertical's value per click.  Fraudulent advertisers customize
    upward about half as often as legitimate ones.
    """
    if value_per_click <= 0:
        raise ValueError("value_per_click must be > 0")
    keeps_default = rng.random() < (0.62 if kind.is_fraud else 0.35)
    if kind is AdvertiserKind.FRAUD_PROLIFIC:
        keeps_default = rng.random() < 0.20
    value_ratio = value_per_click / auction.default_max_bid

    # Fraud customizers anchor lower than legitimate ones: many have no
    # intention of paying, but over-bidding draws scrutiny (only ~17%
    # of fraud bids above default on both exact and phrase).
    anchor_factor = 0.50 if kind.is_fraud else 0.75

    def one_level() -> float:
        """Sample one match type's bid multiplier."""
        if keeps_default:
            return 1.0
        # Customizers anchor on a fraction of their click value, noisy.
        anchor = max(0.4, value_ratio ** 0.85 * anchor_factor)
        noise = float(np.exp(rng.normal(0.0, 0.55)))
        return max(0.2, anchor * noise)

    return BidLevels(one_level(), one_level(), one_level())
