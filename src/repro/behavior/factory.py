"""Materialize behaviour profiles into marketplace entities.

Given an :class:`AdvertiserProfile`, the factory creates the account,
its campaigns, ads and keyword bids, with creation timestamps staggered
over the account's life, and pre-samples maintenance (modification)
events.  After the detection pipeline fixes the account's end time, the
materialization is trimmed so nothing is "created" after shutdown.

Performance note: only a bounded number of keyword offers per campaign
enter the auction *index* (``MAX_INDEXED_OFFERS_PER_CAMPAIGN``); very
large legitimate accounts keep their full ad/keyword inventory for the
behavioural analyses (Figure 7) while competing in auctions through a
representative sample.  Activity scaling compensates for volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..auction.quality import quality_score
from ..config import SimulationConfig
from ..entities.ad import Ad
from ..entities.advertiser import Advertiser
from ..entities.campaign import Campaign
from ..entities.domains import (
    AFFILIATE_DOMAINS,
    SHORTENER_DOMAINS,
    sample_domain_count,
    unique_domain,
)
from ..entities.enums import MatchType
from ..entities.keyword import KeywordBid
from ..taxonomy.adcopy import render_ad
from ..taxonomy.geography import country as country_info
from ..taxonomy.keywords import keyword_pool, keyword_weights, risky_keyword_mask
from ..taxonomy.verticals import vertical as vertical_info
from .profiles import AdvertiserProfile

__all__ = [
    "Offer",
    "CampaignBidStats",
    "MaterializedAccount",
    "IdAllocator",
    "materialize_account",
]

MAX_INDEXED_OFFERS_PER_CAMPAIGN = 40
#: Share of an account's ads posted immediately at first-ad time.
UPFRONT_AD_FRACTION = 0.7


class IdAllocator:
    """Monotonic id source for campaigns and ads."""

    def __init__(self) -> None:
        self._next_campaign = 0
        self._next_ad = 0

    def campaign_id(self) -> int:
        """Next unique campaign id."""
        self._next_campaign += 1
        return self._next_campaign

    def ad_id(self) -> int:
        """Next unique ad id."""
        self._next_ad += 1
        return self._next_ad


@dataclass
class Offer:
    """One auction-eligible (advertiser, ad, keyword bid) unit.

    Quality is precomputed: it depends only on static account/ad/
    vertical/match-type attributes.  ``kw_index`` is the keyword's
    position in its vertical's pool, used by the engine's
    pre-computed match tables.
    """

    advertiser: Advertiser
    profile: AdvertiserProfile
    vertical: str
    country: str
    ad: Ad
    bid: KeywordBid
    kw_index: int
    quality: float
    click_quality: float
    active_from: float

    @property
    def max_bid(self) -> float:
        """The underlying keyword bid's maximum CPC."""
        return self.bid.max_bid

    @property
    def match_type(self) -> MatchType:
        """The underlying keyword bid's match type."""
        return self.bid.match_type


@dataclass
class CampaignBidStats:
    """Parallel per-bid arrays for one campaign, for fast summarizing.

    Mirrors ``campaign.bids`` element for element (same order): the
    match code, max bid and creation day of each bid.  The batched
    materializer fills these so the engine's summary statistics come
    from three ``bincount`` calls instead of a Python loop over every
    bid object; :meth:`MaterializedAccount.trim` keeps them aligned
    with the trimmed bid lists.
    """

    mcodes: np.ndarray
    max_bids: np.ndarray
    created: np.ndarray

    def trim(self, end_time: float) -> None:
        """Drop bids created at or after ``end_time`` (same rule as trim)."""
        keep = self.created < end_time
        if not keep.all():
            self.mcodes = self.mcodes[keep]
            self.max_bids = self.max_bids[keep]
            self.created = self.created[keep]


@dataclass
class MaterializedAccount:
    """An account plus the side-structures the engine and analyses need.

    ``activity_end`` is filled in by the engine once the detection
    outcome (or dormancy) fixes when the account stops competing.
    ``bid_stats``, when present (batched materializer only), is parallel
    to ``advertiser.campaigns`` and mirrors each campaign's bid list.
    """

    advertiser: Advertiser
    profile: AdvertiserProfile
    activity_end: float = float("inf")
    offers: list[Offer] = field(default_factory=list)
    ad_creation_times: list[float] = field(default_factory=list)
    kw_creation_times: list[float] = field(default_factory=list)
    ad_mod_times: list[float] = field(default_factory=list)
    kw_mod_times: list[float] = field(default_factory=list)
    bid_stats: list[CampaignBidStats] | None = None
    #: Deferred entity columns (batched materializer, legitimate
    #: accounts only): entity objects have not been built yet and will
    #: be constructed by the first :meth:`trim` -- survivors only.
    pending: object | None = field(default=None, repr=False, compare=False)

    def destination_domains(self) -> set[str]:
        """Destination domains across all (pre-trim) ads."""
        if self.pending is not None:
            return set(self.pending.ad_domains)
        return {
            ad.destination_domain
            for campaign in self.advertiser.campaigns
            for ad in campaign.ads
        }

    def trim(self, end_time: float) -> None:
        """Drop everything scheduled after the account's end time."""
        pending = self.pending
        if pending is not None:
            self.pending = None
            pending.finalize(self, end_time)
            return
        for campaign in self.advertiser.campaigns:
            campaign.ads = [a for a in campaign.ads if a.created_day < end_time]
            campaign.bids = [b for b in campaign.bids if b.created_day < end_time]
        if self.bid_stats is not None:
            for stats in self.bid_stats:
                stats.trim(end_time)
        self.offers = [o for o in self.offers if o.active_from < end_time]
        self.ad_creation_times = [t for t in self.ad_creation_times if t < end_time]
        self.kw_creation_times = [t for t in self.kw_creation_times if t < end_time]
        self.ad_mod_times = [t for t in self.ad_mod_times if t < end_time]
        self.kw_mod_times = [t for t in self.kw_mod_times if t < end_time]


def _creation_times(
    n_ads: int, first_ad_time: float, horizon: float, rng: np.random.Generator
) -> list[float]:
    """Stagger ad creation: a burst up front, the rest over the life."""
    times = [first_ad_time]
    for _ in range(n_ads - 1):
        if rng.random() < UPFRONT_AD_FRACTION:
            times.append(first_ad_time + float(rng.exponential(0.3)))
        else:
            times.append(float(rng.uniform(first_ad_time, max(first_ad_time + 0.5, horizon))))
    return sorted(min(t, horizon) for t in times)


def _destination_domains(
    profile: AdvertiserProfile, n_ads: int, rng: np.random.Generator
) -> list[str]:
    count = sample_domain_count(rng, n_ads, profile.is_fraud)
    domains = [unique_domain(rng) for _ in range(count)]
    if profile.is_fraud and rng.random() < 0.15:
        shared = SHORTENER_DOMAINS + AFFILIATE_DOMAINS
        domains[int(rng.integers(len(domains)))] = shared[
            int(rng.integers(len(shared)))
        ]
    return domains


#: Zipf exponent for fraud keyword choice: fraudsters chase the head of
#: the demand curve harder (maximum traffic per keyword, Section 5.2),
#: which also concentrates them onto the same few phrases.
FRAUD_KEYWORD_ZIPF = 1.8


def _sample_keywords(
    vertical_name: str,
    count: int,
    is_fraud: bool,
    evasion_skill: float,
    rng: np.random.Generator,
) -> list[tuple[int, tuple[str, ...]]]:
    """Sample (pool index, phrase) pairs by Zipf popularity.

    Skilled fraudsters re-draw keywords containing blacklisted brand
    tokens (with probability ``evasion_skill`` per draw) -- except in
    impersonation/phishing, where naming the brand is the business.
    """
    pool = keyword_pool(vertical_name)
    exponent = FRAUD_KEYWORD_ZIPF if is_fraud else 1.1
    weights = keyword_weights(vertical_name, exponent=exponent)
    avoid_brands = (
        is_fraud
        and evasion_skill > 0
        and vertical_name not in ("impersonation", "phishing")
    )
    risky = risky_keyword_mask(vertical_name) if avoid_brands else None
    picks: list[int] = []
    for _ in range(count):
        index = int(rng.choice(len(pool), p=weights))
        if risky is not None and risky[index] and rng.random() < evasion_skill:
            safe = [i for i in range(len(pool)) if not risky[i]]
            if safe:
                safe_weights = weights[safe] / weights[safe].sum()
                index = int(safe[int(rng.choice(len(safe), p=safe_weights))])
        picks.append(index)
    return [(i, pool[i]) for i in picks]


def _mod_events(
    created: float, horizon: float, rate: float, rng: np.random.Generator
) -> list[float]:
    span = max(0.0, horizon - created)
    if span <= 0 or rate <= 0:
        return []
    count = int(rng.poisson(rate * span))
    if count == 0:
        return []
    return [float(t) for t in rng.uniform(created, horizon, size=count)]


def materialize_account(
    advertiser: Advertiser,
    profile: AdvertiserProfile,
    first_ad_time: float,
    horizon: float,
    config: SimulationConfig,
    ids: IdAllocator,
    rng: np.random.Generator,
) -> MaterializedAccount:
    """Create campaigns, ads and keyword bids for an account.

    Ads are split round-robin across the profile's campaigns; keyword
    bids attach to their ad's campaign.  Call
    :meth:`MaterializedAccount.trim` once the detection pipeline fixes
    the account's true end time.
    """
    account = MaterializedAccount(advertiser=advertiser, profile=profile)
    campaigns = [
        Campaign(
            campaign_id=ids.campaign_id(),
            advertiser_id=advertiser.advertiser_id,
            vertical=vertical_name,
            target_country=target,
            created_day=first_ad_time,
        )
        for vertical_name, target in zip(profile.verticals, profile.target_countries)
    ]
    advertiser.campaigns.extend(campaigns)
    advertiser.record_first_ad(first_ad_time)

    domains = _destination_domains(profile, profile.n_ads, rng)
    ad_times = _creation_times(profile.n_ads, first_ad_time, horizon, rng)
    match_types, match_probs = profile.match_mix.as_probs()
    indexed_per_campaign: dict[int, int] = {c.campaign_id: 0 for c in campaigns}
    # Evasion is an operator *style*, decided once per account: either
    # the fraudster works blacklist-safe or they do not.
    evasive = profile.is_fraud and rng.random() < profile.evasion_skill

    for ad_index, created in enumerate(ad_times):
        campaign = campaigns[ad_index % len(campaigns)]
        vert = vertical_info(campaign.vertical)
        copy = render_ad(campaign.vertical, rng, evasive=evasive)
        domain = domains[ad_index % len(domains)]
        ad = Ad(
            ad_id=ids.ad_id(),
            campaign_id=campaign.campaign_id,
            copy=copy,
            display_domain=domain,
            destination_domain=domain,
            created_day=created,
            engagement=float(rng.lognormal(0.0, 0.25)),
        )
        campaign.add_ad(ad)
        account.ad_creation_times.append(created)
        account.ad_mod_times.extend(
            _mod_events(created, horizon, profile.mod_rate_per_entity, rng)
        )

        keywords = _sample_keywords(
            campaign.vertical,
            profile.kw_per_ad,
            profile.is_fraud,
            profile.evasion_skill,
            rng,
        )
        seen: set[tuple[tuple[str, ...], MatchType]] = set()
        for kw_index, keyword in keywords:
            match_type = match_types[int(rng.choice(len(match_types), p=match_probs))]
            if (keyword, match_type) in seen:
                continue
            seen.add((keyword, match_type))
            multiplier = profile.bid_levels.multiplier(match_type)
            if multiplier == 1.0:
                # Advertisers who keep the platform default keep it
                # exactly -- the median max bid *is* the default.
                max_bid = config.auction.default_max_bid
            else:
                max_bid = (
                    config.auction.default_max_bid
                    * multiplier
                    * float(np.exp(rng.normal(0.0, 0.15)))
                )
            bid = KeywordBid(
                keyword=keyword,
                match_type=match_type,
                max_bid=max(0.05, max_bid),
                created_day=created,
            )
            campaign.add_bid(bid)
            account.kw_creation_times.append(created)
            account.kw_mod_times.extend(
                _mod_events(created, horizon, profile.mod_rate_per_entity, rng)
            )
            if indexed_per_campaign[campaign.campaign_id] < MAX_INDEXED_OFFERS_PER_CAMPAIGN:
                indexed_per_campaign[campaign.campaign_id] += 1
                account.offers.append(
                    Offer(
                        advertiser=advertiser,
                        profile=profile,
                        vertical=campaign.vertical,
                        country=campaign.target_country,
                        ad=ad,
                        bid=bid,
                        kw_index=kw_index,
                        quality=quality_score(
                            advertiser.quality * profile.rank_gaming,
                            ad.engagement,
                            vert.base_ctr,
                            match_type,
                        ),
                        click_quality=quality_score(
                            advertiser.quality * profile.realized_ctr_factor,
                            ad.engagement,
                            vert.base_ctr,
                            match_type,
                        ),
                        active_from=created,
                    )
                )

    # Distribute modification counts back onto entities (coarsely: the
    # per-entity count only feeds aggregate statistics).
    _assign_mod_counts(campaigns, account)
    # Sanity: country info must exist for every campaign target.
    for campaign in campaigns:
        country_info(campaign.target_country)
    return account


def _assign_mod_counts(
    campaigns: list[Campaign], account: MaterializedAccount
) -> None:
    ads = [ad for c in campaigns for ad in c.ads]
    bids = [bid for c in campaigns for bid in c.bids]
    if ads and account.ad_mod_times:
        per_ad = len(account.ad_mod_times) // len(ads)
        remainder = len(account.ad_mod_times) % len(ads)
        for index, ad in enumerate(ads):
            ad.modified_count = per_ad + (1 if index < remainder else 0)
    if bids and account.kw_mod_times:
        per_bid = len(account.kw_mod_times) // len(bids)
        remainder = len(account.kw_mod_times) % len(bids)
        for index, bid in enumerate(bids):
            bid.modified_count = per_bid + (1 if index < remainder else 0)
