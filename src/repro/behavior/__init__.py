"""Advertiser behaviour models: profiles, bidding styles, materialization."""

from .batch import materialize_account_batch
from .bidding import BidLevels, MatchMix, sample_bid_levels, sample_match_mix
from .factory import (
    CampaignBidStats,
    IdAllocator,
    MaterializedAccount,
    Offer,
    materialize_account,
)
from .fraudulent import sample_fraud_profile
from .legitimate import sample_legitimate_profile
from .profiles import ACTIVITY_NORM, AdvertiserProfile

__all__ = [
    "AdvertiserProfile",
    "ACTIVITY_NORM",
    "MatchMix",
    "BidLevels",
    "sample_match_mix",
    "sample_bid_levels",
    "sample_legitimate_profile",
    "sample_fraud_profile",
    "CampaignBidStats",
    "IdAllocator",
    "MaterializedAccount",
    "Offer",
    "materialize_account",
    "materialize_account_batch",
]
