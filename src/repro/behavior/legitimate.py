"""Legitimate advertiser profile sampling."""

from __future__ import annotations

import numpy as np

from ..config import SimulationConfig
from ..entities.enums import AdvertiserKind
from ..rng import draw_index
from ..taxonomy.geography import (
    home_targeting_prob,
    nonfraud_registration_cdf,
    query_volume_cdf,
)
from ..taxonomy.verticals import nonfraud_vertical_weights, vertical
from .bidding import sample_bid_levels, sample_match_mix
from .profiles import AdvertiserProfile

__all__ = ["sample_legitimate_profile"]


def _sample_country(rng: np.random.Generator) -> str:
    codes, cdf = nonfraud_registration_cdf()
    return codes[draw_index(rng, cdf)]


def _sample_verticals(rng: np.random.Generator, count: int) -> list[str]:
    names, probs = nonfraud_vertical_weights()
    picks = rng.choice(len(names), size=min(count, len(names)), replace=False, p=probs)
    return [names[int(i)] for i in picks]


#: Legitimate advertisers overwhelmingly run campaigns at home; the
#: per-country home bias in the geography table models *fraud*
#: targeting (IN-registered fraud chases the US, IN businesses do not).
LEGIT_HOME_BIAS = 0.85


def _target_country(home: str, rng: np.random.Generator) -> str:
    if rng.random() < max(LEGIT_HOME_BIAS, home_targeting_prob(home)):
        return home
    codes, cdf = query_volume_cdf()
    return codes[draw_index(rng, cdf)]


def sample_legitimate_profile(
    config: SimulationConfig, rng: np.random.Generator
) -> AdvertiserProfile:
    """Draw a legitimate account's behavioural plan.

    Legitimate accounts span many verticals, keep an order of magnitude
    more ads and keywords than fraud accounts (Figure 7), and have
    heavy-tailed activity: a few big brands generate most volume.
    """
    behavior = config.behavior
    country = _sample_country(rng)
    n_campaigns = 1 + int(rng.random() < 0.35) + int(rng.random() < 0.15)
    verticals = _sample_verticals(rng, n_campaigns)
    targets = tuple(_target_country(country, rng) for _ in verticals)

    n_ads = max(1, int(rng.lognormal(behavior.nonfraud_ads_mu, behavior.nonfraud_ads_sigma)))
    kw_per_ad = max(
        1,
        int(rng.lognormal(behavior.nonfraud_kw_per_ad_mu, behavior.nonfraud_kw_per_ad_sigma)),
    )
    # Bigger accounts (more ads) also push more traffic.
    activity = float(rng.lognormal(0.0, behavior.activity_sigma)) * n_ads**0.3
    quality = float(rng.lognormal(0.0, 0.35))
    value = vertical(verticals[0]).value_per_click

    return AdvertiserProfile(
        kind=AdvertiserKind.LEGITIMATE,
        country=country,
        verticals=tuple(verticals),
        target_countries=targets,
        n_ads=n_ads,
        kw_per_ad=kw_per_ad,
        activity_scale=activity,
        quality=quality,
        match_mix=sample_match_mix(AdvertiserKind.LEGITIMATE, rng),
        bid_levels=sample_bid_levels(
            AdvertiserKind.LEGITIMATE, value, rng, config.auction
        ),
        evasion_skill=0.0,
        uses_stolen_payment=False,
        first_ad_delay=float(rng.exponential(3.0)),
        mod_rate_per_entity=0.004 * float(rng.lognormal(0.0, 0.5)),
    )
