"""Whole-horizon Phase-1 planning: one pass of draws, columnar results.

The horizon population path (:meth:`SimulationEngine.generate_population`)
splits Phase 1 into two passes instead of interleaving everything inside
a 728-iteration day loop:

* **draws** -- a single flat sweep over the horizon that performs every
  RNG draw (registration counts, creation times, profiles, screening,
  materialization, detection, dormancy) in the exact canonical order
  the day-loop path uses, recording the per-account outcomes into the
  columnar arrays held here;
* **build** -- a draw-free pass that trims each materialized account to
  its recorded activity end and assembles the account summaries.

The :class:`PopulationPlan` is the durable product of the draws pass:
whole-horizon arrays (registration days, creation times, activity ends
/ lifetimes, churn events) that downstream consumers slice per day
instead of re-looping -- ``registration_day`` is nondecreasing by
construction, so :meth:`PopulationPlan.day_slice` is a pair of
``searchsorted`` lookups, and the per-day aggregates are ``bincount``
reductions.

Nothing in this module touches the named RNG streams: the plan records
draw *results*; the engine owns the draws.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PopulationPlan", "PlanRecorder"]


@dataclass(frozen=True)
class PopulationPlan:
    """Columnar whole-horizon record of the Phase-1 draws pass.

    All arrays are parallel over accounts in generation order (the
    order ``adv_row`` indexes); ``registration_day`` is nondecreasing.
    """

    #: Horizon length in days.
    days: int
    #: Integer day each account registered on (nondecreasing).
    registration_day: np.ndarray
    #: Exact creation time (``registration_day + U[0,1)`` draw).
    created_time: np.ndarray
    #: Study-level end of activity: shutdown time, dormancy onset, or
    #: the horizon end -- the value account summaries report.
    activity_end: np.ndarray
    #: Fraud-profile flag per account.
    is_fraud: np.ndarray
    #: True where the account materialized entities (posted its first
    #: ad inside the study and survived registration screening).
    materialized: np.ndarray
    #: Detection shutdown time, ``nan`` where never shut down.
    shutdown_time: np.ndarray

    def __len__(self) -> int:
        return len(self.registration_day)

    @property
    def lifetime(self) -> np.ndarray:
        """Observed activity span per account (``activity_end - created``)."""
        return self.activity_end - self.created_time

    def day_slice(self, day: int) -> slice:
        """Index slice of accounts registered on ``day`` (O(log n))."""
        lo = int(np.searchsorted(self.registration_day, day, side="left"))
        hi = int(np.searchsorted(self.registration_day, day, side="right"))
        return slice(lo, hi)

    def registrations_per_day(self) -> np.ndarray:
        """Accounts registered per day, length ``days``."""
        return np.bincount(self.registration_day, minlength=self.days)

    def churn_per_day(self) -> np.ndarray:
        """Churn events (shutdown or dormancy onset) bucketed by day.

        An account churns within the study when its activity ends
        before the horizon does; the event day is
        ``int(activity_end)``.  Accounts active through the study end
        contribute nothing.
        """
        ended = self.activity_end < float(self.days)
        days = self.activity_end[ended].astype(np.int64)
        return np.bincount(
            np.clip(days, 0, self.days - 1), minlength=self.days
        )

    def shutdowns_per_day(self) -> np.ndarray:
        """Detection shutdowns bucketed by ``int(shutdown_time)``."""
        shut = ~np.isnan(self.shutdown_time)
        inside = shut & (self.shutdown_time < float(self.days))
        days = self.shutdown_time[inside].astype(np.int64)
        return np.bincount(
            np.clip(days, 0, self.days - 1), minlength=self.days
        )


class PlanRecorder:
    """Accumulates per-account outcomes during the draws pass."""

    def __init__(self, days: int) -> None:
        self.days = days
        self._registration_day: list[int] = []
        self._created_time: list[float] = []
        self._activity_end: list[float] = []
        self._is_fraud: list[bool] = []
        self._materialized: list[bool] = []
        self._shutdown_time: list[float] = []

    def record(
        self,
        day: int,
        created_time: float,
        activity_end: float,
        is_fraud: bool,
        materialized: bool,
        shutdown_time: float | None,
    ) -> None:
        self._registration_day.append(day)
        self._created_time.append(created_time)
        self._activity_end.append(activity_end)
        self._is_fraud.append(is_fraud)
        self._materialized.append(materialized)
        self._shutdown_time.append(
            float("nan") if shutdown_time is None else float(shutdown_time)
        )

    def __len__(self) -> int:
        return len(self._registration_day)

    def build(self) -> PopulationPlan:
        return PopulationPlan(
            days=self.days,
            registration_day=np.asarray(self._registration_day, dtype=np.int64),
            created_time=np.asarray(self._created_time, dtype=np.float64),
            activity_end=np.asarray(self._activity_end, dtype=np.float64),
            is_fraud=np.asarray(self._is_fraud, dtype=np.bool_),
            materialized=np.asarray(self._materialized, dtype=np.bool_),
            shutdown_time=np.asarray(self._shutdown_time, dtype=np.float64),
        )
