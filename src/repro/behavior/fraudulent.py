"""Fraudulent advertiser profile sampling.

Two populations (Section 4.2, Figure 4): the *typical* fraud account --
short-lived, few ads, affiliate-program monetization, often running on
stolen payment instruments -- and the *prolific* operator, who invests
in evasion, focuses on one or two lucrative verticals (third-party tech
support above all), pays very large bills over long periods, and
dominates fraudulent spend and clicks.
"""

from __future__ import annotations

import numpy as np

from ..config import SimulationConfig
from ..entities.enums import AdvertiserKind
from ..rng import draw_index
from ..taxonomy.geography import (
    fraud_registration_cdf,
    home_targeting_prob,
    market_attractiveness_cdf,
)
from ..taxonomy.verticals import (
    fraud_vertical_weights,
    prolific_vertical_weights,
    vertical,
)
from .bidding import sample_bid_levels, sample_match_mix
from .profiles import AdvertiserProfile

__all__ = ["sample_fraud_profile"]


def _sample_country(rng: np.random.Generator) -> str:
    codes, cdf = fraud_registration_cdf()
    return codes[draw_index(rng, cdf)]


def _sample_verticals(
    kind: AdvertiserKind,
    rng: np.random.Generator,
    banned: tuple[str, ...] = (),
) -> list[str]:
    if kind is AdvertiserKind.FRAUD_PROLIFIC:
        names, probs = prolific_vertical_weights()
        count = 1 + int(rng.random() < 0.3)
    else:
        names, probs = fraud_vertical_weights()
        # Easy affiliate programs: often several campaigns at once.
        count = 1 + int(rng.random() < 0.45) + int(rng.random() < 0.2)
    if banned:
        keep = [i for i, name in enumerate(names) if name not in banned]
        names = [names[i] for i in keep]
        probs = probs[keep] / probs[keep].sum()
    picks = rng.choice(len(names), size=min(count, len(names)), replace=False, p=probs)
    return [names[int(i)] for i in picks]


def _target_country(home: str, rng: np.random.Generator) -> str:
    if rng.random() < home_targeting_prob(home):
        return home
    codes, cdf = market_attractiveness_cdf()
    return codes[draw_index(rng, cdf)]


def sample_fraud_profile(
    config: SimulationConfig,
    rng: np.random.Generator,
    prolific: bool,
    banned_verticals: tuple[str, ...] = (),
) -> AdvertiserProfile:
    """Draw a fraudulent account's behavioural plan.

    ``banned_verticals`` models fraudster adaptation to policy: once a
    vertical's ban is common knowledge, new entrants avoid it (the
    paper's Figure 8 shows the tech-support collapse is persistent, not
    a transient purge).
    """
    behavior = config.behavior
    kind = AdvertiserKind.FRAUD_PROLIFIC if prolific else AdvertiserKind.FRAUD_TYPICAL
    country = _sample_country(rng)
    verticals = _sample_verticals(kind, rng, banned_verticals)
    targets = tuple(_target_country(country, rng) for _ in verticals)

    if prolific:
        n_ads = max(2, int(rng.lognormal(1.8, 0.9)))
        kw_per_ad = max(1, int(rng.lognormal(1.1, 0.6)))
        activity = (
            float(rng.lognormal(0.2, 1.5))
            * behavior.fraud_activity_boost
            * behavior.prolific_activity_boost
        )
        quality = float(rng.lognormal(0.26, 0.40))
        evasion = float(rng.beta(8.0, 2.0))
        stolen = rng.random() < 0.15
        first_ad_delay = float(rng.exponential(1.0))
    else:
        n_ads = max(1, int(rng.lognormal(behavior.fraud_ads_mu, behavior.fraud_ads_sigma)))
        kw_per_ad = max(
            1,
            int(rng.lognormal(behavior.fraud_kw_per_ad_mu, behavior.fraud_kw_per_ad_sigma)),
        )
        activity = (
            float(rng.lognormal(0.0, behavior.activity_sigma))
            * behavior.fraud_activity_boost
        )
        quality = float(rng.lognormal(-0.16, 0.35))
        evasion = float(rng.beta(2.0, 5.0))
        stolen = rng.random() < config.detection.payment_fraud_prob
        first_ad_delay = float(rng.exponential(0.5))

    value = vertical(verticals[0]).value_per_click
    rank_gaming = 1.70 if prolific else 1.60
    realized_ctr_factor = 1.05 if prolific else 0.90
    return AdvertiserProfile(
        kind=kind,
        country=country,
        verticals=tuple(verticals),
        target_countries=targets,
        n_ads=n_ads,
        kw_per_ad=kw_per_ad,
        activity_scale=activity,
        quality=quality,
        match_mix=sample_match_mix(kind, rng),
        bid_levels=sample_bid_levels(kind, value, rng, config.auction),
        evasion_skill=evasion,
        uses_stolen_payment=stolen,
        first_ad_delay=first_ad_delay,
        mod_rate_per_entity=0.004 * float(rng.lognormal(0.0, 0.5)),
        rank_gaming=rank_gaming,
        realized_ctr_factor=realized_ctr_factor,
    )
