"""Advertiser behaviour profiles.

A profile captures everything the simulator needs to know about how an
account *intends* to behave: which verticals and markets it targets,
how many ads and keywords it runs, its bidding style, activity level,
evasion investment, and churn rates.  Profiles are sampled by
:mod:`repro.behavior.legitimate` and :mod:`repro.behavior.fraudulent`
and materialized into entities by :mod:`repro.behavior.factory`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..entities.enums import AdvertiserKind
from .bidding import BidLevels, MatchMix

__all__ = ["AdvertiserProfile"]

#: Activity scale at which an account participates in every matching
#: auction; smaller scales participate proportionally less often
#: (budget/dayparting abstraction).
ACTIVITY_NORM = 60.0


@dataclass(frozen=True)
class AdvertiserProfile:
    """Sampled behavioural plan for one account.

    Attributes:
        kind: Population (legitimate / typical fraud / prolific fraud).
        country: Registration country code.
        verticals: Vertical names the account runs campaigns in; fraud
            accounts in easy affiliate programs often advertise several
            programs at once, prolific operators focus on one or two.
        target_countries: Market per campaign, parallel to ``verticals``.
        n_ads: Total ads the account will create over its life.
        kw_per_ad: Keyword bids created per ad.
        activity_scale: Traffic multiplier; see ``participation_prob``.
        quality: Intrinsic targeting quality (enters quality score).
        match_mix: Match-type mix for keyword bids.
        bid_levels: Bid multipliers relative to the platform default.
        evasion_skill: [0, 1] investment in blacklist evasion.
        uses_stolen_payment: Payment-instrument fraud flag.
        first_ad_delay: Days between registration and first ad.
        mod_rate_per_entity: Daily modification rate per ad/keyword
            ("fraudulent advertisers appear to maintain their ads and
            keyword sets at rates similar to other advertisers").
    """

    kind: AdvertiserKind
    country: str
    verticals: tuple[str, ...]
    target_countries: tuple[str, ...]
    n_ads: int
    kw_per_ad: int
    activity_scale: float
    quality: float
    match_mix: MatchMix
    bid_levels: BidLevels
    evasion_skill: float
    uses_stolen_payment: bool
    first_ad_delay: float
    mod_rate_per_entity: float
    #: Multiplier applied to the platform's *estimated* quality for this
    #: account's ads (fraud games the CTR estimator with clickbait).
    rank_gaming: float = 1.0
    #: Multiplier applied to the *realized* click quality (the paper:
    #: typical fraud CTR is slightly lower than legitimate; the top
    #: spenders' slightly higher).
    realized_ctr_factor: float = 1.0

    def __post_init__(self) -> None:
        if len(self.verticals) != len(self.target_countries):
            raise ValueError("verticals and target_countries must align")
        if not self.verticals:
            raise ValueError("profile needs at least one vertical")
        if self.n_ads < 1:
            raise ValueError("n_ads must be >= 1")
        if self.kw_per_ad < 1:
            raise ValueError("kw_per_ad must be >= 1")
        if self.activity_scale <= 0 or self.quality <= 0:
            raise ValueError("activity_scale and quality must be > 0")
        if not 0.0 <= self.evasion_skill <= 1.0:
            raise ValueError("evasion_skill must be in [0, 1]")
        if self.first_ad_delay < 0:
            raise ValueError("first_ad_delay must be >= 0")
        if self.mod_rate_per_entity < 0:
            raise ValueError("mod_rate_per_entity must be >= 0")
        if self.rank_gaming <= 0 or self.realized_ctr_factor <= 0:
            raise ValueError("quality factors must be > 0")

    @property
    def is_fraud(self) -> bool:
        """Ground-truth fraud flag."""
        return self.kind.is_fraud

    @property
    def primary_vertical(self) -> str:
        """The account's first (main) vertical."""
        return self.verticals[0]

    @property
    def participation_prob(self) -> float:
        """Probability the account competes in any given matching auction."""
        return min(1.0, self.activity_scale / ACTIVITY_NORM)
