"""In-process simulation cache.

Experiments and benchmarks share simulations: every figure of a paper
section is computed from the same underlying logs.  The cache keys on
the full configuration, so ablations (which modify the config) get
their own runs.

The cache is a bounded LRU: full-scale results hold multi-million-row
impression tables, so an unbounded dict would grow without limit across
a long ablation sweep.  Capacity defaults to
:data:`DEFAULT_CACHE_CAPACITY`, can be set via the
``REPRO_SIM_CACHE_SIZE`` environment variable (read lazily, at first
cache use, so a malformed value surfaces as a :class:`ConfigError` from
the operation that needed it rather than an import-time crash), and at
runtime via :func:`set_cache_capacity`.  Least-recently-*used* entries
are evicted (a cache hit refreshes recency).
"""

from __future__ import annotations

import os
from collections import OrderedDict

from .. import obs
from ..config import SimulationConfig
from ..errors import ConfigError
from .engine import run_simulation
from .results import SimulationResult

__all__ = [
    "DEFAULT_CACHE_CAPACITY",
    "cached_simulation",
    "clear_cache",
    "seed_cache",
    "set_cache_capacity",
]

#: Default number of simulation results kept alive.
DEFAULT_CACHE_CAPACITY = 8

_CACHE: OrderedDict[SimulationConfig, SimulationResult] = OrderedDict()

# Cache telemetry (repro.obs): hit/miss/eviction counters surface how
# well experiment sweeps share simulations.
_HITS = obs.counter("simcache.hits")
_MISSES = obs.counter("simcache.misses")
_EVICTIONS = obs.counter("simcache.evictions")


def _initial_capacity() -> int:
    raw = os.environ.get("REPRO_SIM_CACHE_SIZE")
    if raw is None:
        return DEFAULT_CACHE_CAPACITY
    try:
        capacity = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_SIM_CACHE_SIZE must be an integer, got {raw!r}"
        ) from None
    if capacity < 1:
        raise ConfigError("REPRO_SIM_CACHE_SIZE must be >= 1")
    return capacity


# None means "not resolved yet": the environment variable is consulted
# on first use, not at import time, so merely importing this module (or
# anything that transitively does) cannot crash on a malformed value.
_capacity: int | None = None


def _current_capacity() -> int:
    global _capacity
    if _capacity is None:
        _capacity = _initial_capacity()
    return _capacity


def _evict() -> None:
    capacity = _current_capacity()
    while len(_CACHE) > capacity:
        _CACHE.popitem(last=False)
        _EVICTIONS.inc()


def set_cache_capacity(capacity: int) -> None:
    """Change the cache bound; evicts oldest entries if shrinking."""
    global _capacity
    if capacity < 1:
        raise ConfigError("cache capacity must be >= 1")
    _capacity = capacity
    _evict()


def cached_simulation(config: SimulationConfig) -> SimulationResult:
    """Run (or reuse) the simulation for ``config``."""
    result = _CACHE.get(config)
    if result is None:
        _MISSES.inc()
        result = run_simulation(config)
        _CACHE[config] = result
        _evict()
    else:
        _HITS.inc()
        _CACHE.move_to_end(config)
    return result


def seed_cache(config: SimulationConfig, result: SimulationResult) -> None:
    """Insert an externally produced result (e.g. a checkpointed run).

    Lets the experiment harness reuse a simulation that the checkpoint
    runner already materialized instead of re-running it.
    """
    _CACHE[config] = result
    _CACHE.move_to_end(config)
    _evict()


def clear_cache() -> None:
    """Drop all cached simulations (frees memory in long test sessions)."""
    _CACHE.clear()
