"""In-process simulation cache.

Experiments and benchmarks share simulations: every figure of a paper
section is computed from the same underlying logs.  The cache keys on
the full configuration, so ablations (which modify the config) get
their own runs.
"""

from __future__ import annotations

from ..config import SimulationConfig
from .engine import run_simulation
from .results import SimulationResult

__all__ = ["cached_simulation", "clear_cache"]

_CACHE: dict[SimulationConfig, SimulationResult] = {}


def cached_simulation(config: SimulationConfig) -> SimulationResult:
    """Run (or reuse) the simulation for ``config``."""
    result = _CACHE.get(config)
    if result is None:
        result = run_simulation(config)
        _CACHE[config] = result
    return result


def clear_cache() -> None:
    """Drop all cached simulations (frees memory in long test sessions)."""
    _CACHE.clear()
