"""The simulation engine.

Runs in three phases:

1. **Population** -- day by day, sample registrations, build profiles,
   materialize campaigns/ads/keyword bids, and run the detection
   pipeline.  Detection outcomes depend only on account attributes and
   the policy timeline, so the full population (with shutdown times)
   can be generated before any auction runs.  A detection sampled to
   land *after* the study end is discarded: that account is analysed
   as non-fraudulent, exactly as undetected fraud is at Bing.
   Materialization runs through the batched path
   (:func:`~repro.behavior.batch.materialize_account_batch`): grouped
   numpy draws on the same named streams in the same draw order as the
   scalar factory, so the population -- and everything downstream --
   is bit-identical to :meth:`SimulationEngine.generate_population_scalar`,
   the retained differential oracle.
2. **Market build** -- flatten every keyword offer into the vectorized
   :class:`~repro.simulator.market.MarketIndex`.
3. **Auctions** -- for each day, compute live offers, sample the query
   stream, run GSP auctions, sample clicks, and append impression rows.

Phase 3 is array-native: each day's queries are gathered into one flat
candidate batch (market row indices, no per-candidate objects), ranked
and priced by the batched kernel in :mod:`repro.auction.batch`, clicks
are drawn with a single vectorized Poisson call, and rows land in the
:class:`~repro.records.impressions.ImpressionBuilder` as one numpy
chunk per day.  The pre-vectorization scalar loop is retained as
:meth:`SimulationEngine.run_auctions_scalar` -- it is the differential
oracle the batched path is tested against, and because the batched path
replays the scalar path's RNG draws in the same order on the same
streams, both produce bit-identical impression tables.
"""

from __future__ import annotations

import gc

import numpy as np

from .. import obs
from ..auction.batch import run_auction_batch
from ..auction.gsp import Candidate, run_auction
from ..behavior.batch import materialize_account_batch
from ..behavior.factory import IdAllocator, MaterializedAccount, materialize_account
from ..behavior.fraudulent import sample_fraud_profile
from ..behavior.legitimate import sample_legitimate_profile
from ..behavior.profiles import AdvertiserProfile
from ..clickmodel.position_bias import examination_probability, examination_table
from ..config import SimulationConfig
from ..detection.pipeline import DetectionOutcome, DetectionPipeline
from ..entities.advertiser import Advertiser
from ..entities.enums import ShutdownReason
from ..errors import SimulationError
from ..records.codes import match_code, match_type_from_code
from ..records.impressions import ImpressionBuilder
from ..rng import stream
from ..taxonomy.geography import country as country_info
from ..taxonomy.verticals import VERTICALS
from .market import MarketIndex, bucket_keys
from .querygen import QuerySampler, match_table
from .registration import FraudShareSchedule, sample_daily_counts
from .results import AccountSummary, SimulationResult

__all__ = ["RNG_STREAMS", "SimulationEngine", "run_simulation"]

#: The five named RNG streams every run draws from, in a stable order.
#: The checkpoint runner serializes the ``bit_generator`` state of each
#: one at every checkpoint; restoring them is what makes an
#: interrupted-and-resumed run bit-identical to an uninterrupted one.
RNG_STREAMS: tuple[str, ...] = (
    "population",
    "detection",
    "market",
    "queries",
    "clicks",
)

#: Mean days before a legitimate account goes dormant (stops running
#: campaigns) -- keeps the active population roughly stationary.
LEGIT_DORMANCY_MEAN_DAYS = 300.0

# Observability handles (repro.obs).  Counter/gauge bumps are plain
# attribute adds and never touch the named RNG streams; spans use the
# monotonic clock only.  A traced run is bit-identical to an untraced
# one -- tests/obs/test_determinism.py pins that invariant.
_ROWS_EMITTED = obs.counter("auction.rows_emitted")
_QUERIES_SAMPLED = obs.counter("auction.queries_sampled")
_CANDIDATES_GATHERED = obs.counter("auction.candidates_gathered")
_CLICK_DRAWS = obs.counter("clicks.poisson_draws")
_CLICKS_DRAWN = obs.counter("clickmodel.clicks_drawn")
_DAY_ROWS = obs.histogram("auction.day_rows", obs.DEFAULT_SIZE_BUCKETS)
_ROWS_PER_S = obs.gauge("auction.rows_per_s")
_ACCOUNTS_PER_S = obs.gauge("population.accounts_per_s")
#: Days after a policy ban before new fraud entrants stop choosing the
#: banned vertical (word gets around the affiliate forums).
POLICY_LEARNING_LAG_DAYS = 30.0


def _day_throughput(days_done: int, days_total: int, elapsed: float) -> dict:
    """Heartbeat throughput/ETA attrs from a phase's day progress.

    ``{}`` when no time has elapsed yet (first heartbeat on a very
    coarse clock) so the event simply omits the fields rather than
    reporting an infinite rate.
    """
    if elapsed <= 0 or days_done <= 0:
        return {}
    rate = days_done / elapsed
    return {
        "days_per_sec": round(rate, 3),
        "eta_s": round(max(0, days_total - days_done) / rate, 1),
    }


class SimulationEngine:
    """Orchestrates one full simulation run."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        seed = config.seed
        self._rng_population = stream(seed, "population")
        self._rng_detection = stream(seed, "detection")
        self._rng_market = stream(seed, "market")
        self._rng_queries = stream(seed, "queries")
        self._rng_clicks = stream(seed, "clicks")
        self.pipeline = DetectionPipeline(
            config.detection, config.query, float(config.days)
        )
        self._ids = IdAllocator()
        self._next_advertiser_id = 0
        #: Memo for the *scalar oracle* path only.  Keys are
        #: ``(vertical, seed, decorated, shuffled)``; the reachable key
        #: space is bounded at ``n_verticals * pool_size * 3`` (the
        #: three query shapes), a few thousand entries at most.  The
        #: batched path needs no memo: it reads the arrays precomputed
        #: by :meth:`repro.simulator.querygen.MatchTable.eligible_arrays`.
        self._eligible_memo: dict[tuple[int, int, bool, bool], list] = {}
        #: Columnar whole-horizon record of the Phase-1 draws pass;
        #: populated by :meth:`generate_population` (None until then,
        #: and always None on the oracle paths).
        self.population_plan = None

    # ------------------------------------------------------------------
    # RNG stream state (checkpoint/resume support)
    # ------------------------------------------------------------------

    def _streams(self) -> dict[str, np.random.Generator]:
        return {
            "population": self._rng_population,
            "detection": self._rng_detection,
            "market": self._rng_market,
            "queries": self._rng_queries,
            "clicks": self._rng_clicks,
        }

    def rng_state(self) -> dict[str, dict]:
        """JSON-serializable ``bit_generator`` states of all five streams."""
        return {
            name: gen.bit_generator.state
            for name, gen in self._streams().items()
        }

    def set_rng_state(self, states: dict[str, dict]) -> None:
        """Restore stream states captured by :meth:`rng_state`."""
        streams = self._streams()
        if set(states) != set(streams):
            raise SimulationError(
                f"rng state must cover streams {sorted(streams)}, "
                f"got {sorted(states)}"
            )
        for name, generator in streams.items():
            generator.bit_generator.state = states[name]

    # ------------------------------------------------------------------
    # Phase 1: population
    # ------------------------------------------------------------------

    def _new_advertiser(
        self, profile: AdvertiserProfile, created_time: float
    ) -> Advertiser:
        self._next_advertiser_id += 1
        info = country_info(profile.country)
        return Advertiser(
            advertiser_id=self._next_advertiser_id,
            kind=profile.kind,
            created_time=created_time,
            country=profile.country,
            language=info.language,
            currency=info.currency,
            activity_scale=profile.activity_scale,
            quality=profile.quality,
            evasion_skill=profile.evasion_skill,
            uses_stolen_payment=profile.uses_stolen_payment,
        )

    def _summarize(
        self,
        advertiser: Advertiser,
        profile: AdvertiserProfile,
        account: MaterializedAccount | None,
        adv_row: int,
        activity_end: float,
    ) -> AccountSummary:
        default_bid = self.config.auction.default_max_bid
        bid_count = np.zeros(3)
        bid_sum = np.zeros(3)
        bid_above = np.zeros(3)
        ad_creations: list[float] = []
        kw_creations: list[float] = []
        ad_mods: list[float] = []
        kw_mods: list[float] = []
        n_domains = 0
        if account is not None:
            domains = set()
            for campaign in advertiser.campaigns:
                for ad in campaign.ads:
                    domains.add(ad.destination_domain)
            if account.bid_stats is not None:
                # Fast path (batched materializer): one concatenated
                # campaign-major pass.  ``bincount`` accumulates weights
                # sequentially in array order, which is exactly the
                # order the scalar loop below adds them in, so the
                # float sums are bit-identical.
                stats = account.bid_stats
                if stats:
                    mcodes = np.concatenate([s.mcodes for s in stats])
                    max_bids = np.concatenate([s.max_bids for s in stats])
                    if len(mcodes):
                        bid_count = np.bincount(mcodes, minlength=3).astype(
                            np.float64
                        )
                        bid_sum = np.bincount(
                            mcodes, weights=max_bids, minlength=3
                        )
                        bid_above = np.bincount(
                            mcodes[max_bids > default_bid * 1.0001], minlength=3
                        ).astype(np.float64)
            else:
                for campaign in advertiser.campaigns:
                    for bid in campaign.bids:
                        code = match_code(bid.match_type)
                        bid_count[code] += 1
                        bid_sum[code] += bid.max_bid
                        if bid.max_bid > default_bid * 1.0001:
                            bid_above[code] += 1
            n_domains = len(domains)
            ad_creations = account.ad_creation_times
            kw_creations = account.kw_creation_times
            ad_mods = account.ad_mod_times
            kw_mods = account.kw_mod_times
        return AccountSummary(
            advertiser_id=advertiser.advertiser_id,
            adv_row=adv_row,
            kind=advertiser.kind,
            labeled_fraud=advertiser.labeled_fraud,
            created_time=advertiser.created_time,
            first_ad_time=advertiser.first_ad_time,
            shutdown_time=advertiser.shutdown_time,
            shutdown_reason=(
                advertiser.shutdown_reason.value
                if advertiser.shutdown_reason is not None
                else None
            ),
            activity_end=activity_end,
            country=advertiser.country,
            language=advertiser.language,
            currency=advertiser.currency,
            verticals=profile.verticals,
            n_ads=len(ad_creations),
            n_keywords=len(kw_creations),
            n_domains=n_domains,
            ad_creation_times=np.asarray(ad_creations, dtype=np.float64),
            kw_creation_times=np.asarray(kw_creations, dtype=np.float64),
            ad_mod_times=np.asarray(ad_mods, dtype=np.float64),
            kw_mod_times=np.asarray(kw_mods, dtype=np.float64),
            bid_count_by_match=bid_count,
            bid_sum_by_match=bid_sum,
            bid_above_default_by_match=bid_above,
            activity_scale=profile.activity_scale,
            participation=profile.participation_prob,
            quality=profile.quality,
        )

    def _plan_account(
        self,
        profile: AdvertiserProfile,
        created_time: float,
        materializer=materialize_account_batch,
    ) -> tuple[MaterializedAccount, float, bool]:
        """Every RNG draw for one account; entity finalization deferred.

        Performs the draw-bearing half of account generation -- screen,
        materialize, evaluate, commit, dormancy -- in the canonical
        per-account order shared by the day-loop and whole-horizon
        paths, and returns ``(account, activity_end, materialized)``.
        ``materialized`` accounts still need :meth:`_finish_account`
        (trim + summary), which draws nothing; non-materialized
        accounts are already final (an untouched empty account).
        """
        total_days = float(self.config.days)
        rng_d = self._rng_detection
        rng_p = self._rng_population
        advertiser = self._new_advertiser(profile, created_time)

        empty = MaterializedAccount(
            advertiser=advertiser, profile=profile, activity_end=created_time
        )

        if profile.is_fraud:
            screen_time = self.pipeline.screen_registration(
                profile, created_time, rng_d
            )
            if screen_time is not None and screen_time >= total_days:
                # Screened, but the freeze lands after the study ends:
                # within the study this account is simply a pending
                # registration that never posts.
                return empty, total_days, False
            if screen_time is not None:
                advertiser.shutdown(
                    screen_time, ShutdownReason.REGISTRATION_SCREEN, True
                )
                self.pipeline.commit(
                    advertiser.advertiser_id,
                    DetectionOutcome(
                        screen_time, ShutdownReason.REGISTRATION_SCREEN, True
                    ),
                )
                return empty, min(screen_time, total_days), False

        first_ad_time = created_time + profile.first_ad_delay
        if first_ad_time >= total_days:
            return empty, total_days, False

        account = materializer(
            advertiser,
            profile,
            first_ad_time,
            total_days,
            self.config,
            self._ids,
            rng_p,
        )
        if profile.is_fraud:
            outcome = self.pipeline.evaluate_fraud_account(
                account, first_ad_time, rng_d
            )
        else:
            outcome = self.pipeline.evaluate_legitimate_account(
                created_time, rng_d, total_days
            )
        if outcome.detected and outcome.shutdown_time < total_days:
            advertiser.shutdown(
                outcome.shutdown_time, outcome.reason, outcome.labeled_fraud
            )
            domains = sorted(account.destination_domains())
            self.pipeline.commit(advertiser.advertiser_id, outcome, domains)
            activity_end = outcome.shutdown_time
        else:
            # Not detected within the study: analysed as non-fraudulent.
            activity_end = total_days
            if not profile.is_fraud:
                dormancy = float(rng_p.exponential(LEGIT_DORMANCY_MEAN_DAYS))
                activity_end = min(total_days, created_time + dormancy)
        return account, activity_end, True

    def _finish_account(
        self,
        profile: AdvertiserProfile,
        account: MaterializedAccount,
        adv_row: int,
        activity_end: float,
        materialized: bool,
    ) -> AccountSummary:
        """The draw-free tail of account generation: trim + summarize.

        Never touches an RNG stream, which is what lets the horizon
        path run it as a separate pass after all draws are done.
        """
        if materialized:
            account.trim(activity_end)
            account.activity_end = activity_end
            return self._summarize(
                account.advertiser, profile, account, adv_row, activity_end
            )
        return self._summarize(
            account.advertiser, profile, None, adv_row, activity_end
        )

    def _generate_account(
        self,
        profile: AdvertiserProfile,
        created_time: float,
        adv_row: int,
        materializer=materialize_account_batch,
    ) -> tuple[MaterializedAccount, AccountSummary]:
        """Build one account end-to-end (materialize + detect + trim)."""
        account, activity_end, materialized = self._plan_account(
            profile, created_time, materializer
        )
        summary = self._finish_account(
            profile, account, adv_row, activity_end, materialized
        )
        return account, summary

    def _draw_day_registrations(self, day, rng, schedule, ledger):
        """Yield one day's ``(profile, created_time)`` pairs lazily.

        A generator on purpose: the caller interleaves its own draws
        (screening, materialization, detection) between registrations,
        and the canonical stream order puts each account's profile
        draws immediately before *that account's* downstream draws --
        never batched ahead.  Both the day-loop and whole-horizon
        paths consume this, so they share one draw order by
        construction.
        """
        config = self.config
        n_fraud, n_nonfraud = sample_daily_counts(
            config.population, schedule, day, rng
        )
        if ledger is not None:
            ledger.record_registrations(day, n_nonfraud, n_fraud)
        for is_fraud in [True] * n_fraud + [False] * n_nonfraud:
            created_time = day + float(rng.random())
            if is_fraud:
                prolific = (
                    rng.random() < config.population.prolific_fraud_fraction
                )
                banned = tuple(
                    change.banned_vertical
                    for change in self.pipeline.policy.changes
                    if created_time >= change.day + POLICY_LEARNING_LAG_DAYS
                )
                profile = sample_fraud_profile(
                    config, rng, prolific, banned_verticals=banned
                )
            else:
                profile = sample_legitimate_profile(config, rng)
            yield profile, created_time

    def _record_policy_changes(self, ledger) -> None:
        if ledger is not None:
            for change in self.pipeline.policy.changes:
                if 0 <= change.day < self.config.days:
                    ledger.record_policy_change(change.day)

    def _generate_population(
        self,
        materializer,
        on_day_complete=None,
    ) -> tuple[list[MaterializedAccount], list[AccountSummary]]:
        """The Phase-1 day loop, parameterized by the materializer."""
        config = self.config
        rng = self._rng_population
        schedule = FraudShareSchedule(config.population, config.days, rng)
        accounts: list[MaterializedAccount] = []
        summaries: list[AccountSummary] = []
        mode = "scalar" if materializer is materialize_account else "batch"
        heartbeat = obs.heartbeat_every()
        tracer = obs.tracer()
        # Nearly everything allocated here is either retained for the
        # whole run (entities, summaries) or freed promptly by reference
        # counting (trimmed columns); cyclic GC only adds pauses that
        # scale with the live-object count -- about a quarter of
        # Phase-1 wall time at full scale.  Pause it for the loop.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        ledger = obs.dayledger()
        self._record_policy_changes(ledger)
        try:
            with obs.span(
                "phase1.population", days=config.days, materializer=mode
            ) as phase_span:
                for day in range(config.days):
                    with obs.span("phase1.day", day=day):
                        for profile, created_time in self._draw_day_registrations(
                            day, rng, schedule, ledger
                        ):
                            account, summary = self._generate_account(
                                profile,
                                created_time,
                                adv_row=len(accounts),
                                materializer=materializer,
                            )
                            accounts.append(account)
                            summaries.append(summary)
                    if heartbeat and (day + 1) % heartbeat == 0:
                        elapsed = tracer.now() - phase_span.start
                        throughput = _day_throughput(
                            day + 1, config.days, elapsed
                        )
                        if elapsed > 0:
                            _ACCOUNTS_PER_S.set(len(accounts) / elapsed)
                        obs.event(
                            "heartbeat",
                            phase="phase1",
                            day=day,
                            accounts=len(accounts),
                            **throughput,
                        )
                    if on_day_complete is not None:
                        on_day_complete(day)
        finally:
            if gc_was_enabled:
                gc.enable()
        return accounts, summaries

    def _generate_population_horizon(
        self,
        on_day_complete=None,
    ) -> tuple[list[MaterializedAccount], list[AccountSummary]]:
        """Phase 1 as two whole-horizon passes: draws, then build.

        The **draws** pass sweeps the horizon once, performing every
        RNG draw in the canonical order (identical to the day loop's)
        and recording per-account outcomes into a columnar
        :class:`~repro.behavior.horizon.PopulationPlan` (exposed as
        :attr:`population_plan`).  The **build** pass -- draw-free by
        construction -- trims each materialized account to its recorded
        activity end and assembles the summaries.  Day-boundary
        side-effects (ledger rows, heartbeats, ``on_day_complete``)
        fire from the draws pass, so the checkpoint runner's fault
        sites and progress reporting are unchanged.
        """
        from ..behavior.horizon import PlanRecorder

        config = self.config
        rng = self._rng_population
        schedule = FraudShareSchedule(config.population, config.days, rng)
        accounts: list[MaterializedAccount] = []
        profiles: list[AdvertiserProfile] = []
        recorder = PlanRecorder(config.days)
        heartbeat = obs.heartbeat_every()
        tracer = obs.tracer()
        # Same GC rationale as the day loop: pause cyclic collection
        # for the duration of entity construction.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        ledger = obs.dayledger()
        self._record_policy_changes(ledger)
        try:
            with obs.span(
                "phase1.population", days=config.days, materializer="horizon"
            ) as phase_span:
                with obs.span("phase1.draws", days=config.days):
                    for day in range(config.days):
                        for profile, created_time in self._draw_day_registrations(
                            day, rng, schedule, ledger
                        ):
                            account, activity_end, materialized = (
                                self._plan_account(profile, created_time)
                            )
                            accounts.append(account)
                            profiles.append(profile)
                            recorder.record(
                                day,
                                created_time,
                                activity_end,
                                profile.is_fraud,
                                materialized,
                                account.advertiser.shutdown_time,
                            )
                        if heartbeat and (day + 1) % heartbeat == 0:
                            elapsed = tracer.now() - phase_span.start
                            throughput = _day_throughput(
                                day + 1, config.days, elapsed
                            )
                            if elapsed > 0:
                                _ACCOUNTS_PER_S.set(len(accounts) / elapsed)
                            obs.event(
                                "heartbeat",
                                phase="phase1",
                                day=day,
                                accounts=len(accounts),
                                **throughput,
                            )
                        if on_day_complete is not None:
                            on_day_complete(day)
                plan = recorder.build()
                self.population_plan = plan
                with obs.span("phase1.build", accounts=len(accounts)):
                    ends = plan.activity_end
                    built = plan.materialized
                    summaries = [
                        self._finish_account(
                            profiles[row],
                            accounts[row],
                            row,
                            float(ends[row]),
                            bool(built[row]),
                        )
                        for row in range(len(accounts))
                    ]
        finally:
            if gc_was_enabled:
                gc.enable()
        return accounts, summaries

    def generate_population(
        self,
        on_day_complete=None,
    ) -> tuple[list[MaterializedAccount], list[AccountSummary]]:
        """Phase 1: create every account with its detection outcome.

        Runs the whole-horizon plan/build path
        (:meth:`_generate_population_horizon`) with the batched
        materializer; the output -- entities, summaries and
        post-generation RNG stream states -- is bit-identical to both
        retained oracles: :meth:`generate_population_dayloop` (the
        PR-3 per-day batched loop) and
        :meth:`generate_population_scalar` (the original scalar
        factory).  After it returns, :attr:`population_plan` holds the
        whole-horizon registration/lifetime/churn arrays.

        ``on_day_complete(day)``, if given, is invoked after each day's
        registrations are fully generated -- the checkpoint runner's
        instrumentation point for progress reporting and fault
        injection.
        """
        return self._generate_population_horizon(on_day_complete)

    def generate_population_dayloop(
        self,
        on_day_complete=None,
    ) -> tuple[list[MaterializedAccount], list[AccountSummary]]:
        """The per-day batched Phase 1 (PR 3), kept as an oracle.

        Interleaves trim/summarize with the draws inside a per-day
        loop.  The whole-horizon path replays exactly this draw order,
        so both produce bit-identical populations; the differential
        tests pin that.
        """
        return self._generate_population(
            materialize_account_batch, on_day_complete
        )

    def generate_population_scalar(
        self,
        on_day_complete=None,
    ) -> tuple[list[MaterializedAccount], list[AccountSummary]]:
        """The pre-vectorization Phase 1, kept as the oracle.

        One entity at a time through
        :func:`~repro.behavior.factory.materialize_account`.  Slow but
        simple enough to trust: the differential tests assert
        :meth:`generate_population` reproduces its accounts, summaries
        and RNG stream states exactly.
        """
        return self._generate_population(materialize_account, on_day_complete)

    # ------------------------------------------------------------------
    # Phase 3: auctions
    # ------------------------------------------------------------------

    def _eligible_pairs(
        self, vertical_code: int, seed: int, decorated: bool, shuffled: bool
    ):
        key = (vertical_code, seed, decorated, shuffled)
        pairs = self._eligible_memo.get(key)
        if pairs is None:
            table = match_table(VERTICALS[vertical_code].name)
            pairs = table.eligible_pairs(seed, decorated, shuffled)
            self._eligible_memo[key] = pairs
        return pairs

    def run_auctions(
        self,
        market: MarketIndex,
        builder: ImpressionBuilder,
        start_day: int = 0,
        end_day: int | None = None,
        on_day_complete=None,
    ) -> None:
        """Phase 3: the daily auction loop, array-native.

        Produces an impression stream bit-identical to
        :meth:`run_auctions_scalar`: candidate gathering, ranking,
        dedupe, layout and pricing are exact array re-formulations of
        the scalar mechanics, and the day's click draws are issued as
        one vectorized Poisson call over the same lambda sequence the
        scalar loop would draw one by one (numpy ``Generator`` draws
        are stream-equivalent either way).

        ``start_day`` resumes the loop at a given day: all RNG draws
        happen inside the day body, so a caller that restores the
        stream states captured after day ``start_day - 1`` (see
        :meth:`rng_state`) continues the exact draw sequence of an
        uninterrupted run.  ``end_day`` (exclusive, default: the whole
        horizon) stops the loop early with the streams positioned
        exactly as an uninterrupted run would have them after day
        ``end_day - 1`` -- the run doctor uses this to re-simulate just
        a damaged chunk's day range.  ``on_day_complete(day)`` fires
        after each day's rows are in ``builder`` -- including days that
        produced no rows -- which is where the checkpoint runner
        persists progress.
        """
        config = self.config
        if end_day is None:
            end_day = config.days
        if not 0 <= start_day <= end_day <= config.days:
            raise SimulationError(
                f"day range [{start_day}, {end_day}) outside "
                f"[0, {config.days}]"
            )
        sampler = QuerySampler(config.query)
        auction_config = config.auction
        exam_table = examination_table(config.click, auction_config.total_slots)
        tables = [match_table(v.name) for v in VERTICALS]
        heartbeat = obs.heartbeat_every()
        tracer = obs.tracer()
        # The builder may be drained mid-loop (checkpoint chunks), so
        # progress is tracked off the cumulative rows counter instead.
        rows_at_start = _ROWS_EMITTED.value
        ledger = obs.dayledger()
        with obs.span(
            "phase3.auctions", start_day=start_day, days=config.days
        ) as phase_span:
            for day in range(start_day, end_day):
                if ledger is not None:
                    # Open (and zero) the ledger row before the day body
                    # so early-out days (no live offers, no candidates)
                    # still serialize as explicit zero rows.
                    ledger.begin_day(day)
                with obs.span("phase3.day", day=day):
                    self._run_auction_day(
                        day, market, builder, sampler, exam_table, tables
                    )
                if heartbeat and (day + 1) % heartbeat == 0:
                    elapsed = tracer.now() - phase_span.start
                    rows = _ROWS_EMITTED.value - rows_at_start
                    throughput = _day_throughput(
                        day + 1 - start_day, end_day - start_day, elapsed
                    )
                    if elapsed > 0:
                        _ROWS_PER_S.set(rows / elapsed)
                    obs.event(
                        "heartbeat",
                        phase="phase3",
                        day=day,
                        rows=rows,
                        **throughput,
                    )
                if on_day_complete is not None:
                    on_day_complete(day)

    def _emit_empty_auction_day(self) -> None:
        """Gather + kernel on zero candidates, for span parity.

        Used by days that cannot reach the real gather (no live
        offers).  ``run_auction_batch`` is deterministic and draw-free,
        so this moves no RNG stream; the ledger kernel feed adds zeros
        to an already-zeroed day row, leaving its bytes unchanged.
        """
        empty_ids = np.zeros(0, dtype=np.int64)
        empty_vals = np.zeros(0, dtype=np.float64)
        with obs.span("auction.gather", keys=0):
            pass
        run_auction_batch(
            empty_ids,
            empty_ids,
            empty_ids,
            empty_vals,
            empty_vals,
            np.zeros(0, dtype=bool),
            self.config.auction,
            0,
        )

    def _run_auction_day(
        self,
        day: int,
        market: MarketIndex,
        builder: ImpressionBuilder,
        sampler: QuerySampler,
        exam_table: np.ndarray,
        tables: list,
    ) -> None:
        """One day of the batched auction loop (body of Phase 3)."""
        config = self.config
        cells = sampler.cells
        rng_clicks = self._rng_clicks
        auction_config = config.auction
        time = day + 0.5
        ledger = obs.dayledger()
        buckets = market.day_buckets(time, self._rng_market)
        if ledger is not None and len(buckets):
            ledger.record_active_accounts(
                day, int(np.unique(market.adv_row[buckets.rows]).size)
            )
        if len(buckets) == 0:
            # Span parity: a dead-market day (e.g. day 0, when no offer
            # is live yet at t=0.5) must still emit the auction.gather
            # and auction.kernel spans, or per-day span counts go off by
            # one across the horizon.  Query sampling stays skipped --
            # the scalar oracle draws nothing on such days either -- and
            # the kernel is draw-free, so no RNG stream moves.
            self._emit_empty_auction_day()
            return
        queries = sampler.sample_day(self._rng_queries)
        n_queries = len(queries)
        _QUERIES_SAMPLED.inc(n_queries)
        weight = np.empty(n_queries, dtype=np.float64)
        vertical = np.empty(n_queries, dtype=np.int16)
        country = np.empty(n_queries, dtype=np.int16)
        cell_ids = np.empty(n_queries, dtype=np.int64)
        counts = np.zeros(n_queries, dtype=np.int64)
        kw_chunks: list[np.ndarray] = []
        mcode_chunks: list[np.ndarray] = []
        for seg, query in enumerate(queries):
            weight[seg] = query.weight
            vertical[seg] = query.vertical
            country[seg] = query.country
            cell_ids[seg] = cells.cell_of(query.vertical, query.country)
            kws, mcodes = tables[query.vertical].eligible_arrays(
                query.seed_index, query.decorated, query.shuffled
            )
            if len(kws):
                counts[seg] = len(kws)
                kw_chunks.append(kws)
                mcode_chunks.append(mcodes)
        # One flat (cell, keyword, match) key array for the whole
        # day's query stream, resolved in a single bucket gather.  An
        # empty key set (no query matched any keyword) flows through
        # the same gather + kernel calls so the spans emit every day.
        if kw_chunks:
            kw_all = np.concatenate(kw_chunks)
            mcode_all = np.concatenate(mcode_chunks)
        else:
            kw_all = np.zeros(0, dtype=np.int64)
            mcode_all = np.zeros(0, dtype=np.int64)
        query_of_key = np.repeat(np.arange(n_queries), counts)
        keys = bucket_keys(np.repeat(cell_ids, counts), kw_all, mcode_all)
        with obs.span("auction.gather", keys=len(keys)):
            rows, key_index = buckets.gather(keys)
        _CANDIDATES_GATHERED.inc(int(rows.size))
        segments = query_of_key[key_index]
        mcode = mcode_all[key_index]
        result = run_auction_batch(
            segments,
            market.advertiser_id[rows],
            market.ad_id[rows],
            market.max_bid[rows],
            market.quality[rows],
            market.fraud_labeled[rows],
            auction_config,
            n_queries,
        )
        if len(result) == 0:
            return
        shown_rows = rows[result.candidate_index]
        shown_seg = result.segment
        examine = exam_table[
            result.mainline.astype(np.intp), result.position
        ]
        p_click = np.minimum(1.0, examine * market.quality[shown_rows])
        lam = weight[shown_seg] * p_click
        clicks = np.zeros(len(lam), dtype=np.float64)
        positive = np.flatnonzero(lam > 0)
        if positive.size:
            clicks[positive] = rng_clicks.poisson(lam[positive])
        _CLICK_DRAWS.inc(int(positive.size))
        _CLICKS_DRAWN.inc(float(clicks.sum()))
        _ROWS_EMITTED.inc(len(lam))
        _DAY_ROWS.observe(len(lam))
        spend = clicks * result.price
        if ledger is not None:
            # Pure reductions over arrays already computed for the
            # impression batch -- no RNG contact, no behavior change.
            fraud = market.fraud_labeled[shown_rows]
            ledger.record_auction_day(
                day,
                impressions=float(weight[shown_seg].sum()),
                clicks=float(clicks.sum()),
                fraud_clicks=float(clicks[fraud].sum()),
                spend=float(spend.sum()),
                fraud_spend=float(spend[fraud].sum()),
                rows=len(lam),
                auctions=int(np.count_nonzero(result.n_shown)),
                mainline_slots=int(result.mainline.sum()),
            )
        builder.add_batch(
            day=np.full(len(lam), time),
            advertiser_id=market.advertiser_id[shown_rows],
            ad_id=market.ad_id[shown_rows],
            vertical=vertical[shown_seg],
            country=country[shown_seg],
            match_type=mcode[result.candidate_index],
            position=result.position,
            mainline=result.mainline,
            weight=weight[shown_seg],
            clicks=clicks,
            spend=spend,
            price=result.price,
            n_shown=result.n_shown[shown_seg],
            n_fraud_shown=result.n_fraud_shown[shown_seg],
            fraud_labeled=market.fraud_labeled[shown_rows],
        )

    def run_auctions_scalar(
        self, market: MarketIndex, builder: ImpressionBuilder
    ) -> None:
        """The pre-vectorization Phase 3 loop, kept as the oracle.

        One :class:`~repro.auction.gsp.Candidate` object per eligible
        offer, one scalar Poisson draw per shown ad.  Slow, but simple
        enough to trust: the differential and end-to-end regression
        tests assert :meth:`run_auctions` reproduces its output exactly.
        """
        config = self.config
        sampler = QuerySampler(config.query)
        cells = sampler.cells
        click_config = config.click
        rng_clicks = self._rng_clicks
        for day in range(config.days):
            time = day + 0.5
            buckets = market.day_buckets(time, self._rng_market)
            if len(buckets) == 0:
                continue
            for query in sampler.sample_day(self._rng_queries):
                cell = cells.cell_of(query.vertical, query.country)
                candidates: list[Candidate] = []
                for kw_index, mcode in self._eligible_pairs(
                    query.vertical, query.seed_index, query.decorated, query.shuffled
                ):
                    rows = buckets.lookup(cell, kw_index, mcode)
                    if rows is None:
                        continue
                    match_type = match_type_from_code(mcode)
                    for i in rows:
                        candidates.append(
                            Candidate(
                                advertiser_id=int(market.advertiser_id[i]),
                                ad_id=int(market.ad_id[i]),
                                match_type=match_type,
                                max_bid=float(market.max_bid[i]),
                                quality=float(market.quality[i]),
                                click_quality=float(market.click_quality[i]),
                                fraud_labeled=bool(market.fraud_labeled[i]),
                            )
                        )
                if not candidates:
                    continue
                outcome = run_auction(candidates, config.auction)
                if not outcome.shown:
                    continue
                n_shown = outcome.n_shown
                n_fraud = outcome.n_fraud_labeled()
                for shown in outcome.shown:
                    examine = examination_probability(shown.placement, click_config)
                    p_click = min(1.0, examine * shown.candidate.quality)
                    clicks = (
                        float(rng_clicks.poisson(query.weight * p_click))
                        if p_click > 0
                        else 0.0
                    )
                    spend = clicks * shown.price_per_click
                    builder.add(
                        day=time,
                        advertiser_id=shown.candidate.advertiser_id,
                        ad_id=shown.candidate.ad_id,
                        vertical=query.vertical,
                        country=query.country,
                        match_type=match_code(shown.candidate.match_type),
                        position=shown.position,
                        mainline=shown.mainline,
                        weight=query.weight,
                        clicks=clicks,
                        spend=spend,
                        price=shown.price_per_click,
                        n_shown=n_shown,
                        n_fraud_shown=n_fraud,
                        fraud_labeled=shown.candidate.fraud_labeled,
                    )

    # ------------------------------------------------------------------

    def run(self, keep_entities: bool = False) -> SimulationResult:
        """Run all three phases and return the bundled result."""
        with obs.span("run", seed=self.config.seed, days=self.config.days):
            accounts, summaries = self.generate_population()
            with obs.span("phase2.market", accounts=len(accounts)):
                market = MarketIndex(accounts)
                market.country_volume_check()
            builder = ImpressionBuilder()
            self.run_auctions(market, builder)
            return SimulationResult(
                config=self.config,
                accounts=summaries,
                impressions=builder.build(),
                detections=list(self.pipeline.records),
                policy_changes=list(self.pipeline.policy.changes),
                advertisers=(
                    [a.advertiser for a in accounts] if keep_entities else []
                ),
            )


def run_simulation(
    config: SimulationConfig, keep_entities: bool = False
) -> SimulationResult:
    """Convenience wrapper: build an engine and run it."""
    return SimulationEngine(config).run(keep_entities=keep_entities)
