"""Account arrival process.

Daily registrations are Poisson; the share that is fraudulent ramps
from ``fraud_share_start`` to ``fraud_share_end`` over the study with
weekly noise -- Figure 1's "more than a third, and near the end more
than half" of new registrations.
"""

from __future__ import annotations

import numpy as np

from ..config import PopulationConfig
from ..timeline import DAYS_PER_WEEK

__all__ = ["FraudShareSchedule", "sample_daily_counts"]


class FraudShareSchedule:
    """Deterministic (per-seed) fraud share of registrations per day."""

    def __init__(
        self, config: PopulationConfig, total_days: int, rng: np.random.Generator
    ) -> None:
        self._config = config
        self._total_days = max(1, total_days)
        n_weeks = total_days // DAYS_PER_WEEK + 2
        self._weekly_noise = rng.normal(0.0, config.fraud_share_noise, size=n_weeks)

    def share(self, day: int) -> float:
        """Fraud share of registrations on ``day``, in (0.02, 0.95)."""
        config = self._config
        fraction = min(1.0, day / self._total_days)
        base = config.fraud_share_start + fraction * (
            config.fraud_share_end - config.fraud_share_start
        )
        noisy = base + self._weekly_noise[day // DAYS_PER_WEEK]
        return float(np.clip(noisy, 0.02, 0.95))


def sample_daily_counts(
    config: PopulationConfig,
    schedule: FraudShareSchedule,
    day: int,
    rng: np.random.Generator,
) -> tuple[int, int]:
    """(fraud, nonfraud) registrations for ``day``."""
    total = int(rng.poisson(config.registrations_per_day))
    if total == 0:
        return 0, 0
    fraud = int(rng.binomial(total, schedule.share(day)))
    return fraud, total - fraud
