"""Vectorized offer index.

All keyword offers in the marketplace are flattened into parallel numpy
arrays once the population is generated.  Each simulated day the index
computes which offers are live (account alive, ad created, account "on"
today under its activity budget) and groups them into buckets keyed by
``(cell, keyword, match type)`` so each query touches only the offers
that could possibly match it.
"""

from __future__ import annotations

import numpy as np

from .. import obs
from ..behavior.factory import MaterializedAccount
from ..records.codes import country_code, match_code, vertical_code
from ..taxonomy.geography import COUNTRIES
from .querygen import CellSampler

__all__ = ["MarketIndex", "DayBuckets", "bucket_keys"]

#: Max keyword-pool size supported by the composite bucket key.
_MAX_KW = 128


def bucket_keys(
    cell: int | np.ndarray, kw_index: np.ndarray, match: np.ndarray
) -> np.ndarray:
    """Composite bucket key(s) for (cell, keyword, match) triples."""
    return (
        (np.asarray(cell, dtype=np.int64) * _MAX_KW + kw_index) * 3 + match
    )


class DayBuckets:
    """One day's live offers grouped by (cell, kw, match) key.

    Stored array-native: ``keys`` is the sorted array of distinct
    composite bucket keys, ``starts``/``counts`` delimit each bucket's
    slice of ``rows`` (live offer indices into the
    :class:`MarketIndex` columns, grouped by key).  Lookups are binary
    searches; :meth:`gather` resolves a whole array of keys at once for
    the batched auction path.
    """

    __slots__ = ("keys", "starts", "counts", "rows", "_dict")

    def __init__(
        self,
        keys: np.ndarray,
        starts: np.ndarray,
        counts: np.ndarray,
        rows: np.ndarray,
    ) -> None:
        self.keys = keys
        self.starts = starts
        self.counts = counts
        self.rows = rows
        self._dict: dict[int, np.ndarray] | None = None

    @classmethod
    def empty(cls) -> "DayBuckets":
        return cls(
            keys=np.zeros(0, dtype=np.int64),
            starts=np.zeros(0, dtype=np.int64),
            counts=np.zeros(0, dtype=np.int64),
            rows=np.zeros(0, dtype=np.int64),
        )

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def buckets(self) -> dict[int, np.ndarray]:
        """Key -> offer-row-array view (materialized lazily)."""
        if self._dict is None:
            self._dict = {
                int(key): self.rows[start : start + count]
                for key, start, count in zip(self.keys, self.starts, self.counts)
            }
        return self._dict

    def lookup(self, cell: int, kw_index: int, match: int) -> np.ndarray | None:
        """Offer rows for one (cell, keyword, match) bucket."""
        key = (cell * _MAX_KW + kw_index) * 3 + match
        pos = np.searchsorted(self.keys, key)
        if pos >= len(self.keys) or self.keys[pos] != key:
            return None
        start = self.starts[pos]
        return self.rows[start : start + self.counts[pos]]

    def gather(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Resolve many bucket keys in one vectorized pass.

        Args:
            keys: Composite bucket keys, any order, duplicates allowed.

        Returns:
            ``(rows, key_index)``: all offer rows of every key that has
            a bucket (concatenated in the order the keys were given)
            and, parallel to it, the index into ``keys`` each row came
            from — so callers can map rows back to per-key metadata
            such as the match code.  Keys with no bucket contribute
            nothing.
        """
        if len(self.keys) == 0 or len(keys) == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        pos = np.searchsorted(self.keys, keys)
        pos_clipped = np.minimum(pos, len(self.keys) - 1)
        hit = np.flatnonzero(self.keys[pos_clipped] == keys)
        if hit.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        bucket = pos[hit]
        counts = self.counts[bucket]
        total = int(counts.sum())
        # Concatenate `rows[start:start+count]` slices without a Python
        # loop: offsets of each slice within the output, then a running
        # index that resets at slice boundaries.
        out_offsets = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(out_offsets, counts)
        row_index = np.repeat(self.starts[bucket], counts) + within
        return self.rows[row_index], np.repeat(hit, counts)


class MarketIndex:
    """Static offer arrays plus per-day liveness computation."""

    def __init__(self, accounts: list[MaterializedAccount]) -> None:
        cells: list[int] = []
        kws: list[int] = []
        matches: list[int] = []
        max_bids: list[float] = []
        qualities: list[float] = []
        click_qualities: list[float] = []
        adv_rows: list[int] = []
        advertiser_ids: list[int] = []
        ad_ids: list[int] = []
        active_from: list[float] = []
        active_until: list[float] = []
        fraud_labeled: list[bool] = []
        verticals: list[int] = []
        countries: list[int] = []
        participation: list[float] = []

        with obs.span("market.offers", accounts=len(accounts)):
            for row, account in enumerate(accounts):
                participation.append(account.profile.participation_prob)
                advertiser = account.advertiser
                end = account.activity_end
                for offer in account.offers:
                    vert = vertical_code(offer.vertical)
                    ctry = country_code(offer.country)
                    cells.append(CellSampler.cell_of(vert, ctry))
                    kws.append(offer.kw_index)
                    matches.append(match_code(offer.match_type))
                    max_bids.append(offer.max_bid)
                    qualities.append(offer.quality)
                    click_qualities.append(offer.click_quality)
                    adv_rows.append(row)
                    advertiser_ids.append(advertiser.advertiser_id)
                    ad_ids.append(offer.ad.ad_id)
                    active_from.append(offer.active_from)
                    active_until.append(end)
                    fraud_labeled.append(advertiser.labeled_fraud)
                    verticals.append(vert)
                    countries.append(ctry)

        with obs.span("market.columns", offers=len(cells)):
            self.n_offers = len(cells)
            self.n_accounts = len(accounts)
            self.cell = np.asarray(cells, dtype=np.int32)
            self.kw = np.asarray(kws, dtype=np.int16)
            self.match = np.asarray(matches, dtype=np.int8)
            self.max_bid = np.asarray(max_bids, dtype=np.float64)
            self.quality = np.asarray(qualities, dtype=np.float64)
            self.click_quality = np.asarray(click_qualities, dtype=np.float64)
            self.adv_row = np.asarray(adv_rows, dtype=np.int32)
            self.advertiser_id = np.asarray(advertiser_ids, dtype=np.int64)
            self.ad_id = np.asarray(ad_ids, dtype=np.int64)
            self.active_from = np.asarray(active_from, dtype=np.float64)
            self.active_until = np.asarray(active_until, dtype=np.float64)
            self.fraud_labeled = np.asarray(fraud_labeled, dtype=bool)
            self.vertical = np.asarray(verticals, dtype=np.int16)
            self.country = np.asarray(countries, dtype=np.int16)
            self.participation = np.asarray(participation, dtype=np.float64)
            if self.n_offers and int(self.kw.max()) >= _MAX_KW:
                raise ValueError("keyword pool exceeds composite key capacity")
            self._key = bucket_keys(self.cell, self.kw, self.match)

    def live_mask(self, time: float, rng: np.random.Generator) -> np.ndarray:
        """Offers live at ``time``: active interval covers it, account on."""
        if self.n_offers == 0:
            return np.zeros(0, dtype=bool)
        account_on = rng.random(self.n_accounts) < self.participation
        return (
            (self.active_from <= time)
            & (time < self.active_until)
            & account_on[self.adv_row]
        )

    def day_buckets(self, time: float, rng: np.random.Generator) -> DayBuckets:
        """Group the day's live offers for O(log n) query lookup."""
        live = np.flatnonzero(self.live_mask(time, rng))
        if live.size == 0:
            return DayBuckets.empty()
        keys = self._key[live]
        order = np.argsort(keys, kind="stable")
        sorted_live = live[order]
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(sorted_keys)]))
        return DayBuckets(
            keys=sorted_keys[starts],
            starts=starts,
            counts=ends - starts,
            rows=sorted_live,
        )

    def country_volume_check(self) -> None:
        """Internal consistency: country codes must index COUNTRIES."""
        if self.n_offers and int(self.country.max()) >= len(COUNTRIES):
            raise ValueError("country code out of range")
