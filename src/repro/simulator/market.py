"""Vectorized offer index.

All keyword offers in the marketplace are flattened into parallel numpy
arrays once the population is generated.  Each simulated day the index
computes which offers are live (account alive, ad created, account "on"
today under its activity budget) and groups them into buckets keyed by
``(cell, keyword, match type)`` so each query touches only the offers
that could possibly match it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..behavior.factory import MaterializedAccount
from ..records.codes import country_code, match_code, vertical_code
from ..taxonomy.geography import COUNTRIES
from .querygen import CellSampler

__all__ = ["MarketIndex", "DayBuckets"]

#: Max keyword-pool size supported by the composite bucket key.
_MAX_KW = 128


@dataclass(frozen=True)
class DayBuckets:
    """One day's live offers grouped by (cell, kw, match) key."""

    buckets: dict[int, np.ndarray]

    def lookup(self, cell: int, kw_index: int, match: int) -> np.ndarray | None:
        """Offer rows for one (cell, keyword, match) bucket."""
        return self.buckets.get((cell * _MAX_KW + kw_index) * 3 + match)


class MarketIndex:
    """Static offer arrays plus per-day liveness computation."""

    def __init__(self, accounts: list[MaterializedAccount]) -> None:
        cells: list[int] = []
        kws: list[int] = []
        matches: list[int] = []
        max_bids: list[float] = []
        qualities: list[float] = []
        click_qualities: list[float] = []
        adv_rows: list[int] = []
        advertiser_ids: list[int] = []
        ad_ids: list[int] = []
        active_from: list[float] = []
        active_until: list[float] = []
        fraud_labeled: list[bool] = []
        verticals: list[int] = []
        countries: list[int] = []
        participation: list[float] = []

        for row, account in enumerate(accounts):
            participation.append(account.profile.participation_prob)
            advertiser = account.advertiser
            end = account.activity_end
            for offer in account.offers:
                vert = vertical_code(offer.vertical)
                ctry = country_code(offer.country)
                cells.append(CellSampler.cell_of(vert, ctry))
                kws.append(offer.kw_index)
                matches.append(match_code(offer.match_type))
                max_bids.append(offer.max_bid)
                qualities.append(offer.quality)
                click_qualities.append(offer.click_quality)
                adv_rows.append(row)
                advertiser_ids.append(advertiser.advertiser_id)
                ad_ids.append(offer.ad.ad_id)
                active_from.append(offer.active_from)
                active_until.append(end)
                fraud_labeled.append(advertiser.labeled_fraud)
                verticals.append(vert)
                countries.append(ctry)

        self.n_offers = len(cells)
        self.n_accounts = len(accounts)
        self.cell = np.asarray(cells, dtype=np.int32)
        self.kw = np.asarray(kws, dtype=np.int16)
        self.match = np.asarray(matches, dtype=np.int8)
        self.max_bid = np.asarray(max_bids, dtype=np.float64)
        self.quality = np.asarray(qualities, dtype=np.float64)
        self.click_quality = np.asarray(click_qualities, dtype=np.float64)
        self.adv_row = np.asarray(adv_rows, dtype=np.int32)
        self.advertiser_id = np.asarray(advertiser_ids, dtype=np.int64)
        self.ad_id = np.asarray(ad_ids, dtype=np.int64)
        self.active_from = np.asarray(active_from, dtype=np.float64)
        self.active_until = np.asarray(active_until, dtype=np.float64)
        self.fraud_labeled = np.asarray(fraud_labeled, dtype=bool)
        self.vertical = np.asarray(verticals, dtype=np.int16)
        self.country = np.asarray(countries, dtype=np.int16)
        self.participation = np.asarray(participation, dtype=np.float64)
        if self.n_offers and int(self.kw.max()) >= _MAX_KW:
            raise ValueError("keyword pool exceeds composite key capacity")
        self._key = (self.cell.astype(np.int64) * _MAX_KW + self.kw) * 3 + self.match

    def live_mask(self, time: float, rng: np.random.Generator) -> np.ndarray:
        """Offers live at ``time``: active interval covers it, account on."""
        if self.n_offers == 0:
            return np.zeros(0, dtype=bool)
        account_on = rng.random(self.n_accounts) < self.participation
        return (
            (self.active_from <= time)
            & (time < self.active_until)
            & account_on[self.adv_row]
        )

    def day_buckets(self, time: float, rng: np.random.Generator) -> DayBuckets:
        """Group the day's live offers for O(1) query lookup."""
        live = np.flatnonzero(self.live_mask(time, rng))
        if live.size == 0:
            return DayBuckets({})
        keys = self._key[live]
        order = np.argsort(keys, kind="stable")
        sorted_live = live[order]
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(sorted_keys)]))
        buckets = {
            int(sorted_keys[start]): sorted_live[start:end]
            for start, end in zip(starts, ends)
        }
        return DayBuckets(buckets)

    def country_volume_check(self) -> None:
        """Internal consistency: country codes must index COUNTRIES."""
        if self.n_offers and int(self.country.max()) >= len(COUNTRIES):
            raise ValueError("country code out of range")
