"""Sampled query stream and pre-computed match tables.

Queries are sampled per (vertical, country) cell proportionally to the
joint search volume.  Each query starts from a *seed* keyword phrase in
the vertical's pool and is optionally decorated with extra tokens
(exercising phrase/broad matching) or shuffled (only broad survives a
reorder).

Eligibility of a (keyword, match-type) offer for a query depends only
on (seed, decorated, shuffled), so per vertical we pre-compute a match
table over pool x pool pairs using the real matcher, then answer
eligibility in O(1) at query time.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .. import obs
from ..config import QueryConfig
from ..entities.enums import MatchType
from ..matching.matcher import broad_match, exact_match, phrase_match
from ..records.codes import MATCH_CODES
from ..taxonomy.geography import COUNTRIES
from ..taxonomy.keywords import keyword_pool, keyword_weights
from ..taxonomy.verticals import VERTICALS

__all__ = ["Query", "MatchTable", "match_table", "CellSampler", "QuerySampler"]

# Observability handle (repro.obs): candidate (keyword, match-type)
# pairs matched per query, bumped at lookup time.  A plain attribute
# add -- no RNG contact, cheap enough for the per-query hot path.
_CANDIDATES_MATCHED = obs.counter("matching.candidates_matched")


@dataclass(frozen=True)
class Query:
    """One sampled query instance (stands in for ``weight`` searches)."""

    vertical: int
    country: int
    seed_index: int
    decorated: bool
    shuffled: bool
    weight: float


class MatchTable:
    """Per-vertical eligibility of (keyword, match type) offers.

    ``eligible(kw, match_code, seed, decorated, shuffled)`` answers: is
    an offer on pool keyword ``kw`` with the given match type eligible
    for a query seeded by pool phrase ``seed``?

    * Exact: keyword == query, so only undecorated, unshuffled queries
      whose seed equals the keyword.
    * Phrase: keyword contiguous in query; decoration appends tokens
      outside the seed so contiguity within the seed is what matters;
      a shuffle breaks ordering.
    * Broad: keyword tokens (or synonyms) anywhere in the query;
      order-insensitive so shuffles are fine.
    """

    def __init__(self, vertical_name: str) -> None:
        pool = keyword_pool(vertical_name)
        size = len(pool)
        self.exact = np.zeros((size, size), dtype=bool)
        self.phrase = np.zeros((size, size), dtype=bool)
        self.broad = np.zeros((size, size), dtype=bool)
        for kw_index, keyword in enumerate(pool):
            for seed_index, seed in enumerate(pool):
                self.exact[kw_index, seed_index] = exact_match(keyword, seed)
                self.phrase[kw_index, seed_index] = phrase_match(keyword, seed)
                self.broad[kw_index, seed_index] = broad_match(keyword, seed)
        # Precomputed (kw_index, match_code) arrays per (seed, query
        # shape).  Exactly three query shapes exist — plain, decorated,
        # decorated+shuffled (a shuffle implies decoration) — so the
        # table holds `3 * pool_size` entries of at most `3 * pool_size`
        # elements each: bounded and built once per vertical.
        self._arrays_by_shape: tuple[
            list[tuple[np.ndarray, np.ndarray]], ...
        ] = (
            [self._build_arrays(s, False, False) for s in range(size)],
            [self._build_arrays(s, True, False) for s in range(size)],
            [self._build_arrays(s, True, True) for s in range(size)],
        )

    def _build_arrays(
        self, seed_index: int, decorated: bool, shuffled: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        kws: list[np.ndarray] = []
        codes: list[np.ndarray] = []
        if not decorated and not shuffled:
            exact = np.flatnonzero(self.exact[:, seed_index])
            kws.append(exact)
            codes.append(np.full(len(exact), MATCH_CODES[MatchType.EXACT]))
        if not shuffled:
            phrase = np.flatnonzero(self.phrase[:, seed_index])
            kws.append(phrase)
            codes.append(np.full(len(phrase), MATCH_CODES[MatchType.PHRASE]))
        broad = np.flatnonzero(self.broad[:, seed_index])
        kws.append(broad)
        codes.append(np.full(len(broad), MATCH_CODES[MatchType.BROAD]))
        return (
            np.concatenate(kws).astype(np.int64),
            np.concatenate(codes).astype(np.int8),
        )

    def eligible(
        self,
        kw_index: int,
        match_code: int,
        seed_index: int,
        decorated: bool,
        shuffled: bool,
    ) -> bool:
        if match_code == MATCH_CODES[MatchType.EXACT]:
            return (
                not decorated
                and not shuffled
                and bool(self.exact[kw_index, seed_index])
            )
        if match_code == MATCH_CODES[MatchType.PHRASE]:
            return not shuffled and bool(self.phrase[kw_index, seed_index])
        return bool(self.broad[kw_index, seed_index])

    def eligible_arrays(
        self, seed_index: int, decorated: bool, shuffled: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Eligible ``(kw_index[], match_code[])`` arrays for a query shape.

        Precomputed; do not mutate the returned arrays.  Ordered exactly
        like :meth:`eligible_pairs`: exact matches first (ascending
        keyword index), then phrase, then broad.
        """
        shape = 2 if shuffled else (1 if decorated else 0)
        arrays = self._arrays_by_shape[shape][seed_index]
        _CANDIDATES_MATCHED.inc(len(arrays[0]))
        return arrays

    def eligible_pairs(
        self, seed_index: int, decorated: bool, shuffled: bool
    ) -> list[tuple[int, int]]:
        """All eligible (kw_index, match_code) pairs for a query shape."""
        kws, codes = self.eligible_arrays(seed_index, decorated, shuffled)
        return [(int(kw), int(code)) for kw, code in zip(kws, codes)]


@lru_cache(maxsize=None)
def match_table(vertical_name: str) -> MatchTable:
    """Cached match table for a vertical."""
    return MatchTable(vertical_name)


class CellSampler:
    """Samples (vertical, country) cells by joint query volume."""

    def __init__(self) -> None:
        vertical_volumes = np.array([v.query_volume for v in VERTICALS])
        country_volumes = np.array([c.query_volume for c in COUNTRIES])
        joint = np.outer(vertical_volumes, country_volumes).ravel()
        self._probs = joint / joint.sum()
        self._n_countries = len(COUNTRIES)

    @property
    def n_cells(self) -> int:
        """Total number of (vertical, country) cells."""
        return len(self._probs)

    def cell_probabilities(self) -> np.ndarray:
        """Per-cell sampling probabilities (copy)."""
        return self._probs.copy()

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Cell ids (vertical_code * n_countries + country_code)."""
        return rng.choice(self.n_cells, size=size, p=self._probs)

    def split(self, cell_id: int) -> tuple[int, int]:
        """(vertical code, country code) of a cell id."""
        return divmod(cell_id, self._n_countries)

    @staticmethod
    def cell_of(vertical_code: int, country_code: int) -> int:
        """Cell id of a (vertical, country) pair."""
        return vertical_code * len(COUNTRIES) + country_code


class QuerySampler:
    """Generates the day's query instances."""

    def __init__(self, config: QueryConfig) -> None:
        self._config = config
        self._cells = CellSampler()
        # Cumulative keyword popularity per vertical for fast seed draws.
        self._seed_cdf = [
            np.cumsum(keyword_weights(v.name)) for v in VERTICALS
        ]

    @property
    def cells(self) -> CellSampler:
        """The underlying cell sampler."""
        return self._cells

    def sample_day(self, rng: np.random.Generator) -> list[Query]:
        """All query instances for one day."""
        config = self._config
        count = config.auctions_per_day
        cell_ids = self._cells.sample(rng, count)
        uniform = rng.random((count, 3))
        queries: list[Query] = []
        for index in range(count):
            vertical_code, country_code = self._cells.split(int(cell_ids[index]))
            seed_index = int(
                np.searchsorted(self._seed_cdf[vertical_code], uniform[index, 0])
            )
            seed_index = min(seed_index, len(self._seed_cdf[vertical_code]) - 1)
            decorated = uniform[index, 1] < config.decorate_prob
            shuffled = decorated and uniform[index, 2] < config.shuffle_prob
            factor = (
                config.tail_weight_factor
                if decorated
                else config.head_weight_factor
            )
            queries.append(
                Query(
                    vertical=vertical_code,
                    country=country_code,
                    seed_index=seed_index,
                    decorated=decorated,
                    shuffled=shuffled,
                    weight=config.volume_weight * factor,
                )
            )
        return queries
