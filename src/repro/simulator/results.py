"""Simulation outputs.

:class:`AccountSummary` is the per-account analysis view (compact, no
entity graphs); :class:`SimulationResult` bundles the three datasets
the paper works from: customer/ad records (as account summaries plus
optional full entities), the impression/click table, and the fraud
detection records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import SimulationConfig
from ..detection.policy import PolicyChange
from ..entities.advertiser import Advertiser
from ..entities.enums import AdvertiserKind
from ..records.impressions import ImpressionTable
from ..records.schemas import CustomerRecord, DetectionRecord

__all__ = ["AccountSummary", "SimulationResult"]


@dataclass
class AccountSummary:
    """Everything the analyses need to know about one account.

    Attributes:
        advertiser_id / adv_row: Identifier and dense row index (the
            impression table references ``advertiser_id``).
        kind: Ground-truth population.
        labeled_fraud: The platform's eventual label -- what the
            paper's analyses condition on.
        created_time / first_ad_time / shutdown_time: Lifecycle times.
        shutdown_reason: Detection stage that fired, if any.
        activity_end: When activity stopped (shutdown, dormancy, or
            the study end), used for rate denominators (Section 3.3.1).
        country / language / currency: Registration attributes.
        verticals: Campaign verticals (primary first).
        n_ads / n_keywords: Totals created over the account's life.
        n_domains: Distinct destination domains across ads.
        ad_creation_times / kw_creation_times: Event times, for
            windowed creation counts (Figure 7a/7b).
        ad_mod_times / kw_mod_times: Modification events (Figure 7c/7d).
        bid_count_by_match / bid_sum_by_match: Length-3 arrays
            (exact, phrase, broad) of keyword-bid counts and summed max
            bids (Figure 9, Table 4 denominators).
        bid_above_default_by_match: Count of bids strictly above the
            platform default per match type (Section 5.3's 17%-vs-34%).
        activity_scale / participation / quality: Behavioural knobs
            (exported for validation and ablations).
    """

    advertiser_id: int
    adv_row: int
    kind: AdvertiserKind
    labeled_fraud: bool
    created_time: float
    first_ad_time: float | None
    shutdown_time: float | None
    shutdown_reason: str | None
    activity_end: float
    country: str
    language: str
    currency: str
    verticals: tuple[str, ...]
    n_ads: int
    n_keywords: int
    n_domains: int
    ad_creation_times: np.ndarray
    kw_creation_times: np.ndarray
    ad_mod_times: np.ndarray
    kw_mod_times: np.ndarray
    bid_count_by_match: np.ndarray
    bid_sum_by_match: np.ndarray
    bid_above_default_by_match: np.ndarray
    activity_scale: float
    participation: float
    quality: float

    @property
    def is_fraud_ground_truth(self) -> bool:
        """Ground-truth fraud flag (not the platform label)."""
        return self.kind.is_fraud

    @property
    def posted_ads(self) -> bool:
        """Whether the account ever posted an ad."""
        return self.first_ad_time is not None

    def alive_during(self, start: float, end: float) -> bool:
        """Account existed and was not yet shut down during [start, end)."""
        ended = self.shutdown_time if self.shutdown_time is not None else np.inf
        return self.created_time < end and ended > start

    def active_days_in(self, start: float, end: float) -> float:
        """Days the account could generate activity within [start, end).

        The paper's rate denominator: from the later of window start and
        account creation to the earlier of window end and freeze.
        """
        lo = max(start, self.created_time)
        hi = min(end, self.activity_end)
        return max(0.0, hi - lo)

    def to_customer_record(self) -> CustomerRecord:
        """Export as a customer-dataset record."""
        return CustomerRecord(
            advertiser_id=self.advertiser_id,
            created_time=self.created_time,
            country=self.country,
            language=self.language,
            currency=self.currency,
            kind=self.kind.value,
            labeled_fraud=self.labeled_fraud,
            shutdown_time=self.shutdown_time,
            shutdown_reason=self.shutdown_reason,
            first_ad_time=self.first_ad_time,
            n_ads=self.n_ads,
            n_keywords=self.n_keywords,
        )


@dataclass
class SimulationResult:
    """Everything a two-year simulation produced."""

    config: SimulationConfig
    accounts: list[AccountSummary]
    impressions: ImpressionTable
    detections: list[DetectionRecord]
    policy_changes: list[PolicyChange]
    #: Full entity graphs, only retained when
    #: ``run_simulation(keep_entities=True)``.
    advertisers: list[Advertiser] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_id = {a.advertiser_id: a for a in self.accounts}

    def account(self, advertiser_id: int) -> AccountSummary:
        """Look up one account summary by id."""
        return self._by_id[advertiser_id]

    def fraud_accounts(self) -> list[AccountSummary]:
        """Accounts the platform labeled fraudulent (the paper's 'fraud')."""
        return [a for a in self.accounts if a.labeled_fraud]

    def nonfraud_accounts(self) -> list[AccountSummary]:
        """Active-or-never-caught accounts (the paper's 'non-fraudulent')."""
        return [a for a in self.accounts if not a.labeled_fraud]

    def customer_records(self) -> list[CustomerRecord]:
        """The customer dataset for every account."""
        return [a.to_customer_record() for a in self.accounts]

    @property
    def total_days(self) -> int:
        """Length of the simulated study in days."""
        return self.config.days

    def labeled_fraud_ids(self) -> np.ndarray:
        """Sorted ids of accounts the platform labeled fraudulent."""
        return np.asarray(
            sorted(a.advertiser_id for a in self.accounts if a.labeled_fraud),
            dtype=np.int64,
        )
