"""Two-year marketplace simulation."""

from .cache import cached_simulation, clear_cache, seed_cache, set_cache_capacity
from .engine import RNG_STREAMS, SimulationEngine, run_simulation
from .market import MarketIndex
from .querygen import CellSampler, MatchTable, Query, QuerySampler, match_table
from .registration import FraudShareSchedule, sample_daily_counts
from .results import AccountSummary, SimulationResult

__all__ = [
    "RNG_STREAMS",
    "SimulationEngine",
    "run_simulation",
    "cached_simulation",
    "clear_cache",
    "seed_cache",
    "set_cache_capacity",
    "MarketIndex",
    "CellSampler",
    "MatchTable",
    "match_table",
    "Query",
    "QuerySampler",
    "FraudShareSchedule",
    "sample_daily_counts",
    "AccountSummary",
    "SimulationResult",
]
