"""Crash-safe checkpoint/resume runner with deterministic fault injection.

:class:`CheckpointRunner` persists simulation progress at phase
boundaries and per-N-day impression chunks, all written atomically, so
a minutes-long full-scale run survives crashes and resumes
bit-identically.  :class:`FaultPlan` injects crashes and corruption at
exact, named points so every recovery path is testable.  CLI::

    python -m repro.runner --checkpoint-dir RUNS/x [--resume]
"""

from .faults import Fault, FaultPlan, InjectedCrash
from .manifest import ChunkEntry, RunManifest, config_sha256
from .runner import CheckpointRunner

__all__ = [
    "CheckpointRunner",
    "RunManifest",
    "ChunkEntry",
    "config_sha256",
    "Fault",
    "FaultPlan",
    "InjectedCrash",
]
