"""Crash-safe checkpoint/resume runner with deterministic fault injection.

:class:`CheckpointRunner` persists simulation progress at phase
boundaries and per-N-day impression chunks, all written atomically, so
a minutes-long full-scale run survives crashes and resumes
bit-identically.  :class:`FaultPlan` injects crashes, corruption and
filesystem IO errors (via :class:`WriteFault`) at exact, named points
so every recovery path is testable.  :func:`verify_run` audits a run
directory against its manifest and :func:`repair_run` re-simulates
damage back to vouched bytes.  CLI::

    python -m repro.runner run --checkpoint-dir RUNS/x [--resume]
    python -m repro.runner verify RUNS/x
    python -m repro.runner doctor RUNS/x --repair
"""

from .chunkstore import (
    CHUNK_FORMATS,
    DEFAULT_CHUNK_FORMAT,
    chunk_to_bytes,
    load_chunk,
)
from .doctor import RepairReport, VerifyReport, repair_run, verify_run
from .faults import (
    IO_BITROT,
    IO_ERROR,
    IO_TORN,
    Fault,
    FaultPlan,
    InjectedCrash,
    WriteFault,
)
from .manifest import ChunkEntry, RunManifest, config_sha256
from .runner import CheckpointRunner

__all__ = [
    "CheckpointRunner",
    "CHUNK_FORMATS",
    "DEFAULT_CHUNK_FORMAT",
    "chunk_to_bytes",
    "load_chunk",
    "RunManifest",
    "ChunkEntry",
    "config_sha256",
    "Fault",
    "FaultPlan",
    "InjectedCrash",
    "WriteFault",
    "IO_ERROR",
    "IO_TORN",
    "IO_BITROT",
    "VerifyReport",
    "RepairReport",
    "verify_run",
    "repair_run",
]
