"""Impression-chunk serialization formats for the checkpoint runner.

A run directory's ``chunks/`` files can be stored in one of three
formats, recorded in the manifest's ``chunk_format`` field so resume,
``verify`` and ``doctor --repair`` always read what was written:

``columnar`` (default, ``.npc``)
    A :mod:`repro.records.columnar` bundle -- per-column ``.npy``
    payloads with individual SHA-256 checksums, seekable by column.
    Byte-stable by construction.
``npz`` (legacy, ``.npz``)
    ``np.savez_compressed`` archive -- what every run written before
    the columnar store used.  Manifests that predate ``chunk_format``
    map to this.  numpy pins the zip member timestamp, so these bytes
    are deterministic too.
``jsonl`` (export, ``.jsonl``)
    One JSON object per row in storage-field order.  Slow and large,
    but greppable and diffable; Python's ``repr``-based float
    serialization round-trips every ``float64`` exactly, so even this
    format is bit-exact and replayable.

All three serializers are *deterministic*: the same drained arrays
always produce the same bytes.  That is the property the doctor's
repair path stands on -- it re-simulates a damaged day range, feeds the
drained chunk back through :func:`chunk_to_bytes`, and refuses to write
unless the bytes hash to what the manifest vouched.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np

from ..errors import RecordError, SimulationError
from ..records.columnar import columns_to_bytes, read_columns
from ..records.impressions import ImpressionTable

__all__ = [
    "CHUNK_FORMATS",
    "DEFAULT_CHUNK_FORMAT",
    "LEGACY_CHUNK_FORMAT",
    "chunk_file_name",
    "chunk_suffix",
    "chunk_to_bytes",
    "load_chunk",
]

#: Formats a manifest's ``chunk_format`` may name.
CHUNK_FORMATS = ("columnar", "npz", "jsonl")
#: Format new runs are written in.
DEFAULT_CHUNK_FORMAT = "columnar"
#: Format assumed for manifests written before ``chunk_format`` existed.
LEGACY_CHUNK_FORMAT = "npz"

_SUFFIXES = {"columnar": ".npc", "npz": ".npz", "jsonl": ".jsonl"}

_FIELD_DTYPES = ImpressionTable.field_dtypes()
_FIELD_NAMES = ImpressionTable.field_names()


def _check_format(chunk_format: str) -> None:
    if chunk_format not in CHUNK_FORMATS:
        raise SimulationError(
            f"unknown chunk format {chunk_format!r}; "
            f"expected one of {CHUNK_FORMATS}"
        )


def chunk_suffix(chunk_format: str) -> str:
    """File suffix for chunks of the given format."""
    _check_format(chunk_format)
    return _SUFFIXES[chunk_format]


def chunk_file_name(day_start: int, day_end: int, chunk_format: str) -> str:
    """Canonical chunk file name for a day range in a format."""
    return (
        f"chunk-{day_start:05d}-{day_end:05d}{chunk_suffix(chunk_format)}"
    )


def chunk_to_bytes(
    chunk: dict, chunk_format: str, day_start: int, day_end: int
) -> bytes:
    """Serialize a drained builder chunk deterministically."""
    _check_format(chunk_format)
    if chunk_format == "columnar":
        ordered = {name: chunk[name] for name in _FIELD_NAMES}
        return columns_to_bytes(
            ordered, meta={"day_end": day_end, "day_start": day_start}
        )
    if chunk_format == "npz":
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **chunk)
        return buffer.getvalue()
    rows = len(chunk["day"])
    lines = []
    for i in range(rows):
        record = {}
        for name in _FIELD_NAMES:
            value = chunk[name][i]
            record[name] = value.item() if hasattr(value, "item") else value
        lines.append(json.dumps(record, separators=(",", ":")))
    lines.append("")
    return "\n".join(lines).encode("utf-8")


def load_chunk(path: str | Path, chunk_format: str) -> dict | None:
    """Load a chunk's per-field arrays, or ``None`` if malformed.

    A return of ``None`` means the file is structurally not a chunk of
    this format (wrong container, wrong field set) -- callers treat it
    exactly like a checksum failure.  IO errors propagate.
    """
    _check_format(chunk_format)
    path = Path(path)
    if chunk_format == "columnar":
        try:
            columns = read_columns(path)
        except RecordError:
            return None
        if set(columns) != set(_FIELD_NAMES):
            return None
        return columns
    if chunk_format == "npz":
        try:
            with np.load(path) as archive:
                if set(archive.files) != set(_FIELD_NAMES):
                    return None
                return {name: archive[name] for name in archive.files}
        except (OSError, ValueError):
            # np.load raises OSError/ValueError on non-zip garbage.
            if path.exists():
                return None
            raise
    columns: dict[str, list] = {name: [] for name in _FIELD_NAMES}
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return None
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict) or set(record) != set(_FIELD_NAMES):
            return None
        for name in _FIELD_NAMES:
            columns[name].append(record[name])
    return {
        name: np.asarray(columns[name], dtype=_FIELD_DTYPES[name])
        for name in _FIELD_NAMES
    }
