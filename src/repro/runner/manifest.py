"""The run-directory manifest.

One JSON document (``MANIFEST.json``) is the single source of truth for
what a run directory durably contains: the configuration hash the run
was started with, the package version, a SHA-256 checksum for every
artifact, the per-chunk impression index, and the serialized
``bit_generator`` states of all five named RNG streams at each
checkpoint.  The manifest is always rewritten atomically *after* the
artifacts it references are durable, so resume can trust exactly what
it lists and nothing else.

PCG64 states are plain nested dicts of ints, so they round-trip through
JSON losslessly -- restoring them reproduces the exact draw sequence,
which is what makes a resumed run bit-identical to an uninterrupted
one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from .._version import __version__
from ..config import SimulationConfig, config_from_dict
from ..errors import ConfigError, SimulationError
from ..records.atomic import atomic_write_text
from .chunkstore import CHUNK_FORMATS, DEFAULT_CHUNK_FORMAT, LEGACY_CHUNK_FORMAT

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_FORMAT",
    "ChunkEntry",
    "RunManifest",
    "config_sha256",
]

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_FORMAT = "repro-run/1"

#: Phases a run directory can durably be in.  ``phase1`` means the
#: population is still being generated (nothing durable yet beyond the
#: manifest itself); ``phase3`` means population + market snapshots are
#: durable and auction chunks are accumulating; ``complete`` means the
#: run finished.
PHASES = ("phase1", "phase3", "complete")


def config_sha256(config: SimulationConfig) -> str:
    """Stable hash of the full configuration (all knobs, seed, days)."""
    payload = json.dumps(
        dataclasses.asdict(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class ChunkEntry:
    """One durable impression chunk covering days [day_start, day_end)."""

    file: str
    sha256: str
    day_start: int
    day_end: int
    rows: int
    #: RNG states of all five streams *after* day ``day_end - 1`` --
    #: restoring them resumes the simulation at ``day_end`` exactly.
    rng_after: dict

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ChunkEntry":
        try:
            return cls(
                file=str(payload["file"]),
                sha256=str(payload["sha256"]),
                day_start=int(payload["day_start"]),
                day_end=int(payload["day_end"]),
                rows=int(payload["rows"]),
                rng_after=dict(payload["rng_after"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SimulationError(f"malformed chunk entry: {exc}") from None


@dataclass
class RunManifest:
    """Durable progress record for one checkpointed run."""

    config_sha256: str
    seed: int
    days: int
    checkpoint_every: int
    phase: str = "phase1"
    format: str = MANIFEST_FORMAT
    package_version: str = __version__
    #: Relative artifact path -> hex SHA-256: the phase1/market
    #: snapshots plus the day ledger at its last durable flush -- every
    #: non-chunk artifact the doctor can vouch for.
    artifacts: dict[str, str] = field(default_factory=dict)
    #: RNG states at the start of Phase 3 (right after the market
    #: snapshot became durable); the resume point when no chunk exists.
    phase3_start_rng: dict | None = None
    chunks: list[ChunkEntry] = field(default_factory=list)
    #: Serialization format of every file under ``chunks/`` (see
    #: :mod:`repro.runner.chunkstore`).  Manifests written before this
    #: field existed load as ``"npz"``, the only format that existed.
    chunk_format: str = DEFAULT_CHUNK_FORMAT
    #: The full configuration (``dataclasses.asdict`` form), embedded
    #: so ``verify``/``doctor`` can re-simulate damaged artifacts
    #: without the caller re-supplying CLI flags.  ``None`` only for
    #: manifests written before this field existed.
    config: dict | None = None

    @classmethod
    def fresh(
        cls,
        config: SimulationConfig,
        checkpoint_every: int,
        chunk_format: str = DEFAULT_CHUNK_FORMAT,
    ) -> "RunManifest":
        """Manifest for a run that has not generated anything yet."""
        return cls(
            config_sha256=config_sha256(config),
            seed=config.seed,
            days=config.days,
            checkpoint_every=checkpoint_every,
            config=dataclasses.asdict(config),
            chunk_format=chunk_format,
        )

    def simulation_config(self) -> SimulationConfig | None:
        """Rebuild the embedded configuration, verifying its hash.

        Returns ``None`` for pre-doctor manifests that carry only the
        hash; raises :class:`SimulationError` if the embedded config no
        longer matches ``config_sha256`` (a hand-edited manifest must
        not smuggle in a different run).
        """
        if self.config is None:
            return None
        try:
            config = config_from_dict(self.config)
        except ConfigError as exc:
            raise SimulationError(f"embedded config is invalid: {exc}") from None
        if config_sha256(config) != self.config_sha256:
            raise SimulationError(
                "embedded config does not match config_sha256; the "
                "manifest has been tampered with"
            )
        return config

    @property
    def next_day(self) -> int:
        """First Phase-3 day not covered by a durable chunk."""
        return self.chunks[-1].day_end if self.chunks else 0

    def resume_rng(self) -> dict | None:
        """RNG states to restore when resuming Phase 3."""
        if self.chunks:
            return self.chunks[-1].rng_after
        return self.phase3_start_rng

    def to_json(self) -> str:
        payload = dataclasses.asdict(self)
        payload["chunks"] = [chunk.to_dict() for chunk in self.chunks]
        return json.dumps(payload, sort_keys=True, indent=1)

    def save(self, path: str | Path) -> None:
        """Atomically persist the manifest."""
        atomic_write_text(path, self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        """Load and structurally validate a manifest.

        Raises :class:`SimulationError` (never raw ``json`` errors) on
        unreadable or malformed content.
        """
        try:
            payload = json.loads(Path(path).read_text())
        except OSError as exc:
            raise SimulationError(f"cannot read manifest {path}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise SimulationError(
                f"manifest {path} is not valid JSON: {exc}"
            ) from None
        if not isinstance(payload, dict):
            raise SimulationError(f"manifest {path} is not a JSON object")
        if payload.get("format") != MANIFEST_FORMAT:
            raise SimulationError(
                f"manifest {path} has format {payload.get('format')!r}, "
                f"expected {MANIFEST_FORMAT!r}"
            )
        try:
            manifest = cls(
                config_sha256=str(payload["config_sha256"]),
                seed=int(payload["seed"]),
                days=int(payload["days"]),
                checkpoint_every=int(payload["checkpoint_every"]),
                phase=str(payload["phase"]),
                format=str(payload["format"]),
                package_version=str(payload["package_version"]),
                artifacts=dict(payload["artifacts"]),
                phase3_start_rng=payload.get("phase3_start_rng"),
                chunks=[
                    ChunkEntry.from_dict(chunk) for chunk in payload["chunks"]
                ],
                config=payload.get("config"),
                chunk_format=str(
                    payload.get("chunk_format", LEGACY_CHUNK_FORMAT)
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SimulationError(f"malformed manifest {path}: {exc}") from None
        if manifest.phase not in PHASES:
            raise SimulationError(
                f"manifest {path} has unknown phase {manifest.phase!r}"
            )
        if manifest.chunk_format not in CHUNK_FORMATS:
            raise SimulationError(
                f"manifest {path} has unknown chunk format "
                f"{manifest.chunk_format!r}"
            )
        previous_end = 0
        for chunk in manifest.chunks:
            if chunk.day_start != previous_end or chunk.day_end <= chunk.day_start:
                raise SimulationError(
                    f"manifest {path}: chunk index is not a contiguous "
                    f"tiling of days (at {chunk.file})"
                )
            previous_end = chunk.day_end
        return manifest
