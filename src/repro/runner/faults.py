"""Deterministic fault injection for the checkpoint runner.

A :class:`FaultPlan` is an explicit, ordered list of faults to inject
at named instrumentation sites inside :class:`~repro.runner.runner.
CheckpointRunner`.  Nothing here is random: tests declare exactly where
a run dies and what damage is left behind, so every recovery path
(clean resume, corrupt-tail fallback, config-mismatch refusal) is
exercised reproducibly.

Sites fired by the runner:

``phase1:day``
    After each Phase-1 day's registrations are generated (``day=``).
``phase1:end``
    After the population + market snapshots became durable.
``phase3:day``
    After each Phase-3 day's impressions are in the builder, *before*
    any checkpoint for it is written (``day=``).
``phase3:checkpoint``
    After a checkpoint (chunk + manifest) became durable (``day=``).
``finalize``
    Just before the manifest is marked ``complete``.

Actions:

``crash``
    Raise :class:`InjectedCrash` -- simulates the process dying.
``truncate-chunk``
    Cut ``detail`` bytes (default 64) off the end of the most recent
    durable chunk file, then crash -- simulates post-checkpoint media
    corruption / a torn write on a non-atomic filesystem.  Resume must
    detect the checksum mismatch and discard the tail chunk.
``corrupt-manifest``
    Damage one manifest entry, then crash.  ``detail`` selects the
    entry: ``"config_sha256"`` (resume must refuse with
    :class:`~repro.errors.SimulationError`) or ``"tail-chunk-sha256"``
    (resume must discard the tail chunk and re-simulate its days).

Beyond the site faults, a plan can carry **IO faults**
(:class:`~repro.records.atomic.WriteFault`): declarative "the disk
lies" scenarios -- ``ENOSPC``/``EIO`` raised at the Nth write matching
a path pattern, a torn write that silently drops the payload tail, or
a flipped byte after a successful write.  The checkpoint runner
installs the plan's :class:`~repro.records.atomic.IoShim` into the
atomic-write layer for the duration of the run, so the same
:class:`FaultPlan` object describes both *when the process dies* and
*when the filesystem lies*.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable

from .. import obs
from ..records.atomic import IO_BITROT, IO_ERROR, IO_TORN, IoShim, WriteFault

__all__ = [
    "CRASH",
    "TRUNCATE_CHUNK",
    "CORRUPT_MANIFEST",
    "IO_ERROR",
    "IO_TORN",
    "IO_BITROT",
    "Fault",
    "FaultPlan",
    "InjectedCrash",
    "IoShim",
    "WriteFault",
]

CRASH = "crash"
TRUNCATE_CHUNK = "truncate-chunk"
CORRUPT_MANIFEST = "corrupt-manifest"
_ACTIONS = (CRASH, TRUNCATE_CHUNK, CORRUPT_MANIFEST)


class InjectedCrash(RuntimeError):
    """A simulated process death.

    Deliberately *not* a :class:`~repro.errors.ReproError`: real
    crashes (OOM kill, power loss) are not catchable package errors,
    and nothing in the package may swallow this.
    """


@dataclass(frozen=True)
class Fault:
    """One planned fault: fire ``action`` the first time ``site`` matches."""

    site: str
    day: int | None = None
    action: str = CRASH
    detail: object = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")

    def matches(self, site: str, day: int | None) -> bool:
        return self.site == site and (self.day is None or self.day == day)


class FaultPlan:
    """An ordered set of faults; each fires at most once.

    The runner calls :meth:`fire` at every instrumentation site; the
    plan executes (and consumes) the first pending fault whose site and
    day match.  ``io_faults`` additionally plan filesystem-level damage
    (see :class:`~repro.records.atomic.WriteFault`); the runner
    installs :meth:`io_shim` into the atomic-write layer for the
    duration of the run.  An empty plan is inert, so production runs
    pass no plan at all.
    """

    def __init__(
        self,
        faults: Iterable[Fault] = (),
        io_faults: Iterable[WriteFault] = (),
    ) -> None:
        self._pending: list[Fault] = list(faults)
        self.fired: list[Fault] = []
        self._io_shim = IoShim(io_faults) if io_faults else None

    def io_shim(self) -> IoShim | None:
        """The shim carrying this plan's IO faults (``None`` if none)."""
        return self._io_shim

    @property
    def io_fired(self) -> list:
        """IO faults that have fired, as ``(fault, path)`` pairs."""
        return list(self._io_shim.fired) if self._io_shim else []

    @classmethod
    def crash_at(cls, site: str, day: int | None = None) -> "FaultPlan":
        """Shorthand for a single process-death fault."""
        return cls([Fault(site=site, day=day)])

    @property
    def pending(self) -> tuple[Fault, ...]:
        """Faults that have not fired yet."""
        return tuple(self._pending)

    def fire(self, site: str, day: int | None = None, runner=None) -> None:
        """Execute the first pending fault matching this site, if any."""
        for index, fault in enumerate(self._pending):
            if fault.matches(site, day):
                del self._pending[index]
                self.fired.append(fault)
                self._execute(fault, site, day, runner)
                return

    def _execute(self, fault: Fault, site: str, day, runner) -> None:
        where = f"{site}" + (f" day={day}" if day is not None else "")
        if fault.action == TRUNCATE_CHUNK:
            _truncate_tail_chunk(runner, int(fault.detail or 64))
        elif fault.action == CORRUPT_MANIFEST:
            _corrupt_manifest(runner, str(fault.detail or "config_sha256"))
        # Make the injected fault itself durable: real crashes leave no
        # trace, but *injected* ones are the tool that debugs recovery,
        # so flush the attached sinks before dying.  Best-effort only:
        # a plan that also breaks the telemetry device must still die
        # of the *injected* crash, not of the flush.
        obs.event("runner.fault", site=site, day=day, action=fault.action)
        try:
            obs.tracer().flush()
        except OSError:
            pass
        raise InjectedCrash(f"injected {fault.action} at {where}")


def _truncate_tail_chunk(runner, n_bytes: int) -> None:
    """Chop the end off the newest durable chunk file (in place)."""
    manifest = json.loads(runner.manifest_path.read_text())
    chunks = manifest["chunks"]
    if not chunks:
        raise ValueError("no durable chunk to truncate")
    path = runner.run_dir / chunks[-1]["file"]
    data = path.read_bytes()
    path.write_bytes(data[: max(0, len(data) - n_bytes)])


def _corrupt_manifest(runner, key: str) -> None:
    """Flip one manifest entry to a bogus value (non-atomically)."""
    payload = json.loads(runner.manifest_path.read_text())
    if key == "config_sha256":
        payload["config_sha256"] = "0" * 64
    elif key == "tail-chunk-sha256":
        if not payload["chunks"]:
            raise ValueError("no chunk entry to corrupt")
        payload["chunks"][-1]["sha256"] = "0" * 64
    else:
        raise ValueError(f"unknown manifest corruption target {key!r}")
    runner.manifest_path.write_text(json.dumps(payload))
