"""CLI for the checkpointing run harness.

Run a full simulation with durable checkpoints, or resume one that was
interrupted::

    python -m repro.runner run --checkpoint-dir RUNS/x
    python -m repro.runner run --checkpoint-dir RUNS/x --resume

(the ``run`` subcommand is optional, so pre-doctor invocations like
``python -m repro.runner --checkpoint-dir RUNS/x`` keep working).

Audit or repair an existing run directory::

    python -m repro.runner verify RUNS/x
    python -m repro.runner doctor RUNS/x --repair

``verify`` re-checksums every vouched artifact and reports stray
``.tmp`` files; it exits 0 only for a healthy directory (1 = damage,
2 = the manifest itself is unreadable).  ``doctor --repair``
quarantines damaged/stray files and deterministically re-simulates
exactly the damaged day ranges back to the manifest's vouched bytes --
see :mod:`repro.runner.doctor` for the repair contract.

The run directory carries everything needed to continue: see
:mod:`repro.runner.runner` for the layout and recovery semantics.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from .. import obs
from ..config import default_config, small_config
from ..errors import ReproError
from ..records.atomic import atomic_write_text

log = obs.get_logger("runner.cli")


def _main_run(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Run a simulation with crash-safe checkpoints.",
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=Path,
        required=True,
        help="run directory holding MANIFEST.json, snapshots and chunks",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted run from its last durable checkpoint",
    )
    parser.add_argument(
        "--small", action="store_true", help="use the fast test-scale config"
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--days", type=int, default=None)
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=7,
        metavar="N",
        help="persist an impression chunk every N simulated days",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="also write the validation report to this path",
    )
    from .chunkstore import CHUNK_FORMATS, DEFAULT_CHUNK_FORMAT

    parser.add_argument(
        "--chunk-format",
        choices=CHUNK_FORMATS,
        default=DEFAULT_CHUNK_FORMAT,
        help=(
            "on-disk impression chunk format for fresh runs (resume "
            "always keeps the directory's recorded format)"
        ),
    )
    args = parser.parse_args(argv)
    obs.setup_logging()

    config = small_config() if args.small else default_config()
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    if args.days is not None:
        config = replace(config, days=args.days)

    from .runner import CheckpointRunner

    # Monotonic clock (the tracer's): wall-clock steps from NTP slew
    # must not corrupt the reported elapsed time.
    started = obs.tracer().now()
    try:
        runner = CheckpointRunner(
            config,
            args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            chunk_format=args.chunk_format,
        )
        result = runner.run(resume=args.resume)
    except ReproError as exc:
        log.error("%s", exc)
        return 2
    elapsed = obs.tracer().now() - started
    print(
        f"simulated {config.days} days in {elapsed:.0f}s "
        f"(run dir: {args.checkpoint_dir})"
    )
    print(
        f"{len(result.accounts)} accounts, "
        f"{len(result.impressions)} impression rows, "
        f"{len(result.detections)} detections"
    )
    if args.report is not None:
        import json

        from ..validation import checks_to_json, render_report, run_validation

        try:
            checks = run_validation(result)
            report = render_report(checks)
        except ReproError as exc:
            log.error("validation failed: %s", exc)
            return 2
        atomic_write_text(args.report, report + "\n")
        print(f"wrote {args.report}")
        # Machine-readable twin in the run directory, where the run
        # registry and `repro.obs diff` look for it.
        validation_json = args.checkpoint_dir / "validation.json"
        atomic_write_text(
            validation_json, json.dumps(checks_to_json(checks), indent=2) + "\n"
        )
        print(f"wrote {validation_json}")
    return 0


def _main_verify(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner verify",
        description="Re-checksum every vouched artifact in a run directory.",
    )
    parser.add_argument("run_dir", type=Path, help="run directory to audit")
    args = parser.parse_args(argv)
    obs.setup_logging()

    from .doctor import render_verify, verify_run

    try:
        report = verify_run(args.run_dir)
    except ReproError as exc:
        log.error("%s", exc)
        return 2
    print(render_verify(report))
    return 0 if report.ok else 1


def _main_doctor(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner doctor",
        description=(
            "Diagnose a run directory; with --repair, quarantine damage "
            "and re-simulate it back to the manifest's vouched bytes."
        ),
    )
    parser.add_argument("run_dir", type=Path, help="run directory to doctor")
    parser.add_argument(
        "--repair",
        action="store_true",
        help="quarantine damaged/stray files and re-simulate the damage",
    )
    args = parser.parse_args(argv)
    obs.setup_logging()

    from .doctor import render_repair, render_verify, repair_run, verify_run

    try:
        if not args.repair:
            report = verify_run(args.run_dir)
            print(render_verify(report))
            if not report.ok:
                print("run `doctor --repair` to quarantine and re-simulate")
            return 0 if report.ok else 1
        repair = repair_run(args.run_dir)
    except ReproError as exc:
        log.error("%s", exc)
        return 2
    print(render_repair(repair))
    return 0 if repair.verify is not None and repair.verify.ok else 1


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "verify":
        return _main_verify(argv[1:])
    if argv and argv[0] == "doctor":
        return _main_doctor(argv[1:])
    if argv and argv[0] == "run":
        argv = argv[1:]
    return _main_run(argv)


if __name__ == "__main__":
    raise SystemExit(main())
