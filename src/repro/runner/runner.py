"""Crash-safe checkpoint/resume orchestration of a full simulation.

Run directory layout::

    <run_dir>/
      MANIFEST.json             config hash, checksums, chunk index, RNG states
      phase1.pkl                population summaries + detection pipeline state
      market.pkl                the Phase-2 MarketIndex snapshot
      chunks/
        chunk-00000-00007.npc   impression rows for days [0, 7), append-only
        chunk-00007-00014.npc   ...

Chunks are columnar bundles (:mod:`repro.records.columnar`) by default;
the manifest's ``chunk_format`` field records which of the three
:mod:`repro.runner.chunkstore` formats (``columnar``/``npz``/``jsonl``)
a directory uses, and resume always reads/writes the recorded format
regardless of what a fresh run would pick.

Crash-consistency protocol: every artifact lands via tmp-file + fsync +
``os.replace`` (:mod:`repro.records.atomic`), and ``MANIFEST.json`` is
replaced only *after* the artifacts it references are durable.  A crash
at any instant therefore leaves the directory in one of the states the
resume path is written for:

* no manifest, or manifest in phase ``phase1`` -- Phase 1 is re-run
  from the seed (deterministic, so nothing is lost);
* manifest in phase ``phase3`` -- population + market snapshots are
  verified by checksum and reloaded, durable chunks are verified and
  reloaded, the five RNG streams are restored from the last chunk's
  recorded state, and the day loop continues at ``next_day``;
* a chunk file that exists but is not in the manifest is a partial
  write from the crash -- deleted and re-simulated;
* the *tail* manifest chunk whose file is missing or fails its
  checksum is discarded and its days are re-simulated (corrupt-tail
  fallback); corruption anywhere earlier, or of the phase snapshots,
  refuses with :class:`~repro.errors.SimulationError`;
* a manifest whose config hash does not match the resuming
  configuration refuses with :class:`~repro.errors.SimulationError`.

Because every stochastic draw comes from the five named RNG streams and
their ``bit_generator`` states are serialized at each checkpoint, an
interrupted-and-resumed run is *bit-identical* to an uninterrupted run
of the same seed -- the resume-determinism tests assert equality of the
final impression table, detection records, and validation report.
"""

from __future__ import annotations

import pickle
import warnings
from pathlib import Path

from .. import obs
from ..config import SimulationConfig
from ..errors import ConfigError, SimulationError
from ..obs.progress import ProgressSink
from ..obs.resources import ResourceSampler
from ..obs.sink import TELEMETRY_NAME, JsonlSink
from ..obs.timeseries import DAYLEDGER_NAME, DayLedger
from ..records.atomic import (
    atomic_write_bytes,
    set_io_shim,
    sha256_bytes,
    sha256_file,
)
from ..records.impressions import ImpressionBuilder
from ..simulator.engine import SimulationEngine
from ..simulator.market import MarketIndex
from ..simulator.results import SimulationResult
from .chunkstore import (
    DEFAULT_CHUNK_FORMAT,
    chunk_file_name,
    chunk_to_bytes,
    load_chunk,
)
from .faults import FaultPlan
from .manifest import MANIFEST_NAME, ChunkEntry, RunManifest, config_sha256

__all__ = [
    "CheckpointRunner",
    "PHASE1_NAME",
    "MARKET_NAME",
    "TELEMETRY_NAME",
    "DAYLEDGER_NAME",
]

PHASE1_NAME = "phase1.pkl"
MARKET_NAME = "market.pkl"
CHUNK_DIR = "chunks"

# Runner telemetry handles (repro.obs).
_CHUNKS_WRITTEN = obs.counter("runner.chunks_written")
_CHUNKS_VERIFIED = obs.counter("runner.chunks_verified")
_TAILS_DISCARDED = obs.counter("runner.tail_chunks_discarded")
_IO_DEGRADED = obs.counter("io.degraded")

_log = obs.get_logger("runner")


class CheckpointRunner:
    """Runs a simulation with durable checkpoints in a run directory."""

    def __init__(
        self,
        config: SimulationConfig,
        run_dir: str | Path,
        checkpoint_every: int = 7,
        faults: FaultPlan | None = None,
        telemetry: bool = True,
        ledger: bool = True,
        progress: bool = True,
        resources: bool = True,
        chunk_format: str = DEFAULT_CHUNK_FORMAT,
    ) -> None:
        if checkpoint_every < 1:
            raise ConfigError("checkpoint_every must be >= 1")
        # Validate the format up front (fail fast on typos); a resumed
        # run later overrides this with whatever its manifest records.
        chunk_file_name(0, 0, chunk_format)
        self.config = config
        self.run_dir = Path(run_dir)
        self.checkpoint_every = checkpoint_every
        self.chunk_format = chunk_format
        self.telemetry = telemetry
        self.ledger = ledger
        self.progress = progress
        self.resources = resources
        self.manifest_path = self.run_dir / MANIFEST_NAME
        self.chunk_dir = self.run_dir / CHUNK_DIR
        self.phase1_path = self.run_dir / PHASE1_NAME
        self.market_path = self.run_dir / MARKET_NAME
        self.ledger_path = self.run_dir / DAYLEDGER_NAME
        self._faults = faults if faults is not None else FaultPlan()
        self._sink: JsonlSink | None = None
        self._ledger: DayLedger | None = None
        self._progress: ProgressSink | None = None
        self._sampler: ResourceSampler | None = None
        #: Auxiliary artifacts whose writes have already warned once.
        self._degraded: set[str] = set()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self, resume: bool | str = "auto") -> SimulationResult:
        """Run (or resume) the simulation to completion.

        ``resume`` may be ``True`` (a manifest must exist), ``False``
        (the directory must not contain one), or ``"auto"`` (resume if
        a manifest exists, else start fresh).

        With ``telemetry`` enabled (the default) a
        :class:`~repro.obs.sink.JsonlSink` writes ``telemetry.jsonl``
        into the run directory, flushed atomically at every durable
        checkpoint -- so the telemetry on disk never describes more
        than the manifest guarantees.  A crash loses only the events
        buffered since the last checkpoint, exactly as it loses the
        impression rows since then; resume appends to the same file.

        With ``progress`` enabled (the default) a
        :class:`~repro.obs.progress.ProgressSink` additionally rewrites
        the small ``progress.json`` sidecar on every heartbeat and
        checkpoint, *independent* of the checkpoint-gated telemetry
        flush, so watchers see live state between checkpoints.  With
        ``resources`` enabled (the default) a background
        :class:`~repro.obs.resources.ResourceSampler` records the run's
        RSS/CPU/GC envelope per phase and publishes it into the
        telemetry on completion.  Both are pure observers: neither
        touches the named RNG streams, so the run stays bit-identical.
        """
        has_manifest = self.manifest_path.exists()
        if resume is True and not has_manifest:
            raise SimulationError(
                f"{self.run_dir}: nothing to resume (no {MANIFEST_NAME})"
            )
        if resume is False and has_manifest:
            raise SimulationError(
                f"{self.run_dir}: already contains a run; resume it or "
                f"choose a fresh directory"
            )
        resuming = has_manifest

        self.chunk_dir.mkdir(parents=True, exist_ok=True)
        # Install the fault plan's IO shim (if any) for the duration of
        # the run: every atomic write -- chunks, manifest, snapshots,
        # ledger, telemetry -- goes through the shimmed layer, so a
        # plan can make the disk lie about any artifact.
        shim = self._faults.io_shim()
        prior_shim = set_io_shim(shim) if shim is not None else None
        if self.telemetry:
            self._sink = JsonlSink(self.run_dir / TELEMETRY_NAME)
            obs.add_sink(self._sink)
        if self.progress:
            self._progress = ProgressSink(
                self.run_dir,
                days=self.config.days,
                worker_id=obs.worker_id(),
            )
            obs.add_sink(self._progress)
        if self.resources:
            self._sampler = ResourceSampler()
            self._sampler.start()
        prior_ledger: DayLedger | None = None
        if self.ledger:
            # The ledger, like the telemetry sink, is flushed only when
            # the manifest makes its content durable; a crash loses at
            # most the days since the last checkpoint, which resume
            # re-simulates identically.
            self._ledger = DayLedger(days=self.config.days)
            prior_ledger = obs.set_dayledger(self._ledger)
        completed = False
        try:
            result = self._run(resuming)
            if self._sampler is not None:
                # Stop before the final flush so the envelope lands in
                # this run's telemetry (and sidecar counters settle).
                obs.publish_resources(self._sampler.stop())
            if self._sink is not None or self._progress is not None:
                obs.event(
                    "runner.complete",
                    days=self.config.days,
                    rows=len(result.impressions),
                )
            if self._sink is not None:
                obs.publish_metrics()
                self._flush_telemetry()
            completed = True
            return result
        finally:
            # On an exception (including an injected or real crash
            # surfacing as one) the un-flushed tail is dropped: the
            # durable telemetry stays whatever the last checkpoint
            # flushed, mirroring the run state itself.  The sidecar, by
            # contrast, *does* record the interruption -- that is its
            # job -- and the sampler thread always stops.
            if self._sampler is not None:
                if self._sampler.running:
                    self._sampler.stop()
                self._sampler = None
            if self._progress is not None:
                if not completed:
                    self._progress.mark("interrupted")
                obs.remove_sink(self._progress)
                self._progress = None
            if self._sink is not None:
                obs.remove_sink(self._sink)
                self._sink = None
            if self._ledger is not None:
                obs.set_dayledger(prior_ledger)
                self._ledger = None
            if shim is not None:
                set_io_shim(prior_shim)

    # ------------------------------------------------------------------
    # Graceful degradation of auxiliary sinks
    # ------------------------------------------------------------------

    def _degrade(self, artifact: str, exc: OSError) -> None:
        """Record a persistent auxiliary-write failure and carry on.

        Telemetry and the day ledger are conveniences layered on top of
        the simulation: losing them must never lose the run.  Each
        failure bumps ``io.degraded`` and emits an ``io.degraded``
        event; the first failure per artifact also logs a warning.
        """
        _IO_DEGRADED.inc()
        obs.event("io.degraded", artifact=artifact, error=str(exc))
        if artifact not in self._degraded:
            self._degraded.add(artifact)
            _log.warning(
                "auxiliary write of %s failed (%s); the simulation "
                "continues without it",
                artifact,
                exc,
            )

    def _flush_ledger(self, manifest: RunManifest) -> None:
        """Flush the day ledger and vouch its checksum in the manifest.

        Called *before* ``manifest.save`` at every durable point, so
        the durable ledger is never older than the manifest.  A
        persistent write failure degrades: the manifest keeps vouching
        the last ledger content that actually landed (atomic writes
        leave old-or-new, never a hybrid).
        """
        if self._ledger is None:
            return
        try:
            text = self._ledger.flush(self.ledger_path)
        except OSError as exc:
            self._degrade(DAYLEDGER_NAME, exc)
            return
        manifest.artifacts[DAYLEDGER_NAME] = sha256_bytes(text.encode("utf-8"))

    def _set_resource_phase(self, name: str | None) -> None:
        """Point the resource sampler's phase attribution, when active."""
        if self._sampler is not None:
            self._sampler.set_phase(name)

    def _flush_telemetry(self) -> None:
        """Flush the telemetry sink, degrading on persistent failure."""
        if self._sink is None:
            return
        try:
            self._sink.flush()
        except OSError as exc:
            self._degrade(TELEMETRY_NAME, exc)

    def _run(self, resuming: bool) -> SimulationResult:
        """The checkpointed run body (telemetry sink already attached)."""
        engine = SimulationEngine(self.config)
        with obs.span("runner.run", resuming=resuming, days=self.config.days):
            if resuming:
                manifest = RunManifest.load(self.manifest_path)
                self._check_compatible(manifest)
                manifest.checkpoint_every = self.checkpoint_every
                # The directory's existing chunks dictate the format;
                # a fresh-run preference never rewrites history.
                self.chunk_format = manifest.chunk_format
                obs.event(
                    "runner.resume",
                    phase=manifest.phase,
                    next_day=manifest.next_day,
                    chunks=len(manifest.chunks),
                    chunk_format=manifest.chunk_format,
                )
            else:
                manifest = RunManifest.fresh(
                    self.config,
                    self.checkpoint_every,
                    chunk_format=self.chunk_format,
                )
                manifest.save(self.manifest_path)
                obs.event(
                    "runner.start",
                    seed=self.config.seed,
                    days=self.config.days,
                    checkpoint_every=self.checkpoint_every,
                )

            if manifest.phase == "phase1":
                self._set_resource_phase("phase1")
                with obs.maybe_profile("phase1", self.run_dir):
                    summaries, market = self._run_phase1(engine, manifest)
            else:
                summaries, market = self._load_phase1(engine, manifest)

            chunks = self._validate_chunks(manifest)
            if resuming and manifest.phase != "phase1" and self._ledger is not None:
                # Reload the durable ledger prefix *after* chunk
                # validation so a discarded tail's days (reflected in
                # ``next_day``) are dropped and re-accumulated.
                self._ledger.preload(
                    self.ledger_path, market_before=manifest.next_day
                )
            if manifest.phase != "complete":
                states = manifest.resume_rng()
                if states is None:
                    raise SimulationError(
                        f"{self.manifest_path}: no RNG snapshot to resume from"
                    )
                engine.set_rng_state(states)
                self._set_resource_phase("phase3")
                with obs.maybe_profile("phase3", self.run_dir):
                    chunks += self._run_phase3(engine, market, manifest)
                self._faults.fire("finalize", runner=self)
                self._set_resource_phase(None)
                self._flush_ledger(manifest)
                manifest.phase = "complete"
                manifest.save(self.manifest_path)

            builder = ImpressionBuilder()
            for chunk in chunks:
                if len(chunk["day"]):
                    builder.add_batch(**chunk)
            return SimulationResult(
                config=self.config,
                accounts=summaries,
                impressions=builder.build(),
                detections=list(engine.pipeline.records),
                policy_changes=list(engine.pipeline.policy.changes),
            )

    # ------------------------------------------------------------------
    # Phase 1 + 2: population and market snapshots
    # ------------------------------------------------------------------

    def _check_compatible(self, manifest: RunManifest) -> None:
        expected = config_sha256(self.config)
        if manifest.config_sha256 != expected:
            raise SimulationError(
                f"{self.manifest_path}: config hash mismatch -- the run "
                f"directory was created with a different configuration "
                f"({manifest.config_sha256[:12]}... != {expected[:12]}...); "
                f"refusing to resume"
            )
        from .._version import __version__

        if manifest.package_version != __version__:
            warnings.warn(
                f"resuming a run written by repro "
                f"{manifest.package_version} with repro {__version__}",
                RuntimeWarning,
                stacklevel=2,
            )

    def _run_phase1(
        self, engine: SimulationEngine, manifest: RunManifest
    ) -> tuple[list, MarketIndex]:
        def on_day(day: int) -> None:
            self._faults.fire("phase1:day", day=day, runner=self)

        accounts, summaries = engine.generate_population(on_day_complete=on_day)
        with obs.span("phase2.market", accounts=len(accounts)):
            market = MarketIndex(accounts)
            market.country_volume_check()

        phase1_blob = pickle.dumps(
            {
                "summaries": summaries,
                "pipeline": engine.pipeline,
                "ids": engine._ids,
                "next_advertiser_id": engine._next_advertiser_id,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        market_blob = pickle.dumps(market, protocol=pickle.HIGHEST_PROTOCOL)
        atomic_write_bytes(self.phase1_path, phase1_blob)
        atomic_write_bytes(self.market_path, market_blob)
        manifest.artifacts = {
            PHASE1_NAME: sha256_bytes(phase1_blob),
            MARKET_NAME: sha256_bytes(market_blob),
        }
        manifest.phase3_start_rng = engine.rng_state()
        manifest.phase = "phase3"
        # Ledger before manifest: a crash between the two leaves a
        # ledger that is *newer* than the manifest, and preload only
        # trusts what the manifest vouches for.
        self._flush_ledger(manifest)
        manifest.save(self.manifest_path)
        self._faults.fire("phase1:end", runner=self)
        return summaries, market

    def _load_phase1(
        self, engine: SimulationEngine, manifest: RunManifest
    ) -> tuple[list, MarketIndex]:
        for name, path in ((PHASE1_NAME, self.phase1_path), (MARKET_NAME, self.market_path)):
            recorded = manifest.artifacts.get(name)
            if recorded is None:
                raise SimulationError(
                    f"{self.manifest_path}: missing checksum for {name}"
                )
            if not path.exists() or sha256_file(path) != recorded:
                raise SimulationError(
                    f"{path}: snapshot missing or fails its checksum; the "
                    f"run directory is damaged beyond the recoverable tail"
                )
        state = pickle.loads(self.phase1_path.read_bytes())
        engine.pipeline = state["pipeline"]
        engine._ids = state["ids"]
        engine._next_advertiser_id = state["next_advertiser_id"]
        market = pickle.loads(self.market_path.read_bytes())
        return state["summaries"], market

    # ------------------------------------------------------------------
    # Phase 3: chunked auctions
    # ------------------------------------------------------------------

    def _chunk_path(self, day_start: int, day_end: int) -> Path:
        return self.chunk_dir / chunk_file_name(
            day_start, day_end, self.chunk_format
        )

    def _validate_chunks(self, manifest: RunManifest) -> list[dict]:
        """Verify and load every durable chunk, pruning a corrupt tail.

        Returns the loaded per-chunk field arrays in day order.  A
        missing/corrupt *tail* chunk of an incomplete run is discarded
        (its days will be re-simulated); any earlier damage -- or any
        damage at all in a ``complete`` run -- raises.
        """
        loaded: list[dict] = []
        for index, entry in enumerate(manifest.chunks):
            path = self.run_dir / entry.file
            intact = path.exists() and sha256_file(path) == entry.sha256
            if intact:
                chunk = load_chunk(path, manifest.chunk_format)
                if chunk is None:
                    intact = False
                else:
                    loaded.append(chunk)
            if intact:
                _CHUNKS_VERIFIED.inc()
                continue
            is_tail = index == len(manifest.chunks) - 1
            if is_tail and manifest.phase != "complete":
                _TAILS_DISCARDED.inc()
                obs.event(
                    "runner.tail_discarded",
                    file=entry.file,
                    day_start=entry.day_start,
                    day_end=entry.day_end,
                )
                manifest.chunks.pop()
                manifest.save(self.manifest_path)
                path.unlink(missing_ok=True)
                break
            raise SimulationError(
                f"{path}: chunk missing or fails its checksum and is not "
                f"a discardable tail; refusing to resume"
            )
        # Partial writes from a crash (files the manifest never saw).
        keep = {(self.run_dir / entry.file).name for entry in manifest.chunks}
        for stray in self.chunk_dir.iterdir():
            if stray.name not in keep:
                obs.event("runner.stray_removed", file=stray.name)
                stray.unlink()
        return loaded

    def _run_phase3(
        self,
        engine: SimulationEngine,
        market: MarketIndex,
        manifest: RunManifest,
    ) -> list[dict]:
        days = self.config.days
        start_day = manifest.next_day
        builder = ImpressionBuilder()
        collected: list[dict] = []
        pending_start = start_day

        def on_day(day: int) -> None:
            nonlocal pending_start
            self._faults.fire("phase3:day", day=day, runner=self)
            if day + 1 - pending_start >= self.checkpoint_every or day + 1 == days:
                chunk = builder.drain()
                self._write_chunk(engine, manifest, chunk, pending_start, day + 1)
                collected.append(chunk)
                pending_start = day + 1
                self._faults.fire("phase3:checkpoint", day=day, runner=self)

        engine.run_auctions(
            market, builder, start_day=start_day, on_day_complete=on_day
        )
        return collected

    def _write_chunk(
        self,
        engine: SimulationEngine,
        manifest: RunManifest,
        chunk: dict,
        day_start: int,
        day_end: int,
    ) -> None:
        path = self._chunk_path(day_start, day_end)
        data = chunk_to_bytes(chunk, self.chunk_format, day_start, day_end)
        atomic_write_bytes(path, data)
        manifest.chunks.append(
            ChunkEntry(
                file=f"{CHUNK_DIR}/{path.name}",
                sha256=sha256_bytes(data),
                day_start=day_start,
                day_end=day_end,
                rows=int(len(chunk["day"])),
                rng_after=engine.rng_state(),
            )
        )
        # Same ordering as the Phase-1 flush: ledger first, so the
        # durable ledger is never older than the manifest.
        self._flush_ledger(manifest)
        manifest.save(self.manifest_path)
        _CHUNKS_WRITTEN.inc()
        obs.event(
            "runner.checkpoint",
            day_start=day_start,
            day_end=day_end,
            rows=int(len(chunk["day"])),
            file=f"{CHUNK_DIR}/{path.name}",
        )
        # The manifest just became durable; make the telemetry match it.
        if self._sink is not None:
            obs.publish_metrics()
            self._flush_telemetry()
