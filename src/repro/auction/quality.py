"""Quality scores.

Bing ranks ads by a combination of bid and quality ("how bid,
cost-per-click and quality score work together"); quality is an estimate
of the ad's click probability for the query.  Here quality composes the
advertiser's intrinsic targeting quality, the ad's engagement, the
vertical's baseline CTR, and a relevance discount for looser match
types: a broad-matched ad is, on average, less relevant to the query
than an exact-matched one (Section 5.2: "targeting an ad too broadly
results in lower relevance ... which often hurts performance").
"""

from __future__ import annotations

from ..entities.enums import MatchType

__all__ = ["MATCH_RELEVANCE", "quality_score"]

#: Relevance discount per match type.
MATCH_RELEVANCE: dict[MatchType, float] = {
    MatchType.EXACT: 1.0,
    MatchType.PHRASE: 0.55,
    MatchType.BROAD: 0.42,
}


def quality_score(
    advertiser_quality: float,
    ad_engagement: float,
    base_ctr: float,
    match_type: MatchType,
) -> float:
    """Estimated click probability of the ad for this query.

    The returned value doubles as the expected CTR fed to the click
    model, keeping ranking and user behaviour consistent: ads ranked
    higher really are the ads users click more.
    """
    if advertiser_quality <= 0 or ad_engagement <= 0 or base_ctr <= 0:
        raise ValueError("quality inputs must be positive")
    return advertiser_quality * ad_engagement * base_ctr * MATCH_RELEVANCE[match_type]
