"""Page layout: mainline and sidebar slots.

Ads can show along the top of the page (the mainline) or on the right
edge (the sidebar).  The number of mainline ads is dynamic: only ads
whose rank score clears the mainline reserve get promoted, so "a
particular ad position does not correspond to a particular slot on the
page" (Section 6.2.1, footnote 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import AuctionConfig

__all__ = ["SlotPlacement", "layout"]


@dataclass(frozen=True)
class SlotPlacement:
    """Where a ranked ad landed on the page.

    Attributes:
        position: 1-based overall ad position (mainline top to sidebar
            bottom) -- the paper's "ad position".
        mainline: Whether the slot is in the mainline.
    """

    position: int
    mainline: bool


def layout(rank_scores: list[float], config: AuctionConfig) -> list[SlotPlacement]:
    """Assign page slots to ads already ranked by rank score (desc).

    Ads below ``reserve_score`` are not shown at all; the returned list
    may therefore be shorter than the input.
    """
    placements: list[SlotPlacement] = []
    mainline_used = 0
    sidebar_used = 0
    for score in rank_scores:
        if score < config.reserve_score:
            break
        if mainline_used < config.mainline_slots and score >= config.mainline_reserve:
            mainline_used += 1
            placements.append(SlotPlacement(len(placements) + 1, True))
        elif sidebar_used < config.sidebar_slots:
            sidebar_used += 1
            placements.append(SlotPlacement(len(placements) + 1, False))
        else:
            break
    return placements
