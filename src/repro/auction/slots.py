"""Page layout: mainline and sidebar slots.

Ads can show along the top of the page (the mainline) or on the right
edge (the sidebar).  The number of mainline ads is dynamic: only ads
whose rank score clears the mainline reserve get promoted, so "a
particular ad position does not correspond to a particular slot on the
page" (Section 6.2.1, footnote 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AuctionConfig

__all__ = ["SlotPlacement", "layout", "layout_counts"]


@dataclass(frozen=True)
class SlotPlacement:
    """Where a ranked ad landed on the page.

    Attributes:
        position: 1-based overall ad position (mainline top to sidebar
            bottom) -- the paper's "ad position".
        mainline: Whether the slot is in the mainline.
    """

    position: int
    mainline: bool


def layout(rank_scores: list[float], config: AuctionConfig) -> list[SlotPlacement]:
    """Assign page slots to ads already ranked by rank score (desc).

    Ads below ``reserve_score`` are not shown at all; the returned list
    may therefore be shorter than the input.
    """
    placements: list[SlotPlacement] = []
    mainline_used = 0
    sidebar_used = 0
    for score in rank_scores:
        if score < config.reserve_score:
            break
        if mainline_used < config.mainline_slots and score >= config.mainline_reserve:
            mainline_used += 1
            placements.append(SlotPlacement(len(placements) + 1, True))
        elif sidebar_used < config.sidebar_slots:
            sidebar_used += 1
            placements.append(SlotPlacement(len(placements) + 1, False))
        else:
            break
    return placements


def layout_counts(
    n_eligible: np.ndarray,
    n_mainline_eligible: np.ndarray,
    config: AuctionConfig,
) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form :func:`layout` for ranked arrays of auctions.

    For candidates sorted by descending rank score, the ads clearing
    ``reserve_score`` form a prefix and — because ``mainline_reserve >=
    reserve_score`` — so do the ads clearing ``mainline_reserve``.  The
    sequential slot-filling loop in :func:`layout` therefore reduces to
    counts: the mainline takes the top ``min(n_mainline_eligible,
    mainline_slots)`` ads, the sidebar takes up to ``sidebar_slots`` of
    the remaining eligible ads, everything past that is not shown.

    Args:
        n_eligible: Per-auction count of candidates with
            ``rank_score >= reserve_score``.
        n_mainline_eligible: Per-auction count of candidates with
            ``rank_score >= mainline_reserve`` (never exceeds
            ``n_eligible``).

    Returns:
        ``(n_mainline, n_shown)`` arrays: how many ads enter the
        mainline and how many are shown in total, per auction.
    """
    n_mainline = np.minimum(n_mainline_eligible, config.mainline_slots)
    n_shown = n_mainline + np.minimum(
        n_eligible - n_mainline, config.sidebar_slots
    )
    return n_mainline, n_shown
