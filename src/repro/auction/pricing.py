"""GSP per-click pricing."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import AuctionConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .gsp import Candidate

__all__ = ["gsp_price"]


def gsp_price(
    candidate: "Candidate",
    next_rank_score: float | None,
    config: AuctionConfig,
) -> float:
    """Price per click for a shown ad.

    The ad pays the minimum bid that would have kept it above the
    next-ranked competitor: ``next_rank_score / quality`` plus the
    increment.  The price is floored at the reserve-implied minimum and
    never exceeds the advertiser's own maximum bid.
    """
    floor = config.reserve_score / candidate.quality + config.price_increment
    if next_rank_score is None:
        price = floor
    else:
        price = next_rank_score / candidate.quality + config.price_increment
    price = max(price, floor)
    return min(price, candidate.max_bid)
