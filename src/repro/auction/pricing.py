"""GSP per-click pricing.

Two entry points share the same arithmetic: :func:`gsp_price` prices a
single shown ad (the scalar oracle used by
:func:`repro.auction.gsp.run_auction`), and :func:`gsp_price_array`
prices whole ranked arrays at once for the batched kernel in
:mod:`repro.auction.batch`.  The array form applies the identical
floating-point operations in the identical order, so the two agree
bit-for-bit — a property the differential tests rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..config import AuctionConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .gsp import Candidate

__all__ = ["gsp_price", "gsp_price_array"]


def gsp_price(
    candidate: "Candidate",
    next_rank_score: float | None,
    config: AuctionConfig,
) -> float:
    """Price per click for a shown ad.

    The ad pays the minimum bid that would have kept it above the
    next-ranked competitor: ``next_rank_score / quality`` plus the
    increment.  The price is floored at the reserve-implied minimum and
    never exceeds the advertiser's own maximum bid.
    """
    floor = config.reserve_score / candidate.quality + config.price_increment
    if next_rank_score is None:
        price = floor
    else:
        price = next_rank_score / candidate.quality + config.price_increment
    price = max(price, floor)
    return min(price, candidate.max_bid)


def gsp_price_array(
    max_bid: np.ndarray,
    quality: np.ndarray,
    next_rank_score: np.ndarray,
    has_next: np.ndarray,
    config: AuctionConfig,
) -> np.ndarray:
    """Vectorized :func:`gsp_price` over parallel candidate arrays.

    ``next_rank_score[i]`` is the rank score of the competitor ranked
    directly below ad ``i`` and is only read where ``has_next[i]`` is
    true; ads with no lower-ranked competitor pay the reserve-implied
    floor.  Uses the same operations as the scalar form (divide, add,
    max, min) so results are bit-identical.
    """
    floor = config.reserve_score / quality + config.price_increment
    competitor = np.where(has_next, next_rank_score, config.reserve_score)
    price = competitor / quality + config.price_increment
    price = np.where(has_next, price, floor)
    price = np.maximum(price, floor)
    return np.minimum(price, max_bid)
