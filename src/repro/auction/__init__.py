"""Generalized second-price ad auction with quality scores."""

from .gsp import AuctionOutcome, Candidate, ShownAd, run_auction
from .pricing import gsp_price
from .quality import MATCH_RELEVANCE, quality_score
from .slots import SlotPlacement, layout

__all__ = [
    "AuctionOutcome",
    "Candidate",
    "ShownAd",
    "run_auction",
    "gsp_price",
    "quality_score",
    "MATCH_RELEVANCE",
    "SlotPlacement",
    "layout",
]
