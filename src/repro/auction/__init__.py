"""Generalized second-price ad auction with quality scores."""

from .batch import BatchAuctionResult, run_auction_batch
from .gsp import AuctionOutcome, Candidate, ShownAd, run_auction
from .pricing import gsp_price, gsp_price_array
from .quality import MATCH_RELEVANCE, quality_score
from .slots import SlotPlacement, layout, layout_counts

__all__ = [
    "AuctionOutcome",
    "BatchAuctionResult",
    "Candidate",
    "ShownAd",
    "run_auction",
    "run_auction_batch",
    "gsp_price",
    "gsp_price_array",
    "quality_score",
    "MATCH_RELEVANCE",
    "SlotPlacement",
    "layout",
    "layout_counts",
]
