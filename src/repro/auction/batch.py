"""Batched GSP auction kernel.

Array-native formulation of :func:`repro.auction.gsp.run_auction` that
prices many auctions in one shot.  Candidates for a whole batch of
auctions arrive as flat parallel arrays tagged with a ``segment`` id
(the auction each candidate belongs to); the kernel ranks, dedupes,
lays out and prices every segment simultaneously with numpy primitives:

* ranking: one ``np.lexsort`` over ``(segment, -rank, advertiser, ad)``,
  matching the scalar sort key exactly (ties included);
* per-advertiser dedupe: a grouped cumulative count over
  ``(segment, advertiser)`` computed with a second stable lexsort,
  keeping the first ``per_advertiser_cap`` offers per advertiser in
  rank order — exactly what the scalar ``_dedupe_per_advertiser`` does;
* layout: closed-form prefix counts via
  :func:`repro.auction.slots.layout_counts` (valid because sorted rank
  scores make reserve crossings prefix boundaries);
* pricing: :func:`repro.auction.pricing.gsp_price_array`, which applies
  the scalar pricing arithmetic element-wise.

The scalar :func:`~repro.auction.gsp.run_auction` is retained as the
differential-testing oracle: for any candidate set the two paths agree
bit-for-bit on ranking, dedupe, placement and prices (see
``tests/auction/test_batch_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..config import AuctionConfig
from .pricing import gsp_price_array
from .slots import layout_counts

__all__ = ["BatchAuctionResult", "run_auction_batch"]

# Observability handles: pure Python counters/spans, no RNG contact
# (the kernel draws nothing anyway -- ranking and pricing are
# deterministic given the candidate arrays).
_KERNEL_CANDIDATES = obs.counter("auction.kernel_candidates")
_KERNEL_SHOWN = obs.counter("auction.kernel_shown")


@dataclass(frozen=True)
class BatchAuctionResult:
    """Shown ads for a batch of auctions, ordered by (segment, position).

    The first five arrays are parallel, one entry per shown ad.
    ``candidate_index`` points back into the *input* candidate arrays so
    callers can gather any per-candidate attribute (market row, match
    code, realized click quality, ...) without the kernel carrying it.
    ``n_shown``/``n_fraud_shown`` are per-segment competition context
    with one entry per auction, including auctions that showed nothing.
    """

    segment: np.ndarray
    candidate_index: np.ndarray
    position: np.ndarray
    mainline: np.ndarray
    price: np.ndarray
    n_shown: np.ndarray
    n_fraud_shown: np.ndarray

    def __len__(self) -> int:
        return len(self.segment)


def _empty_result(n_segments: int) -> BatchAuctionResult:
    return BatchAuctionResult(
        segment=np.zeros(0, dtype=np.int64),
        candidate_index=np.zeros(0, dtype=np.int64),
        position=np.zeros(0, dtype=np.int16),
        mainline=np.zeros(0, dtype=bool),
        price=np.zeros(0, dtype=np.float64),
        n_shown=np.zeros(n_segments, dtype=np.int16),
        n_fraud_shown=np.zeros(n_segments, dtype=np.int16),
    )


def _grouped_occurrence(segment: np.ndarray, advertiser: np.ndarray) -> np.ndarray:
    """Occurrence index of each row within its (segment, advertiser) group.

    Rows must already be in ranked order; the stable lexsort preserves
    that order within each group, so ``occurrence == 0`` marks an
    advertiser's best-ranked offer in its auction, ``1`` the second
    best, and so on.
    """
    n = len(segment)
    regroup = np.lexsort((advertiser, segment))
    seg_g = segment[regroup]
    adv_g = advertiser[regroup]
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = (seg_g[1:] != seg_g[:-1]) | (adv_g[1:] != adv_g[:-1])
    group_start = np.flatnonzero(new_group)
    group_id = np.cumsum(new_group) - 1
    occurrence = np.empty(n, dtype=np.int64)
    occurrence[regroup] = np.arange(n) - group_start[group_id]
    return occurrence


def run_auction_batch(
    segment: np.ndarray,
    advertiser_id: np.ndarray,
    ad_id: np.ndarray,
    max_bid: np.ndarray,
    quality: np.ndarray,
    fraud_labeled: np.ndarray,
    config: AuctionConfig,
    n_segments: int,
) -> BatchAuctionResult:
    """Run GSP auctions for every segment of a flat candidate batch.

    Args:
        segment: Auction id per candidate, in ``[0, n_segments)``.
            Candidates of one auction need not be contiguous.
        advertiser_id: Owning account per candidate.
        ad_id: Ad per candidate (tie-break key after advertiser).
        max_bid: Maximum CPC per candidate, USD.
        quality: Estimated click probability per candidate.
        fraud_labeled: Eventual fraud label per candidate (competition
            context only; never used for ranking or pricing).
        config: Auction mechanics.
        n_segments: Number of auctions in the batch (segments with no
            candidates simply show nothing).

    Returns:
        A :class:`BatchAuctionResult`; rows are ordered by segment and,
        within a segment, by page position.
    """
    with obs.span(
        "auction.kernel", candidates=len(segment), segments=n_segments
    ):
        result = _run_auction_batch(
            segment,
            advertiser_id,
            ad_id,
            max_bid,
            quality,
            fraud_labeled,
            config,
            n_segments,
        )
    _KERNEL_CANDIDATES.inc(len(segment))
    _KERNEL_SHOWN.inc(len(result))
    ledger = obs.dayledger()
    if ledger is not None:
        ledger.record_kernel(len(segment), len(result))
    return result


def _run_auction_batch(
    segment: np.ndarray,
    advertiser_id: np.ndarray,
    ad_id: np.ndarray,
    max_bid: np.ndarray,
    quality: np.ndarray,
    fraud_labeled: np.ndarray,
    config: AuctionConfig,
    n_segments: int,
) -> BatchAuctionResult:
    """The uninstrumented kernel body (see :func:`run_auction_batch`)."""
    n = len(segment)
    if n == 0:
        return _empty_result(n_segments)

    rank = max_bid * quality
    # Primary key last: sort by segment, then rank desc, then the
    # deterministic tie-break (advertiser_id, ad_id) — the exact scalar
    # sort key `(-rank_score, advertiser_id, ad_id)` per auction.
    order = np.lexsort((ad_id, advertiser_id, -rank, segment))
    seg_s = np.asarray(segment)[order]
    adv_s = np.asarray(advertiser_id)[order]
    rank_s = rank[order]

    keep = (
        _grouped_occurrence(seg_s, adv_s) < config.per_advertiser_cap
        if config.per_advertiser_cap < n
        else slice(None)
    )
    seg_k = seg_s[keep]
    rank_k = rank_s[keep]
    cand_k = order[keep]

    n_kept = len(seg_k)
    counts = np.bincount(seg_k, minlength=n_segments)
    seg_begin = np.cumsum(counts) - counts
    pos_in_seg = np.arange(n_kept) - seg_begin[seg_k]

    n_eligible = np.bincount(
        seg_k[rank_k >= config.reserve_score], minlength=n_segments
    )
    n_ml_eligible = np.bincount(
        seg_k[rank_k >= config.mainline_reserve], minlength=n_segments
    )
    n_mainline, n_shown = layout_counts(n_eligible, n_ml_eligible, config)

    shown = pos_in_seg < n_shown[seg_k]
    rows = np.flatnonzero(shown)
    if rows.size == 0:
        # A segment with n_shown > 0 always marks its top candidate
        # shown, so an empty `rows` implies all-zero counts.
        return _empty_result(n_segments)

    # Competitor directly below in the same segment (kept order), as in
    # the scalar path: the next entry of the deduped ranking, shown or
    # not.
    has_next = np.empty(n_kept, dtype=bool)
    has_next[:-1] = seg_k[1:] == seg_k[:-1]
    has_next[-1] = False
    next_rank = np.empty_like(rank_k)
    next_rank[:-1] = rank_k[1:]
    next_rank[-1] = 0.0

    max_bid = np.asarray(max_bid)
    quality = np.asarray(quality)
    price = gsp_price_array(
        max_bid[cand_k[rows]],
        quality[cand_k[rows]],
        next_rank[rows],
        has_next[rows],
        config,
    )

    fraud_labeled = np.asarray(fraud_labeled)
    shown_fraud = seg_k[rows[fraud_labeled[cand_k[rows]]]]
    n_fraud_shown = np.bincount(shown_fraud, minlength=n_segments)

    return BatchAuctionResult(
        segment=seg_k[rows],
        candidate_index=cand_k[rows],
        position=(pos_in_seg[rows] + 1).astype(np.int16),
        mainline=pos_in_seg[rows] < n_mainline[seg_k[rows]],
        price=price,
        n_shown=n_shown.astype(np.int16),
        n_fraud_shown=n_fraud_shown.astype(np.int16),
    )
