"""Generalized second-price auction with quality scores.

Candidates are ranked by ``rank_score = max_bid x quality``; each shown
ad pays, per click, the minimum bid that would have kept its position:
``next_rank_score / own_quality`` plus a fixed increment, clamped to
its own maximum bid and floored at the reserve (see
:mod:`repro.auction.pricing`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import AuctionConfig
from ..entities.enums import MatchType
from .pricing import gsp_price
from .slots import SlotPlacement, layout

__all__ = ["Candidate", "ShownAd", "AuctionOutcome", "run_auction"]


@dataclass(frozen=True)
class Candidate:
    """An eligible (advertiser, ad, keyword-offer) triple for one query.

    Attributes:
        advertiser_id: Owning account.
        ad_id: The ad that would be shown.
        match_type: The match type that made the offer eligible.
        max_bid: The offer's maximum CPC, USD.
        quality: The platform's *estimated* click probability, used for
            ranking and pricing (see
            :func:`repro.auction.quality.quality_score`).
        click_quality: The *realized* click probability given
            examination.  Fraudulent ads game the estimator with
            clickbait copy: their estimated quality runs above what
            users actually do (the paper: fraud takes the top position
            slightly more often while its CTR is slightly lower).
            Defaults to ``quality`` when not set.
        fraud_labeled: Whether the platform *eventually* labels the
            advertiser fraudulent.  Never used for ranking or pricing --
            it is carried through so impression records can be analysed
            the way the paper analyses Bing's logs.
    """

    advertiser_id: int
    ad_id: int
    match_type: MatchType
    max_bid: float
    quality: float
    click_quality: float | None = None
    fraud_labeled: bool = False

    def __post_init__(self) -> None:
        if self.max_bid <= 0:
            raise ValueError("max_bid must be > 0")
        if self.quality <= 0:
            raise ValueError("quality must be > 0")
        if self.click_quality is not None and self.click_quality <= 0:
            raise ValueError("click_quality must be > 0")

    @property
    def rank_score(self) -> float:
        """Auction rank: max bid x estimated quality."""
        return self.max_bid * self.quality

    @property
    def realized_click_quality(self) -> float:
        """Click quality used by the user model (defaults to the estimate)."""
        return self.quality if self.click_quality is None else self.click_quality


@dataclass(frozen=True)
class ShownAd:
    """One ad shown on the results page."""

    candidate: Candidate
    placement: SlotPlacement
    price_per_click: float

    @property
    def position(self) -> int:
        """1-based ad position on the page."""
        return self.placement.position

    @property
    def mainline(self) -> bool:
        """Whether the ad landed in the mainline."""
        return self.placement.mainline


@dataclass(frozen=True)
class AuctionOutcome:
    """Result of one auction: the ranked list of shown ads."""

    shown: tuple[ShownAd, ...]

    @property
    def n_shown(self) -> int:
        """Number of ads shown on the page."""
        return len(self.shown)

    def n_fraud_labeled(self) -> int:
        """How many shown ads belong to eventually-labeled-fraud accounts."""
        return sum(1 for ad in self.shown if ad.candidate.fraud_labeled)


def _dedupe_per_advertiser(
    candidates: list[Candidate], cap: int
) -> list[Candidate]:
    """Keep at most ``cap`` best candidates per advertiser."""
    kept: list[Candidate] = []
    counts: dict[int, int] = {}
    for candidate in candidates:
        used = counts.get(candidate.advertiser_id, 0)
        if used < cap:
            counts[candidate.advertiser_id] = used + 1
            kept.append(candidate)
    return kept


def run_auction(
    candidates: list[Candidate], config: AuctionConfig
) -> AuctionOutcome:
    """Run one GSP auction over the eligible candidates.

    Candidates are sorted by rank score (ties broken by advertiser id
    for determinism), deduplicated per advertiser, laid out on the page,
    and priced against the next-ranked competitor.
    """
    if not candidates:
        return AuctionOutcome(shown=())
    ranked = sorted(
        candidates, key=lambda c: (-c.rank_score, c.advertiser_id, c.ad_id)
    )
    ranked = _dedupe_per_advertiser(ranked, config.per_advertiser_cap)
    placements = layout([c.rank_score for c in ranked], config)
    shown: list[ShownAd] = []
    for index, placement in enumerate(placements):
        candidate = ranked[index]
        next_score = (
            ranked[index + 1].rank_score if index + 1 < len(ranked) else None
        )
        price = gsp_price(candidate, next_score, config)
        shown.append(ShownAd(candidate, placement, price))
    return AuctionOutcome(shown=tuple(shown))
