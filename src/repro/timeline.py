"""Simulation calendar.

The paper spans two years of Bing data.  The simulator uses an abstract
calendar of 104 seven-day weeks (728 days) split into two years of 364
days, each made of twelve ~30.33-day "months" and four quarters.  Months
are labeled the way the paper labels its x-axes: ``1/Y1`` .. ``12/Y2``
(plus ``1/Y3`` as the right edge of the range).

Times are floats measured in days since the start of the measurement
period; sub-day resolution matters because the median fraudulent account
survives less than a day (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DAYS_PER_WEEK",
    "DAYS_PER_YEAR",
    "MONTHS_PER_YEAR",
    "TOTAL_DAYS",
    "TOTAL_WEEKS",
    "DAYS_PER_MONTH",
    "Window",
    "day_to_week",
    "day_to_month",
    "day_to_year",
    "month_label",
    "month_start",
    "quarter_window",
    "named_windows",
]

DAYS_PER_WEEK = 7
MONTHS_PER_YEAR = 12
DAYS_PER_YEAR = 364
TOTAL_DAYS = 2 * DAYS_PER_YEAR
TOTAL_WEEKS = TOTAL_DAYS // DAYS_PER_WEEK
DAYS_PER_MONTH = DAYS_PER_YEAR / MONTHS_PER_YEAR


@dataclass(frozen=True)
class Window:
    """A half-open interval ``[start, end)`` of simulation days."""

    start: float
    end: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty window: [{self.start}, {self.end})")

    @property
    def length(self) -> float:
        """Window length in days."""
        return self.end - self.start

    def contains(self, day: float) -> bool:
        """Whether the day falls inside the half-open window."""
        return self.start <= day < self.end

    def overlaps(self, start: float, end: float) -> bool:
        """Whether the activity interval ``[start, end)`` intersects this window."""
        return start < self.end and end > self.start

    def clip(self, start: float, end: float) -> float:
        """Length of the overlap between ``[start, end)`` and this window."""
        lo = max(start, self.start)
        hi = min(end, self.end)
        return max(0.0, hi - lo)


def day_to_week(day: float) -> int:
    """Week index (0-based) containing ``day``."""
    return int(day // DAYS_PER_WEEK)


def day_to_month(day: float) -> int:
    """Month index (0-based, across both years) containing ``day``."""
    return min(int(day // DAYS_PER_MONTH), 2 * MONTHS_PER_YEAR - 1)


def day_to_year(day: float) -> int:
    """Year index (0-based) containing ``day``."""
    return min(int(day // DAYS_PER_YEAR), 1)


def month_label(month_index: int) -> str:
    """Paper-style axis label for a 0-based month index, e.g. ``7/Y1``."""
    year = month_index // MONTHS_PER_YEAR + 1
    month = month_index % MONTHS_PER_YEAR + 1
    return f"{month}/Y{year}"


def month_start(month_index: int) -> float:
    """First day of the 0-based month index."""
    return month_index * DAYS_PER_MONTH


def quarter_window(year: int, quarter: int) -> Window:
    """Measurement window for ``quarter`` (1-4) of ``year`` (1-2)."""
    if year not in (1, 2):
        raise ValueError(f"year must be 1 or 2, got {year}")
    if quarter not in (1, 2, 3, 4):
        raise ValueError(f"quarter must be in 1..4, got {quarter}")
    start = (year - 1) * DAYS_PER_YEAR + (quarter - 1) * (DAYS_PER_YEAR / 4)
    return Window(start, start + DAYS_PER_YEAR / 4, f"Y{year}Q{quarter}")


def named_windows() -> dict[str, Window]:
    """The five analysis windows used throughout the paper's figures.

    Figure 4 uses "Q2 Year 1", "Oct. Year 1", "Q1 Year 2", "Apr. Year 2"
    and "Oct. Year 2"; the month-named windows are single months.
    """
    octo1 = month_start(9)
    apr2 = month_start(MONTHS_PER_YEAR + 3)
    octo2 = month_start(MONTHS_PER_YEAR + 9)
    return {
        "Q2 Year 1": quarter_window(1, 2),
        "Oct. Year 1": Window(octo1, octo1 + DAYS_PER_MONTH, "Oct. Year 1"),
        "Q1 Year 2": quarter_window(2, 1),
        "Apr. Year 2": Window(apr2, apr2 + DAYS_PER_MONTH, "Apr. Year 2"),
        "Oct. Year 2": Window(octo2, octo2 + DAYS_PER_MONTH, "Oct. Year 2"),
    }
