"""Simulation configuration.

Every stochastic knob in the marketplace simulator lives here, grouped
by subsystem.  Two presets are provided:

* :func:`default_config` -- the scale used by the experiment and
  benchmark harnesses (104 simulated weeks, ~20k advertiser accounts).
* :func:`small_config` -- a fast configuration for unit tests.

All configs validate themselves on construction and raise
:class:`repro.errors.ConfigError` for out-of-range values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError
from .timeline import DAYS_PER_YEAR, TOTAL_DAYS

__all__ = [
    "PopulationConfig",
    "QueryConfig",
    "AuctionConfig",
    "ClickConfig",
    "BehaviorConfig",
    "DetectionConfig",
    "SimulationConfig",
    "config_from_dict",
    "default_config",
    "small_config",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class PopulationConfig:
    """Account arrival process.

    ``fraud_share_start``/``fraud_share_end`` drive Figure 1: the share
    of each day's registrations that are eventually labeled fraudulent
    ramps between them (with weekly noise) over the two years.
    """

    registrations_per_day: float = 30.0
    fraud_share_start: float = 0.36
    fraud_share_end: float = 0.54
    fraud_share_noise: float = 0.04
    #: Fraction of fraudulent accounts run by "prolific" operators who
    #: invest in evasion and survive far longer than the typical account.
    prolific_fraud_fraction: float = 0.11

    def __post_init__(self) -> None:
        _require(self.registrations_per_day > 0, "registrations_per_day must be > 0")
        for name in ("fraud_share_start", "fraud_share_end"):
            value = getattr(self, name)
            _require(0.0 < value < 1.0, f"{name} must be in (0, 1)")
        _require(0.0 <= self.fraud_share_noise < 0.5, "fraud_share_noise must be in [0, 0.5)")
        _require(
            0.0 < self.prolific_fraud_fraction < 1.0,
            "prolific_fraud_fraction must be in (0, 1)",
        )


@dataclass(frozen=True)
class QueryConfig:
    """Sampled query stream.

    The simulator does not simulate every search; it samples query
    *instances*, each carrying ``volume_weight`` real queries.  Aggregate
    impression/click/spend magnitudes therefore scale with the weight
    while auction dynamics are exercised per sample.
    """

    auctions_per_day: int = 260
    volume_weight: float = 2500.0
    #: Probability that a sampled query adds decorator tokens around the
    #: seed keyword phrase (exercising phrase/broad matching).
    decorate_prob: float = 0.40
    #: Probability that a decorated query shuffles token order (only
    #: broad matches survive a reorder).
    shuffle_prob: float = 0.15
    #: Volume multiplier for undecorated (head) queries: the head of the
    #: demand curve carries far more traffic per distinct query than the
    #: decorated long tail.
    head_weight_factor: float = 1.6
    #: Volume multiplier for decorated (tail) queries.
    tail_weight_factor: float = 0.5

    def __post_init__(self) -> None:
        _require(self.auctions_per_day > 0, "auctions_per_day must be > 0")
        _require(self.volume_weight > 0, "volume_weight must be > 0")
        _require(0.0 <= self.decorate_prob <= 1.0, "decorate_prob must be in [0, 1]")
        _require(0.0 <= self.shuffle_prob <= 1.0, "shuffle_prob must be in [0, 1]")
        _require(self.head_weight_factor > 0, "head_weight_factor must be > 0")
        _require(self.tail_weight_factor > 0, "tail_weight_factor must be > 0")


@dataclass(frozen=True)
class AuctionConfig:
    """Generalized second-price auction with quality scores.

    ``default_max_bid`` is the platform's default maximum bid in USD; the
    paper reports the median maximum bid for both populations equals this
    default, and Figure 9(d-f) normalizes bids by it.
    """

    mainline_slots: int = 4
    sidebar_slots: int = 6
    #: Minimum rank score (bid x quality) to enter the mainline.
    mainline_reserve: float = 0.12
    #: Minimum rank score to be shown at all.
    reserve_score: float = 0.008
    default_max_bid: float = 0.50
    price_increment: float = 0.01
    #: Maximum number of candidate ads per advertiser entering one auction.
    per_advertiser_cap: int = 1

    def __post_init__(self) -> None:
        _require(self.mainline_slots >= 1, "mainline_slots must be >= 1")
        _require(self.sidebar_slots >= 0, "sidebar_slots must be >= 0")
        _require(self.reserve_score > 0, "reserve_score must be > 0")
        _require(
            self.mainline_reserve >= self.reserve_score,
            "mainline_reserve must be >= reserve_score",
        )
        _require(self.default_max_bid > 0, "default_max_bid must be > 0")
        _require(self.price_increment >= 0, "price_increment must be >= 0")
        _require(self.per_advertiser_cap >= 1, "per_advertiser_cap must be >= 1")

    @property
    def total_slots(self) -> int:
        """Mainline plus sidebar capacity."""
        return self.mainline_slots + self.sidebar_slots


@dataclass(frozen=True)
class ClickConfig:
    """Position-bias cascade click model."""

    #: Probability a user examines the top mainline slot.
    top_examination: float = 0.34
    #: Multiplicative decay of examination probability per mainline position.
    mainline_decay: float = 0.62
    #: Examination probability of the first sidebar slot.
    sidebar_examination: float = 0.035
    #: Multiplicative decay per sidebar position.
    sidebar_decay: float = 0.72

    def __post_init__(self) -> None:
        for name in (
            "top_examination",
            "mainline_decay",
            "sidebar_examination",
            "sidebar_decay",
        ):
            value = getattr(self, name)
            _require(0.0 < value <= 1.0, f"{name} must be in (0, 1]")


@dataclass(frozen=True)
class BehaviorConfig:
    """Advertiser behaviour distributions (see :mod:`repro.behavior`)."""

    #: Lognormal (mu, sigma) of a non-fraudulent account's ad count.
    nonfraud_ads_mu: float = 3.4
    nonfraud_ads_sigma: float = 1.5
    #: Lognormal (mu, sigma) of a fraudulent account's ad count; the
    #: paper finds fraud accounts keep >10x fewer ads and keywords.
    fraud_ads_mu: float = 0.55
    fraud_ads_sigma: float = 1.0
    #: Keywords bid on per ad (lognormal), per population.
    nonfraud_kw_per_ad_mu: float = 1.6
    nonfraud_kw_per_ad_sigma: float = 1.0
    fraud_kw_per_ad_mu: float = 0.9
    fraud_kw_per_ad_sigma: float = 0.8
    #: Lognormal sigma of per-account activity scale (drives the
    #: heavy-tailed impression-rate distribution of Figure 5).
    activity_sigma: float = 1.6
    #: Mean activity scale multiplier for fraudulent accounts: fraud
    #: pushes traffic faster than the typical legitimate account.
    fraud_activity_boost: float = 13.0
    #: Extra activity multiplier for prolific fraud operators.
    prolific_activity_boost: float = 5.0

    def __post_init__(self) -> None:
        for name in (
            "nonfraud_ads_sigma",
            "fraud_ads_sigma",
            "nonfraud_kw_per_ad_sigma",
            "fraud_kw_per_ad_sigma",
            "activity_sigma",
        ):
            _require(getattr(self, name) > 0, f"{name} must be > 0")
        _require(self.fraud_activity_boost >= 1.0, "fraud_activity_boost must be >= 1")
        _require(
            self.prolific_activity_boost >= 1.0, "prolific_activity_boost must be >= 1"
        )


@dataclass(frozen=True)
class DetectionConfig:
    """The platform's anti-fraud pipeline.

    Stage parameters are hazards (per-day rates) or probabilities;
    account lifetimes (Figure 2) emerge from the combination.
    """

    #: Probability a fraudulent registration is screened out before it
    #: can post a single ad (the paper: 35% of shutdowns are pre-ad).
    registration_screen_prob: float = 0.35
    #: Mean of the exponential delay (days) before a screened account is
    #: actually frozen.
    registration_screen_mean_days: float = 0.4
    #: Probability per ad that the content filter flags a typical
    #: fraudulent ad at posting time.
    content_filter_prob: float = 0.30
    #: Same, for prolific operators who invest in evasion.
    prolific_content_filter_prob: float = 0.02
    #: Mean delay (days) from a content-filter flag to shutdown
    #: (most caught accounts die within eight hours of first ad).
    content_filter_mean_days: float = 0.25
    #: Base behavioural/manual-review hazard per active day for typical
    #: fraud accounts.
    behavior_hazard: float = 0.45
    #: Behavioural hazard for prolific operators.
    prolific_behavior_hazard: float = 0.009
    #: Hazard added per log10 of impressions/day above the rate threshold.
    rate_hazard_per_decade: float = 0.35
    rate_threshold: float = 1000.0
    #: Payment-fraud (chargeback) detection: probability the account uses
    #: a bad instrument, and the lognormal (mu, sigma) of signal delay.
    payment_fraud_prob: float = 0.55
    chargeback_mu: float = 1.8
    chargeback_sigma: float = 0.7
    #: Probability a fraud account evades detection entirely within the
    #: study (treated as non-fraudulent by the analyses, as at Bing).
    evade_study_prob: float = 0.01
    #: Probability a legitimate account is shut down by mistake
    #: ("friendly fire is rather low").
    friendly_fire_prob: float = 0.0005
    #: Day of the third-party tech-support policy ban (the paper's most
    #: dramatic intervention, early in Year 2); None disables it.
    techsupport_ban_day: float | None = DAYS_PER_YEAR + DAYS_PER_YEAR / 4.0
    #: Multiplier applied to detection hazards at the end of the study
    #: relative to the start (defenses improve; Figure 3's halving).
    hardening_factor: float = 1.9

    def __post_init__(self) -> None:
        _require(
            0.0 <= self.registration_screen_prob < 1.0,
            "registration_screen_prob must be in [0, 1)",
        )
        for name in (
            "registration_screen_mean_days",
            "content_filter_mean_days",
            "behavior_hazard",
            "prolific_behavior_hazard",
            "rate_hazard_per_decade",
            "rate_threshold",
            "chargeback_sigma",
        ):
            _require(getattr(self, name) > 0, f"{name} must be > 0")
        for name in (
            "content_filter_prob",
            "prolific_content_filter_prob",
            "payment_fraud_prob",
            "evade_study_prob",
            "friendly_fire_prob",
        ):
            _require(0.0 <= getattr(self, name) <= 1.0, f"{name} must be in [0, 1]")
        _require(self.hardening_factor > 0, "hardening_factor must be > 0")
        if self.techsupport_ban_day is not None:
            _require(self.techsupport_ban_day >= 0, "techsupport_ban_day must be >= 0")


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level simulation configuration."""

    seed: int = 20170101
    days: int = TOTAL_DAYS
    population: PopulationConfig = field(default_factory=PopulationConfig)
    query: QueryConfig = field(default_factory=QueryConfig)
    auction: AuctionConfig = field(default_factory=AuctionConfig)
    click: ClickConfig = field(default_factory=ClickConfig)
    behavior: BehaviorConfig = field(default_factory=BehaviorConfig)
    detection: DetectionConfig = field(default_factory=DetectionConfig)

    def __post_init__(self) -> None:
        _require(self.days > 0, "days must be > 0")

    def with_detection(self, **kwargs: object) -> "SimulationConfig":
        """Return a copy with detection parameters overridden."""
        return replace(self, detection=replace(self.detection, **kwargs))

    def with_auction(self, **kwargs: object) -> "SimulationConfig":
        """Return a copy with auction parameters overridden."""
        return replace(self, auction=replace(self.auction, **kwargs))


#: Config-group field name -> dataclass, in declaration order.
_CONFIG_GROUPS: dict[str, type] = {
    "population": PopulationConfig,
    "query": QueryConfig,
    "auction": AuctionConfig,
    "click": ClickConfig,
    "behavior": BehaviorConfig,
    "detection": DetectionConfig,
}


def config_from_dict(payload: dict) -> SimulationConfig:
    """Rebuild a :class:`SimulationConfig` from ``dataclasses.asdict``.

    The checkpoint manifest embeds the full configuration this way so
    ``verify``/``doctor`` can re-simulate a run directory without the
    caller re-supplying every CLI flag.  Values are validated by the
    dataclass constructors exactly as a hand-built config would be;
    unknown keys raise :class:`~repro.errors.ConfigError` rather than
    being silently dropped (a config the round-trip cannot represent
    must never masquerade as the original).
    """
    if not isinstance(payload, dict):
        raise ConfigError("config payload is not a mapping")
    known = {"seed", "days", *_CONFIG_GROUPS}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ConfigError(f"unknown config keys: {', '.join(unknown)}")
    try:
        kwargs: dict[str, object] = {
            "seed": int(payload["seed"]),
            "days": int(payload["days"]),
        }
        for name, cls in _CONFIG_GROUPS.items():
            if name in payload:
                kwargs[name] = cls(**payload[name])
        return SimulationConfig(**kwargs)
    except ConfigError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(f"malformed config payload: {exc}") from None


def default_config(seed: int = 20170101) -> SimulationConfig:
    """The configuration used by experiments and benchmarks."""
    return SimulationConfig(seed=seed)


def small_config(seed: int = 7, days: int = 120) -> SimulationConfig:
    """A fast configuration for unit and integration tests."""
    return SimulationConfig(
        seed=seed,
        days=days,
        population=PopulationConfig(registrations_per_day=12.0),
        query=QueryConfig(auctions_per_day=60, volume_weight=800.0),
    )
