"""Blacklist-evasion utilities.

Fraudsters substitute look-alike characters and break phone numbers up
with injected text (Section 5.2.4).  The platform counters with a
de-obfuscation pass before scanning; the pass is good but not perfect,
so the content filter applies it probabilistically (see
:mod:`repro.detection.content_filter`).
"""

from __future__ import annotations

import re

__all__ = ["deobfuscate", "obfuscation_score"]

#: Non-ASCII look-alikes mapped back to their ASCII originals.
_UNICODE_HOMOGLYPHS = {
    "é": "e",
    "à": "a",
    "ı": "i",
}
#: Letters standing in for digits inside digit runs.
_LETTER_FOR_DIGIT = re.compile(r"(?<=\d)[oO]|[oO](?=\d)|(?<=\d)[lI]|[lI](?=\d)")
#: Digits standing in for letters inside words ('C0ACH', 'd1scord').
_DIGIT_FOR_LETTER = re.compile(r"(?<=[a-zA-Z])0(?=[a-zA-Z])|(?<=[a-zA-Z])1(?=[a-zA-Z])")
_PHONE_JUNK = re.compile(r"(?<=[\d\s])\(([A-Za-z]{2,4})\)\s*(?=\d)")
_NUMBER_WORDS = {
    "zero": "0", "one": "1", "two": "2", "three": "3", "four": "4",
    "five": "5", "six": "6", "seven": "7", "eight": "8", "nine": "9",
}
_DIGIT_SUBS = {"0": "o", "1": "i"}


def _fix_letter_digits(match: re.Match) -> str:
    char = match.group(0)
    return "0" if char in "oO" else "1"


def _fix_digit_letters(match: re.Match) -> str:
    return _DIGIT_SUBS[match.group(0)]


def deobfuscate(text: str) -> str:
    """Reverse common obfuscations before blacklist scanning.

    Handles, in order: unicode homoglyphs back to ASCII; number words
    spelled out; letters-for-digits inside digit runs (``18OO`` ->
    ``1800``, applied repeatedly so runs of substitutions resolve);
    digits-for-letters inside words (``C0ACH`` -> ``COACH`` casewise);
    and injected parentheticals splitting phone numbers.
    """
    for glyph, plain in _UNICODE_HOMOGLYPHS.items():
        text = text.replace(glyph, plain)
    words = [_NUMBER_WORDS.get(word.lower(), word) for word in text.split(" ")]
    text = " ".join(words)
    # Repeat until fixed point: each pass extends digit runs outward.
    while True:
        fixed = _LETTER_FOR_DIGIT.sub(_fix_letter_digits, text)
        if fixed == text:
            break
        text = fixed
    text = _DIGIT_FOR_LETTER.sub(_fix_digit_letters, text)
    text = _PHONE_JUNK.sub("", text)
    return text


def obfuscation_score(text: str) -> float:
    """Rough measure in [0, 1] of how obfuscated ``text`` looks.

    Counts unicode homoglyphs plus digit/letter boundary anomalies;
    heavy substitution is itself suspicious to the filter.
    """
    if not text:
        return 0.0
    suspicious = sum(1 for ch in text if ch in _UNICODE_HOMOGLYPHS)
    suspicious += len(_DIGIT_FOR_LETTER.findall(text))
    suspicious += len(_LETTER_FOR_DIGIT.findall(text))
    return min(1.0, suspicious / max(10, len(text) // 4))
