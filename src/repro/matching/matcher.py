"""Keyword/query match semantics (Section 5.3).

* **exact** -- the keywords occur as the exact search query, no changes
  to ordering or additional words.
* **phrase** -- the keywords occur in order, optionally with additional
  words before or after.
* **broad** -- the keywords, or terms the engine deems similar, occur in
  the query regardless of order or extra words.

All comparisons run on normalized tokens (see
:mod:`repro.matching.normalize`).
"""

from __future__ import annotations

from ..entities.enums import MatchType
from .normalize import expand_token, normalize_phrase

__all__ = ["matches", "exact_match", "phrase_match", "broad_match"]


def exact_match(keyword: tuple[str, ...], query: tuple[str, ...]) -> bool:
    """Whether ``query`` is exactly the keyword phrase."""
    return normalize_phrase(keyword) == normalize_phrase(query)


def phrase_match(keyword: tuple[str, ...], query: tuple[str, ...]) -> bool:
    """Whether the keyword phrase occurs contiguously, in order."""
    kw = normalize_phrase(keyword)
    q = normalize_phrase(query)
    if not kw or len(kw) > len(q):
        return False
    for start in range(len(q) - len(kw) + 1):
        if q[start : start + len(kw)] == kw:
            return True
    return False


def broad_match(keyword: tuple[str, ...], query: tuple[str, ...]) -> bool:
    """Whether every keyword token (or a synonym) appears in the query."""
    kw = normalize_phrase(keyword)
    if not kw:
        return False
    query_tokens = set(normalize_phrase(query))
    if not query_tokens:
        return False
    return all(expand_token(token) & query_tokens for token in kw)


_MATCHERS = {
    MatchType.EXACT: exact_match,
    MatchType.PHRASE: phrase_match,
    MatchType.BROAD: broad_match,
}


def matches(
    keyword: tuple[str, ...], match_type: MatchType, query: tuple[str, ...]
) -> bool:
    """Whether a (keyword, match type) offer is eligible for ``query``."""
    return _MATCHERS[match_type](keyword, query)
