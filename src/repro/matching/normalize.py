"""Query and keyword normalization.

"Across all match types, Bing normalizes for misspellings, plurals,
acronyms and other minor grammatical variations" (Section 5.3).  This
module provides that normalization layer: lowercasing, diacritic
stripping, plural folding, and a small misspelling/synonym table.
"""

from __future__ import annotations

import unicodedata
from functools import lru_cache

__all__ = ["normalize_token", "normalize_phrase", "SYNONYMS", "expand_token"]

#: Misspelling / variant folding applied during normalization.
_VARIANTS: dict[str, str] = {
    "downlaod": "download",
    "suport": "support",
    "antivir": "antivirus",
    "wieght": "weight",
    "cheep": "cheap",
    "flite": "flight",
    "sunglases": "sunglass",
}

#: Words ending in 's' that are not plurals and must keep it.
_KEEP_TRAILING_S: frozenset[str] = frozenset(
    {"antivirus", "news", "plus", "business", "express", "bonus", "gas"}
)

#: Broad matching may also match on terms "Bing determines to be
#: similar"; this symmetric synonym table feeds that expansion.
SYNONYMS: dict[str, frozenset[str]] = {
    "cheap": frozenset({"discount", "affordable"}),
    "discount": frozenset({"cheap", "sale"}),
    "sale": frozenset({"discount", "deal"}),
    "deal": frozenset({"sale", "offer"}),
    "download": frozenset({"install", "get"}),
    "support": frozenset({"help", "service"}),
    "help": frozenset({"support"}),
    "flight": frozenset({"airfare", "ticket"}),
    "cream": frozenset({"serum", "lotion"}),
    "supplement": frozenset({"pill", "formula"}),
}


def _strip_diacritics(text: str) -> str:
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


@lru_cache(maxsize=65536)
def normalize_token(token: str) -> str:
    """Normalize a single token.

    Lowercases, strips diacritics and punctuation, folds known
    misspellings, and removes simple plural endings.
    """
    token = _strip_diacritics(token.lower())
    token = "".join(ch for ch in token if ch.isalnum())
    if token in _VARIANTS:
        token = _VARIANTS[token]
    if token in _KEEP_TRAILING_S:
        return token
    # Light plural stemming: sses -> ss, ies -> y, trailing s dropped.
    if len(token) > 4 and token.endswith("sses"):
        token = token[:-2]
    elif len(token) > 4 and token.endswith("ies"):
        token = token[:-3] + "y"
    elif len(token) > 3 and token.endswith("s") and not token.endswith("ss"):
        token = token[:-1]
    return _VARIANTS.get(token, token)


def normalize_phrase(tokens: tuple[str, ...] | list[str]) -> tuple[str, ...]:
    """Normalize a phrase, dropping tokens that normalize to nothing."""
    normalized = (normalize_token(token) for token in tokens)
    return tuple(token for token in normalized if token)


def expand_token(token: str) -> frozenset[str]:
    """The token plus its broad-match synonyms (normalized)."""
    base = normalize_token(token)
    expansion = {base}
    expansion.update(SYNONYMS.get(base, frozenset()))
    return frozenset(expansion)
