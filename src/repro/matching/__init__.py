"""Query/keyword matching, normalization, blacklists and evasion."""

from .blacklist import Blacklist, contains_phone_number
from .evasion import deobfuscate, obfuscation_score
from .matcher import broad_match, exact_match, matches, phrase_match
from .normalize import SYNONYMS, expand_token, normalize_phrase, normalize_token

__all__ = [
    "Blacklist",
    "contains_phone_number",
    "deobfuscate",
    "obfuscation_score",
    "matches",
    "exact_match",
    "phrase_match",
    "broad_match",
    "normalize_token",
    "normalize_phrase",
    "expand_token",
    "SYNONYMS",
]
