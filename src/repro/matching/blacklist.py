"""Platform blacklists (Section 5.2.4).

Bing maintains blacklists of words and patterns not permitted in ad text
or keywords (phone numbers, trademarks) plus "a fairly aggressive
blacklist of domains used in fraudulent activities".  The domain list
grows over time as accounts are shut down; the term list grows when
policy changes (e.g. the third-party tech-support ban adds that
vertical's vocabulary).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..taxonomy.keywords import BRAND_TOKENS
from .normalize import normalize_token

__all__ = ["Blacklist", "PHONE_PATTERN", "contains_phone_number"]

#: Straightforward phone-number formats the filter catches outright.
PHONE_PATTERN = re.compile(
    r"\b1[-.\s]?\(?8(?:00|44|55|66|77|88)\)?[-.\s]?\d{3}[-.\s]?\d{4}\b"
)

#: Tech-support vocabulary added to the blacklist at the policy ban.
TECHSUPPORT_POLICY_TERMS: tuple[str, ...] = (
    "helpline",
    "tollfree",
    "technician",
    "supportline",
)


def contains_phone_number(text: str) -> bool:
    """Whether ``text`` contains an un-obfuscated phone number."""
    return PHONE_PATTERN.search(text) is not None


@dataclass
class Blacklist:
    """Mutable blacklist state owned by the detection pipeline.

    Attributes:
        terms: Normalized single tokens banned in ad text and keywords
            (seeded with trademark/brand tokens).
        domains: Banned destination/display domains.
    """

    terms: set[str] = field(default_factory=set)
    domains: set[str] = field(default_factory=set)

    @classmethod
    def default(cls) -> "Blacklist":
        """The launch blacklist: known brand/trademark tokens."""
        return cls(terms={normalize_token(token) for token in BRAND_TOKENS})

    def add_term(self, term: str) -> None:
        """Blacklist one normalized token."""
        self.terms.add(normalize_token(term))

    def add_terms(self, terms) -> None:
        """Blacklist several tokens."""
        for term in terms:
            self.add_term(term)

    def add_domain(self, domain: str) -> None:
        """Blacklist a domain (case-insensitive)."""
        self.domains.add(domain.lower())

    def is_domain_blacklisted(self, domain: str) -> bool:
        """Whether the domain is blacklisted."""
        return domain.lower() in self.domains

    def term_hits(self, text: str) -> list[str]:
        """Blacklisted tokens present in ``text`` (normalized scan)."""
        tokens = {normalize_token(token) for token in text.split()}
        tokens.discard("")
        return sorted(tokens & self.terms)

    def scan_text(self, text: str) -> list[str]:
        """All blacklist violations in ``text``.

        Returns a list of violation labels: blacklisted terms plus a
        ``"phone:<match>"`` entry if an un-obfuscated phone number is
        present.
        """
        hits = self.term_hits(text)
        match = PHONE_PATTERN.search(text)
        if match is not None:
            hits.append(f"phone:{match.group(0)}")
        return hits

    def enact_techsupport_ban(self) -> None:
        """Apply the Year-2 policy change banning third-party support ads."""
        self.add_terms(TECHSUPPORT_POLICY_TERMS)
