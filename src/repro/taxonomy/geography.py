"""Countries, markets, languages and currencies.

Two distinct distributions from the paper are encoded here:

* **Registration mix** (Table 1): where fraudulent and non-fraudulent
  advertisers say they are based.  Fraud skews heavily to
  English-speaking countries -- primarily the US and India.
* **Click-market mix** (Table 3): where fraudulent clicks land.  The US
  receives ~61% of fraudulent clicks; Brazil has the highest *fraction*
  of its clicks going to fraud (<6%), while the UK and France are
  notably cleaner (<1%).

Advertisers mostly target their home market, but fraudsters -- notably
India-registered tech-support operations -- disproportionately target
the US; :func:`market_attractiveness` captures that pull.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..rng import choice_cdf

__all__ = [
    "Country",
    "COUNTRIES",
    "country",
    "country_codes",
    "fraud_registration_weights",
    "nonfraud_registration_weights",
    "market_attractiveness",
    "query_volume_weights",
    "fraud_registration_cdf",
    "nonfraud_registration_cdf",
    "market_attractiveness_cdf",
    "query_volume_cdf",
    "home_targeting_prob",
]


@dataclass(frozen=True)
class Country:
    """A registration country / advertising market.

    Attributes:
        code: ISO-3166 alpha-2 code.
        language: Dominant advertising language.
        currency: Home currency at registration.
        query_volume: Relative share of the platform's search volume.
        fraud_reg_weight: Relative rate of fraudulent registrations.
        nonfraud_reg_weight: Relative rate of legitimate registrations.
        fraud_market_pull: Relative attractiveness of this market to
            fraudsters advertising outside their home country.
        home_bias: Probability that an advertiser registered here
            targets its home market on any given campaign.
    """

    code: str
    language: str
    currency: str
    query_volume: float
    fraud_reg_weight: float
    nonfraud_reg_weight: float
    fraud_market_pull: float
    home_bias: float

    def __post_init__(self) -> None:
        if self.query_volume <= 0:
            raise ValueError(f"{self.code}: query_volume must be > 0")
        if not 0.0 <= self.home_bias <= 1.0:
            raise ValueError(f"{self.code}: home_bias must be in [0, 1]")
        for attr in ("fraud_reg_weight", "nonfraud_reg_weight", "fraud_market_pull"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{self.code}: {attr} must be >= 0")


# Calibration notes:
#  - fraud_reg_weight targets Table 1 ('all fraud' row: US 50.3, IN 17.2,
#    GB 14.3, BR 2.5, AU 1.8, rest spread thin).
#  - query_volume and fraud_market_pull jointly target Table 3: US ~61%
#    of fraud clicks at <2% of US clicks; BR ~10% of fraud at the highest
#    per-country rate (<6%); DE ~10%; GB/FR clean (<1%).
#  - IN has low home_bias: India-registered fraud predominantly targets
#    the US (third-party tech support).
COUNTRIES: tuple[Country, ...] = (
    Country("US", "en", "USD", 58.0, 50.3, 42.0, 6.0, 0.92),
    Country("IN", "en", "INR", 2.5, 17.2, 6.0, 0.6, 0.10),
    Country("GB", "en", "GBP", 7.0, 14.3, 14.0, 0.5, 0.25),
    Country("BR", "pt", "BRL", 3.0, 2.5, 3.0, 14.0, 0.85),
    Country("AU", "en", "AUD", 2.5, 1.8, 4.0, 0.7, 0.60),
    Country("CA", "en", "CAD", 4.5, 1.7, 6.0, 3.0, 0.65),
    Country("DE", "de", "EUR", 6.5, 1.6, 8.0, 12.0, 0.80),
    Country("FR", "fr", "EUR", 5.5, 1.2, 6.0, 0.8, 0.80),
    Country("MX", "es", "MXN", 2.0, 1.0, 2.0, 1.2, 0.80),
    Country("SE", "sv", "SEK", 1.5, 0.8, 2.0, 0.8, 0.75),
    Country("NL", "nl", "EUR", 1.8, 0.7, 2.5, 0.3, 0.75),
    Country("ES", "es", "EUR", 2.2, 0.7, 2.5, 0.5, 0.80),
    Country("IT", "it", "EUR", 2.0, 0.6, 2.0, 0.4, 0.80),
    Country("JP", "ja", "JPY", 1.0, 0.2, 2.0, 0.15, 0.70),
)

_BY_CODE = {c.code: c for c in COUNTRIES}


def country(code: str) -> Country:
    """Look up a country by ISO code."""
    try:
        return _BY_CODE[code]
    except KeyError:
        raise KeyError(f"unknown country: {code!r}") from None


def country_codes() -> list[str]:
    """All country ISO codes, in table order."""
    return [c.code for c in COUNTRIES]


def _normalized(values: list[float]) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    return array / array.sum()


def fraud_registration_weights() -> tuple[list[str], np.ndarray]:
    """(codes, probabilities) of a fraudulent account's home country."""
    return country_codes(), _normalized([c.fraud_reg_weight for c in COUNTRIES])


def nonfraud_registration_weights() -> tuple[list[str], np.ndarray]:
    """(codes, probabilities) of a legitimate account's home country."""
    return country_codes(), _normalized([c.nonfraud_reg_weight for c in COUNTRIES])


def market_attractiveness() -> tuple[list[str], np.ndarray]:
    """(codes, probabilities) for a fraudster's non-home target market."""
    return country_codes(), _normalized([c.fraud_market_pull for c in COUNTRIES])


def query_volume_weights() -> tuple[list[str], np.ndarray]:
    """(codes, probabilities) of a random search landing in each market."""
    return country_codes(), _normalized([c.query_volume for c in COUNTRIES])


@lru_cache(maxsize=None)
def fraud_registration_cdf() -> tuple[list[str], np.ndarray]:
    """Cached (codes, CDF) form of :func:`fraud_registration_weights`.

    The CDF replicates ``Generator.choice``'s internal table so one
    :func:`repro.rng.draw_index` call reproduces
    ``rng.choice(len(codes), p=probs)`` exactly (value and stream
    state) -- the batched population pipeline samples thousands of
    registration countries without re-normalizing the table each time.
    """
    codes, probs = fraud_registration_weights()
    return codes, choice_cdf(probs)


@lru_cache(maxsize=None)
def nonfraud_registration_cdf() -> tuple[list[str], np.ndarray]:
    """Cached (codes, CDF) form of :func:`nonfraud_registration_weights`."""
    codes, probs = nonfraud_registration_weights()
    return codes, choice_cdf(probs)


@lru_cache(maxsize=None)
def market_attractiveness_cdf() -> tuple[list[str], np.ndarray]:
    """Cached (codes, CDF) form of :func:`market_attractiveness`."""
    codes, probs = market_attractiveness()
    return codes, choice_cdf(probs)


@lru_cache(maxsize=None)
def query_volume_cdf() -> tuple[list[str], np.ndarray]:
    """Cached (codes, CDF) form of :func:`query_volume_weights`."""
    codes, probs = query_volume_weights()
    return codes, choice_cdf(probs)


def home_targeting_prob(code: str) -> float:
    """Probability an advertiser registered in ``code`` targets home."""
    return country(code).home_bias
