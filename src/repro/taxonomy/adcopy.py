"""Ad copy generation (titles and bodies).

Templates per vertical mirror the flavour of the paper's Table 2.
Fraudulent advertisers can render *evasive* copy: phone numbers broken
up with injected text ("CALL 1-800 (USA) 555 1000") and look-alike
characters substituted for blacklisted brand tokens -- the evasion
behaviours of Section 5.2.4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AdCopy", "render_ad", "templates_for", "sample_table2", "HOMOGLYPHS"]

#: Look-alike character substitutions fraudsters use to evade blacklists.
HOMOGLYPHS: dict[str, str] = {
    "o": "0",
    "i": "1",
    "e": "é",  # é
    "a": "à",  # à
    "l": "ı",  # dotless i
}


@dataclass(frozen=True)
class AdCopy:
    """A rendered advertisement's text."""

    title: str
    body: str

    def text(self) -> str:
        """Full searchable text of the ad."""
        return f"{self.title} {self.body}"


_TEMPLATES: dict[str, list[AdCopy]] = {
    "techsupport": [
        AdCopy("Install Printer", "Call Our Helpline Number. Online Printer Support By Experts."),
        AdCopy("Router Setup Help", "Certified Technicians Standing By. Call Now For Instant Support."),
        AdCopy("Antivirus Support Line", "Fix Infections Today. Talk To A Support Expert. Call 1-800-555-1000."),
        AdCopy("Accounting Software Support", "Premium Phone Support For Your Business Software. Call Today."),
    ],
    "downloads": [
        AdCopy("Discordia Free Download", "Latest 2017 Version. 100% Free! Instantly Download Discordia Now!"),
        AdCopy("Free PDF Reader", "Fast, Safe Download. No Registration Needed. Get It Now!"),
        AdCopy("Media Converter Download", "Convert Any File Format Free. One Click Install."),
        AdCopy("Driver Update Tool", "Fix Outdated Drivers Instantly. Free Scan & Download."),
    ],
    "luxury": [
        AdCopy("75% Off COACHLINE Factory Outlet", "Enjoy 75% Off & High Quality COACHLINE Bags & Purses. Winter Sale Limited Time Offer"),
        AdCopy("Designer Sunglasses Sale", "Authentic Styles Up To 80% Off. Free Shipping Today Only."),
        AdCopy("Luxury Watches Outlet", "Genuine Designer Watches At Outlet Prices. Shop The Sale."),
    ],
    "weightloss": [
        AdCopy("Lose 20 Pounds Fast", "Doctors Hate This Trick. Miracle Supplement Melts Fat Away!"),
        AdCopy("Garcinia Extract Sale", "Pure Natural Formula. Burn Fat Without Diet Or Exercise."),
        AdCopy("Slimming Tea Official", "Celebrity Endorsed Detox Tea. See Results In Days."),
    ],
    "wrinkles": [
        AdCopy("Best Anti Wrinkle Cream", "Premium Skin Care Product! Removes Wrinkles in Weeks! Clinically Proven"),
        AdCopy("Erase Wrinkles Tonight", "Dermatologist Secret Revealed. Look 10 Years Younger."),
        AdCopy("Collagen Serum Sale", "Restore Youthful Skin. Limited Trial Offer. Order Now."),
    ],
    "impersonation": [
        AdCopy("Targetmart - Online Shopping", "Store Hours & Locations. Go To Targetmart.com Online Shopping Now."),
        AdCopy("Streamly Movies Online", "Watch Thousands Of Titles Instantly. Start Streaming Today."),
        AdCopy("Tubeview Official Videos", "All Your Favorite Channels In One Place. Watch Free."),
    ],
    "shopping": [
        AdCopy("Daily Deals Up To 90% Off", "New Deals Every Hour. Electronics, Fashion & More. Shop Now."),
        AdCopy("Exclusive Coupon Codes", "Save Big At Checkout. Verified Codes Updated Daily."),
    ],
    "flights": [
        AdCopy("Cheap Flights From $49", "Compare Hundreds Of Airlines In Seconds. Book Today & Save."),
        AdCopy("Last Minute Flight Deals", "Unsold Seats At Huge Discounts. Limited Availability."),
    ],
    "games": [
        AdCopy("Play Free Games Online", "No Download Needed. Thousands Of Games. Play Instantly."),
        AdCopy("Top Strategy Game 2017", "Build Your Empire. Join Millions Of Players Free."),
    ],
    "chronic": [
        AdCopy("End Joint Pain Naturally", "Breakthrough Formula Relieves Pain In Days. Try Risk Free."),
        AdCopy("Tinnitus Miracle Cure", "Silence The Ringing For Good. Doctors Are Amazed."),
    ],
    "phishing": [
        AdCopy("Bankora Account Login", "Secure Sign In To Your Bankora Account. Verify Your Details Now."),
        AdCopy("Paypath Sign In", "Access Your Paypath Account. Confirm Your Information Today."),
    ],
    "_generic": [
        AdCopy("Quality Service You Can Trust", "Serving Customers Since 1998. Free Quotes. Satisfaction Guaranteed."),
        AdCopy("Official Site - Shop Online", "Wide Selection, Great Prices, Fast Shipping. Order Today."),
        AdCopy("Compare Top Providers", "Find The Best Option For You In Minutes. Start Your Free Search."),
        AdCopy("Limited Time Offer", "Save Up To 40% This Season. See Store For Details."),
    ],
}

#: Obfuscated phone-number fragments used by evasive tech-support ads.
_OBFUSCATED_PHONES: tuple[str, ...] = (
    "CALL 1-800 (USA) 555 1000",
    "Dial 1.8OO.555.31OO Toll Free",
    "Helpline one 800 555 2200",
    "Ring 18OO-555-44OO Now",
)


def _apply_homoglyphs(text: str, rng: np.random.Generator) -> str:
    """Substitute a few characters with look-alikes."""
    chars = list(text)
    candidates = [i for i, c in enumerate(chars) if c.lower() in HOMOGLYPHS]
    if not candidates:
        return text
    count = max(1, len(candidates) // 6)
    for index in rng.choice(len(candidates), size=count, replace=False):
        position = candidates[int(index)]
        chars[position] = HOMOGLYPHS[chars[position].lower()]
    return "".join(chars)


def _is_risky(template: AdCopy) -> bool:
    """Whether the template plainly trips the launch blacklist."""
    from ..matching.blacklist import PHONE_PATTERN
    from ..matching.normalize import normalize_token
    from .keywords import BRAND_TOKENS

    tokens = {normalize_token(t) for t in template.text().split()}
    brands = {normalize_token(t) for t in BRAND_TOKENS}
    if tokens & brands:
        return True
    return PHONE_PATTERN.search(template.text()) is not None


def templates_for(vertical_name: str) -> list[AdCopy]:
    """The non-evasive template list :func:`render_ad` draws from.

    Unknown verticals fall back to the generic retail-style templates.
    Non-evasive rendering picks uniformly from this list and returns
    the template object itself, so callers with the list in hand can
    reproduce ``render_ad(name, rng)`` with a single ``rng.integers``
    draw.
    """
    return _TEMPLATES.get(vertical_name, _TEMPLATES["_generic"])


def render_ad(
    vertical_name: str,
    rng: np.random.Generator,
    evasive: bool = False,
) -> AdCopy:
    """Render ad copy for a vertical.

    Args:
        vertical_name: The advertiser's vertical; unknown verticals fall
            back to generic retail-style copy.
        rng: Random stream for template choice and evasion noise.
        evasive: Render blacklist-evading copy.  Evasive advertisers
            "rely on phrasing that is not easily blacklisted outright"
            (Section 5.2.4): they prefer templates without brand tokens
            or phone numbers where the vertical offers one, and apply
            homoglyphs / phone obfuscation to whatever risk remains.
            Impersonation and phishing have no clean templates -- the
            fraudster must name the institution to impersonate it.
    """
    templates = _TEMPLATES.get(vertical_name, _TEMPLATES["_generic"])
    if evasive:
        clean = [t for t in templates if not _is_risky(t)]
        if clean:
            templates = clean
    template = templates[int(rng.integers(len(templates)))]
    if not evasive:
        return template
    body = template.body
    if vertical_name == "techsupport":
        phone = _OBFUSCATED_PHONES[int(rng.integers(len(_OBFUSCATED_PHONES)))]
        body = f"{body.rsplit('.', 1)[0]}. {phone}."
    if _is_risky(template):
        return AdCopy(
            _apply_homoglyphs(template.title, rng), _apply_homoglyphs(body, rng)
        )
    return AdCopy(template.title, body)


def sample_table2() -> list[tuple[str, str, str]]:
    """(category, title, body) rows reproducing the paper's Table 2."""
    rows = []
    for category in ("techsupport", "downloads", "luxury", "wrinkles", "impersonation"):
        template = _TEMPLATES[category][0]
        rows.append((category, template.title, template.body))
    return rows
