"""Marketplace taxonomy: verticals, keywords, ad copy, and geography.

This package defines the static "world" the simulator populates:
advertising verticals (including the ten dubious verticals of Figure 8),
per-vertical keyword pools and ad-copy templates (Table 2), and the
country/market model behind Tables 1 and 3.
"""

from .adcopy import AdCopy, render_ad, sample_table2
from .geography import (
    COUNTRIES,
    Country,
    country,
    country_codes,
    fraud_registration_weights,
    market_attractiveness,
    nonfraud_registration_weights,
    query_volume_weights,
)
from .keywords import DECORATOR_TOKENS, keyword_pool, keyword_weights
from .verticals import (
    DUBIOUS_VERTICALS,
    VERTICALS,
    Vertical,
    dubious_vertical_names,
    fraud_vertical_weights,
    nonfraud_vertical_weights,
    prolific_vertical_weights,
    vertical,
    vertical_names,
)

__all__ = [
    "AdCopy",
    "render_ad",
    "sample_table2",
    "COUNTRIES",
    "Country",
    "country",
    "country_codes",
    "fraud_registration_weights",
    "nonfraud_registration_weights",
    "market_attractiveness",
    "query_volume_weights",
    "DECORATOR_TOKENS",
    "keyword_pool",
    "keyword_weights",
    "DUBIOUS_VERTICALS",
    "VERTICALS",
    "Vertical",
    "vertical",
    "vertical_names",
    "dubious_vertical_names",
    "fraud_vertical_weights",
    "nonfraud_vertical_weights",
    "prolific_vertical_weights",
]
