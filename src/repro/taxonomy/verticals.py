"""Advertising verticals.

The paper finds fraudulent advertisers concentrated in a small set of
"relatively lucrative, but often dubious verticals" (Figure 8 names ten:
techsupport, downloads, luxury, flights, wrinkles, impersonation,
weightloss, shopping, games, chronic).  Legitimate advertisers span a
much wider set; a minority of legitimate advertisers also operate in the
dubious verticals, which is where competition with fraud happens
(Section 6).

Each vertical carries the economic parameters the rest of the simulator
needs: relative user query volume, value per click (drives bids; the
tech-support model monetizes hundred-dollar support calls, hence CPCs in
the tens of dollars), baseline ad engagement, and how attractive the
vertical is to each advertiser population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Vertical",
    "VERTICALS",
    "DUBIOUS_VERTICALS",
    "vertical",
    "vertical_names",
    "dubious_vertical_names",
    "fraud_vertical_weights",
    "nonfraud_vertical_weights",
    "prolific_vertical_weights",
]


@dataclass(frozen=True)
class Vertical:
    """A market segment advertisers compete in.

    Attributes:
        name: Stable identifier (used in records and figures).
        dubious: Whether the vertical is one the paper's fraudsters
            occupy; only dubious verticals see fraud/nonfraud overlap.
        query_volume: Relative share of user search volume.
        value_per_click: Typical advertiser value of a click in USD;
            scales bid levels.
        base_ctr: Baseline probability that an examined, well-targeted
            ad in this vertical is clicked.
        fraud_weight: Relative probability that a typical fraudulent
            account picks this vertical.
        prolific_weight: Same, for prolific fraud operators (who focus
            on fewer, more specialized and lucrative verticals).
        nonfraud_weight: Relative probability for legitimate accounts.
    """

    name: str
    dubious: bool
    query_volume: float
    value_per_click: float
    base_ctr: float
    fraud_weight: float
    prolific_weight: float
    nonfraud_weight: float

    def __post_init__(self) -> None:
        if self.query_volume <= 0:
            raise ValueError(f"{self.name}: query_volume must be > 0")
        if self.value_per_click <= 0:
            raise ValueError(f"{self.name}: value_per_click must be > 0")
        if not 0.0 < self.base_ctr < 1.0:
            raise ValueError(f"{self.name}: base_ctr must be in (0, 1)")
        for attr in ("fraud_weight", "prolific_weight", "nonfraud_weight"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{self.name}: {attr} must be >= 0")


# The dubious verticals of Figure 8, ordered by overall fraud prevalence.
# 'downloads' leads in clicks ("top categories in terms of clicks are
# typically sites dedicated to offering downloads of popular software");
# 'techsupport' leads in spend until the Year-2 policy ban.
_DUBIOUS = [
    Vertical("downloads", True, 0.90, 0.8, 0.060, 4.5, 1.2, 0.22),
    Vertical("techsupport", True, 0.35, 24.0, 0.050, 1.0, 3.2, 0.10),
    Vertical("luxury", True, 0.35, 3.0, 0.045, 1.6, 1.3, 0.30),
    Vertical("weightloss", True, 0.30, 4.5, 0.045, 1.4, 1.1, 0.25),
    Vertical("wrinkles", True, 0.20, 4.0, 0.040, 1.0, 0.9, 0.18),
    Vertical("impersonation", True, 0.60, 1.2, 0.055, 1.8, 0.8, 0.08),
    Vertical("shopping", True, 0.80, 1.5, 0.045, 1.3, 0.6, 0.90),
    Vertical("flights", True, 0.45, 2.5, 0.045, 0.8, 0.7, 0.60),
    Vertical("games", True, 0.45, 0.9, 0.050, 1.0, 0.5, 0.25),
    Vertical("chronic", True, 0.25, 5.0, 0.035, 0.7, 0.8, 0.15),
    # Credential phishing is a small but noteworthy slice (Section 5.2.2).
    Vertical("phishing", True, 0.15, 2.0, 0.050, 0.15, 0.05, 0.0),
]

# Legitimate-only verticals.  Fraud weight zero: the paper finds "most
# verticals have no overlap with fraudulent advertising at all".
_LEGITIMATE = [
    Vertical("retail", False, 5.0, 1.2, 0.050, 0.0, 0.0, 5.0),
    Vertical("insurance", False, 1.8, 18.0, 0.035, 0.0, 0.0, 2.2),
    Vertical("travel", False, 2.8, 3.0, 0.045, 0.0, 0.0, 3.0),
    Vertical("automotive", False, 2.2, 4.0, 0.040, 0.0, 0.0, 2.4),
    Vertical("education", False, 1.6, 8.0, 0.035, 0.0, 0.0, 1.8),
    Vertical("finance", False, 2.0, 14.0, 0.035, 0.0, 0.0, 2.0),
    Vertical("realestate", False, 1.5, 6.0, 0.035, 0.0, 0.0, 1.6),
    Vertical("software_b2b", False, 1.2, 10.0, 0.035, 0.0, 0.0, 1.4),
    Vertical("health", False, 2.4, 3.5, 0.040, 0.0, 0.0, 2.6),
    Vertical("legal", False, 0.9, 20.0, 0.030, 0.0, 0.0, 1.2),
    Vertical("homeservices", False, 1.4, 7.0, 0.040, 0.0, 0.0, 1.8),
    Vertical("electronics", False, 2.6, 1.8, 0.050, 0.0, 0.0, 2.8),
    Vertical("fashion", False, 2.4, 1.5, 0.050, 0.0, 0.0, 2.6),
    Vertical("food", False, 1.8, 1.0, 0.050, 0.0, 0.0, 2.0),
    Vertical("jobs", False, 1.6, 2.5, 0.040, 0.0, 0.0, 1.6),
]

VERTICALS: tuple[Vertical, ...] = tuple(_DUBIOUS + _LEGITIMATE)
DUBIOUS_VERTICALS: tuple[Vertical, ...] = tuple(v for v in VERTICALS if v.dubious)

_BY_NAME = {v.name: v for v in VERTICALS}


def vertical(name: str) -> Vertical:
    """Look up a vertical by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown vertical: {name!r}") from None


def vertical_names() -> list[str]:
    """All vertical names, dubious first."""
    return [v.name for v in VERTICALS]


def dubious_vertical_names() -> list[str]:
    """Names of the fraud-occupied verticals."""
    return [v.name for v in DUBIOUS_VERTICALS]


def _normalized(weights: list[float]) -> np.ndarray:
    array = np.asarray(weights, dtype=float)
    return array / array.sum()


def fraud_vertical_weights() -> tuple[list[str], np.ndarray]:
    """(names, probabilities) for a typical fraudulent account's vertical."""
    names = [v.name for v in VERTICALS if v.fraud_weight > 0]
    return names, _normalized([v.fraud_weight for v in VERTICALS if v.fraud_weight > 0])


def prolific_vertical_weights() -> tuple[list[str], np.ndarray]:
    """(names, probabilities) for prolific fraud operators."""
    names = [v.name for v in VERTICALS if v.prolific_weight > 0]
    return names, _normalized(
        [v.prolific_weight for v in VERTICALS if v.prolific_weight > 0]
    )


def nonfraud_vertical_weights() -> tuple[list[str], np.ndarray]:
    """(names, probabilities) for legitimate accounts."""
    names = [v.name for v in VERTICALS if v.nonfraud_weight > 0]
    return names, _normalized(
        [v.nonfraud_weight for v in VERTICALS if v.nonfraud_weight > 0]
    )
