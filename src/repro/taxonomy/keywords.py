"""Per-vertical keyword pools.

Each vertical owns a pool of keyword phrases built from head terms and
modifiers.  Pools are deterministic (no RNG) so that keyword identity is
stable across runs; popularity follows a Zipf distribution, mirroring
real search-demand curves.

The pools deliberately mix freely-biddable terms ("news", "download",
"skin care") with terms that trip the platform's blacklists (brand
names in ``impersonation``/``phishing``, phone-number bait in
``techsupport``), because the paper's fraudsters survive precisely by
picking phrasing "that [is] not easily blacklisted outright".
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "keyword_pool",
    "keyword_weights",
    "keyword_cdf",
    "evasive_keyword_tables",
    "DECORATOR_TOKENS",
    "BRAND_TOKENS",
]

Keyword = tuple[str, ...]

#: Tokens that users commonly add around a keyword phrase; queries are
#: decorated with these to exercise phrase/broad matching.
DECORATOR_TOKENS: tuple[str, ...] = (
    "best",
    "cheap",
    "free",
    "online",
    "buy",
    "top",
    "new",
    "official",
    "near",
    "me",
    "2017",
    "review",
    "deal",
)

#: Brand-like tokens; impersonation and phishing keywords embed these,
#: and the platform's trademark blacklist watches for them.
BRAND_TOKENS: tuple[str, ...] = (
    "streamly",
    "targetmart",
    "coachline",
    "discordia",
    "tubeview",
    "facelook",
    "bankora",
    "paypath",
    "amazonia",
    "microtech",
)

_HEADS: dict[str, list[str]] = {
    "techsupport": [
        "printer support",
        "router setup",
        "antivirus help",
        "computer repair",
        "accounting software support",
        "install printer",
        "email not working",
        "laptop slow fix",
        "wifi troubleshooting",
        "pc error help",
    ],
    "downloads": [
        "free download",
        "software download",
        "discordia download",
        "video player download",
        "pdf reader",
        "zip tool",
        "media converter",
        "open source editor",
        "driver update",
        "browser download",
    ],
    "luxury": [
        "designer sunglasses",
        "coachline outlet",
        "luxury handbags",
        "designer watches",
        "leather purse sale",
        "designer shoes",
        "luxury belts",
        "outlet factory store",
    ],
    "weightloss": [
        "weight loss",
        "diet pills",
        "fat burner",
        "lose weight fast",
        "garcinia extract",
        "slimming tea",
        "miracle supplement",
        "body building supplement",
    ],
    "wrinkles": [
        "anti wrinkle cream",
        "skin care",
        "anti aging serum",
        "wrinkle remover",
        "eye cream",
        "face lift cream",
        "collagen cream",
    ],
    "impersonation": [
        "streamly movies",
        "tubeview videos",
        "targetmart store hours",
        "facelook login help",
        "amazonia deals",
        "news today",
        "watch series online",
        "search engine",
        "social network",
    ],
    "shopping": [
        "online shopping",
        "discount codes",
        "daily deals",
        "coupon codes",
        "clearance sale",
        "flash sale",
        "wholesale prices",
        "gift ideas",
    ],
    "flights": [
        "cheap flights",
        "airline tickets",
        "last minute flights",
        "flight deals",
        "business class fares",
        "hotel and flight",
    ],
    "games": [
        "free games",
        "online games",
        "game download",
        "browser games",
        "puzzle games",
        "strategy game",
    ],
    "chronic": [
        "pain relief",
        "joint supplement",
        "arthritis cream",
        "nerve pain remedy",
        "tinnitus cure",
        "diabetes supplement",
    ],
    "phishing": [
        "bankora login",
        "paypath account",
        "credit union login",
        "webmail sign in",
        "bank account access",
        "verify account",
    ],
    "retail": [
        "department store",
        "home goods",
        "kitchen appliances",
        "furniture sale",
        "garden supplies",
        "office supplies",
        "toys",
        "sporting goods",
    ],
    "insurance": [
        "car insurance",
        "life insurance quotes",
        "home insurance",
        "health insurance plans",
        "renters insurance",
        "insurance comparison",
    ],
    "travel": [
        "vacation packages",
        "hotel deals",
        "cruise deals",
        "city breaks",
        "travel insurance",
        "car rental",
    ],
    "automotive": [
        "new cars",
        "used cars",
        "car dealership",
        "auto parts",
        "oil change",
        "tire shop",
    ],
    "education": [
        "online degree",
        "mba program",
        "coding bootcamp",
        "language course",
        "certification training",
    ],
    "finance": [
        "personal loan",
        "credit card offers",
        "mortgage rates",
        "savings account",
        "stock trading",
        "debt consolidation",
    ],
    "realestate": [
        "homes for sale",
        "apartments for rent",
        "real estate agent",
        "condo listings",
        "property values",
    ],
    "software_b2b": [
        "crm software",
        "payroll software",
        "project management tool",
        "cloud backup",
        "help desk software",
    ],
    "health": [
        "dentist",
        "urgent care",
        "physical therapy",
        "eye doctor",
        "dermatologist",
        "vitamins",
    ],
    "legal": [
        "personal injury lawyer",
        "divorce attorney",
        "immigration lawyer",
        "estate planning",
        "dui attorney",
    ],
    "homeservices": [
        "plumber",
        "electrician",
        "roof repair",
        "house cleaning",
        "pest control",
        "hvac repair",
    ],
    "electronics": [
        "laptop deals",
        "smartphone sale",
        "tv deals",
        "headphones",
        "camera sale",
        "tablet deals",
    ],
    "fashion": [
        "dresses",
        "mens shoes",
        "winter jackets",
        "jeans sale",
        "accessories",
        "sneakers",
    ],
    "food": [
        "pizza delivery",
        "meal kits",
        "restaurant near me",
        "coffee beans",
        "organic groceries",
    ],
    "jobs": [
        "jobs hiring",
        "remote jobs",
        "part time work",
        "resume help",
        "career openings",
    ],
}

_EXPANSIONS: tuple[str, ...] = ("online", "service", "number", "site", "store")


@lru_cache(maxsize=None)
def keyword_pool(vertical_name: str) -> tuple[Keyword, ...]:
    """The keyword phrases biddable in a vertical, most popular first.

    The pool contains each head phrase plus deterministic two-way
    expansions, giving each vertical a few dozen distinct phrases.
    """
    try:
        heads = _HEADS[vertical_name]
    except KeyError:
        raise KeyError(f"no keyword pool for vertical {vertical_name!r}") from None
    pool: list[Keyword] = []
    seen: set[Keyword] = set()
    for head in heads:
        phrase = tuple(head.split())
        if phrase not in seen:
            seen.add(phrase)
            pool.append(phrase)
    for index, head in enumerate(heads):
        expansion = _EXPANSIONS[index % len(_EXPANSIONS)]
        phrase = tuple(head.split()) + (expansion,)
        if phrase not in seen:
            seen.add(phrase)
            pool.append(phrase)
    return tuple(pool)


@lru_cache(maxsize=None)
def risky_keyword_mask(vertical_name: str) -> tuple[bool, ...]:
    """Which pool phrases contain blacklisted brand tokens.

    Skilled fraudsters avoid bidding these outright (Section 5.2.4:
    successful fraud relies on phrasing "not easily blacklisted") --
    except in impersonation/phishing, where naming the brand is the
    point.
    """
    from ..matching.normalize import normalize_token

    brands = {normalize_token(token) for token in BRAND_TOKENS}
    mask = []
    for phrase in keyword_pool(vertical_name):
        tokens = {normalize_token(token) for token in phrase}
        mask.append(bool(tokens & brands))
    return tuple(mask)


@lru_cache(maxsize=None)
def keyword_weights(vertical_name: str, exponent: float = 1.1) -> np.ndarray:
    """Zipf popularity weights aligned with :func:`keyword_pool`."""
    size = len(keyword_pool(vertical_name))
    ranks = np.arange(1, size + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


@lru_cache(maxsize=None)
def keyword_cdf(vertical_name: str, exponent: float = 1.1) -> np.ndarray:
    """Cumulative :func:`keyword_weights`, for batched pool sampling.

    Built exactly the way ``Generator.choice`` builds its internal CDF
    (cumsum, then normalize by the last entry), so inverting uniforms
    through it with a right-sided ``searchsorted`` reproduces
    ``rng.choice(len(pool), p=weights)`` draw for draw.
    """
    from ..rng import choice_cdf

    return choice_cdf(keyword_weights(vertical_name, exponent=exponent))


@lru_cache(maxsize=None)
def evasive_keyword_tables(
    vertical_name: str, exponent: float
) -> tuple[tuple[bool, ...], np.ndarray, np.ndarray]:
    """(risky mask, safe pool indices, safe CDF) for evasive re-draws.

    Mirrors the brand-avoidance branch of the scalar keyword sampler:
    ``safe`` is every non-risky pool index and the CDF replays
    ``rng.choice(len(safe), p=weights[safe] / weights[safe].sum())``
    bit for bit.  The safe index array is empty when every phrase in
    the pool trips the blacklist.
    """
    from ..rng import choice_cdf

    weights = keyword_weights(vertical_name, exponent=exponent)
    risky = risky_keyword_mask(vertical_name)
    safe = [i for i in range(len(weights)) if not risky[i]]
    if not safe:
        return risky, np.empty(0, dtype=np.intp), np.empty(0)
    safe_weights = weights[safe] / weights[safe].sum()
    return risky, np.asarray(safe, dtype=np.intp), choice_cdf(safe_weights)
