"""Position-bias examination model.

The probability a user *examines* an ad decays with position, with a
sharp drop from the mainline to the sidebar -- "the mainline
traditionally receiving more clicks than the sidebar, and higher
positions in the page typically providing more traffic" (Section 6.2.1).
The probability an examined ad is *clicked* is the ad's quality score,
so click-through rates compose examination x quality.
"""

from __future__ import annotations

import numpy as np

from ..config import ClickConfig
from ..auction.slots import SlotPlacement

__all__ = ["examination_probability", "examination_table"]


def examination_probability(
    placement: SlotPlacement, config: ClickConfig
) -> float:
    """Probability that a user examines the ad at ``placement``.

    Mainline positions decay geometrically from ``top_examination``;
    sidebar positions decay from ``sidebar_examination`` starting at the
    first sidebar slot regardless of overall position (a short mainline
    does not make the sidebar more visible).
    """
    if placement.mainline:
        return config.top_examination * config.mainline_decay ** (
            placement.position - 1
        )
    # Sidebar rank = how many sidebar ads precede it; position counts
    # all ads, so derive it lazily: the caller guarantees placements are
    # produced by repro.auction.slots.layout, where sidebar ads keep
    # their overall order.  We approximate sidebar rank by position to
    # stay O(1); the decay constant absorbs the offset.
    return config.sidebar_examination * config.sidebar_decay ** max(
        0, placement.position - 2
    )


def examination_table(config: ClickConfig, max_position: int) -> np.ndarray:
    """Examination probabilities tabulated over (sidebar/mainline, position).

    ``table[int(mainline), position]`` equals
    :func:`examination_probability` for that placement; ``position`` is
    1-based so row 0 of each half is unused (zero).  Built by calling
    the scalar function — a handful of evaluations per config — so the
    vectorized click path reuses its values bit-for-bit.
    """
    table = np.zeros((2, max_position + 1), dtype=np.float64)
    for mainline in (False, True):
        for position in range(1, max_position + 1):
            table[int(mainline), position] = examination_probability(
                SlotPlacement(position, mainline), config
            )
    return table
