"""Click sampling for shown ads."""

from __future__ import annotations

import numpy as np

from .. import obs
from ..auction.gsp import ShownAd
from ..config import ClickConfig
from .position_bias import examination_probability

__all__ = ["click_probability", "sample_clicks"]

# Observability handle (repro.obs): total clicks drawn, scalar path.
# The batched engine path bumps the same counter with its vectorized
# draw's sum -- either way the bump happens *after* the RNG draw, so
# tracing never perturbs the click stream.
_CLICKS_DRAWN = obs.counter("clickmodel.clicks_drawn")


def click_probability(shown: ShownAd, config: ClickConfig) -> float:
    """Probability a random user clicks this shown ad.

    P(click) = P(examine) x realized click quality.  The realized
    quality can differ from the estimate used for ranking (fraud games
    the estimator upward).
    """
    examine = examination_probability(shown.placement, config)
    return min(1.0, examine * shown.candidate.realized_click_quality)


def sample_clicks(
    shown: ShownAd,
    weight: float,
    config: ClickConfig,
    rng: np.random.Generator,
) -> int:
    """Sample how many of ``weight`` users click the ad.

    Clicks are Poisson with mean ``weight x P(click)`` -- the standard
    thin-stream approximation for a weighted query sample.
    """
    if weight <= 0:
        raise ValueError("weight must be > 0")
    mean = weight * click_probability(shown, config)
    if mean <= 0:
        return 0
    clicks = int(rng.poisson(mean))
    _CLICKS_DRAWN.inc(clicks)
    return clicks
