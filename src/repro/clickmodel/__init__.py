"""User click model: position bias plus ad engagement."""

from .engagement import click_probability, sample_clicks
from .position_bias import examination_probability, examination_table

__all__ = [
    "click_probability",
    "sample_clicks",
    "examination_probability",
    "examination_table",
]
