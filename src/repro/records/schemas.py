"""Typed record schemas for the paper's three datasets.

* Customer and ad records -- :class:`CustomerRecord`, :class:`AdRecord`,
  :class:`KeywordRecord`.
* Ad impression and click records -- see
  :mod:`repro.records.impressions`.
* Fraud detection records -- :class:`DetectionRecord`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..entities.advertiser import Advertiser
from ..entities.enums import AdvertiserKind, ShutdownReason

__all__ = ["CustomerRecord", "AdRecord", "KeywordRecord", "DetectionRecord"]


@dataclass(frozen=True)
class CustomerRecord:
    """One advertiser account, as the platform's customer dataset sees it.

    ``kind`` is simulation ground truth; it is exported for validation
    but the analyses only use ``labeled_fraud``, mirroring the paper's
    reliance on Bing's own shutdown labels.
    """

    advertiser_id: int
    created_time: float
    country: str
    language: str
    currency: str
    kind: str
    labeled_fraud: bool
    shutdown_time: float | None
    shutdown_reason: str | None
    first_ad_time: float | None
    n_ads: int
    n_keywords: int

    @classmethod
    def from_advertiser(cls, advertiser: Advertiser) -> "CustomerRecord":
        """Snapshot an advertiser entity into a record."""
        return cls(
            advertiser_id=advertiser.advertiser_id,
            created_time=advertiser.created_time,
            country=advertiser.country,
            language=advertiser.language,
            currency=advertiser.currency,
            kind=advertiser.kind.value,
            labeled_fraud=advertiser.labeled_fraud,
            shutdown_time=advertiser.shutdown_time,
            shutdown_reason=(
                advertiser.shutdown_reason.value
                if advertiser.shutdown_reason is not None
                else None
            ),
            first_ad_time=advertiser.first_ad_time,
            n_ads=sum(1 for _ in advertiser.all_ads()),
            n_keywords=sum(1 for _ in advertiser.all_bids()),
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @property
    def is_fraud_ground_truth(self) -> bool:
        """Ground-truth fraud flag (not the platform label)."""
        return AdvertiserKind(self.kind).is_fraud


@dataclass(frozen=True)
class AdRecord:
    """One advertisement (title, body, URLs)."""

    ad_id: int
    campaign_id: int
    advertiser_id: int
    vertical: str
    title: str
    body: str
    display_domain: str
    destination_domain: str
    created_day: float
    modified_count: int

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class KeywordRecord:
    """One keyword bid (phrase, match type, max bid)."""

    advertiser_id: int
    campaign_id: int
    keyword: str
    match_type: str
    max_bid: float
    created_day: float
    modified_count: int

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class DetectionRecord:
    """One enforcement action: the platform froze an account."""

    advertiser_id: int
    time: float
    stage: str
    labeled_fraud: bool

    @classmethod
    def make(
        cls, advertiser_id: int, time: float, stage: ShutdownReason, labeled: bool
    ) -> "DetectionRecord":
        """Build a record from enum-typed arguments."""
        return cls(
            advertiser_id=advertiser_id,
            time=time,
            stage=stage.value,
            labeled_fraud=labeled,
        )

    def to_dict(self) -> dict:
        return asdict(self)
