"""Columnar ``.npc`` bundles: checksummed ``.npy`` columns in one file.

The durable impression chunks written by the checkpoint runner (and any
other whole-table artifact) are stored as a single *columnar bundle*: a
small self-describing header followed by one raw ``.npy`` payload per
column.  The format is deliberately boring --

``REPROCOL`` magic (8 bytes)
    Identifies the file; a reader refuses anything else.
header length (8 bytes, little-endian ``uint64``)
    Size of the JSON header that follows.
JSON header (UTF-8, compact, sorted keys)
    ``{"format": "repro-columnar/1", "rows": N, "meta": {...},
    "columns": [{"name", "dtype", "offset", "nbytes", "sha256"}, ...]}``
    where ``offset`` is relative to the end of the header, so the
    header's own length never perturbs payload checksums.
payloads
    Each column serialized with :func:`numpy.lib.format.write_array`
    (plain ``.npy`` v1, ``allow_pickle=False``), concatenated in header
    order.

Why not ``np.savez``: zip containers embed per-member metadata that
varies across numpy versions, cannot be range-read without a zip walk,
and compress -- all wrong for a checksummed, seekable, byte-stable
store.  A bundle's bytes are a pure function of its columns and
``meta``, which is what lets ``runner verify`` checksum chunks and
``doctor --repair`` re-simulate a damaged day range and reproduce the
file byte-for-byte.

Readers can fetch a *subset* of columns: :func:`read_columns` seeks to
each requested payload using the header offsets, verifies its SHA-256
(unless ``verify=False``), and never touches the rest of the file.
Analysis code streaming two columns out of fifteen pays for two.

All writes go through :func:`repro.records.atomic.atomic_write_bytes`,
so bundles inherit the tmp+fsync+replace crash contract and the IO
fault-injection/retry layers.  Malformed input raises
:class:`~repro.errors.RecordError`, never a bare ``KeyError`` or numpy
internal error.
"""

from __future__ import annotations

import io as _io
import json
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from ..errors import RecordError
from .atomic import atomic_write_bytes, sha256_bytes

__all__ = [
    "COLUMNAR_FORMAT",
    "COLUMNAR_MAGIC",
    "COLUMNAR_SUFFIX",
    "columns_to_bytes",
    "read_column_names",
    "read_columns",
    "read_header",
    "write_columns",
]

#: Format tag embedded in every bundle header.
COLUMNAR_FORMAT = "repro-columnar/1"
#: Leading magic bytes of every bundle.
COLUMNAR_MAGIC = b"REPROCOL"
#: Conventional file suffix for columnar bundles.
COLUMNAR_SUFFIX = ".npc"

_HEADER_LEN_BYTES = 8
#: Refuse headers larger than this -- a corrupt length field would
#: otherwise make a reader try to allocate petabytes.
_MAX_HEADER_BYTES = 1 << 24


def _column_payload(name: str, values: np.ndarray) -> bytes:
    """Serialize one column as a plain ``.npy`` byte string."""
    array = np.asarray(values)
    if array.ndim != 1:
        raise RecordError(
            f"column {name!r} must be 1-D, got shape {array.shape}"
        )
    if array.dtype.hasobject:
        raise RecordError(f"column {name!r} has object dtype {array.dtype}")
    buffer = _io.BytesIO()
    np.lib.format.write_array(buffer, array, allow_pickle=False)
    return buffer.getvalue()


def columns_to_bytes(
    columns: Mapping[str, np.ndarray],
    meta: Mapping[str, object] | None = None,
) -> bytes:
    """Serialize ``columns`` into one columnar bundle byte string.

    The result is byte-stable: the same columns and ``meta`` always
    produce the same bytes (header keys sorted, columns laid out in the
    mapping's iteration order, ``.npy`` v1 payloads).  All columns must
    share one length, which becomes the bundle's ``rows``.
    """
    if not columns:
        raise RecordError("columnar bundle needs at least one column")
    payloads: list[bytes] = []
    entries: list[dict[str, object]] = []
    offset = 0
    rows: int | None = None
    for name, values in columns.items():
        payload = _column_payload(name, values)
        array = np.asarray(values)
        if rows is None:
            rows = int(array.shape[0])
        elif int(array.shape[0]) != rows:
            raise RecordError(
                f"ragged columnar bundle: column {name!r} has "
                f"{array.shape[0]} rows, expected {rows}"
            )
        entries.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "offset": offset,
                "nbytes": len(payload),
                "sha256": sha256_bytes(payload),
            }
        )
        payloads.append(payload)
        offset += len(payload)
    header = {
        "columns": entries,
        "format": COLUMNAR_FORMAT,
        "meta": dict(meta or {}),
        "rows": rows,
    }
    header_bytes = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return b"".join(
        [
            COLUMNAR_MAGIC,
            len(header_bytes).to_bytes(_HEADER_LEN_BYTES, "little"),
            header_bytes,
            *payloads,
        ]
    )


def write_columns(
    path: str | Path,
    columns: Mapping[str, np.ndarray],
    meta: Mapping[str, object] | None = None,
) -> None:
    """Atomically write ``columns`` to ``path`` as a columnar bundle."""
    atomic_write_bytes(path, columns_to_bytes(columns, meta=meta))


def _parse_header(handle, path: Path) -> tuple[dict, int]:
    """Parse the bundle header; returns ``(header, payload_base)``."""
    magic = handle.read(len(COLUMNAR_MAGIC))
    if magic != COLUMNAR_MAGIC:
        raise RecordError(f"{path}: not a columnar bundle")
    raw_len = handle.read(_HEADER_LEN_BYTES)
    if len(raw_len) != _HEADER_LEN_BYTES:
        raise RecordError(f"{path}: truncated columnar header length")
    header_len = int.from_bytes(raw_len, "little")
    if header_len > _MAX_HEADER_BYTES:
        raise RecordError(
            f"{path}: implausible columnar header length {header_len}"
        )
    header_bytes = handle.read(header_len)
    if len(header_bytes) != header_len:
        raise RecordError(f"{path}: truncated columnar header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RecordError(f"{path}: malformed columnar header: {exc}") from None
    if not isinstance(header, dict):
        raise RecordError(f"{path}: columnar header is not an object")
    if header.get("format") != COLUMNAR_FORMAT:
        raise RecordError(
            f"{path}: unsupported columnar format {header.get('format')!r}"
        )
    columns = header.get("columns")
    if not isinstance(columns, list) or not columns:
        raise RecordError(f"{path}: columnar header lists no columns")
    for entry in columns:
        if not isinstance(entry, dict) or not {
            "name",
            "dtype",
            "offset",
            "nbytes",
            "sha256",
        } <= set(entry):
            raise RecordError(f"{path}: malformed column entry {entry!r}")
    base = len(COLUMNAR_MAGIC) + _HEADER_LEN_BYTES + header_len
    return header, base


def read_header(path: str | Path) -> dict:
    """Parse and validate the JSON header of a columnar bundle."""
    path = Path(path)
    with open(path, "rb") as handle:
        header, _ = _parse_header(handle, path)
    return header


def read_column_names(path: str | Path) -> list[str]:
    """Column names stored in a bundle, in layout order."""
    return [entry["name"] for entry in read_header(path)["columns"]]


def _read_payload(
    handle, path: Path, base: int, entry: Mapping[str, object], verify: bool
) -> np.ndarray:
    handle.seek(base + int(entry["offset"]))
    payload = handle.read(int(entry["nbytes"]))
    if len(payload) != int(entry["nbytes"]):
        raise RecordError(
            f"{path}: truncated column {entry['name']!r} "
            f"({len(payload)} of {entry['nbytes']} bytes)"
        )
    if verify and sha256_bytes(payload) != entry["sha256"]:
        raise RecordError(f"{path}: checksum mismatch in column {entry['name']!r}")
    try:
        array = np.lib.format.read_array(
            _io.BytesIO(payload), allow_pickle=False
        )
    except ValueError as exc:
        raise RecordError(
            f"{path}: malformed column {entry['name']!r}: {exc}"
        ) from None
    if array.dtype.str != entry["dtype"]:
        raise RecordError(
            f"{path}: column {entry['name']!r} dtype {array.dtype.str} "
            f"!= declared {entry['dtype']}"
        )
    return array


def read_columns(
    path: str | Path,
    names: Iterable[str] | None = None,
    verify: bool = True,
) -> dict[str, np.ndarray]:
    """Read columns from a bundle, optionally a named subset.

    Only the requested payloads are read from disk (header offsets make
    each column independently seekable).  With ``verify`` (the default)
    every payload's SHA-256 is checked against the header before it is
    parsed; pass ``verify=False`` only on data another layer has already
    vouched for.  Returns ``{name: array}`` in layout order (or the
    requested order when ``names`` is given).
    """
    path = Path(path)
    out: dict[str, np.ndarray] = {}
    with open(path, "rb") as handle:
        header, base = _parse_header(handle, path)
        by_name = {entry["name"]: entry for entry in header["columns"]}
        if names is None:
            wanted = [entry["name"] for entry in header["columns"]]
        else:
            wanted = list(names)
            missing = [name for name in wanted if name not in by_name]
            if missing:
                raise RecordError(f"{path}: no such columns {missing}")
        for name in wanted:
            out[name] = _read_payload(handle, path, base, by_name[name], verify)
    rows = int(header["rows"])
    for name, array in out.items():
        if array.shape[0] != rows:
            raise RecordError(
                f"{path}: column {name!r} has {array.shape[0]} rows, "
                f"header declares {rows}"
            )
    return out
