"""Dataset export/import (CSV for the impression table, JSONL for records).

All writers are crash-safe: the payload is staged to ``<name>.tmp``,
fsynced, and renamed over the destination (see
:mod:`repro.records.atomic`), so an interrupted export never leaves a
truncated CSV/JSONL behind.  All readers raise
:class:`~repro.errors.RecordError` -- never raw ``csv``/``json``
exceptions -- on malformed input.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

import numpy as np

from ..errors import RecordError
from .atomic import atomic_writer
from .impressions import ImpressionTable

__all__ = [
    "write_impressions_csv",
    "read_impressions_csv",
    "write_records_jsonl",
    "read_records_jsonl",
]


def write_impressions_csv(table: ImpressionTable, path: str | Path) -> None:
    """Write the impression table as CSV with a header row (atomically)."""
    names = table.field_names()
    with atomic_writer(path, newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        columns = [getattr(table, name) for name in names]
        for row in zip(*columns):
            writer.writerow(
                [int(v) if isinstance(v, (np.bool_, bool)) else v for v in row]
            )


def read_impressions_csv(path: str | Path) -> ImpressionTable:
    """Read an impression table written by :func:`write_impressions_csv`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise RecordError(f"{path}: empty impressions file") from None
        if tuple(header) != ImpressionTable.field_names():
            raise RecordError(f"{path}: unexpected header {header}")
        rows = list(reader)
    width = len(header)
    for number, row in enumerate(rows, start=2):
        if len(row) != width:
            raise RecordError(
                f"{path}: line {number} has {len(row)} fields, expected {width}"
            )
    columns = list(zip(*rows)) if rows else [[] for _ in header]
    kwargs = {}
    for name, values in zip(header, columns):
        if name in ("mainline", "fraud_labeled"):
            bad = [v for v in values if v not in ("0", "1")]
            if bad:
                raise RecordError(
                    f"{path}: malformed boolean in column {name}: {bad[0]!r}"
                )
            kwargs[name] = np.asarray([v == "1" for v in values], dtype=bool)
        elif name in ("day", "weight", "clicks", "spend", "price"):
            kwargs[name] = _column(path, name, values, float)
        else:
            kwargs[name] = _column(path, name, values, np.int64)
    return ImpressionTable(**kwargs)


def _column(path: str | Path, name: str, values, dtype) -> np.ndarray:
    try:
        return np.asarray(values, dtype=dtype)
    except (ValueError, OverflowError) as exc:
        raise RecordError(f"{path}: malformed column {name}: {exc}") from None


def write_records_jsonl(records: Iterable, path: str | Path) -> int:
    """Write records (objects with ``to_dict``) as JSON lines (atomically).

    Returns the number of records written.
    """
    count = 0
    with atomic_writer(path) as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict()) + "\n")
            count += 1
    return count


def read_records_jsonl(path: str | Path, factory) -> list:
    """Read JSONL records back through ``factory(**fields)``."""
    out = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise RecordError(
                    f"{path}: line {number} is not valid JSON: {exc}"
                ) from None
            if not isinstance(payload, dict):
                raise RecordError(
                    f"{path}: line {number} is not a JSON object"
                )
            try:
                out.append(factory(**payload))
            except TypeError as exc:
                raise RecordError(
                    f"{path}: line {number} does not match "
                    f"{getattr(factory, '__name__', factory)}: {exc}"
                ) from None
    return out
