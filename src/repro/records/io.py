"""Dataset export/import (CSV for the impression table, JSONL for records)."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

import numpy as np

from ..errors import RecordError
from .impressions import ImpressionTable

__all__ = [
    "write_impressions_csv",
    "read_impressions_csv",
    "write_records_jsonl",
    "read_records_jsonl",
]


def write_impressions_csv(table: ImpressionTable, path: str | Path) -> None:
    """Write the impression table as CSV with a header row."""
    names = table.field_names()
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        columns = [getattr(table, name) for name in names]
        for row in zip(*columns):
            writer.writerow(
                [int(v) if isinstance(v, (np.bool_, bool)) else v for v in row]
            )


def read_impressions_csv(path: str | Path) -> ImpressionTable:
    """Read an impression table written by :func:`write_impressions_csv`."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise RecordError(f"{path}: empty impressions file") from None
        if tuple(header) != ImpressionTable.field_names():
            raise RecordError(f"{path}: unexpected header {header}")
        rows = list(reader)
    columns = list(zip(*rows)) if rows else [[] for _ in header]
    kwargs = {}
    for name, values in zip(header, columns):
        if name in ("mainline", "fraud_labeled"):
            kwargs[name] = np.asarray([v == "1" for v in values], dtype=bool)
        elif name in ("day", "weight", "clicks", "spend", "price"):
            kwargs[name] = np.asarray(values, dtype=float)
        else:
            kwargs[name] = np.asarray(values, dtype=np.int64)
    return ImpressionTable(**kwargs)


def write_records_jsonl(records: Iterable, path: str | Path) -> int:
    """Write records (objects with ``to_dict``) as JSON lines.

    Returns the number of records written.
    """
    count = 0
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict()) + "\n")
            count += 1
    return count


def read_records_jsonl(path: str | Path, factory) -> list:
    """Read JSONL records back through ``factory(**fields)``."""
    out = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(factory(**json.loads(line)))
    return out
