"""Integer encodings for categorical record fields.

The impression table stores verticals, countries and match types as
small integers; these tables define the stable encodings.
"""

from __future__ import annotations

from functools import lru_cache

from ..entities.enums import MatchType
from ..taxonomy.geography import COUNTRIES
from ..taxonomy.verticals import VERTICALS

__all__ = [
    "vertical_code",
    "vertical_name",
    "country_code",
    "country_name",
    "match_code",
    "match_type_from_code",
    "MATCH_CODES",
]

MATCH_CODES: dict[MatchType, int] = {
    MatchType.EXACT: 0,
    MatchType.PHRASE: 1,
    MatchType.BROAD: 2,
}
_MATCH_FROM_CODE = {code: mt for mt, code in MATCH_CODES.items()}


@lru_cache(maxsize=1)
def _vertical_index() -> dict[str, int]:
    return {v.name: i for i, v in enumerate(VERTICALS)}


@lru_cache(maxsize=1)
def _country_index() -> dict[str, int]:
    return {c.code: i for i, c in enumerate(COUNTRIES)}


def vertical_code(name: str) -> int:
    """Integer code for a vertical name."""
    return _vertical_index()[name]


def vertical_name(code: int) -> str:
    """Vertical name for an integer code."""
    return VERTICALS[code].name


def country_code(code: str) -> int:
    """Integer code for a country ISO code."""
    return _country_index()[code]


def country_name(code: int) -> str:
    """Country ISO code for an integer code."""
    return COUNTRIES[code].code


def match_code(match_type: MatchType) -> int:
    """Integer code for a match type."""
    return MATCH_CODES[match_type]


def match_type_from_code(code: int) -> MatchType:
    """Match type for an integer code."""
    return _MATCH_FROM_CODE[code]
