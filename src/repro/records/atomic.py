"""Atomic, durable file writes.

Every on-disk artifact in this package (CSV/JSONL datasets, checkpoint
manifests, impression chunks) is written with the same crash-safe
protocol: write the full payload to ``<name>.tmp`` in the destination
directory, flush and ``fsync`` the file, then ``os.replace`` it over the
destination and ``fsync`` the directory.  A crash at any point leaves
either the old file or the new file -- never a truncated hybrid.  The
checkpoint runner (:mod:`repro.runner`) builds its recovery guarantees
on exactly this property.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

__all__ = [
    "atomic_writer",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_dir",
    "sha256_bytes",
    "sha256_file",
]


def fsync_dir(path: str | Path) -> None:
    """Best-effort fsync of a directory (persists renames within it)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_writer(
    path: str | Path, mode: str = "w", newline: str | None = None
) -> Iterator[IO]:
    """Context manager yielding a handle whose contents land atomically.

    On clean exit the temporary file is fsynced and renamed over
    ``path``; on any exception it is removed and ``path`` is untouched.
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_writer supports 'w'/'wb', not {mode!r}")
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    handle = open(tmp, mode, newline=newline)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        tmp.unlink(missing_ok=True)
        raise
    handle.close()
    os.replace(tmp, target)
    fsync_dir(target.parent)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically write ``data`` to ``path``."""
    with atomic_writer(path, mode="wb") as handle:
        handle.write(data)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Atomically write ``text`` to ``path``."""
    with atomic_writer(path, mode="w") as handle:
        handle.write(text)


def sha256_bytes(data: bytes) -> str:
    """Hex SHA-256 of a byte string."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: str | Path, chunk_size: int = 1 << 20) -> str:
    """Hex SHA-256 of a file's contents (streamed)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk_size)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()
