"""Atomic, durable file writes -- with deterministic IO fault injection
and bounded retry.

Every on-disk artifact in this package (CSV/JSONL datasets, checkpoint
manifests, impression chunks) is written with the same crash-safe
protocol: write the full payload to ``<name>.tmp`` in the destination
directory, flush and ``fsync`` the file, then ``os.replace`` it over the
destination and ``fsync`` the directory.  A crash at any point leaves
either the old file or the new file -- never a truncated hybrid.  The
checkpoint runner (:mod:`repro.runner`) builds its recovery guarantees
on exactly this property.

Two robustness layers sit on top of that protocol:

* **Fault injection** -- an :class:`IoShim` installed with
  :func:`set_io_shim` intercepts every payload write issued through
  :func:`atomic_write_bytes` / :func:`atomic_write_text` and executes
  planned :class:`WriteFault` s: raise ``ENOSPC``/``EIO`` before
  anything lands (``io-error``), let only a prefix of the payload land
  while reporting success (``io-torn``), or flip a byte after a
  successful write (``io-bitrot``).  Faults fire at the Nth write whose
  path matches a glob pattern, so tests declare exactly which artifact
  the disk lies about.  The checkpoint runner threads its
  :class:`~repro.runner.faults.FaultPlan`'s IO faults through here.

* **Retry with deterministic backoff** -- transient ``OSError`` s are
  retried up to :class:`RetryPolicy.retries` times with a fixed
  (wall-clock-free to *decide*, clock only to *wait*) delay schedule.
  Every retry bumps the ``io.retries`` counter; a write that exhausts
  its budget bumps ``io.giveups`` and re-raises for the caller to treat
  as fatal or degrade (the runner degrades auxiliary sinks, keeps
  chunk/manifest writes fatal).
"""

from __future__ import annotations

import errno as _errno
import fnmatch
import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Callable, Iterable, Iterator

from .. import obs

__all__ = [
    "IO_ERROR",
    "IO_TORN",
    "IO_BITROT",
    "IoShim",
    "RetryPolicy",
    "WriteFault",
    "atomic_writer",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_dir",
    "io_shim",
    "set_io_shim",
    "sha256_bytes",
    "sha256_file",
]

# IO telemetry (repro.obs).  Counter bumps are plain attribute adds;
# nothing here touches the named RNG streams.
_RETRIES = obs.counter("io.retries")
_GIVEUPS = obs.counter("io.giveups")
_FSYNC_FAILURES = obs.counter("io.fsync_failures")

_log = obs.get_logger("records.atomic")

# ----------------------------------------------------------------------
# Fault injection: the disk lies, deterministically
# ----------------------------------------------------------------------

#: The write call raises ``OSError(err)`` before anything lands
#: (retryable: the shim counts attempts, so a once-only fault clears).
IO_ERROR = "io-error"
#: The write reports success but only ``len(data) - detail`` bytes
#: landed -- a torn write on a filesystem that lied about durability.
IO_TORN = "io-torn"
#: The write succeeds, then the byte at offset ``detail`` is flipped --
#: silent media corruption only a checksum scan can see.
IO_BITROT = "io-bitrot"

_IO_ACTIONS = (IO_ERROR, IO_TORN, IO_BITROT)


@dataclass
class WriteFault:
    """One planned IO fault: fire ``action`` at the ``nth`` write whose
    target path matches ``pattern`` (fnmatch against the file name and
    the full posix path), for ``times`` consecutive matching writes."""

    pattern: str
    action: str = IO_ERROR
    #: ``errno`` raised for :data:`IO_ERROR` faults.
    err: int = _errno.ENOSPC
    #: 1-based index of the first matching write affected.
    nth: int = 1
    #: Number of consecutive matching writes affected (use a large
    #: value to simulate a persistently failing device).
    times: int = 1
    #: Bytes torn off the tail (:data:`IO_TORN`) or the byte offset
    #: flipped (:data:`IO_BITROT`).
    detail: int = 64
    #: Matching writes seen so far (mutated by the shim).
    seen: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.action not in _IO_ACTIONS:
            raise ValueError(f"unknown IO fault action {self.action!r}")
        if self.nth < 1 or self.times < 1:
            raise ValueError("nth and times must be >= 1")

    def matches(self, path: Path) -> bool:
        return fnmatch.fnmatch(path.name, self.pattern) or fnmatch.fnmatch(
            path.as_posix(), f"*{self.pattern}"
        )


class IoShim:
    """Deterministic fault layer the atomic-write path consults.

    Stateless apart from per-fault match counters, so one shim instance
    describes one run's worth of planned damage.  ``fired`` records
    every (fault, path) hit for test assertions.
    """

    def __init__(self, faults: Iterable[WriteFault] = ()) -> None:
        self.faults: list[WriteFault] = list(faults)
        self.fired: list[tuple[WriteFault, str]] = []

    def take(self, path: Path) -> WriteFault | None:
        """The fault (if any) to execute for this write attempt."""
        for fault in self.faults:
            if not fault.matches(path):
                continue
            fault.seen += 1
            if fault.nth <= fault.seen < fault.nth + fault.times:
                self.fired.append((fault, str(path)))
                obs.event(
                    "io.fault",
                    path=path.name,
                    action=fault.action,
                    attempt=fault.seen,
                )
                return fault
        return None


_IO_SHIM: IoShim | None = None


def set_io_shim(shim: IoShim | None) -> IoShim | None:
    """Install (or with ``None`` remove) the process-global IO shim.

    Returns the previously installed shim so callers can restore it --
    the checkpoint runner installs its fault plan's shim for the
    duration of a run.  Production runs install nothing and pay one
    global read per write.
    """
    global _IO_SHIM
    previous = _IO_SHIM
    _IO_SHIM = shim
    return previous


def io_shim() -> IoShim | None:
    """The installed IO shim, or ``None``."""
    return _IO_SHIM


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry for transient ``OSError`` s on payload writes.

    The schedule is a fixed tuple of delays -- no wall-clock reads, no
    randomness, no jitter -- so two same-seed runs that hit the same
    injected faults retry identically.  ``sleep`` is injectable (tests
    pass a recorder) and only *waits*; it never influences what happens
    next.
    """

    retries: int = 3
    delays: tuple[float, ...] = (0.01, 0.05, 0.25)
    sleep: Callable[[float], None] = time.sleep

    def delay_for(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based)."""
        if not self.delays:
            return 0.0
        return self.delays[min(attempt, len(self.delays) - 1)]


#: Policy applied when callers pass none: three retries, sub-second
#: total backoff -- enough to ride out transient EIO/EAGAIN blips
#: without stalling a crashed-disk run for minutes.
DEFAULT_RETRY = RetryPolicy()

#: Sentinel distinguishing "caller wants no retries" (``None``) from
#: "caller wants the default policy" (argument omitted).
_UNSET = object()


# ----------------------------------------------------------------------
# fsync helpers
# ----------------------------------------------------------------------

_fsync_dir_warned = False


def _note_fsync_failure(path: str | Path, exc: OSError) -> None:
    """Count a directory-fsync failure and warn exactly once.

    Some filesystems (and most CI sandboxes) reject directory fsync;
    the rename is still atomic, only its *durability* across power loss
    is weaker.  That is worth one warning and a counter -- not a
    per-write log storm, and never a crashed simulation.
    """
    global _fsync_dir_warned
    _FSYNC_FAILURES.inc()
    if not _fsync_dir_warned:
        _fsync_dir_warned = True
        _log.warning(
            "directory fsync failed for %s (%s); renames remain atomic "
            "but may not survive power loss on this filesystem",
            path,
            exc,
        )


def fsync_dir(path: str | Path) -> None:
    """Best-effort fsync of a directory (persists renames within it).

    Failures are surfaced through the ``io.fsync_failures`` counter and
    a one-time warning rather than silently swallowed.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError as exc:
        _note_fsync_failure(path, exc)
        return
    try:
        os.fsync(fd)
    except OSError as exc:
        _note_fsync_failure(path, exc)
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Atomic writers
# ----------------------------------------------------------------------


@contextmanager
def atomic_writer(
    path: str | Path, mode: str = "w", newline: str | None = None
) -> Iterator[IO]:
    """Context manager yielding a handle whose contents land atomically.

    On clean exit the temporary file is fsynced and renamed over
    ``path``; on any exception -- including one raised by the rename
    itself -- the temporary file is removed and ``path`` is untouched.

    This streaming form cannot retry (the caller's writes are not
    replayable); whole-payload writers should use
    :func:`atomic_write_bytes` / :func:`atomic_write_text`, which add
    fault injection and bounded retry.
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_writer supports 'w'/'wb', not {mode!r}")
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    handle = open(tmp, mode, newline=newline)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        tmp.unlink(missing_ok=True)
        raise
    handle.close()
    try:
        os.replace(tmp, target)
    except BaseException:
        # os.replace can itself fail (EXDEV, ENOENT on a vanished
        # directory, EIO); the contract is "old file or new file",
        # never "plus a stray .tmp".
        tmp.unlink(missing_ok=True)
        raise
    fsync_dir(target.parent)


def _flip_byte(path: Path, offset: int) -> None:
    """Invert one byte of ``path`` in place (injected bitrot)."""
    data = bytearray(path.read_bytes())
    if not data:
        return
    index = offset % len(data)
    data[index] ^= 0xFF
    path.write_bytes(bytes(data))


def _write_once(target: Path, data: bytes) -> None:
    """One attempt of the tmp + fsync + replace protocol, shim applied."""
    shim = _IO_SHIM
    fault = shim.take(target) if shim is not None else None
    if fault is not None and fault.action == IO_ERROR:
        raise OSError(fault.err, os.strerror(fault.err), str(target))
    payload = data
    if fault is not None and fault.action == IO_TORN:
        payload = data[: max(0, len(data) - fault.detail)]
    tmp = target.with_name(target.name + ".tmp")
    handle = open(tmp, "wb")
    try:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        tmp.unlink(missing_ok=True)
        raise
    handle.close()
    try:
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    fsync_dir(target.parent)
    if fault is not None and fault.action == IO_BITROT:
        _flip_byte(target, fault.detail)


def atomic_write_bytes(
    path: str | Path, data: bytes, retry: RetryPolicy | None = _UNSET
) -> None:
    """Atomically write ``data`` to ``path``, retrying transient errors.

    Raises the final ``OSError`` once the retry budget is exhausted
    (``retry=None`` disables retries entirely).  Every retry bumps the
    ``io.retries`` counter; an exhausted budget bumps ``io.giveups``.
    """
    if retry is _UNSET:
        retry = DEFAULT_RETRY
    target = Path(path)
    attempt = 0
    while True:
        try:
            _write_once(target, data)
            return
        except OSError as exc:
            if retry is None or attempt >= retry.retries:
                _GIVEUPS.inc()
                obs.event(
                    "io.giveup",
                    path=target.name,
                    attempts=attempt + 1,
                    error=str(exc),
                )
                raise
            _RETRIES.inc()
            retry.sleep(retry.delay_for(attempt))
            attempt += 1


def atomic_write_text(
    path: str | Path, text: str, retry: RetryPolicy | None = _UNSET
) -> None:
    """Atomically write ``text`` to ``path`` (UTF-8), with retries."""
    atomic_write_bytes(path, text.encode("utf-8"), retry=retry)


def sha256_bytes(data: bytes) -> str:
    """Hex SHA-256 of a byte string."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: str | Path, chunk_size: int = 1 << 20) -> str:
    """Hex SHA-256 of a file's contents (streamed)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(chunk_size)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()
