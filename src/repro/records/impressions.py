"""Columnar impression/click records.

Each row is one (auction, shown ad) pair.  A row carries a volume
``weight``: the sampled query stands in for ``weight`` real queries, so
``weight`` is the row's impression count, and ``clicks``/``spend`` are
the realized totals for those impressions.

This is the reproduction of the paper's "ad impression and click
records" dataset: ad information, matching information (match type, the
price charged), and query information (vertical, market), plus the
competition context (how many ads were shown, how many belonged to
eventually-labeled-fraud accounts) needed for Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import RecordError

__all__ = ["ImpressionBuilder", "ImpressionTable"]

_FIELDS: tuple[tuple[str, str], ...] = (
    ("day", "f8"),
    ("advertiser_id", "i8"),
    ("ad_id", "i8"),
    ("vertical", "i2"),
    ("country", "i2"),
    ("match_type", "i1"),
    ("position", "i2"),
    ("mainline", "?"),
    ("weight", "f8"),
    ("clicks", "f8"),
    ("spend", "f8"),
    ("price", "f8"),
    ("n_shown", "i2"),
    ("n_fraud_shown", "i2"),
    ("fraud_labeled", "?"),
)


class ImpressionBuilder:
    """Accumulates impression rows cheaply during simulation.

    Two ingestion paths share one builder: :meth:`add` appends a single
    row (scalar path), :meth:`add_batch` appends whole numpy chunks (the
    vectorized auction loop adds one chunk per simulated day).  Chunks
    are only concatenated once, at :meth:`build`; interleaving the two
    paths preserves row order.
    """

    def __init__(self) -> None:
        self._columns: dict[str, list] = {name: [] for name, _ in _FIELDS}
        self._chunks: dict[str, list[np.ndarray]] = {
            name: [] for name, _ in _FIELDS
        }
        self._chunk_rows = 0

    def _flush_scalar(self) -> None:
        """Convert pending scalar rows into a chunk (keeps row order)."""
        pending = len(self._columns["day"])
        if pending == 0:
            return
        for name, dtype in _FIELDS:
            column = self._columns[name]
            self._chunks[name].append(np.asarray(column, dtype=dtype))
            column.clear()
        self._chunk_rows += pending

    def add(
        self,
        day: float,
        advertiser_id: int,
        ad_id: int,
        vertical: int,
        country: int,
        match_type: int,
        position: int,
        mainline: bool,
        weight: float,
        clicks: float,
        spend: float,
        price: float,
        n_shown: int,
        n_fraud_shown: int,
        fraud_labeled: bool,
    ) -> None:
        columns = self._columns
        columns["day"].append(day)
        columns["advertiser_id"].append(advertiser_id)
        columns["ad_id"].append(ad_id)
        columns["vertical"].append(vertical)
        columns["country"].append(country)
        columns["match_type"].append(match_type)
        columns["position"].append(position)
        columns["mainline"].append(mainline)
        columns["weight"].append(weight)
        columns["clicks"].append(clicks)
        columns["spend"].append(spend)
        columns["price"].append(price)
        columns["n_shown"].append(n_shown)
        columns["n_fraud_shown"].append(n_fraud_shown)
        columns["fraud_labeled"].append(fraud_labeled)

    def add_batch(self, **arrays: np.ndarray) -> None:
        """Append one chunk of rows, given as parallel arrays per field.

        Every impression field must be present and all arrays must share
        one length.  Arrays are cast to the storage dtype on ingestion
        so :meth:`build` is a pure concatenation.
        """
        expected = {name for name, _ in _FIELDS}
        if set(arrays) != expected:
            missing = expected - set(arrays)
            extra = set(arrays) - expected
            raise RecordError(
                f"impression batch fields: missing {sorted(missing)}, "
                f"unexpected {sorted(extra)}"
            )
        lengths = {name: len(arrays[name]) for name, _ in _FIELDS}
        if len(set(lengths.values())) != 1:
            raise RecordError(f"ragged impression batch: {lengths}")
        if lengths["day"] == 0:
            return
        self._flush_scalar()
        for name, dtype in _FIELDS:
            self._chunks[name].append(np.asarray(arrays[name], dtype=dtype))
        self._chunk_rows += lengths["day"]

    def __len__(self) -> int:
        return self._chunk_rows + len(self._columns["day"])

    def drain(self) -> dict[str, np.ndarray]:
        """Remove and return every pending row as per-field arrays.

        The checkpoint runner calls this at each checkpoint boundary to
        persist the rows accumulated since the previous one; feeding the
        returned mapping back through :meth:`add_batch` (in drain order)
        reconstructs the original row stream exactly.
        """
        self._flush_scalar()
        arrays = {
            name: (
                np.concatenate(self._chunks[name])
                if self._chunks[name]
                else np.zeros(0, dtype=dtype)
            )
            for name, dtype in _FIELDS
        }
        for chunks in self._chunks.values():
            chunks.clear()
        self._chunk_rows = 0
        return arrays

    def build(self) -> "ImpressionTable":
        """Freeze the accumulated rows into numpy arrays."""
        self._flush_scalar()
        arrays = {
            name: (
                np.concatenate(self._chunks[name])
                if self._chunks[name]
                else np.zeros(0, dtype=dtype)
            )
            for name, dtype in _FIELDS
        }
        return ImpressionTable(**arrays)


@dataclass(frozen=True)
class ImpressionTable:
    """Finalized impression records as parallel numpy arrays."""

    day: np.ndarray
    advertiser_id: np.ndarray
    ad_id: np.ndarray
    vertical: np.ndarray
    country: np.ndarray
    match_type: np.ndarray
    position: np.ndarray
    mainline: np.ndarray
    weight: np.ndarray
    clicks: np.ndarray
    spend: np.ndarray
    price: np.ndarray
    n_shown: np.ndarray
    n_fraud_shown: np.ndarray
    fraud_labeled: np.ndarray

    def __post_init__(self) -> None:
        lengths = {name: len(getattr(self, name)) for name, _ in _FIELDS}
        if len(set(lengths.values())) != 1:
            raise RecordError(f"ragged impression table: {lengths}")

    def __len__(self) -> int:
        return len(self.day)

    @staticmethod
    def field_names() -> tuple[str, ...]:
        """Column names, in storage order."""
        return tuple(name for name, _ in _FIELDS)

    @staticmethod
    def field_dtypes() -> dict[str, str]:
        """Storage dtype per column, in storage order."""
        return {name: dtype for name, dtype in _FIELDS}

    def to_columns(self) -> dict[str, np.ndarray]:
        """The table as ``{name: array}`` in storage order.

        The mapping feeds directly into
        :func:`repro.records.columnar.write_columns` (and back through
        :meth:`from_columns`), so a table round-trips through a columnar
        bundle without row parsing.
        """
        return {name: getattr(self, name) for name, _ in _FIELDS}

    @classmethod
    def from_columns(cls, columns: dict[str, np.ndarray]) -> "ImpressionTable":
        """Build a table from per-field arrays (casts to storage dtypes)."""
        expected = {name for name, _ in _FIELDS}
        if set(columns) != expected:
            missing = expected - set(columns)
            extra = set(columns) - expected
            raise RecordError(
                f"impression columns: missing {sorted(missing)}, "
                f"unexpected {sorted(extra)}"
            )
        return cls(
            **{
                name: np.asarray(columns[name], dtype=dtype)
                for name, dtype in _FIELDS
            }
        )

    def select(self, mask: np.ndarray) -> "ImpressionTable":
        """Row subset by boolean mask or index array."""
        return ImpressionTable(
            **{name: getattr(self, name)[mask] for name, _ in _FIELDS}
        )

    def in_window(self, start: float, end: float) -> "ImpressionTable":
        """Rows with ``start <= day < end``."""
        return self.select((self.day >= start) & (self.day < end))

    @property
    def has_fraud_competition(self) -> np.ndarray:
        """Per-row: a *different* fraud-labeled advertiser's ad was shown.

        For rows belonging to fraud-labeled advertisers, one of the
        ``n_fraud_shown`` ads is their own.
        """
        others = self.n_fraud_shown - self.fraud_labeled.astype(np.int16)
        return others > 0

    def total_clicks(self) -> float:
        """Sum of clicks across all rows."""
        return float(self.clicks.sum())

    def total_spend(self) -> float:
        """Sum of spend across all rows."""
        return float(self.spend.sum())
