"""Command line dataset export: write the three datasets to a directory.

    python -m repro.records OUTPUT_DIR [--small] [--seed N]

Produces ``customers.jsonl``, ``detections.jsonl`` and
``impressions.csv`` -- the synthetic equivalents of the paper's three
data sources.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .. import obs
from ..config import default_config, small_config
from ..errors import ReproError
from ..simulator.cache import cached_simulation
from .io import write_impressions_csv, write_records_jsonl

log = obs.get_logger("records.cli")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(prog="repro-export")
    parser.add_argument("output_dir", type=Path)
    parser.add_argument("--small", action="store_true")
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)
    obs.setup_logging()
    if args.small:
        config = small_config() if args.seed is None else small_config(seed=args.seed)
    else:
        config = (
            default_config() if args.seed is None else default_config(seed=args.seed)
        )
    args.output_dir.mkdir(parents=True, exist_ok=True)
    try:
        result = cached_simulation(config)

        customers = args.output_dir / "customers.jsonl"
        detections = args.output_dir / "detections.jsonl"
        impressions = args.output_dir / "impressions.csv"
        n_customers = write_records_jsonl(result.customer_records(), customers)
        n_detections = write_records_jsonl(result.detections, detections)
        write_impressions_csv(result.impressions, impressions)
    except ReproError as exc:
        log.error("%s", exc)
        return 2
    print(f"{n_customers} customer records -> {customers}")
    print(f"{n_detections} detection records -> {detections}")
    print(f"{len(result.impressions)} impression rows -> {impressions}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
