"""Record schemas, columnar stores and dataset I/O."""

from .codes import (
    MATCH_CODES,
    country_code,
    country_name,
    match_code,
    match_type_from_code,
    vertical_code,
    vertical_name,
)
from .columnar import (
    COLUMNAR_FORMAT,
    COLUMNAR_SUFFIX,
    columns_to_bytes,
    read_column_names,
    read_columns,
    read_header,
    write_columns,
)
from .impressions import ImpressionBuilder, ImpressionTable
from .io import (
    read_impressions_csv,
    read_records_jsonl,
    write_impressions_csv,
    write_records_jsonl,
)
from .schemas import AdRecord, CustomerRecord, DetectionRecord, KeywordRecord

__all__ = [
    "MATCH_CODES",
    "vertical_code",
    "vertical_name",
    "country_code",
    "country_name",
    "match_code",
    "match_type_from_code",
    "COLUMNAR_FORMAT",
    "COLUMNAR_SUFFIX",
    "columns_to_bytes",
    "read_column_names",
    "read_columns",
    "read_header",
    "write_columns",
    "ImpressionBuilder",
    "ImpressionTable",
    "CustomerRecord",
    "AdRecord",
    "KeywordRecord",
    "DetectionRecord",
    "write_impressions_csv",
    "read_impressions_csv",
    "write_records_jsonl",
    "read_records_jsonl",
]
