"""Shared fixtures for the checkpoint-runner tests.

One small-but-nontrivial configuration is simulated once per session
(uninterrupted, in memory); every resume test compares against it
byte-for-byte.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import run_simulation, small_config
from repro.validation import render_report, run_validation


def assert_results_identical(expected, actual):
    """Byte-level equality of two simulation results.

    Compares every impression column (values *and* dtype), the
    detection records, the policy timeline, and the account summaries'
    identity-bearing fields.
    """
    assert len(actual.impressions) == len(expected.impressions)
    for name in expected.impressions.field_names():
        want = getattr(expected.impressions, name)
        got = getattr(actual.impressions, name)
        assert got.dtype == want.dtype, name
        assert np.array_equal(got, want), f"column {name} differs"
    assert actual.detections == expected.detections
    assert actual.policy_changes == expected.policy_changes
    assert len(actual.accounts) == len(expected.accounts)
    for mine, theirs in zip(actual.accounts, expected.accounts):
        assert mine.advertiser_id == theirs.advertiser_id
        assert mine.labeled_fraud == theirs.labeled_fraud
        assert mine.shutdown_time == theirs.shutdown_time
        assert mine.activity_end == theirs.activity_end

#: Big enough for the validation suite's subsets, small enough to run
#: in a few seconds.
RUNNER_SEED = 11
RUNNER_DAYS = 40


@pytest.fixture(scope="session")
def runner_config():
    return small_config(seed=RUNNER_SEED, days=RUNNER_DAYS)


@pytest.fixture(scope="session")
def baseline(runner_config):
    """The uninterrupted same-seed run every resume must reproduce."""
    return run_simulation(runner_config)


@pytest.fixture(scope="session")
def baseline_report(baseline):
    return render_report(run_validation(baseline))
