"""The three chunk formats: identity, resume, doctor, and legacy load."""

import json

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.records.columnar import read_header
from repro.runner import (
    CHUNK_FORMATS,
    CheckpointRunner,
    FaultPlan,
    InjectedCrash,
    RunManifest,
    chunk_to_bytes,
    load_chunk,
    repair_run,
    verify_run,
)
from repro.runner.chunkstore import chunk_file_name, chunk_suffix

from .conftest import assert_results_identical


def _rows(n, seed=0):
    rng = np.random.default_rng(seed)
    from repro.records.impressions import ImpressionTable

    dtypes = ImpressionTable.field_dtypes()
    out = {}
    for name, dtype in dtypes.items():
        kind = np.dtype(dtype).kind
        if kind == "f":
            out[name] = rng.random(n).astype(dtype)
        elif kind == "b":
            out[name] = rng.random(n) < 0.5
        else:
            out[name] = rng.integers(0, 100, n).astype(dtype)
    return out


class TestChunkstore:
    @pytest.mark.parametrize("fmt", CHUNK_FORMATS)
    def test_round_trip_and_determinism(self, tmp_path, fmt):
        chunk = _rows(17)
        blob = chunk_to_bytes(chunk, fmt, 0, 7)
        assert blob == chunk_to_bytes(
            {k: v.copy() for k, v in chunk.items()}, fmt, 0, 7
        )
        path = tmp_path / chunk_file_name(0, 7, fmt)
        path.write_bytes(blob)
        back = load_chunk(path, fmt)
        for name, values in chunk.items():
            assert back[name].dtype == values.dtype, name
            assert np.array_equal(back[name], values), name

    @pytest.mark.parametrize("fmt", CHUNK_FORMATS)
    def test_zero_row_chunk(self, tmp_path, fmt):
        chunk = _rows(0)
        path = tmp_path / chunk_file_name(3, 5, fmt)
        path.write_bytes(chunk_to_bytes(chunk, fmt, 3, 5))
        back = load_chunk(path, fmt)
        assert all(len(v) == 0 for v in back.values())

    @pytest.mark.parametrize("fmt", CHUNK_FORMATS)
    def test_malformed_chunk_loads_as_none(self, tmp_path, fmt):
        path = tmp_path / chunk_file_name(0, 7, fmt)
        path.write_bytes(b'{"not": "a chunk"}\n')
        assert load_chunk(path, fmt) is None

    def test_jsonl_floats_round_trip_exactly(self, tmp_path):
        # repr-based JSON floats are the crux of the jsonl format being
        # replayable: every float64 bit pattern must survive.
        chunk = _rows(64, seed=7)
        chunk["spend"] = chunk["spend"] * 1e-17  # denormal-ish values
        path = tmp_path / "chunk-00000-00007.jsonl"
        path.write_bytes(chunk_to_bytes(chunk, "jsonl", 0, 7))
        back = load_chunk(path, "jsonl")
        assert back["spend"].tobytes() == chunk["spend"].tobytes()
        assert back["day"].tobytes() == chunk["day"].tobytes()

    def test_unknown_format_rejected(self):
        with pytest.raises(SimulationError):
            chunk_to_bytes(_rows(1), "parquet", 0, 1)
        with pytest.raises(SimulationError):
            chunk_suffix("parquet")


class TestRunnerFormats:
    @pytest.mark.parametrize("fmt", CHUNK_FORMATS)
    def test_run_is_bit_identical_in_every_format(
        self, tmp_path, runner_config, baseline, fmt
    ):
        run_dir = tmp_path / f"run-{fmt}"
        result = CheckpointRunner(
            runner_config, run_dir, chunk_format=fmt
        ).run()
        assert_results_identical(baseline, result)
        manifest = json.loads((run_dir / "MANIFEST.json").read_text())
        assert manifest["chunk_format"] == fmt
        chunks = sorted((run_dir / "chunks").iterdir())
        assert chunks
        assert all(p.suffix == chunk_suffix(fmt) for p in chunks)
        assert verify_run(run_dir).ok
        if fmt == "columnar":
            header = read_header(chunks[0])
            assert header["meta"] == {"day_start": 0, "day_end": 7}

    @pytest.mark.parametrize("fmt", CHUNK_FORMATS)
    def test_resume_adopts_manifest_format(
        self, tmp_path, runner_config, baseline, fmt
    ):
        run_dir = tmp_path / f"resume-{fmt}"
        plan = FaultPlan.crash_at("phase3:day", day=20)
        with pytest.raises(InjectedCrash):
            CheckpointRunner(
                runner_config, run_dir, faults=plan, chunk_format=fmt
            ).run()
        # Resume with a *different* preferred format: the directory's
        # recorded format must win, and the result stays bit-identical.
        other = next(f for f in CHUNK_FORMATS if f != fmt)
        resumed = CheckpointRunner(run_dir=run_dir, config=runner_config, chunk_format=other)
        result = resumed.run(resume=True)
        assert resumed.chunk_format == fmt
        assert_results_identical(baseline, result)
        chunks = sorted((run_dir / "chunks").iterdir())
        assert all(p.suffix == chunk_suffix(fmt) for p in chunks)

    @pytest.mark.parametrize("fmt", CHUNK_FORMATS)
    def test_doctor_repairs_every_format(
        self, tmp_path, runner_config, fmt
    ):
        run_dir = tmp_path / f"doctor-{fmt}"
        CheckpointRunner(runner_config, run_dir, chunk_format=fmt).run()
        pristine = {
            p.relative_to(run_dir): p.read_bytes()
            for p in sorted(run_dir.rglob("*"))
            if p.is_file()
        }
        chunk = sorted((run_dir / "chunks").iterdir())[1]
        blob = bytearray(chunk.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        chunk.write_bytes(bytes(blob))
        assert not verify_run(run_dir).ok
        repair = repair_run(run_dir)
        assert repair.strategy == "chunk-replay"
        assert repair.verify.ok, repair.verify.issues
        for rel, data in pristine.items():
            assert (run_dir / rel).read_bytes() == data, rel

    def test_legacy_manifest_without_chunk_format_reads_as_npz(
        self, tmp_path, runner_config, baseline
    ):
        # Simulate a pre-columnar run directory: an npz-format run whose
        # manifest never heard of chunk_format.
        run_dir = tmp_path / "legacy"
        CheckpointRunner(runner_config, run_dir, chunk_format="npz").run()
        manifest_path = run_dir / "MANIFEST.json"
        payload = json.loads(manifest_path.read_text())
        del payload["chunk_format"]
        manifest_path.write_text(json.dumps(payload, sort_keys=True, indent=1))
        manifest = RunManifest.load(manifest_path)
        assert manifest.chunk_format == "npz"
        # verify and a rebuild-from-chunks resume both work.
        assert verify_run(run_dir).ok
        result = CheckpointRunner(runner_config, run_dir).run(resume=True)
        assert_results_identical(baseline, result)

    def test_unknown_chunk_format_refused(self, tmp_path, runner_config):
        with pytest.raises(SimulationError):
            CheckpointRunner(runner_config, tmp_path / "x", chunk_format="xml")

    def test_format_independence_of_simulation_outputs(
        self, tmp_path, runner_config
    ):
        # Two same-seed runs in different formats agree on every
        # simulation artifact the manifest pins (the chunk checksums
        # themselves legitimately differ).
        a = tmp_path / "native"
        b = tmp_path / "export"
        CheckpointRunner(runner_config, a, chunk_format="columnar").run()
        CheckpointRunner(runner_config, b, chunk_format="jsonl").run()
        ma = json.loads((a / "MANIFEST.json").read_text())
        mb = json.loads((b / "MANIFEST.json").read_text())
        for key in ("seed", "days", "phase", "config", "phase3_start_rng"):
            assert ma[key] == mb[key], key
        assert (a / "dayledger.jsonl").read_bytes() == (
            b / "dayledger.jsonl"
        ).read_bytes()
        for ca, cb in zip(ma["chunks"], mb["chunks"]):
            assert ca["day_start"] == cb["day_start"]
            assert ca["rows"] == cb["rows"]
            assert ca["rng_after"] == cb["rng_after"]


def test_stray_tmp_detection_still_works(tmp_path, runner_config):
    run_dir = tmp_path / "tmp-orphan"
    CheckpointRunner(runner_config, run_dir).run()
    (run_dir / "chunks" / "chunk-junk.npc.tmp").write_bytes(b"partial")
    report = verify_run(run_dir)
    assert not report.ok
    repair = repair_run(run_dir)
    assert repair.verify.ok
    assert not (run_dir / "chunks" / "chunk-junk.npc.tmp").exists()
    quarantined = list((run_dir / "quarantine").rglob("*.tmp*"))
    assert quarantined


def test_chunk_files_are_column_seekable(tmp_path, runner_config):
    # The analysis layer's contract: read two columns of a durable
    # chunk without parsing rows or touching other columns.
    run_dir = tmp_path / "seekable"
    CheckpointRunner(runner_config, run_dir).run()
    from repro.records.columnar import read_columns

    chunk = sorted((run_dir / "chunks").iterdir())[0]
    subset = read_columns(chunk, names=["day", "spend"])
    assert set(subset) == {"day", "spend"}
    assert subset["day"].dtype == np.float64
