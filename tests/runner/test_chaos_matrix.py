"""Chaos matrix: no fault scenario leaves unaccounted-for damage.

Property under test, for every scenario in the matrix (process crashes
at named sites, ENOSPC/EIO devices, torn writes, silent bitrot, dead
telemetry):

1. the run directory never contains an orphaned ``.tmp`` file;
2. every file present is either vouched by the manifest, a known
   auxiliary, or reported by ``verify`` -- damage cannot hide;
3. the documented recovery path (resume for crashes, doctor for silent
   corruption, nothing for degraded auxiliaries) restores a healthy
   directory and a bit-identical simulation result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

import repro.records.atomic as atomic
from repro import run_simulation, small_config
from repro.obs.sink import TELEMETRY_NAME
from repro.runner import (
    IO_BITROT,
    IO_ERROR,
    IO_TORN,
    CheckpointRunner,
    Fault,
    FaultPlan,
    InjectedCrash,
    RunManifest,
    WriteFault,
    repair_run,
    verify_run,
)
from repro.runner.doctor import QUARANTINE_DIR
from repro.runner.manifest import MANIFEST_NAME

from .conftest import assert_results_identical

SEED = 5
DAYS = 12
EVERY = 5
FOREVER = 10**9


@dataclass
class Scenario:
    name: str
    site_faults: tuple = ()
    io_faults: tuple = ()
    #: "crash" -- the first run dies; "complete" -- it finishes.
    expect: str = "crash"
    #: "resume" | "doctor" | "none" -- the documented recovery path.
    recover: str = "resume"
    #: Issue kinds verify is allowed to report before recovery.
    allowed_damage: frozenset = field(default_factory=frozenset)


SCENARIOS = [
    Scenario("crash-phase1-day", site_faults=(Fault("phase1:day", day=3),)),
    Scenario("crash-phase1-end", site_faults=(Fault("phase1:end"),)),
    Scenario("crash-phase3-day", site_faults=(Fault("phase3:day", day=7),)),
    Scenario(
        "crash-mid-checkpoint", site_faults=(Fault("phase3:checkpoint"),)
    ),
    Scenario(
        "truncate-chunk-then-crash",
        site_faults=(Fault("phase3:checkpoint", action="truncate-chunk"),),
        allowed_damage=frozenset({"checksum"}),
    ),
    Scenario(
        "enospc-on-chunk",
        io_faults=(WriteFault("chunk-*.npc", action=IO_ERROR, times=FOREVER),),
    ),
    Scenario(
        "enospc-mid-checkpoint-manifest",
        io_faults=(
            WriteFault(MANIFEST_NAME, action=IO_ERROR, nth=2, times=FOREVER),
        ),
    ),
    Scenario(
        "torn-dayledger-then-crash",
        site_faults=(Fault("phase3:checkpoint"),),
        io_faults=(WriteFault("dayledger.jsonl", action=IO_TORN, detail=7),),
    ),
    Scenario(
        "silent-torn-chunk",
        io_faults=(WriteFault("chunk-*.npc", action=IO_TORN, detail=32),),
        expect="complete",
        recover="doctor",
        allowed_damage=frozenset({"checksum"}),
    ),
    Scenario(
        "silent-bitrot-mid-chunk",
        io_faults=(WriteFault("chunk-*.npc", action=IO_BITROT, nth=2),),
        expect="complete",
        recover="doctor",
        allowed_damage=frozenset({"checksum"}),
    ),
    Scenario(
        "dead-telemetry-device",
        io_faults=(
            WriteFault(TELEMETRY_NAME, action=IO_ERROR, times=FOREVER),
        ),
        expect="complete",
        recover="none",
    ),
]


@pytest.fixture(scope="module")
def config():
    return small_config(seed=SEED, days=DAYS)


@pytest.fixture(scope="module")
def expected(config):
    return run_simulation(config)


@pytest.fixture(autouse=True)
def _no_retry_sleep(monkeypatch):
    monkeypatch.setattr(
        atomic,
        "DEFAULT_RETRY",
        atomic.RetryPolicy(retries=3, delays=(), sleep=lambda _s: None),
    )


def assert_no_tmp_orphans(run_dir):
    orphans = [p for p in run_dir.rglob("*.tmp") if p.is_file()]
    assert orphans == [], f"orphaned tmp files: {orphans}"


def assert_nothing_hides_from_verify(run_dir, allowed_damage):
    """Every on-disk file is vouched, known-auxiliary, or reported."""
    report = verify_run(run_dir)
    reported = {issue.path for issue in report.issues}
    manifest = RunManifest.load(run_dir / MANIFEST_NAME)
    accounted = (
        set(manifest.artifacts)
        | {entry.file for entry in manifest.chunks}
        | {MANIFEST_NAME, TELEMETRY_NAME, "validation.json"}
    )
    for path in run_dir.rglob("*"):
        relative = path.relative_to(run_dir).as_posix()
        if not path.is_file() or relative.startswith(f"{QUARANTINE_DIR}/"):
            continue
        assert relative in accounted or relative in reported, (
            f"{relative}: on disk, unvouched, and verify did not report it"
        )
    surprise = {
        issue.kind for issue in report.damage
    } - allowed_damage
    assert not surprise, (
        f"unexpected damage kinds {surprise}: {report.issues}"
    )


@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=[scenario.name for scenario in SCENARIOS]
)
def test_no_scenario_leaves_hidden_damage(
    scenario, config, expected, tmp_path
):
    plan = FaultPlan(scenario.site_faults, io_faults=scenario.io_faults)
    runner = CheckpointRunner(
        config, tmp_path, checkpoint_every=EVERY, faults=plan
    )

    result = None
    if scenario.expect == "crash":
        with pytest.raises((InjectedCrash, OSError)):
            runner.run(resume=False)
    else:
        result = runner.run(resume=False)

    # Invariants that must hold in the damaged state, before recovery.
    assert_no_tmp_orphans(tmp_path)
    assert_nothing_hides_from_verify(tmp_path, scenario.allowed_damage)

    # The documented recovery path restores health and bit-identity.
    if scenario.recover == "resume":
        healthy = CheckpointRunner(config, tmp_path, checkpoint_every=EVERY)
        result = healthy.run(resume=True)
    elif scenario.recover == "doctor":
        repair = repair_run(tmp_path)
        assert repair.verify is not None and repair.verify.ok

    if result is not None:
        assert_results_identical(expected, result)
    if scenario.recover != "none":
        post = verify_run(tmp_path)
        assert post.ok, post.issues
    assert_no_tmp_orphans(tmp_path)
