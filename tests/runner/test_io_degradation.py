"""Graceful degradation: auxiliary sink failures must not touch the run.

The contract under test (DESIGN.md section 12): chunk, snapshot and
manifest writes are fatal after retries; telemetry and day-ledger
writes degrade to a warning plus the ``io.degraded`` counter, and a
degraded run's *simulation output* -- impression rows, detections,
serialized RNG states, the manifest itself -- is bit-identical to an
undegraded same-seed run.
"""

from __future__ import annotations

import pytest

from repro import obs, run_simulation, small_config
from repro.obs.timeseries import DAYLEDGER_NAME
from repro.runner import (
    IO_ERROR,
    CheckpointRunner,
    FaultPlan,
    WriteFault,
    verify_run,
)
from repro.runner.manifest import MANIFEST_NAME

from .conftest import assert_results_identical

_IO_DEGRADED = obs.counter("io.degraded")
_IO_RETRIES = obs.counter("io.retries")

SEED = 5
DAYS = 12
EVERY = 5

#: Retries land in well under a second; a "device" that keeps failing
#: needs to outlast every retry of every write.
FOREVER = 10**9


def _fast_faults(*faults: WriteFault) -> FaultPlan:
    return FaultPlan(io_faults=faults)


def _no_sleep(monkeypatch):
    """Strip the retry backoff waits -- they decide nothing."""
    import repro.records.atomic as atomic

    monkeypatch.setattr(
        atomic,
        "DEFAULT_RETRY",
        atomic.RetryPolicy(retries=3, delays=(), sleep=lambda _s: None),
    )


@pytest.fixture(scope="module")
def config():
    return small_config(seed=SEED, days=DAYS)


@pytest.fixture(scope="module")
def expected(config):
    """The in-memory uninterrupted result every degraded run must match."""
    return run_simulation(config)


@pytest.fixture(scope="module")
def clean_manifest(config, tmp_path_factory):
    """The manifest of an undegraded checkpointed run of the same seed."""
    run_dir = tmp_path_factory.mktemp("clean")
    CheckpointRunner(config, run_dir, checkpoint_every=EVERY).run(resume=False)
    return (run_dir / MANIFEST_NAME).read_text()


class TestTelemetryDegrades:
    def test_run_completes_bit_identical(
        self, config, expected, clean_manifest, tmp_path, monkeypatch
    ):
        _no_sleep(monkeypatch)
        plan = _fast_faults(
            WriteFault("telemetry.jsonl", action=IO_ERROR, times=FOREVER)
        )
        runner = CheckpointRunner(
            config, tmp_path, checkpoint_every=EVERY, faults=plan
        )
        before = _IO_DEGRADED.value
        result = runner.run(resume=False)

        assert_results_identical(expected, result)
        assert _IO_DEGRADED.value > before
        # The telemetry never landed...
        assert not (tmp_path / "telemetry.jsonl").exists()
        # ...and everything the manifest vouches for -- checksums,
        # chunk index, serialized RNG states, embedded config -- is
        # byte-identical to the undegraded run's manifest.
        assert (tmp_path / MANIFEST_NAME).read_text() == clean_manifest
        report = verify_run(tmp_path)
        assert report.ok, report.issues


class TestLedgerDegrades:
    def test_run_completes_without_ledger(
        self, config, expected, tmp_path, monkeypatch
    ):
        _no_sleep(monkeypatch)
        plan = _fast_faults(
            WriteFault(DAYLEDGER_NAME, action=IO_ERROR, times=FOREVER)
        )
        runner = CheckpointRunner(
            config, tmp_path, checkpoint_every=EVERY, faults=plan
        )
        before = _IO_DEGRADED.value
        result = runner.run(resume=False)

        assert_results_identical(expected, result)
        assert _IO_DEGRADED.value > before
        assert not (tmp_path / DAYLEDGER_NAME).exists()
        # The manifest never vouched for a flush that did not land.
        from repro.runner import RunManifest

        manifest = RunManifest.load(tmp_path / MANIFEST_NAME)
        assert DAYLEDGER_NAME not in manifest.artifacts
        report = verify_run(tmp_path)
        assert report.ok, report.issues


class TestCriticalWritesStayFatal:
    def test_transient_chunk_error_is_retried_away(
        self, config, expected, clean_manifest, tmp_path, monkeypatch
    ):
        _no_sleep(monkeypatch)
        plan = _fast_faults(
            WriteFault("chunk-*.npc", action=IO_ERROR, times=2)
        )
        runner = CheckpointRunner(
            config, tmp_path, checkpoint_every=EVERY, faults=plan
        )
        retries_before = _IO_RETRIES.value
        degraded_before = _IO_DEGRADED.value
        result = runner.run(resume=False)

        assert_results_identical(expected, result)
        assert _IO_RETRIES.value - retries_before >= 2
        assert _IO_DEGRADED.value == degraded_before
        assert (tmp_path / MANIFEST_NAME).read_text() == clean_manifest

    def test_persistent_chunk_error_kills_the_run(
        self, config, tmp_path, monkeypatch
    ):
        _no_sleep(monkeypatch)
        plan = _fast_faults(
            WriteFault("chunk-*.npc", action=IO_ERROR, times=FOREVER)
        )
        runner = CheckpointRunner(
            config, tmp_path, checkpoint_every=EVERY, faults=plan
        )
        with pytest.raises(OSError):
            runner.run(resume=False)

    def test_persistent_manifest_error_kills_the_run(
        self, config, tmp_path, monkeypatch
    ):
        _no_sleep(monkeypatch)
        plan = _fast_faults(
            WriteFault(MANIFEST_NAME, action=IO_ERROR, times=FOREVER)
        )
        runner = CheckpointRunner(
            config, tmp_path, checkpoint_every=EVERY, faults=plan
        )
        with pytest.raises(OSError):
            runner.run(resume=False)
