"""Acceptance: interrupted-and-resumed runs are byte-identical.

Each scenario kills a checkpointed run at a distinct point via a
deterministic :class:`FaultPlan` -- mid-Phase-1, mid-Phase-3 before a
checkpoint, and *after* a durable checkpoint whose tail chunk is then
corrupted -- resumes it, and asserts the final impression table,
detection records, and rendered validation report are byte-identical to
the uninterrupted same-seed run.
"""

import pytest

from repro.errors import SimulationError
from repro.runner import CheckpointRunner, Fault, FaultPlan, InjectedCrash
from repro.validation import render_report, run_validation

from .conftest import assert_results_identical

CHECKPOINT_EVERY = 5

#: Distinct interruption points (id -> fault plan factory).
SCENARIOS = {
    "mid-phase1": lambda: FaultPlan.crash_at("phase1:day", day=17),
    # Near the end of Phase 1 most legitimate accounts are lazy
    # (entity construction deferred to trim): re-running Phase 1 from
    # the seed must replay the batched path's draws identically.
    "late-phase1": lambda: FaultPlan.crash_at("phase1:day", day=35),
    "phase3-before-first-checkpoint": lambda: FaultPlan.crash_at(
        "phase3:day", day=2
    ),
    "phase3-between-checkpoints": lambda: FaultPlan.crash_at(
        "phase3:day", day=23
    ),
    "corrupt-tail-chunk": lambda: FaultPlan(
        [Fault(site="phase3:checkpoint", day=24, action="truncate-chunk")]
    ),
    "corrupt-tail-checksum-entry": lambda: FaultPlan(
        [
            Fault(
                site="phase3:checkpoint",
                day=24,
                action="corrupt-manifest",
                detail="tail-chunk-sha256",
            )
        ]
    ),
}


def _interrupt(config, run_dir, plan):
    with pytest.raises(InjectedCrash):
        CheckpointRunner(
            config, run_dir, checkpoint_every=CHECKPOINT_EVERY, faults=plan
        ).run(resume=False)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_interrupted_run_resumes_byte_identical(
    scenario, runner_config, baseline, baseline_report, tmp_path
):
    plan = SCENARIOS[scenario]()
    _interrupt(runner_config, tmp_path, plan)
    assert not plan.pending, "fault never fired -- scenario is vacuous"

    resumed = CheckpointRunner(
        runner_config, tmp_path, checkpoint_every=CHECKPOINT_EVERY
    ).run(resume=True)

    assert_results_identical(baseline, resumed)
    report = render_report(run_validation(resumed))
    assert report == baseline_report


def test_double_interruption_still_byte_identical(
    runner_config, baseline, tmp_path
):
    """Crash, resume, crash again later, resume again."""
    _interrupt(runner_config, tmp_path, FaultPlan.crash_at("phase3:day", day=8))
    second = FaultPlan.crash_at("phase3:day", day=33)
    with pytest.raises(InjectedCrash):
        CheckpointRunner(
            runner_config,
            tmp_path,
            checkpoint_every=CHECKPOINT_EVERY,
            faults=second,
        ).run(resume=True)
    resumed = CheckpointRunner(
        runner_config, tmp_path, checkpoint_every=CHECKPOINT_EVERY
    ).run(resume=True)
    assert_results_identical(baseline, resumed)


def test_resume_with_corrupted_config_hash_is_refused(
    runner_config, tmp_path
):
    plan = FaultPlan(
        [
            Fault(
                site="phase3:checkpoint",
                day=24,
                action="corrupt-manifest",
                detail="config_sha256",
            )
        ]
    )
    _interrupt(runner_config, tmp_path, plan)
    with pytest.raises(SimulationError, match="config hash mismatch"):
        CheckpointRunner(
            runner_config, tmp_path, checkpoint_every=CHECKPOINT_EVERY
        ).run(resume=True)


def test_corrupt_non_tail_chunk_is_refused(runner_config, tmp_path):
    """Damage before the tail is unrecoverable and must say so."""
    _interrupt(
        runner_config, tmp_path, FaultPlan.crash_at("phase3:day", day=23)
    )
    # Four durable chunks exist (days 0-20); damage the first one.
    first_chunk = sorted((tmp_path / "chunks").iterdir())[0]
    first_chunk.write_bytes(first_chunk.read_bytes()[:-32])
    with pytest.raises(SimulationError, match="not\\s+a discardable tail"):
        CheckpointRunner(
            runner_config, tmp_path, checkpoint_every=CHECKPOINT_EVERY
        ).run(resume=True)
