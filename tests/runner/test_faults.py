"""FaultPlan semantics: deterministic matching, one-shot firing."""

import pytest

from repro.runner import Fault, FaultPlan, InjectedCrash


class TestFaultMatching:
    def test_site_and_day_must_match(self):
        fault = Fault(site="phase3:day", day=7)
        assert fault.matches("phase3:day", 7)
        assert not fault.matches("phase3:day", 6)
        assert not fault.matches("phase3:checkpoint", 7)

    def test_day_none_matches_any_day(self):
        fault = Fault(site="phase1:day")
        assert fault.matches("phase1:day", 0)
        assert fault.matches("phase1:day", 99)

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            Fault(site="phase3:day", action="set-on-fire")


class TestFaultPlan:
    def test_inert_when_empty(self):
        FaultPlan().fire("phase3:day", day=3)  # no exception

    def test_crash_fires_exactly_once(self):
        plan = FaultPlan.crash_at("phase3:day", day=3)
        plan.fire("phase3:day", day=2)
        assert plan.pending  # not yet
        with pytest.raises(InjectedCrash, match="phase3:day day=3"):
            plan.fire("phase3:day", day=3)
        assert not plan.pending
        assert plan.fired[0].site == "phase3:day"
        plan.fire("phase3:day", day=3)  # consumed: inert on re-fire

    def test_faults_fire_in_plan_order(self):
        plan = FaultPlan(
            [Fault(site="phase3:day", day=5), Fault(site="phase3:day")]
        )
        with pytest.raises(InjectedCrash):
            plan.fire("phase3:day", day=5)
        # The wildcard fault is still pending for a later day.
        assert len(plan.pending) == 1
        with pytest.raises(InjectedCrash):
            plan.fire("phase3:day", day=6)
        assert not plan.pending

    def test_truncate_without_chunks_is_an_error(self, tmp_path):
        class _Runner:
            manifest_path = tmp_path / "MANIFEST.json"
            run_dir = tmp_path

        _Runner.manifest_path.write_text('{"chunks": []}')
        plan = FaultPlan(
            [Fault(site="phase3:checkpoint", action="truncate-chunk")]
        )
        with pytest.raises(ValueError, match="no durable chunk"):
            plan.fire("phase3:checkpoint", day=0, runner=_Runner)
