"""Manifest round-trip, config hashing, and structural validation."""

import json

import pytest

from repro import small_config
from repro.errors import SimulationError
from repro.runner import ChunkEntry, RunManifest, config_sha256
from repro.simulator.engine import RNG_STREAMS, SimulationEngine


class TestConfigHash:
    def test_stable_for_equal_configs(self):
        assert config_sha256(small_config(seed=3, days=10)) == config_sha256(
            small_config(seed=3, days=10)
        )

    def test_differs_on_any_knob(self):
        base = small_config(seed=3, days=10)
        assert config_sha256(base) != config_sha256(small_config(seed=4, days=10))
        assert config_sha256(base) != config_sha256(small_config(seed=3, days=11))
        assert config_sha256(base) != config_sha256(
            base.with_auction(mainline_slots=3)
        )


class TestRngStateSerialization:
    def test_json_round_trip_preserves_draws(self):
        config = small_config(seed=9, days=5)
        engine = SimulationEngine(config)
        states = engine.rng_state()
        assert set(states) == set(RNG_STREAMS)
        # Through JSON (as the manifest stores them) and back.
        restored = json.loads(json.dumps(states))
        reference = [engine._rng_queries.random() for _ in range(4)]
        fresh = SimulationEngine(config)
        fresh._rng_queries.random()  # desync deliberately
        fresh.set_rng_state(restored)
        assert [fresh._rng_queries.random() for _ in range(4)] == reference

    def test_rejects_missing_stream(self):
        engine = SimulationEngine(small_config(seed=9, days=5))
        states = engine.rng_state()
        states.pop("clicks")
        with pytest.raises(SimulationError):
            engine.set_rng_state(states)


class TestManifestRoundTrip:
    def _manifest(self, tmp_path):
        config = small_config(seed=2, days=12)
        engine = SimulationEngine(config)
        manifest = RunManifest.fresh(config, checkpoint_every=4)
        manifest.phase = "phase3"
        manifest.artifacts = {"phase1.pkl": "ab" * 32}
        manifest.phase3_start_rng = engine.rng_state()
        manifest.chunks.append(
            ChunkEntry(
                file="chunks/chunk-00000-00004.npz",
                sha256="cd" * 32,
                day_start=0,
                day_end=4,
                rows=17,
                rng_after=engine.rng_state(),
            )
        )
        return manifest

    def test_save_load_round_trip(self, tmp_path):
        manifest = self._manifest(tmp_path)
        path = tmp_path / "MANIFEST.json"
        manifest.save(path)
        loaded = RunManifest.load(path)
        assert loaded == manifest
        assert loaded.next_day == 4
        assert loaded.resume_rng() == manifest.chunks[0].rng_after

    def test_resume_rng_falls_back_to_phase3_start(self, tmp_path):
        manifest = self._manifest(tmp_path)
        manifest.chunks.clear()
        assert manifest.next_day == 0
        assert manifest.resume_rng() == manifest.phase3_start_rng

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "MANIFEST.json"
        path.write_text("{not json")
        with pytest.raises(SimulationError, match="not valid JSON"):
            RunManifest.load(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(SimulationError, match="cannot read"):
            RunManifest.load(tmp_path / "MANIFEST.json")

    def test_load_rejects_unknown_format(self, tmp_path):
        manifest = self._manifest(tmp_path)
        payload = json.loads(manifest.to_json())
        payload["format"] = "repro-run/99"
        path = tmp_path / "MANIFEST.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(SimulationError, match="format"):
            RunManifest.load(path)

    def test_load_rejects_non_contiguous_chunks(self, tmp_path):
        manifest = self._manifest(tmp_path)
        manifest.chunks.append(
            ChunkEntry(
                file="chunks/chunk-00005-00008.npz",
                sha256="ef" * 32,
                day_start=5,  # gap: previous chunk ended at day 4
                day_end=8,
                rows=3,
                rng_after=manifest.chunks[0].rng_after,
            )
        )
        path = tmp_path / "MANIFEST.json"
        manifest.save(path)
        with pytest.raises(SimulationError, match="contiguous"):
            RunManifest.load(path)

    def test_load_rejects_missing_keys(self, tmp_path):
        manifest = self._manifest(tmp_path)
        payload = json.loads(manifest.to_json())
        del payload["chunks"]
        path = tmp_path / "MANIFEST.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(SimulationError, match="malformed"):
            RunManifest.load(path)
