"""The run doctor: verify catches damage, repair restores vouched bytes.

The central claim: ``repair_run`` on a damaged completed run produces a
directory *byte-identical* (quarantine aside) to one that was never
damaged -- because re-simulating a damaged day range from the recorded
RNG states regenerates the exact artifact bytes the manifest vouches.
"""

from __future__ import annotations

import shutil

import pytest

from repro import small_config
from repro.errors import SimulationError
from repro.obs.__main__ import main as obs_main
from repro.obs.timeseries import DAYLEDGER_NAME
from repro.runner import (
    CheckpointRunner,
    FaultPlan,
    InjectedCrash,
    repair_run,
    verify_run,
)
from repro.runner.doctor import QUARANTINE_DIR, render_repair, render_verify
from repro.runner.manifest import MANIFEST_NAME
from repro.runner.runner import MARKET_NAME, PHASE1_NAME

SEED = 5
DAYS = 12
EVERY = 5  # chunks: [0,5) [5,10) [10,12) -- index 1 is mid-run


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """One completed, healthy run directory (copied per test)."""
    run_dir = tmp_path_factory.mktemp("runs") / "pristine"
    config = small_config(seed=SEED, days=DAYS)
    CheckpointRunner(config, run_dir, checkpoint_every=EVERY).run(resume=False)
    return run_dir


@pytest.fixture
def run_dir(pristine, tmp_path):
    copy = tmp_path / "run"
    shutil.copytree(pristine, copy)
    return copy


def _tree(root, *, skip=(QUARANTINE_DIR,)):
    """Relative path -> content bytes for every file under ``root``."""
    files = {}
    for path in sorted(root.rglob("*")):
        relative = path.relative_to(root)
        if relative.parts[0] in skip:
            continue
        if path.is_file():
            files[str(relative)] = path.read_bytes()
    return files


def assert_byte_identical(repaired, pristine):
    """Every non-quarantine file equals the never-damaged original."""
    want = _tree(pristine)
    got = _tree(repaired)
    assert set(got) == set(want)
    for name, data in want.items():
        assert got[name] == data, f"{name} differs after repair"


def _flip_byte(path, offset=100):
    data = bytearray(path.read_bytes())
    data[offset % len(data)] ^= 0xFF
    path.write_bytes(bytes(data))


def _chunk_paths(run_dir):
    return sorted((run_dir / "chunks").iterdir())


class TestVerify:
    def test_healthy_run_is_healthy(self, run_dir):
        report = verify_run(run_dir)
        assert report.ok
        # phase1, market, dayledger + three chunks.
        assert report.checked == 6
        assert "HEALTHY" in render_verify(report)

    def test_catches_chunk_bitrot(self, run_dir):
        _flip_byte(_chunk_paths(run_dir)[1])
        report = verify_run(run_dir)
        assert not report.ok
        assert [i.kind for i in report.damage] == ["checksum"]

    def test_catches_missing_chunk(self, run_dir):
        _chunk_paths(run_dir)[0].unlink()
        report = verify_run(run_dir)
        assert [i.kind for i in report.damage] == ["missing"]

    def test_catches_stray_chunk_and_tmp(self, run_dir):
        (run_dir / "chunks" / "chunk-99999-99999.npz").write_bytes(b"junk")
        (run_dir / f"{PHASE1_NAME}.tmp").write_bytes(b"junk")
        report = verify_run(run_dir)
        kinds = sorted(i.kind for i in report.damage)
        assert kinds == ["stray", "tmp"]

    def test_catches_snapshot_and_ledger_damage(self, run_dir):
        _flip_byte(run_dir / MARKET_NAME)
        (run_dir / DAYLEDGER_NAME).write_text("")
        report = verify_run(run_dir)
        damaged = {i.path for i in report.damage}
        assert damaged == {MARKET_NAME, DAYLEDGER_NAME}

    def test_unreadable_manifest_raises(self, run_dir):
        (run_dir / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SimulationError):
            verify_run(run_dir)

    def test_tampered_embedded_config_is_rejected(self, run_dir):
        import json

        payload = json.loads((run_dir / MANIFEST_NAME).read_text())
        payload["config"]["seed"] = payload["config"]["seed"] + 1
        (run_dir / MANIFEST_NAME).write_text(json.dumps(payload))
        _flip_byte(_chunk_paths(run_dir)[0])
        with pytest.raises(SimulationError, match="tampered"):
            repair_run(run_dir)


class TestRepair:
    def test_healthy_run_needs_nothing(self, run_dir):
        report = repair_run(run_dir)
        assert report.strategy == "none"
        assert report.quarantined == [] and report.rewritten == []
        assert report.verify.ok

    def test_chunk_bitrot_repaired_byte_identical(self, run_dir, pristine):
        # The acceptance case: bitrot in a non-tail chunk.
        victim = _chunk_paths(run_dir)[1]
        _flip_byte(victim)
        report = repair_run(run_dir)
        assert report.strategy == "chunk-replay"
        assert report.rewritten == [f"chunks/{victim.name}"]
        assert report.verify.ok
        assert_byte_identical(run_dir, pristine)
        # The damaged original is preserved, not destroyed.
        assert (run_dir / QUARANTINE_DIR / "chunks" / victim.name).exists()
        assert "re-simulated" in render_repair(report)

    def test_repaired_run_passes_drift_gate(self, run_dir, pristine):
        _flip_byte(_chunk_paths(run_dir)[1])
        repair_run(run_dir)
        # The cross-run gate the CI uses for resume determinism: zero
        # ledger drift between the repaired and never-damaged run.
        assert obs_main(
            ["diff", str(pristine), str(run_dir), "--fail-on", "drift=0"]
        ) == 0

    def test_missing_first_chunk_replayed_from_phase3_start(
        self, run_dir, pristine
    ):
        _chunk_paths(run_dir)[0].unlink()
        report = repair_run(run_dir)
        assert report.strategy == "chunk-replay"
        assert report.verify.ok
        assert_byte_identical(run_dir, pristine)

    def test_every_chunk_damaged_still_repairs(self, run_dir, pristine):
        for index, path in enumerate(_chunk_paths(run_dir)):
            _flip_byte(path, offset=50 + index)
        report = repair_run(run_dir)
        assert report.strategy == "chunk-replay"
        assert len(report.rewritten) == 3
        assert_byte_identical(run_dir, pristine)

    def test_damaged_ledger_full_replay(self, run_dir, pristine):
        (run_dir / DAYLEDGER_NAME).write_text("torn gibberish\n")
        report = repair_run(run_dir)
        assert report.strategy == "full-replay"
        assert DAYLEDGER_NAME in report.rewritten
        assert report.verify.ok
        assert_byte_identical(run_dir, pristine)

    def test_damaged_snapshot_full_replay(self, run_dir, pristine):
        _flip_byte(run_dir / PHASE1_NAME)
        _flip_byte(_chunk_paths(run_dir)[2])
        report = repair_run(run_dir)
        assert report.strategy == "full-replay"
        assert set(report.rewritten) >= {PHASE1_NAME}
        assert report.verify.ok
        assert_byte_identical(run_dir, pristine)

    def test_strays_are_quarantined_not_deleted(self, run_dir, pristine):
        (run_dir / "chunks" / "chunk-99999-99999.npz").write_bytes(b"junk")
        (run_dir / "market.pkl.tmp").write_bytes(b"junk")
        report = repair_run(run_dir)
        assert report.strategy == "quarantine-only"
        assert sorted(report.quarantined) == [
            "chunks/chunk-99999-99999.npz",
            "market.pkl.tmp",
        ]
        assert report.verify.ok
        assert_byte_identical(run_dir, pristine)
        quarantined = run_dir / QUARANTINE_DIR / "market.pkl.tmp"
        assert quarantined.read_bytes() == b"junk"

    def test_incomplete_run_is_refused(self, tmp_path):
        config = small_config(seed=SEED, days=DAYS)
        plan = FaultPlan.crash_at("phase3:checkpoint")
        runner = CheckpointRunner(
            config, tmp_path, checkpoint_every=EVERY, faults=plan
        )
        with pytest.raises(InjectedCrash):
            runner.run(resume=False)
        # Break a durable chunk so there is damage to (not) repair.
        _flip_byte(_chunk_paths(tmp_path)[0])
        with pytest.raises(SimulationError, match="resume"):
            repair_run(tmp_path)
