"""Run-directory telemetry: crash-safe JSONL written by the runner.

The contract under test: ``telemetry.jsonl`` is flushed atomically at
every durable checkpoint (and at injected faults), so after a crash it
is always parseable and describes no more than the manifest does; a
resumed process appends to the same file with span ids offset past the
crashed process's, and the final file round-trips through the report
CLI.
"""

from __future__ import annotations

import json

import pytest

from repro.config import small_config
from repro.obs.__main__ import main as obs_main
from repro.obs.report import load_events
from repro.obs.sink import TELEMETRY_NAME
from repro.runner.faults import FaultPlan, InjectedCrash
from repro.runner.runner import CheckpointRunner


@pytest.fixture()
def config():
    return small_config(seed=7, days=40)


def _names(events):
    return [e.get("name") for e in events]


class TestRunnerTelemetry:
    def test_clean_run_writes_full_history(self, config, tmp_path):
        # The registry is process-global and cumulative; zero it so the
        # final snapshot can be compared against this run alone.
        import repro.obs as obs

        obs.metrics().reset()
        runner = CheckpointRunner(config, tmp_path, checkpoint_every=10)
        result = runner.run()
        events = load_events(tmp_path / TELEMETRY_NAME)
        names = _names(events)
        assert "runner.start" in names
        assert "runner.complete" in names
        checkpoints = [e for e in events if e.get("name") == "runner.checkpoint"]
        assert len(checkpoints) == 4  # 40 days / checkpoint_every=10
        assert checkpoints[-1]["attrs"]["day_end"] == config.days
        # Cumulative metrics snapshot agrees with the result.
        snapshots = [e for e in events if e.get("kind") == "metrics"]
        rows = snapshots[-1]["data"]["counters"]["auction.rows_emitted"]
        assert rows == len(result.impressions)

    def test_telemetry_disabled_writes_nothing(self, config, tmp_path):
        runner = CheckpointRunner(config, tmp_path, telemetry=False)
        runner.run()
        assert not (tmp_path / TELEMETRY_NAME).exists()

    def test_crash_leaves_parseable_file_with_fault_event(self, config, tmp_path):
        plan = FaultPlan.crash_at("phase3:day", day=20)
        runner = CheckpointRunner(
            config, tmp_path, checkpoint_every=7, faults=plan
        )
        with pytest.raises(InjectedCrash):
            runner.run()
        events = load_events(tmp_path / TELEMETRY_NAME)  # parses cleanly
        faults = [e for e in events if e.get("name") == "runner.fault"]
        assert [f["attrs"]["site"] for f in faults] == ["phase3:day"]
        assert faults[0]["attrs"]["day"] == 20
        # Only *durable* checkpoints made it to disk: days 0-7 and 7-14.
        checkpoints = [e for e in events if e.get("name") == "runner.checkpoint"]
        assert [c["attrs"]["day_end"] for c in checkpoints] == [7, 14]
        # runner.complete must not be claimed by a crashed run.
        assert "runner.complete" not in _names(events)

    def test_resume_appends_with_unique_span_ids(self, config, tmp_path, capsys):
        plan = FaultPlan.crash_at("phase3:day", day=20)
        with pytest.raises(InjectedCrash):
            CheckpointRunner(
                config, tmp_path, checkpoint_every=7, faults=plan
            ).run()
        CheckpointRunner(config, tmp_path, checkpoint_every=7).run()

        events = load_events(tmp_path / TELEMETRY_NAME)
        names = _names(events)
        assert "runner.fault" in names     # the crash's history survives
        assert "runner.resume" in names
        assert "runner.complete" in names
        span_ids = [e["id"] for e in events if e["kind"] == "span"]
        assert len(span_ids) == len(set(span_ids))
        # The whole two-process history renders through the report CLI.
        assert obs_main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "runner.fault x1" in out
        assert "runner.resume x1" in out

    def test_tail_discard_is_recorded(self, config, tmp_path):
        from repro.runner.faults import TRUNCATE_CHUNK, Fault

        # Corrupt the newest durable chunk post-checkpoint, then die.
        plan = FaultPlan(
            [Fault(site="phase3:checkpoint", day=6, action=TRUNCATE_CHUNK)]
        )
        with pytest.raises(InjectedCrash):
            CheckpointRunner(
                config, tmp_path, checkpoint_every=7, faults=plan
            ).run()
        CheckpointRunner(config, tmp_path, checkpoint_every=7).run()
        events = load_events(tmp_path / TELEMETRY_NAME)
        names = _names(events)
        assert "runner.tail_discarded" in names
        assert "runner.complete" in names


class TestJsonlDurabilityModel:
    def test_file_state_never_exceeds_manifest(self, config, tmp_path):
        """After a mid-phase3 crash the telemetry describes at most the
        checkpointed prefix -- buffered day spans since the last flush
        are lost with the process, like the impression rows are."""
        plan = FaultPlan.crash_at("phase3:day", day=20)
        with pytest.raises(InjectedCrash):
            CheckpointRunner(
                config, tmp_path, checkpoint_every=7, faults=plan
            ).run()
        manifest = json.loads((tmp_path / "MANIFEST.json").read_text())
        durable_days = max(c["day_end"] for c in manifest["chunks"])
        events = load_events(tmp_path / TELEMETRY_NAME)
        phase3_days = [
            e["attrs"]["day"]
            for e in events
            if e["kind"] == "span" and e["name"] == "phase3.day"
        ]
        # The fault flush at day 20 persists spans for days <= 20, but
        # nothing beyond the crash point.
        assert max(phase3_days) <= 20
        assert durable_days <= 20
