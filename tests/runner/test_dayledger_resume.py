"""Acceptance: the day ledger survives interruption byte-identically.

An interrupted-then-resumed run must reconstruct ``dayledger.jsonl``
exactly as an uninterrupted same-seed run wrote it -- the ledger is a
run artifact with the same crash-safety contract as the impression
chunks.  A ``repro.obs diff --fail-on drift=0`` over such a pair (the
CI diff-gate) must therefore hold.
"""

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.timeseries import DAYLEDGER_NAME, load_rows
from repro.runner import CheckpointRunner, Fault, FaultPlan, InjectedCrash

from .conftest import assert_results_identical

CHECKPOINT_EVERY = 5

#: Interruption points exercising distinct preload paths: mid-Phase-1
#: (ledger rebuilt from scratch), Phase-3 before any chunk is durable
#: (phase-1 fields preloaded, no market days), between checkpoints
#: (preload discards the un-vouched tail), and at a corrupted durable
#: checkpoint (chunk validation truncates the manifest's view).
SCENARIOS = {
    "mid-phase1": lambda: FaultPlan.crash_at("phase1:day", day=17),
    "phase3-before-first-checkpoint": lambda: FaultPlan.crash_at(
        "phase3:day", day=2
    ),
    "phase3-between-checkpoints": lambda: FaultPlan.crash_at(
        "phase3:day", day=23
    ),
    "corrupt-tail-chunk": lambda: FaultPlan(
        [Fault(site="phase3:checkpoint", day=24, action="truncate-chunk")]
    ),
}


@pytest.fixture(scope="module")
def ledger_reference(runner_config, tmp_path_factory):
    """The uninterrupted run's ledger bytes (and its run dir)."""
    run_dir = tmp_path_factory.mktemp("ledger-ref")
    result = CheckpointRunner(
        runner_config, run_dir, checkpoint_every=CHECKPOINT_EVERY
    ).run(resume=False)
    ledger_path = run_dir / DAYLEDGER_NAME
    assert ledger_path.exists(), "ledgered run wrote no dayledger.jsonl"
    return {
        "dir": run_dir,
        "bytes": ledger_path.read_bytes(),
        "result": result,
    }


def _interrupt(config, run_dir, plan):
    with pytest.raises(InjectedCrash):
        CheckpointRunner(
            config, run_dir, checkpoint_every=CHECKPOINT_EVERY, faults=plan
        ).run(resume=False)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_resumed_ledger_byte_identical(
    scenario, runner_config, ledger_reference, tmp_path
):
    plan = SCENARIOS[scenario]()
    _interrupt(runner_config, tmp_path, plan)
    assert not plan.pending, "fault never fired -- scenario is vacuous"

    resumed = CheckpointRunner(
        runner_config, tmp_path, checkpoint_every=CHECKPOINT_EVERY
    ).run(resume=True)

    assert_results_identical(ledger_reference["result"], resumed)
    assert (
        tmp_path / DAYLEDGER_NAME
    ).read_bytes() == ledger_reference["bytes"]


def test_fresh_vs_resumed_passes_diff_gate(
    runner_config, ledger_reference, tmp_path, capsys
):
    """The CI gate itself: fresh vs resumed diffs clean at drift=0."""
    _interrupt(
        runner_config, tmp_path, FaultPlan.crash_at("phase3:day", day=23)
    )
    CheckpointRunner(
        runner_config, tmp_path, checkpoint_every=CHECKPOINT_EVERY
    ).run(resume=True)

    code = obs_main(
        ["diff", str(ledger_reference["dir"]), str(tmp_path),
         "--fail-on", "drift=0"]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    assert "ok: 1 rule(s) held" in out


def test_ledger_rows_cover_every_day(runner_config, ledger_reference):
    rows = load_rows(ledger_reference["dir"] / DAYLEDGER_NAME)
    assert [row["day"] for row in rows] == list(range(runner_config.days))
    assert all("impressions" in row for row in rows)


def test_unledgered_run_writes_no_ledger_and_same_results(
    runner_config, ledger_reference, tmp_path
):
    """``ledger=False`` is a pure opt-out: no file, identical output."""
    result = CheckpointRunner(
        runner_config, tmp_path, checkpoint_every=CHECKPOINT_EVERY,
        ledger=False,
    ).run(resume=False)
    assert not (tmp_path / DAYLEDGER_NAME).exists()
    assert_results_identical(ledger_reference["result"], result)


def test_resume_of_completed_run_preserves_ledger(
    runner_config, ledger_reference, tmp_path
):
    """Resuming an already-complete run must not rewrite the ledger."""
    run_dir = tmp_path / "done"
    CheckpointRunner(
        runner_config, run_dir, checkpoint_every=CHECKPOINT_EVERY
    ).run(resume=False)
    before = (run_dir / DAYLEDGER_NAME).read_bytes()
    CheckpointRunner(
        runner_config, run_dir, checkpoint_every=CHECKPOINT_EVERY
    ).run(resume=True)
    assert (run_dir / DAYLEDGER_NAME).read_bytes() == before
