"""Checkpoint runner basics: fresh runs, run-dir layout, guard rails."""

import math

import pytest

from repro.errors import ConfigError, SimulationError
from repro.runner import CheckpointRunner, RunManifest
from repro.simulator.engine import RNG_STREAMS

from .conftest import RUNNER_DAYS, assert_results_identical

CHECKPOINT_EVERY = 6


@pytest.fixture(scope="module")
def completed_run(tmp_path_factory, runner_config):
    """One checkpointed run shared by the read-only tests below."""
    run_dir = tmp_path_factory.mktemp("completed-run")
    runner = CheckpointRunner(
        runner_config, run_dir, checkpoint_every=CHECKPOINT_EVERY
    )
    result = runner.run(resume=False)
    return runner, result


class TestFreshRun:
    def test_matches_in_memory_simulation(self, completed_run, baseline):
        _, result = completed_run
        assert_results_identical(baseline, result)

    def test_run_directory_layout(self, completed_run):
        runner, _ = completed_run
        assert runner.manifest_path.exists()
        assert runner.phase1_path.exists()
        assert runner.market_path.exists()
        chunks = sorted(runner.chunk_dir.iterdir())
        assert len(chunks) == math.ceil(RUNNER_DAYS / CHECKPOINT_EVERY)
        assert all(p.suffix == ".npc" for p in chunks)

    def test_manifest_is_complete_and_checksummed(self, completed_run):
        runner, _ = completed_run
        manifest = RunManifest.load(runner.manifest_path)
        assert manifest.phase == "complete"
        assert set(manifest.artifacts) == {
            "phase1.pkl",
            "market.pkl",
            "dayledger.jsonl",
        }
        assert all(len(sha) == 64 for sha in manifest.artifacts.values())
        assert manifest.next_day == RUNNER_DAYS
        for chunk in manifest.chunks:
            assert set(chunk.rng_after) == set(RNG_STREAMS)

    def test_completed_run_reloads_without_resimulating(
        self, completed_run, runner_config, baseline
    ):
        runner, _ = completed_run
        # Tamper-proof probe: a reload must not touch phase 3 again, so
        # an impossible fault plan on the phase3 sites must never fire.
        from repro.runner import FaultPlan

        plan = FaultPlan.crash_at("phase3:day")
        again = CheckpointRunner(
            runner_config,
            runner.run_dir,
            checkpoint_every=CHECKPOINT_EVERY,
            faults=plan,
        ).run(resume=True)
        assert plan.pending  # never reached phase 3
        assert_results_identical(baseline, again)


class TestGuardRails:
    def test_checkpoint_every_must_be_positive(self, runner_config, tmp_path):
        with pytest.raises(ConfigError):
            CheckpointRunner(runner_config, tmp_path, checkpoint_every=0)

    def test_fresh_refuses_existing_run(self, completed_run, runner_config):
        runner, _ = completed_run
        with pytest.raises(SimulationError, match="already contains a run"):
            CheckpointRunner(runner_config, runner.run_dir).run(resume=False)

    def test_resume_requires_manifest(self, runner_config, tmp_path):
        with pytest.raises(SimulationError, match="nothing to resume"):
            CheckpointRunner(runner_config, tmp_path / "void").run(resume=True)

    def test_resume_refuses_different_config(
        self, completed_run, runner_config
    ):
        runner, _ = completed_run
        other = runner_config.with_auction(mainline_slots=3)
        with pytest.raises(SimulationError, match="config hash mismatch"):
            CheckpointRunner(other, runner.run_dir).run(resume=True)

    def test_version_mismatch_warns_on_resume(
        self, completed_run, runner_config, tmp_path
    ):
        """A cross-version resume proceeds, but through warnings.warn

        (catchable/filterable by callers), not a bare stderr print.
        """
        import json
        import shutil

        runner, _ = completed_run
        run_dir = tmp_path / "stale-version"
        shutil.copytree(runner.run_dir, run_dir)
        manifest_path = run_dir / "MANIFEST.json"
        payload = json.loads(manifest_path.read_text())
        payload["package_version"] = "0.0.0-older"
        manifest_path.write_text(json.dumps(payload))
        with pytest.warns(RuntimeWarning, match="written by repro 0.0.0-older"):
            CheckpointRunner(
                runner_config, run_dir, checkpoint_every=CHECKPOINT_EVERY
            ).run(resume=True)
