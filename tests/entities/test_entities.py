"""Tests for ads, campaigns, keyword bids and domain generation."""

import numpy as np
import pytest

from repro.entities import (
    Ad,
    Campaign,
    KeywordBid,
    MatchType,
    sample_domain_count,
    shared_domains,
    unique_domain,
)
from repro.taxonomy.adcopy import AdCopy


class TestKeywordBid:
    def test_phrase(self):
        bid = KeywordBid(("weight", "loss"), MatchType.BROAD, 0.5, 1.0)
        assert bid.phrase == "weight loss"

    def test_empty_keyword_rejected(self):
        with pytest.raises(ValueError):
            KeywordBid((), MatchType.EXACT, 0.5, 1.0)

    def test_nonpositive_bid_rejected(self):
        with pytest.raises(ValueError):
            KeywordBid(("a",), MatchType.EXACT, 0.0, 1.0)

    def test_modification_counter(self):
        bid = KeywordBid(("a",), MatchType.EXACT, 0.5, 1.0)
        bid.record_modification()
        bid.record_modification()
        assert bid.modified_count == 2


class TestAdAndCampaign:
    def _ad(self, campaign_id=1):
        return Ad(
            ad_id=1,
            campaign_id=campaign_id,
            copy=AdCopy("t", "b"),
            display_domain="x.com",
            destination_domain="x.com",
            created_day=0.0,
        )

    def test_campaign_rejects_foreign_ad(self):
        campaign = Campaign(2, 1, "downloads", "US", 0.0)
        with pytest.raises(ValueError):
            campaign.add_ad(self._ad(campaign_id=1))

    def test_campaign_accepts_own_ad(self):
        campaign = Campaign(1, 1, "downloads", "US", 0.0)
        campaign.add_ad(self._ad(campaign_id=1))
        assert len(campaign.ads) == 1

    def test_ad_engagement_validation(self):
        with pytest.raises(ValueError):
            Ad(1, 1, AdCopy("t", "b"), "x.com", "x.com", 0.0, engagement=0.0)


class TestDomains:
    def test_unique_domains_mostly_unique(self, rng):
        domains = {unique_domain(rng) for _ in range(200)}
        assert len(domains) > 190

    def test_shared_domains_stable(self):
        assert "lnk.ly" in shared_domains()
        assert "bountymax.com" in shared_domains()

    def test_single_ad_single_domain(self, rng):
        assert sample_domain_count(rng, 1, is_fraud=True) == 1
        assert sample_domain_count(rng, 1, is_fraud=False) == 1

    def test_fraud_domain_distribution(self, rng):
        counts = np.asarray(
            [sample_domain_count(rng, 30, is_fraud=True) for _ in range(2000)]
        )
        # Section 5.2.4: multi-ad accounts average ~3 domains, p90 large.
        assert 1.5 < counts.mean() < 5.0
        assert np.percentile(counts, 90) >= 3
        assert counts.max() <= 30

    def test_legit_rarely_rotates(self, rng):
        counts = [sample_domain_count(rng, 30, is_fraud=False) for _ in range(500)]
        assert np.mean(counts) < 1.5
