"""Tests for the Advertiser entity."""

import pytest

from repro.entities import (
    AccountStatus,
    Advertiser,
    AdvertiserKind,
    ShutdownReason,
)


def make_advertiser(**overrides):
    defaults = dict(
        advertiser_id=1,
        kind=AdvertiserKind.FRAUD_TYPICAL,
        created_time=10.0,
        country="US",
        language="en",
        currency="USD",
        activity_scale=1.0,
        quality=1.0,
    )
    defaults.update(overrides)
    return Advertiser(**defaults)


class TestLifecycle:
    def test_fraud_flag(self):
        assert make_advertiser().is_fraud
        assert not make_advertiser(kind=AdvertiserKind.LEGITIMATE).is_fraud
        assert make_advertiser(kind=AdvertiserKind.FRAUD_PROLIFIC).is_fraud

    def test_shutdown(self):
        adv = make_advertiser()
        adv.shutdown(12.5, ShutdownReason.CONTENT_FILTER, as_fraud=True)
        assert adv.status is AccountStatus.SHUTDOWN
        assert adv.shutdown_time == 12.5
        assert adv.labeled_fraud
        assert not adv.is_active

    def test_double_shutdown_rejected(self):
        adv = make_advertiser()
        adv.shutdown(12.5, ShutdownReason.BEHAVIORAL, as_fraud=True)
        with pytest.raises(ValueError):
            adv.shutdown(13.0, ShutdownReason.BEHAVIORAL, as_fraud=True)

    def test_shutdown_before_creation_rejected(self):
        adv = make_advertiser()
        with pytest.raises(ValueError):
            adv.shutdown(5.0, ShutdownReason.BEHAVIORAL, as_fraud=True)

    def test_active_at(self):
        adv = make_advertiser()
        assert not adv.active_at(9.0)
        assert adv.active_at(10.0)
        adv.shutdown(20.0, ShutdownReason.BEHAVIORAL, as_fraud=True)
        assert adv.active_at(19.9)
        assert not adv.active_at(20.0)

    def test_record_first_ad_keeps_earliest(self):
        adv = make_advertiser()
        adv.record_first_ad(15.0)
        adv.record_first_ad(20.0)
        assert adv.first_ad_time == 15.0
        adv.record_first_ad(12.0)
        assert adv.first_ad_time == 12.0

    def test_lifetimes(self):
        adv = make_advertiser()
        assert adv.lifetime_from_registration() is None
        adv.record_first_ad(11.0)
        adv.shutdown(14.0, ShutdownReason.PAYMENT_FRAUD, as_fraud=True)
        assert adv.lifetime_from_registration() == pytest.approx(4.0)
        assert adv.lifetime_from_first_ad() == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_advertiser(activity_scale=0.0)
        with pytest.raises(ValueError):
            make_advertiser(quality=-1.0)
        with pytest.raises(ValueError):
            make_advertiser(evasion_skill=1.5)
