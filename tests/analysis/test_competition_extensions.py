"""Tests for the Section 6.1 prose extensions."""

import numpy as np
import pytest

from repro.analysis.competition import CompetitionAnalyzer
from repro.analysis.subsets import SubsetBuilder
from repro.errors import SubsetError


@pytest.fixture(scope="module")
def builder(sim_result, sim_window):
    return SubsetBuilder(sim_result, sim_window, target_size=300)


class TestCoFraudCounts:
    def test_counts_positive_on_influenced_rows(
        self, sim_result, sim_window, builder
    ):
        analyzer = CompetitionAnalyzer(sim_result, sim_window)
        subset = builder.build("F with clicks")
        counts, weights = analyzer.co_fraud_counts(subset.ids())
        assert len(counts) == len(weights)
        # Influenced rows by definition have >= 1 co-fraud competitor.
        if counts.size:
            assert counts.min() >= 1

    def test_fraud_faces_more_co_fraud_than_nonfraud(
        self, sim_result, sim_window, builder
    ):
        analyzer = CompetitionAnalyzer(sim_result, sim_window)
        f_counts, f_weights = analyzer.co_fraud_counts(
            builder.build("F with clicks").ids()
        )
        nf_counts, nf_weights = analyzer.co_fraud_counts(
            builder.build("NF with clicks").ids()
        )
        if f_counts.size and nf_counts.size:
            f_mean = np.average(f_counts, weights=f_weights)
            nf_mean = np.average(nf_counts, weights=nf_weights)
            assert f_mean >= nf_mean - 0.2


class TestKeywordOverlapSubset:
    def test_builds(self, builder):
        subset = builder.build("NF keyword overlap")
        assert len(subset) > 0
        assert all(not a.labeled_fraud for a in subset.accounts)

    def test_members_share_verticals_with_fraud(self, builder):
        subset = builder.build("NF keyword overlap")
        fraud_verticals = {
            v
            for a in builder._fraud_pool  # noqa: SLF001 - test introspection
            for v in a.verticals
        }
        for account in subset.accounts:
            assert set(account.verticals) & fraud_verticals

    def test_overlap_subset_more_affected_than_random_nf(
        self, sim_result, sim_window, builder
    ):
        analyzer = CompetitionAnalyzer(sim_result, sim_window)

        def mean_affected(subset):
            values = [
                analyzer.affected_impression_share(a.advertiser_id)
                for a in subset.accounts
            ]
            values = [v for v in values if not np.isnan(v)]
            return np.mean(values) if values else 0.0

        overlap = mean_affected(builder.build("NF keyword overlap"))
        random_nf = mean_affected(builder.build("Nonfraud"))
        assert overlap >= random_nf
