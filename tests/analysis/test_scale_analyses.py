"""Tests for the Section-4 analyses: registration, lifetimes, activity,
concentration."""

import numpy as np
import pytest

from repro.analysis.activity import weekly_fraud_activity
from repro.analysis.concentration import fraud_concentration, top_share
from repro.analysis.lifetimes import fraud_lifetimes, preads_shutdown_share
from repro.analysis.registration import fraud_registration_share
from repro.errors import AnalysisError
from repro.timeline import DAYS_PER_WEEK, Window


class TestRegistrationShare:
    def test_series_shape(self, sim_result):
        series = fraud_registration_share(sim_result)
        assert len(series.months) == len(series.fraud_share)
        assert (series.fraud_share >= 0).all()
        assert (series.fraud_share <= 1).all()

    def test_counts_sum_to_accounts(self, sim_result):
        series = fraud_registration_share(sim_result)
        assert series.registrations.sum() == len(sim_result.accounts)

    def test_share_in_paper_band(self, sim_result):
        series = fraud_registration_share(sim_result)
        populated = series.fraud_share[series.registrations > 0]
        assert 0.25 < populated.mean() < 0.65


class TestLifetimes:
    def test_curves_present(self, sim_result):
        curves = fraud_lifetimes(sim_result)
        assert "Year 1 (account)" in curves.keys()
        assert "Year 1 (ad)" in curves.keys()

    def test_lifetimes_nonnegative(self, sim_result):
        curves = fraud_lifetimes(sim_result)
        for key in curves.keys():
            curve = curves[key]
            if len(curve):
                assert (curve.x >= 0).all()

    def test_median_under_a_day(self, sim_result):
        curve = fraud_lifetimes(sim_result)["Year 1 (account)"]
        assert curve.median < 2.0

    def test_preads_share(self, sim_result):
        share = preads_shutdown_share(sim_result)
        assert 0.15 < share < 0.55


class TestWeeklyActivity:
    def test_lengths(self, sim_result):
        activity = weekly_fraud_activity(sim_result)
        expected = sim_result.config.days // DAYS_PER_WEEK + 1
        assert len(activity) == expected

    def test_spend_normalized(self, sim_result):
        activity = weekly_fraud_activity(sim_result)
        peak = max(
            activity.spend_in_window.max(), activity.spend_out_of_window.max()
        )
        assert peak == pytest.approx(1.0)

    def test_split_covers_all_fraud_spend(self, sim_result):
        activity = weekly_fraud_activity(sim_result)
        table = sim_result.impressions
        total = table.spend[table.fraud_labeled].sum()
        recovered = (
            activity.spend_in_window.sum() + activity.spend_out_of_window.sum()
        ) * activity.spend_norm
        assert recovered == pytest.approx(total, rel=1e-6)

    def test_nonnegative(self, sim_result):
        activity = weekly_fraud_activity(sim_result)
        for series in (
            activity.spend_in_window,
            activity.spend_out_of_window,
            activity.clicks_in_window,
            activity.clicks_out_of_window,
        ):
            assert (series >= 0).all()


class TestConcentration:
    def test_top_share_bounds(self):
        values = np.array([100.0] + [1.0] * 99)
        assert top_share(values, 0.1) > 0.5
        assert top_share(np.ones(100), 0.1) == pytest.approx(0.1)

    def test_top_share_validation(self):
        with pytest.raises(AnalysisError):
            top_share(np.ones(5), 0.0)

    def test_zero_mass_nan(self):
        assert np.isnan(top_share(np.zeros(5)))

    def test_curves(self, sim_result, sim_window):
        curves = fraud_concentration(sim_result, {"w": sim_window})
        assert "w" in curves.spend or "w" in curves.clicks
        for proportion, share in curves.spend.values():
            assert share[-1] == pytest.approx(1.0)
            assert (np.diff(share) >= -1e-12).all()

    def test_fraud_clicks_concentrated(self, sim_result, sim_window):
        curves = fraud_concentration(sim_result, {"w": sim_window})
        if "w" not in curves.clicks:
            pytest.skip("no fraud clicks in window")
        _, share = curves.clicks["w"]
        if len(share) < 30:
            pytest.skip("too few fraud advertisers for a stable decile")
        index = max(0, int(0.1 * len(share)) - 1)
        # Top 10% should hold far more than their 10% head count.
        assert share[index] > 0.25
