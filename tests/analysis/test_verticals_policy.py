"""Tests tying the vertical-spend analysis to the policy timeline."""

import numpy as np
import pytest

from repro import run_simulation, small_config
from repro.analysis.verticals import vertical_spend_by_month


@pytest.fixture(scope="module")
def banned_result():
    config = small_config(seed=41, days=180).with_detection(
        techsupport_ban_day=90.0
    )
    return run_simulation(config)


class TestPolicyShape:
    def test_techsupport_present_before_ban(self, banned_result):
        series = vertical_spend_by_month(banned_result).series["techsupport"]
        assert series[:3].sum() > 0

    def test_techsupport_collapses_after_ban(self, banned_result):
        series = vertical_spend_by_month(banned_result).series["techsupport"]
        before = series[:3].mean()
        after = series[4:].mean()
        assert after < before

    def test_other_verticals_survive_ban(self, banned_result):
        all_series = vertical_spend_by_month(banned_result).series
        others = sum(
            values[4:].sum()
            for name, values in all_series.items()
            if name != "techsupport"
        )
        assert others > 0

    def test_new_entrants_adapt(self, banned_result):
        """Fraud registered well after the ban avoids the vertical."""
        adapted = [
            a
            for a in banned_result.accounts
            if a.is_fraud_ground_truth and a.created_time > 90.0 + 35.0
        ]
        assert adapted, "expected post-ban fraud registrations"
        offenders = [
            a for a in adapted if "techsupport" in a.verticals
        ]
        assert len(offenders) == 0
