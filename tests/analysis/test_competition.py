"""Tests for the Section-6 competition analyses."""

import numpy as np
import pytest

from repro.analysis.competition import (
    CompetitionAnalyzer,
    affected_share_distributions,
    cpc_distributions,
    ctr_distributions,
    position_distributions,
    top_position_probability,
)
from repro.analysis.subsets import SubsetBuilder
from repro.taxonomy.verticals import dubious_vertical_names
from repro.records.codes import vertical_code


@pytest.fixture(scope="module")
def analyzer(sim_result, sim_window):
    return CompetitionAnalyzer(sim_result, sim_window)


@pytest.fixture(scope="module")
def subsets(sim_result, sim_window):
    builder = SubsetBuilder(sim_result, sim_window, target_size=300)
    return {
        name: builder.build(name)
        for name in ("F with clicks", "NF with clicks")
    }


class TestAnalyzer:
    def test_affected_share_bounds(self, analyzer, subsets):
        for subset in subsets.values():
            for account in subset.accounts:
                share = analyzer.affected_impression_share(account.advertiser_id)
                assert np.isnan(share) or 0.0 <= share <= 1.0

    def test_unknown_advertiser_nan(self, analyzer):
        assert np.isnan(analyzer.affected_impression_share(10**9))
        assert np.isnan(analyzer.ctr(10**9, influenced=False))
        assert np.isnan(analyzer.cpc(10**9, influenced=True))

    def test_ctr_bounds(self, analyzer, subsets):
        for account in subsets["NF with clicks"].accounts[:50]:
            ctr = analyzer.ctr(account.advertiser_id, influenced=False)
            assert np.isnan(ctr) or 0.0 <= ctr <= 1.0

    def test_organic_plus_influenced_partition(self, analyzer, subsets):
        """Organic and influenced positions partition all impressions."""
        ids = subsets["NF with clicks"].ids()
        organic_pos, organic_w = analyzer.pooled_positions(ids, False)
        influenced_pos, influenced_w = analyzer.pooled_positions(ids, True)
        member = np.isin(analyzer._ids, ids)
        total = analyzer._weight[member].sum()
        assert organic_w.sum() + influenced_w.sum() == pytest.approx(total)

    def test_dubious_only_filter(self, sim_result, sim_window):
        dubious = CompetitionAnalyzer(sim_result, sim_window, dubious_only=True)
        full = CompetitionAnalyzer(sim_result, sim_window)
        assert len(dubious) <= len(full)
        codes = {vertical_code(name) for name in dubious_vertical_names()}
        table = sim_result.impressions.in_window(sim_window.start, sim_window.end)
        expected = int(np.isin(table.vertical, list(codes)).sum())
        assert len(dubious) == expected


class TestDistributions:
    def test_affected_distributions(self, analyzer, subsets):
        shares = affected_share_distributions(analyzer, subsets)
        assert set(shares.curves) == set(subsets)

    def test_affected_by_spend(self, analyzer, subsets):
        shares = affected_share_distributions(analyzer, subsets, by="spend")
        for curve in shares.curves.values():
            if len(curve):
                assert (curve.x >= 0).all() and (curve.x <= 1).all()

    def test_position_distributions(self, analyzer, subsets):
        curves = position_distributions(analyzer, subsets)
        assert "NF with clicks (organic)" in curves.curves
        organic = curves.curves["NF with clicks (organic)"]
        if len(organic):
            assert organic.x.min() >= 1

    def test_ctr_distributions(self, analyzer, subsets):
        curves = ctr_distributions(analyzer, subsets)
        assert "F with clicks (organic)" in curves.curves

    def test_cpc_normalization(self, analyzer, subsets):
        curves = cpc_distributions(
            analyzer, subsets, norm_subset=subsets["NF with clicks"]
        )
        assert curves.norm > 0
        organic = curves.curves["NF with clicks (organic)"]
        if len(organic):
            # Normalized by its own median: median must be ~1.
            assert organic.median == pytest.approx(1.0, rel=0.25)

    def test_top_position_probability(self, analyzer, subsets):
        prob = top_position_probability(
            analyzer, subsets["NF with clicks"], influenced=False
        )
        assert np.isnan(prob) or 0.0 <= prob <= 1.0


class TestCompetitionEffects:
    def test_fraud_more_affected_than_nonfraud(self, analyzer, subsets):
        f_shares = [
            analyzer.affected_impression_share(a.advertiser_id)
            for a in subsets["F with clicks"].accounts
        ]
        nf_shares = [
            analyzer.affected_impression_share(a.advertiser_id)
            for a in subsets["NF with clicks"].accounts
        ]
        f_shares = [s for s in f_shares if not np.isnan(s)]
        nf_shares = [s for s in nf_shares if not np.isnan(s)]
        if f_shares and nf_shares:
            assert np.mean(f_shares) > np.mean(nf_shares)
