"""Tests for empirical CDF utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.cdf import ecdf, lorenz_curve, quantile, weighted_ecdf
from repro.errors import AnalysisError

FLOATS = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=200
)


class TestEcdf:
    def test_basic(self):
        curve = ecdf([3.0, 1.0, 2.0])
        np.testing.assert_allclose(curve.x, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(curve.y, [1 / 3, 2 / 3, 1.0])

    def test_at(self):
        curve = ecdf([1.0, 2.0, 3.0])
        assert curve.at(0.5) == 0.0
        assert curve.at(1.0) == pytest.approx(1 / 3)
        assert curve.at(2.5) == pytest.approx(2 / 3)
        assert curve.at(99.0) == 1.0

    def test_median(self):
        assert ecdf([1.0, 2.0, 3.0]).median == 2.0

    def test_quantile_bounds(self):
        curve = ecdf([1.0])
        with pytest.raises(AnalysisError):
            curve.quantile(1.5)

    def test_nan_dropped(self):
        curve = ecdf([1.0, np.nan, 2.0])
        assert len(curve) == 2

    def test_empty(self):
        curve = ecdf([])
        assert len(curve) == 0
        assert np.isnan(curve.at(1.0))
        assert np.isnan(curve.median)

    @given(FLOATS)
    def test_properties(self, values):
        curve = ecdf(values)
        # y monotone in (0, 1], x sorted.
        assert (np.diff(curve.x) >= 0).all()
        assert (np.diff(curve.y) > 0).all() or len(curve) == 1
        assert curve.y[-1] == pytest.approx(1.0)
        # Median is an actual data point.
        assert curve.median in curve.x

    @given(FLOATS)
    def test_at_is_fraction_leq(self, values):
        curve = ecdf(values)
        probe = values[0]
        expected = np.mean([v <= probe for v in values])
        assert curve.at(probe) == pytest.approx(expected)


class TestWeightedEcdf:
    def test_weights_shift_mass(self):
        curve = weighted_ecdf([1.0, 2.0], [3.0, 1.0])
        assert curve.at(1.0) == pytest.approx(0.75)

    def test_zero_weights_dropped(self):
        curve = weighted_ecdf([1.0, 2.0], [0.0, 1.0])
        assert len(curve) == 1

    def test_mismatched_shapes(self):
        with pytest.raises(AnalysisError):
            weighted_ecdf([1.0], [1.0, 2.0])

    def test_reduces_to_unweighted(self):
        values = [5.0, 1.0, 3.0]
        uniform = weighted_ecdf(values, [1.0] * 3)
        plain = ecdf(values)
        np.testing.assert_allclose(uniform.x, plain.x)
        np.testing.assert_allclose(uniform.y, plain.y)


class TestLorenz:
    def test_uniform_values_linear(self):
        proportion, share = lorenz_curve([1.0] * 10)
        np.testing.assert_allclose(share, proportion)

    def test_concentrated(self):
        proportion, share = lorenz_curve([100.0] + [1.0] * 99)
        # First 1% of entities holds ~50% of mass.
        assert share[0] > 0.5

    def test_needs_positive_mass(self):
        with pytest.raises(AnalysisError):
            lorenz_curve([0.0, 0.0])

    def test_monotone(self):
        _, share = lorenz_curve([5.0, 1.0, 3.0, 0.5])
        assert (np.diff(share) >= 0).all()
        assert share[-1] == pytest.approx(1.0)


class TestQuantileHelper:
    def test_quantile(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) in (2.0, 3.0)
