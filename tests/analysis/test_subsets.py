"""Tests for the eleven subset types of Section 3.3."""

import numpy as np
import pytest

from repro.analysis.subsets import ALL_SUBSETS, SubsetBuilder
from repro.errors import SubsetError


@pytest.fixture(scope="module")
def builder(sim_result, sim_window):
    return SubsetBuilder(sim_result, sim_window, target_size=400)


class TestBuildAll:
    def test_all_names_build(self, builder):
        subsets = builder.build_many()
        assert set(subsets) == set(ALL_SUBSETS)
        for subset in subsets.values():
            assert len(subset) > 0

    def test_unknown_name(self, builder):
        with pytest.raises(SubsetError):
            builder.build("F nonsense")

    def test_target_size_respected(self, builder):
        for name in ("Fraud", "Nonfraud"):
            assert len(builder.build(name)) <= 400


class TestMembership:
    def test_fraud_subsets_only_fraud(self, builder):
        for name in ("Fraud", "F with clicks", "F spend weight", "F volume weight"):
            for account in builder.build(name).accounts:
                assert account.labeled_fraud

    def test_nonfraud_subsets_only_nonfraud(self, builder):
        for name in ("Nonfraud", "NF with clicks", "NF spend match", "NF rate match"):
            for account in builder.build(name).accounts:
                assert not account.labeled_fraud

    def test_alive_during_window(self, builder, sim_window):
        for account in builder.build("Fraud").accounts:
            assert account.alive_during(sim_window.start, sim_window.end)

    def test_with_clicks_requires_clicks(self, builder):
        for account in builder.build("F with clicks").accounts:
            assert builder.clicks_of(account) > 0

    def test_weighted_requires_positive_metric(self, builder):
        for account in builder.build("NF spend weight").accounts:
            assert builder.spend_of(account) > 0

    def test_no_duplicates(self, builder):
        for name in ALL_SUBSETS:
            ids = builder.build(name).ids()
            assert len(ids) == len(set(ids.tolist()))


class TestWeighting:
    def test_spend_weight_skews_heavy(self, builder):
        """Spend-weighted sampling concentrates spend mass: the sampled
        subset holds a larger share of total pool spend than a uniform
        sample of the same accounts-with-spend pool."""
        weighted = builder.build("NF spend weight")
        uniform = builder.build("NF with clicks")
        w_total = sum(builder.spend_of(a) for a in weighted.accounts)
        u_total = sum(builder.spend_of(a) for a in uniform.accounts)
        # Same pool sizes here (both truncated at target), so totals are
        # directly comparable; weighting must not *lose* spend mass.
        assert w_total >= 0.8 * u_total

    def test_build_idempotent_and_order_independent(self, builder):
        first = builder.build("NF spend weight").ids().tolist()
        builder.build("Fraud")  # interleave other builds
        builder.build("NF with clicks")
        second = builder.build("NF spend weight").ids().tolist()
        assert first == second


class TestMatching:
    def test_spend_match_tracks_reference(self, builder):
        reference = builder.build("F spend weight")
        matched = builder.build("NF spend match")
        assert len(matched) <= len(reference)
        ref = np.sort([builder.spend_of(a) for a in reference.accounts])
        got = np.sort([builder.spend_of(a) for a in matched.accounts])
        # Matched distribution should be far closer to the fraud
        # reference than a uniform nonfraud sample is.
        uniform = builder.build("Nonfraud")
        uni = np.sort(
            [
                builder.spend_of(a)
                for a in uniform.accounts[: len(matched)]
            ]
        )
        n = min(len(ref), len(got), len(uni))
        if n >= 5:
            matched_gap = np.median(np.abs(ref[:n] - got[:n]))
            uniform_gap = np.median(np.abs(ref[:n] - uni[:n]))
            assert matched_gap <= uniform_gap + 1e-9

    def test_rate_match_uses_rates(self, builder, sim_window):
        matched = builder.build("NF rate match")
        assert all(not a.labeled_fraud for a in matched.accounts)
        # rate_of never negative; matched accounts should mostly have
        # comparable (positive) rates.
        rates = [builder.rate_of(a) for a in matched.accounts]
        assert all(r >= 0 for r in rates)


class TestDeterminism:
    def test_same_builder_inputs_same_subsets(self, sim_result, sim_window):
        a = SubsetBuilder(sim_result, sim_window, target_size=100)
        b = SubsetBuilder(sim_result, sim_window, target_size=100)
        assert a.build("Fraud").ids().tolist() == b.build("Fraud").ids().tolist()
