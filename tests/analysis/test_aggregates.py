"""Tests for per-advertiser aggregation."""

import numpy as np

from repro.analysis.aggregates import aggregate_by_advertiser
from repro.records.impressions import ImpressionBuilder


def table_from(rows):
    builder = ImpressionBuilder()
    for advertiser_id, weight, clicks, spend in rows:
        builder.add(
            1.0, advertiser_id, 1, 0, 0, 0, 1, True, weight, clicks, spend,
            0.5, 1, 0, False,
        )
    return builder.build()


class TestAggregation:
    def test_sums_per_advertiser(self):
        table = table_from([(1, 10, 2, 1.0), (1, 20, 3, 2.0), (2, 5, 1, 0.5)])
        agg = aggregate_by_advertiser(table)
        assert agg.impressions_of(1) == 30
        assert agg.clicks_of(1) == 5
        assert agg.spend_of(1) == 3.0
        assert agg.impressions_of(2) == 5

    def test_missing_advertiser_zero(self):
        agg = aggregate_by_advertiser(table_from([(1, 10, 2, 1.0)]))
        assert agg.impressions_of(42) == 0.0
        assert agg.clicks_of(42) == 0.0
        assert agg.spend_of(42) == 0.0

    def test_mask(self):
        table = table_from([(1, 10, 2, 1.0), (1, 20, 3, 2.0)])
        agg = aggregate_by_advertiser(table, mask=table.weight > 15)
        assert agg.impressions_of(1) == 20

    def test_empty(self):
        agg = aggregate_by_advertiser(table_from([]))
        assert len(agg) == 0
        assert agg.clicks_of(1) == 0.0

    def test_as_dicts(self):
        table = table_from([(3, 10, 2, 1.0), (7, 5, 1, 0.5)])
        impressions, clicks, spend = aggregate_by_advertiser(table).as_dicts()
        assert impressions == {3: 10.0, 7: 5.0}
        assert clicks == {3: 2.0, 7: 1.0}
        assert spend == {3: 1.0, 7: 0.5}

    def test_ids_sorted(self):
        table = table_from([(9, 1, 0, 0.0), (2, 1, 0, 0.0), (5, 1, 0, 0.0)])
        agg = aggregate_by_advertiser(table)
        assert agg.advertiser_ids.tolist() == sorted(agg.advertiser_ids.tolist())
        assert (np.diff(agg.advertiser_ids) > 0).all()
