"""Tests for the Section 4.2 / 5.2.4 extension analyses."""

import numpy as np
import pytest

from repro.analysis.domains import fraud_domain_usage
from repro.analysis.effectiveness import advertiser_effectiveness


class TestEffectiveness:
    def test_stats_populated(self, sim_result, sim_window):
        stats = advertiser_effectiveness(sim_result, sim_window)
        assert 0.0 <= stats.nonfraud_median_ctr <= 1.0
        if not np.isnan(stats.fraud_median_ctr):
            assert 0.0 <= stats.fraud_median_ctr <= 1.0

    def test_cpc_positive(self, sim_result, sim_window):
        stats = advertiser_effectiveness(sim_result, sim_window)
        if not np.isnan(stats.nonfraud_median_cpc):
            assert stats.nonfraud_median_cpc > 0

    def test_top_fraud_pays_more(self, sim_result, sim_window):
        """Sec 4.2: the top fraud spenders sit in the upper CPC range."""
        stats = advertiser_effectiveness(sim_result, sim_window)
        if not np.isnan(stats.top_fraud_median_cpc) and not np.isnan(
            stats.fraud_median_cpc
        ):
            assert stats.top_fraud_median_cpc >= stats.fraud_median_cpc

    def test_quantile_bounds(self, sim_result, sim_window):
        stats = advertiser_effectiveness(sim_result, sim_window)
        if not np.isnan(stats.top_fraud_cpc_quantile):
            assert 0.0 <= stats.top_fraud_cpc_quantile <= 1.0


class TestDomains:
    def test_stats(self, sim_result):
        stats = fraud_domain_usage(sim_result)
        assert stats.n_accounts > 0
        assert 0.0 <= stats.single_domain_share <= 1.0
        assert stats.three_or_fewer_share >= stats.single_domain_share

    def test_paper_bands(self, sim_result):
        """Sec 5.2.4: ~74% single domain, ~96% three or fewer."""
        stats = fraud_domain_usage(sim_result)
        assert stats.single_domain_share > 0.5
        assert stats.three_or_fewer_share > 0.85

    def test_multi_ad_rotation(self, sim_result):
        """Multi-ad fraud accounts rotate more domains."""
        stats = fraud_domain_usage(sim_result)
        if stats.n_multi_ad_accounts >= 20:
            assert stats.multi_ad_mean > 1.0
            assert stats.multi_ad_p90 >= stats.multi_ad_mean
