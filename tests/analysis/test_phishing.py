"""Tests for the phishing/impersonation analysis (Section 5.2.2)."""

import numpy as np

from repro.analysis.phishing import phishing_summary


class TestPhishing:
    def test_small_share_of_fraud(self, sim_result):
        """Phishing is a small slice of fraudulent activity."""
        stats = phishing_summary(sim_result)
        assert 0.0 <= stats.phishing_spend_share < 0.3

    def test_shares_bounded(self, sim_result):
        stats = phishing_summary(sim_result)
        assert 0.0 <= stats.impersonation_spend_share <= 1.0
        total = stats.phishing_spend_share + stats.impersonation_spend_share
        assert total <= 1.0

    def test_phishing_dies_fast(self, sim_result):
        """Brand blacklisting catches phishing quickly: its median
        lifetime does not exceed other fraud's by much."""
        stats = phishing_summary(sim_result)
        if stats.n_phishing_accounts >= 10 and not np.isnan(
            stats.phishing_median_lifetime
        ):
            assert (
                stats.phishing_median_lifetime
                <= 3.0 * stats.other_fraud_median_lifetime + 0.5
            )

    def test_accounts_counted(self, sim_result):
        stats = phishing_summary(sim_result)
        assert stats.n_phishing_accounts >= 0
