"""Tests for Section-5 analyses: rates, targeting, verticals, geography,
bidding."""

import numpy as np
import pytest

from repro.analysis.bidding import (
    above_default_share,
    bid_level_distributions,
    clicks_by_match_type,
    match_mix_distributions,
)
from repro.analysis.geography import (
    fraud_clicks_by_country,
    registration_country_table,
)
from repro.analysis.rates import impression_rates, rate_vs_clicks
from repro.analysis.subsets import SubsetBuilder
from repro.analysis.targeting import count_in_window, targeting_distributions
from repro.analysis.verticals import vertical_spend_by_month
from repro.errors import AnalysisError
from repro.timeline import Window


@pytest.fixture(scope="module")
def subsets(sim_result, sim_window):
    return SubsetBuilder(sim_result, sim_window, target_size=400).build_many()


class TestRates:
    def test_distributions(self, sim_result, sim_window):
        rates = impression_rates(sim_result, sim_window)
        assert len(rates.fraud) > 0
        assert len(rates.nonfraud) > 0
        assert (rates.fraud.x > 0).all()

    def test_fraud_faster(self, sim_result, sim_window):
        rates = impression_rates(sim_result, sim_window)
        assert rates.fraud.median > rates.nonfraud.median

    def test_scatter_alignment(self, sim_result, sim_window):
        scatter = rate_vs_clicks(sim_result, sim_window)
        assert len(scatter.fraud_rate) == len(scatter.fraud_clicks)
        assert len(scatter.nonfraud_rate) == len(scatter.nonfraud_clicks)
        assert (scatter.nonfraud_clicks >= 0).all()


class TestTargeting:
    def test_count_in_window(self):
        times = np.array([1.0, 2.0, 5.0, 9.0])
        assert count_in_window(times, Window(2.0, 9.0)) == 2
        assert count_in_window(np.array([]), Window(0.0, 1.0)) == 0

    def test_distributions(self, subsets, sim_window):
        dist = targeting_distributions(subsets, sim_window)
        for kind in ("ads_created", "kw_created", "ads_modified", "kw_modified"):
            panel = dist.panel(kind)
            assert "F with clicks" in panel
        assert dist.norms["ads_created"] >= 1.0

    def test_unknown_panel(self, subsets, sim_window):
        dist = targeting_distributions(subsets, sim_window)
        with pytest.raises(AnalysisError):
            dist.panel("bogus")

    def test_fraud_footprint_smaller(self, subsets, sim_window):
        dist = targeting_distributions(subsets, sim_window)
        fraud = dist.panel("kw_created")["F with clicks"]
        nonfraud = dist.panel("kw_created")["NF with clicks"]
        assert fraud.median < nonfraud.median

    def test_norm_requires_reference(self, subsets, sim_window):
        partial = {k: v for k, v in subsets.items() if k != "NF with clicks"}
        with pytest.raises(AnalysisError):
            targeting_distributions(partial, sim_window)


class TestVerticals:
    def test_series(self, sim_result):
        series = vertical_spend_by_month(sim_result)
        assert "techsupport" in series.series
        for values in series.series.values():
            assert len(values) == len(series.months)
            assert (values >= 0).all()

    def test_top_verticals_ranked(self, sim_result):
        series = vertical_spend_by_month(sim_result)
        top = series.top_verticals(3)
        totals = [series.series[name].sum() for name in top]
        assert totals == sorted(totals, reverse=True)

    def test_spend_filter_reduces(self, sim_result):
        full = vertical_spend_by_month(sim_result)
        filtered = vertical_spend_by_month(sim_result, min_monthly_spend=1e12)
        assert sum(v.sum() for v in filtered.series.values()) <= sum(
            v.sum() for v in full.series.values()
        )


class TestGeography:
    def test_click_table(self, sim_result, sim_window):
        rows = fraud_clicks_by_country(sim_result, sim_window)
        shares = [r.share_of_fraud for r in rows]
        assert sum(shares) == pytest.approx(1.0, abs=1e-6)
        assert all(0 <= r.share_of_country <= 1 for r in rows)
        assert shares == sorted(shares, reverse=True)

    def test_registration_table(self, subsets):
        table = registration_country_table(
            {"Fraud": subsets["Fraud"]}, top=5
        )
        entries = table["Fraud"]
        assert len(entries) <= 5
        percentages = [p for _, p in entries]
        assert percentages == sorted(percentages, reverse=True)
        assert entries[0][0] == "US"


class TestBidding:
    def test_match_mix_curves(self, subsets):
        mixes = match_mix_distributions(subsets)
        for name in ("exact", "phrase", "broad"):
            assert "F with clicks" in mixes.curves[name]
        fraud_broad = mixes.curves["broad"]["F with clicks"]
        nonfraud_broad = mixes.curves["broad"]["NF with clicks"]
        if len(fraud_broad) and len(nonfraud_broad):
            # Fraud leans on broad/phrase more than nonfraud.
            assert fraud_broad.at(0.05) <= nonfraud_broad.at(0.05) + 0.3

    def test_bid_levels_positive(self, subsets):
        levels = bid_level_distributions(subsets, default_max_bid=0.5)
        for name in ("exact", "phrase", "broad"):
            for curve in levels.curves[name].values():
                if len(curve):
                    assert (curve.x > 0).all()

    def test_clicks_by_match_type(self, sim_result, sim_window):
        rows = clicks_by_match_type(sim_result, sim_window)
        assert [r.match_type for r in rows] == ["exact", "phrase", "broad"]
        fraud_total = sum(
            r.fraud_click_share for r in rows if not np.isnan(r.fraud_click_share)
        )
        assert fraud_total == pytest.approx(1.0, abs=1e-6)

    def test_above_default_share(self, subsets):
        share = above_default_share(subsets["NF with clicks"])
        assert 0.0 <= share <= 1.0

    def test_above_default_empty(self):
        from repro.analysis.subsets import Subset

        assert np.isnan(above_default_share(Subset("empty", ())))
