"""Shape assertions per figure: the qualitative geometry each paper
figure communicates must hold on the shared test simulation.

These complement tests/experiments/test_experiments.py (which only
checks that everything runs): here each figure's *ordering* claims are
pinned.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentContext, run_experiment


@pytest.fixture(scope="module")
def context(sim_config, sim_result):
    return ExperimentContext(sim_config, result=sim_result, subset_target=300)


def curves_of(output, chart_index=0):
    return output.charts[chart_index].cdfs


class TestFig1Shape:
    def test_share_rises_over_study(self, context):
        output = run_experiment("fig1", context)
        assert (
            output.metrics["mean_share_second_half"]
            > output.metrics["mean_share_first_half"]
        )


class TestFig2Shape:
    def test_ad_lifetimes_shorter_than_account(self, context):
        """Lifetime from first ad is never longer than from creation."""
        output = run_experiment("fig2", context)
        if (
            "median_lifetime_from_first_ad_y1" in output.metrics
            and "median_lifetime_from_registration_y1" in output.metrics
        ):
            assert (
                output.metrics["median_lifetime_from_first_ad_y1"]
                <= output.metrics["median_lifetime_from_registration_y1"] + 0.5
            )


class TestFig4Shape:
    def test_curves_monotone(self, context):
        output = run_experiment("fig4", context)
        for chart in output.charts:
            for x, y in chart.series.values():
                assert (np.diff(y) >= -1e-9).all()


class TestFig5Shape:
    def test_fraud_cdf_right_of_nonfraud(self, context):
        output = run_experiment("fig5", context)
        curves = curves_of(output)
        fraud, nonfraud = curves["Fraud"], curves["Nonfraud"]
        if len(fraud) and len(nonfraud):
            assert fraud.median > nonfraud.median


class TestFig7Shape:
    def test_fraud_left_of_nonfraud_in_creations(self, context):
        output = run_experiment("fig7", context)
        ads_panel = output.charts[0].cdfs
        fraud = ads_panel.get("F with clicks")
        nonfraud = ads_panel.get("NF with clicks")
        if fraud is not None and nonfraud is not None and len(fraud) and len(nonfraud):
            assert fraud.median < nonfraud.median

    def test_nf_with_clicks_normalized_median_near_one(self, context):
        output = run_experiment("fig7", context)
        nonfraud = output.charts[0].cdfs.get("NF with clicks")
        if nonfraud is not None and len(nonfraud):
            # Normalized by its own creation median.
            assert 0.4 < nonfraud.median < 2.5


class TestFig9Shape:
    def test_fraud_heavier_on_broad(self, context):
        output = run_experiment("fig9", context)
        broad_panel = output.charts[0].cdfs  # panel (a): broad proportions
        fraud = broad_panel.get("F with clicks")
        nonfraud = broad_panel.get("NF with clicks")
        if fraud is not None and nonfraud is not None and len(fraud) and len(nonfraud):
            # NF CDF sits above (more mass at low broad shares).
            assert nonfraud.at(0.1) >= fraud.at(0.1) - 0.15


class TestFig10Fig11Shape:
    def test_fraud_curves_right_of_nonfraud(self, context):
        for experiment_id in ("fig10", "fig11"):
            output = run_experiment(experiment_id, context)
            curves = curves_of(output)
            fraud = curves.get("F with clicks")
            nonfraud = curves.get("NF with clicks")
            if (
                fraud is not None
                and nonfraud is not None
                and len(fraud)
                and len(nonfraud)
            ):
                # NF has far more mass at zero-affected.
                assert nonfraud.at(0.01) >= fraud.at(0.01)


class TestFig12Shape:
    def test_influence_pushes_positions_down(self, context):
        output = run_experiment("fig12", context)
        organic = output.metrics.get("nf_top_position_organic")
        influenced = output.metrics.get("nf_top_position_influenced")
        if organic and influenced and not np.isnan(organic):
            assert influenced <= organic + 0.1


class TestFig14Fig15Shape:
    def test_ctr_influenced_not_better(self, context):
        output = run_experiment("fig14", context)
        organic = output.metrics.get("nf_median_ctr_organic")
        influenced = output.metrics.get("nf_median_ctr_influenced")
        if organic and influenced:
            assert influenced <= organic * 1.3

    def test_cpc_influenced_not_cheaper(self, context):
        output = run_experiment("fig15", context)
        curves = curves_of(output)
        organic = curves.get("NF with clicks (organic)")
        influenced = curves.get("NF with clicks (influenced)")
        if (
            organic is not None
            and influenced is not None
            and len(organic) > 5
            and len(influenced) > 5
        ):
            assert influenced.median >= organic.median * 0.8


class TestFig17Shape:
    def test_fraud_cpc_rises_under_competition(self, context):
        output = run_experiment("fig17", context)
        factor = output.metrics.get("f_cpc_increase_factor")
        if factor is not None and not np.isnan(factor):
            assert factor > 1.0


class TestTab3Shape:
    def test_us_first(self, context):
        output = run_experiment("tab3", context)
        first_row = output.tables[0].rows[0]
        assert first_row[0] == "US"


class TestTab4Shape:
    def test_fraud_phrase_overrepresented(self, context):
        output = run_experiment("tab4", context)
        fraud_phrase = output.metrics.get("fraud_phrase_share")
        nonfraud_phrase = output.metrics.get("nonfraud_phrase_share")
        if fraud_phrase is not None and nonfraud_phrase is not None:
            assert fraud_phrase >= nonfraud_phrase * 0.8
