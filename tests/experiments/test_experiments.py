"""Tests for the experiment harness: every figure/table must run."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    EXPERIMENTS,
    ExperimentContext,
    experiment_ids,
    run_experiment,
)


@pytest.fixture(scope="module")
def context(sim_config, sim_result):
    return ExperimentContext(sim_config, result=sim_result, subset_target=300)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = set(experiment_ids())
        expected = {f"fig{i}" for i in range(1, 18)} | {
            "tab1",
            "tab2",
            "tab3",
            "tab4",
        }
        assert ids == expected

    def test_unknown_experiment(self, context):
        with pytest.raises(ExperimentError):
            run_experiment("fig99", context)

    def test_titles_nonempty(self):
        for title, _ in EXPERIMENTS.values():
            assert title


@pytest.mark.parametrize("experiment_id", sorted(
    {f"fig{i}" for i in range(1, 18)} | {"tab1", "tab2", "tab3", "tab4"}
))
class TestEveryExperimentRuns:
    def test_runs_and_renders(self, context, experiment_id):
        output = run_experiment(experiment_id, context)
        assert output.experiment_id == experiment_id
        assert output.charts or output.tables
        text = output.render()
        assert experiment_id in text
        # Every experiment documents its paper target.
        assert output.notes


class TestSpecificOutputs:
    def test_fig1_metrics(self, context):
        output = run_experiment("fig1", context)
        assert 0.2 < output.metrics["mean_share_first_half"] < 0.7

    def test_fig2_preads(self, context):
        output = run_experiment("fig2", context)
        assert 0.15 < output.metrics["pre_ad_shutdown_share"] < 0.55

    def test_tab2_rows(self, context):
        output = run_experiment("tab2", context)
        assert output.metrics["n_categories"] == 5.0
        rendered = output.tables[0].render()
        assert "techsupport" in rendered

    def test_tab4_shares(self, context):
        output = run_experiment("tab4", context)
        total = (
            output.metrics["fraud_exact_share"]
            + output.metrics["fraud_phrase_share"]
        )
        assert 0.0 <= total <= 1.0

    def test_chart_export_series(self, context):
        output = run_experiment("fig5", context)
        series = output.charts[0].as_series()
        assert series
        for x, y in series.values():
            assert len(x) == len(y)


class TestContext:
    def test_simulation_shared(self, context):
        assert context.result is context.result

    def test_subset_builder_cached(self, context):
        assert context.subsets() is context.subsets()

    def test_analyzer_cached(self, context):
        assert context.analyzer() is context.analyzer()
        assert context.analyzer(dubious_only=True) is not context.analyzer()

    def test_primary_window_fits_short_runs(self, context):
        window = context.primary_window()
        assert window.end <= context.config.days
