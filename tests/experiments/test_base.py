"""Unit tests for experiment plumbing (Chart, Table, ExperimentOutput)."""

import numpy as np

from repro.analysis.cdf import ecdf
from repro.experiments.base import Chart, ExperimentOutput, Table


class TestChart:
    def test_series_chart_renders(self):
        chart = Chart(
            title="t",
            series={"a": (np.array([0.0, 1.0]), np.array([0.0, 1.0]))},
        )
        assert "t" in chart.render()

    def test_cdf_chart_renders(self):
        chart = Chart(title="cdf", cdfs={"a": ecdf([1.0, 2.0])})
        assert "cdf" in chart.render()

    def test_as_series_from_cdfs(self):
        chart = Chart(title="c", cdfs={"a": ecdf([1.0, 2.0, 3.0])})
        series = chart.as_series()
        assert "a" in series
        x, y = series["a"]
        assert len(x) == 3

    def test_as_series_passthrough(self):
        data = {"a": (np.array([1.0]), np.array([2.0]))}
        chart = Chart(title="c", series=data)
        assert chart.as_series() == data


class TestTable:
    def test_render(self):
        table = Table(title="T", headers=["a", "b"], rows=[["x", 1.0]])
        text = table.render()
        assert "T" in text and "x" in text


class TestExperimentOutput:
    def test_render_combines_everything(self):
        output = ExperimentOutput(
            experiment_id="figX",
            title="Example",
            charts=[Chart(title="chart", cdfs={"a": ecdf([1.0])})],
            tables=[Table(title="table", headers=["h"], rows=[["v"]])],
            notes=["a note"],
            metrics={"m": 1.234},
        )
        text = output.render()
        assert "figX" in text
        assert "chart" in text
        assert "table" in text
        assert "note: a note" in text
        assert "m=1.234" in text

    def test_empty_output_renders(self):
        output = ExperimentOutput(experiment_id="figY", title="Empty")
        assert "figY" in output.render()
