"""Tests for the experiments command-line interface."""

import subprocess
import sys

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_single_experiment_small(self, capsys):
        assert main(["tab2", "--small"]) == 0
        captured = capsys.readouterr()
        assert "tab2" in captured.out
        assert "techsupport" in captured.out

    def test_export(self, tmp_path, capsys):
        assert main(["fig1", "--small", "--export", str(tmp_path)]) == 0
        exported = list(tmp_path.glob("fig1_chart*.csv"))
        assert exported

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99", "--small"])

    def test_dedupes_requests(self, capsys):
        assert main(["tab2", "tab2", "--small"]) == 0
        captured = capsys.readouterr()
        assert captured.out.count("=== tab2") == 1

    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "tab2", "--small"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0
        assert "tab2" in result.stdout
