"""Public API surface checks: __all__ entries must exist and import."""

import importlib

import pytest

MODULES = [
    "repro",
    "repro.analysis",
    "repro.auction",
    "repro.behavior",
    "repro.clickmodel",
    "repro.detection",
    "repro.entities",
    "repro.experiments",
    "repro.matching",
    "repro.plotting",
    "repro.records",
    "repro.simulator",
    "repro.taxonomy",
    "repro.validation",
]


@pytest.mark.parametrize("module_name", MODULES)
class TestPublicApi:
    def test_all_entries_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_all_entries_unique(self, module_name):
        module = importlib.import_module(module_name)
        assert len(module.__all__) == len(set(module.__all__))


class TestVersionMetadata:
    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_package_docstrings(self):
        for module_name in MODULES:
            module = importlib.import_module(module_name)
            assert module.__doc__, f"{module_name} lacks a docstring"
