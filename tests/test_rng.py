"""Tests for deterministic RNG streams."""

from repro.rng import stream, stream_seed


class TestStreams:
    def test_same_name_same_stream(self):
        a = stream(1, "population").random(5)
        b = stream(1, "population").random(5)
        assert (a == b).all()

    def test_different_names_differ(self):
        a = stream(1, "population").random(5)
        b = stream(1, "detection").random(5)
        assert (a != b).any()

    def test_different_seeds_differ(self):
        a = stream(1, "population").random(5)
        b = stream(2, "population").random(5)
        assert (a != b).any()

    def test_stream_seed_stable(self):
        # Regression check: derivation must never change between runs.
        assert stream_seed(0, "x") == stream_seed(0, "x")
        assert stream_seed(0, "x") != stream_seed(0, "y")

    def test_order_independence(self):
        first = stream_seed(42, "a")
        stream_seed(42, "b")
        assert stream_seed(42, "a") == first
