"""Tests for the paper-target validation suite."""

import math

import pytest

from repro.validation import (
    TARGETS,
    CheckResult,
    TargetBand,
    measure_all,
    render_report,
    run_validation,
)


class TestTargetBand:
    def test_in_band(self):
        band = TargetBand("x", "~1", 0.5, 1.5, "Sec 0")
        assert band.check(1.0).ok
        assert not band.check(0.4).ok
        assert not band.check(1.6).ok

    def test_unbounded_sides(self):
        low_only = TargetBand("x", ">1", 1.0, None, "Sec 0")
        assert low_only.check(100.0).ok
        high_only = TargetBand("x", "<1", None, 1.0, "Sec 0")
        assert high_only.check(-5.0).ok

    def test_nan_fails(self):
        band = TargetBand("x", "any", None, None, "Sec 0")
        assert not band.check(math.nan).ok

    def test_render(self):
        result = TargetBand("x", "~1", 0.5, 1.5, "Sec 0").check(1.0)
        assert "ok" in result.render()
        assert "Sec 0" in result.render()


class TestSuite:
    def test_target_names_unique(self):
        names = [target.name for target in TARGETS]
        assert len(names) == len(set(names))

    def test_measures_computed(self, sim_result):
        measures = measure_all(sim_result)
        assert "fraud_registration_share" in measures
        assert "f_median_affected" in measures
        # All measured values are real numbers or NaN-free finite floats.
        for name, value in measures.items():
            assert isinstance(value, float) or isinstance(value, int), name

    def test_run_validation(self, sim_result):
        checks = run_validation(sim_result)
        assert len(checks) >= 15
        assert all(isinstance(check, CheckResult) for check in checks)
        # The small test simulation should already satisfy the robust
        # Section 4 targets.
        by_name = {check.target.name: check for check in checks}
        assert by_name["fraud_registration_share"].ok
        assert by_name["median_lifetime_from_registration"].ok

    def test_render_report(self, sim_result):
        checks = run_validation(sim_result)
        report = render_report(checks)
        assert "targets in band" in report
        assert report.count("\n") == len(checks)
