"""Tests for the vertical taxonomy."""

import numpy as np
import pytest

from repro.taxonomy.verticals import (
    DUBIOUS_VERTICALS,
    VERTICALS,
    Vertical,
    dubious_vertical_names,
    fraud_vertical_weights,
    nonfraud_vertical_weights,
    prolific_vertical_weights,
    vertical,
)


class TestCatalog:
    def test_figure8_verticals_present(self):
        names = set(dubious_vertical_names())
        for expected in (
            "techsupport",
            "downloads",
            "luxury",
            "flights",
            "wrinkles",
            "impersonation",
            "weightloss",
            "shopping",
            "games",
            "chronic",
        ):
            assert expected in names

    def test_unique_names(self):
        names = [v.name for v in VERTICALS]
        assert len(names) == len(set(names))

    def test_lookup(self):
        assert vertical("techsupport").dubious
        assert not vertical("insurance").dubious
        with pytest.raises(KeyError):
            vertical("nonexistent")

    def test_fraud_weight_zero_on_legit_verticals(self):
        for v in VERTICALS:
            if not v.dubious:
                assert v.fraud_weight == 0.0
                assert v.prolific_weight == 0.0

    def test_techsupport_most_lucrative_dubious(self):
        tech = vertical("techsupport")
        others = [v for v in DUBIOUS_VERTICALS if v.name != "techsupport"]
        assert all(tech.value_per_click > o.value_per_click for o in others)

    def test_techsupport_tops_prolific_weights(self):
        names, probs = prolific_vertical_weights()
        best = names[int(np.argmax(probs))]
        assert best == "techsupport"


class TestWeights:
    @pytest.mark.parametrize(
        "weights_fn",
        [fraud_vertical_weights, prolific_vertical_weights, nonfraud_vertical_weights],
    )
    def test_weights_normalized(self, weights_fn):
        names, probs = weights_fn()
        assert len(names) == len(probs)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs > 0).all()

    def test_fraud_pool_is_dubious_only(self):
        names, _ = fraud_vertical_weights()
        assert all(vertical(name).dubious for name in names)

    def test_nonfraud_pool_includes_both(self):
        names, _ = nonfraud_vertical_weights()
        assert any(vertical(name).dubious for name in names)
        assert any(not vertical(name).dubious for name in names)


class TestValidation:
    def test_bad_base_ctr(self):
        with pytest.raises(ValueError):
            Vertical("x", True, 1.0, 1.0, 0.0, 1, 1, 1)

    def test_bad_volume(self):
        with pytest.raises(ValueError):
            Vertical("x", True, 0.0, 1.0, 0.05, 1, 1, 1)

    def test_negative_weight(self):
        with pytest.raises(ValueError):
            Vertical("x", True, 1.0, 1.0, 0.05, -1, 1, 1)
