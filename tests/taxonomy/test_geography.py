"""Tests for the country/market model."""

import pytest

from repro.taxonomy.geography import (
    COUNTRIES,
    country,
    country_codes,
    fraud_registration_weights,
    home_targeting_prob,
    market_attractiveness,
    nonfraud_registration_weights,
    query_volume_weights,
)


class TestCatalog:
    def test_table_1_and_3_countries_present(self):
        codes = set(country_codes())
        for expected in ("US", "IN", "GB", "BR", "AU", "CA", "DE", "FR", "MX", "SE"):
            assert expected in codes

    def test_unique_codes(self):
        codes = country_codes()
        assert len(codes) == len(set(codes))

    def test_lookup(self):
        assert country("US").currency == "USD"
        assert country("IN").language == "en"
        with pytest.raises(KeyError):
            country("ZZ")


class TestCalibration:
    def test_us_dominates_fraud_registrations(self):
        codes, probs = fraud_registration_weights()
        by_code = dict(zip(codes, probs))
        assert by_code["US"] == max(probs)
        # Table 1 ordering: US > IN > GB > everyone else.
        assert by_code["US"] > by_code["IN"] > by_code["GB"]
        assert all(
            by_code[c] < by_code["GB"] for c in codes if c not in ("US", "IN", "GB")
        )

    def test_india_fraud_targets_abroad(self):
        # Tech-support operations register in IN but advertise in the US.
        assert home_targeting_prob("IN") < 0.3
        assert home_targeting_prob("US") > 0.8

    def test_brazil_over_pulled_relative_to_volume(self):
        # Table 3: BR has the highest fraudulent share of its own clicks,
        # so fraud must target BR far beyond its query volume.
        codes, pull = market_attractiveness()
        _, volume = query_volume_weights()
        by = dict(zip(codes, pull / volume))
        assert by["BR"] == max(by.values())

    def test_uk_france_clean(self):
        # Table 3: UK and France are "significantly cleaner" than other
        # major Western nations -- their pull-to-volume ratio sits far
        # below the dirty markets (BR, DE).
        codes, pull = market_attractiveness()
        _, volume = query_volume_weights()
        by = dict(zip(codes, pull / volume))
        assert by["GB"] < by["BR"] / 10
        assert by["FR"] < by["BR"] / 10
        assert by["GB"] < by["DE"] / 5

    @pytest.mark.parametrize(
        "weights_fn",
        [
            fraud_registration_weights,
            nonfraud_registration_weights,
            market_attractiveness,
            query_volume_weights,
        ],
    )
    def test_weights_normalized(self, weights_fn):
        _, probs = weights_fn()
        assert probs.sum() == pytest.approx(1.0)

    def test_all_home_biases_valid(self):
        for entry in COUNTRIES:
            assert 0.0 <= entry.home_bias <= 1.0
