"""Tests for keyword pools and ad-copy rendering."""

import numpy as np
import pytest

from repro.matching.blacklist import Blacklist, contains_phone_number
from repro.taxonomy.adcopy import AdCopy, render_ad, sample_table2
from repro.taxonomy.keywords import (
    BRAND_TOKENS,
    DECORATOR_TOKENS,
    keyword_pool,
    keyword_weights,
    risky_keyword_mask,
)
from repro.taxonomy.verticals import vertical_names


class TestKeywordPools:
    def test_every_vertical_has_pool(self):
        for name in vertical_names():
            pool = keyword_pool(name)
            assert len(pool) >= 8
            assert all(isinstance(phrase, tuple) and phrase for phrase in pool)

    def test_unknown_vertical(self):
        with pytest.raises(KeyError):
            keyword_pool("nonexistent")

    def test_pool_unique(self):
        for name in ("downloads", "retail"):
            pool = keyword_pool(name)
            assert len(pool) == len(set(pool))

    def test_weights_align_and_normalize(self):
        for name in ("techsupport", "finance"):
            pool = keyword_pool(name)
            weights = keyword_weights(name)
            assert len(weights) == len(pool)
            assert weights.sum() == pytest.approx(1.0)
            # Zipf: head heavier than tail.
            assert weights[0] > weights[-1]

    def test_higher_exponent_more_concentrated(self):
        flat = keyword_weights("downloads", exponent=1.1)
        steep = keyword_weights("downloads", exponent=1.8)
        assert steep[0] > flat[0]

    def test_risky_mask(self):
        mask = risky_keyword_mask("impersonation")
        pool = keyword_pool("impersonation")
        assert len(mask) == len(pool)
        assert any(mask)  # brand-laden phrases exist
        mask_clean = risky_keyword_mask("weightloss")
        assert not any(mask_clean)

    def test_decorators_exist(self):
        assert "best" in DECORATOR_TOKENS
        assert len(set(DECORATOR_TOKENS)) == len(DECORATOR_TOKENS)


class TestAdCopy:
    def test_text_concatenates(self):
        copy = AdCopy("Title", "Body text.")
        assert copy.text() == "Title Body text."

    def test_render_known_vertical(self, rng):
        copy = render_ad("luxury", rng)
        assert copy.title and copy.body

    def test_render_unknown_falls_back(self, rng):
        copy = render_ad("some_new_vertical", rng)
        assert copy.title

    def test_evasive_techsupport_hides_phone(self, rng):
        for _ in range(20):
            copy = render_ad("techsupport", rng, evasive=True)
            assert not contains_phone_number(copy.text())

    def test_evasive_avoids_plain_brands(self, rng):
        blacklist = Blacklist.default()
        hits = 0
        for _ in range(40):
            copy = render_ad("luxury", rng, evasive=True)
            hits += bool(blacklist.term_hits(copy.text()))
        # Evasive luxury copy picks clean templates: no plain brand hits.
        assert hits == 0

    def test_nonevasive_sometimes_risky(self, rng):
        blacklist = Blacklist.default()
        hits = sum(
            bool(blacklist.term_hits(render_ad("luxury", rng).text()))
            for _ in range(60)
        )
        assert hits > 0

    def test_impersonation_stays_branded_even_evasive(self, rng):
        """The fraudster must name the brand to impersonate it; evasive
        rendering can only homoglyph it, not drop it."""
        blacklist = Blacklist.default()
        from repro.matching.evasion import deobfuscate

        caught_after_deobfuscation = 0
        for _ in range(30):
            copy = render_ad("impersonation", rng, evasive=True)
            if blacklist.term_hits(deobfuscate(copy.text())):
                caught_after_deobfuscation += 1
        assert caught_after_deobfuscation > 0


class TestTable2:
    def test_five_categories(self):
        rows = sample_table2()
        assert [r[0] for r in rows] == [
            "techsupport",
            "downloads",
            "luxury",
            "wrinkles",
            "impersonation",
        ]

    def test_rows_have_copy(self):
        for _, title, body in sample_table2():
            assert title and body

    def test_brand_tokens_fictional(self):
        """Table 2 uses stand-in brands, never real trademarks."""
        text = " ".join(t + " " + b for _, t, b in sample_table2()).lower()
        for real in ("coach ", "discord ", "target "):
            assert real not in text + " "
        assert any(token in text for token in BRAND_TOKENS)
