"""Tests for ASCII rendering and series export."""

import csv

import numpy as np

from repro.analysis.cdf import ecdf
from repro.plotting import (
    export_cdfs_csv,
    export_series_csv,
    render_cdfs,
    render_lines,
    render_series_table,
)


class TestRenderLines:
    def test_basic_render(self):
        x = np.linspace(0, 10, 20)
        text = render_lines({"a": (x, x**2)}, "squares", xlabel="x", ylabel="y")
        assert "squares" in text
        assert "a" in text
        assert "|" in text

    def test_empty_series(self):
        text = render_lines({}, "nothing")
        assert "no data" in text

    def test_log_axis(self):
        x = np.logspace(0, 3, 10)
        text = render_lines({"a": (x, x)}, "log", logx=True)
        assert "(log)" in text or "log" in text

    def test_log_axis_no_positive(self):
        text = render_lines({"a": (np.array([-1.0, 0.0]), np.array([1.0, 2.0]))},
                            "bad", logx=True)
        assert "no positive" in text

    def test_multiple_series_distinct_glyphs(self):
        x = np.linspace(0, 1, 5)
        text = render_lines({"one": (x, x), "two": (x, 1 - x)}, "t")
        assert "o one" in text
        assert "x two" in text

    def test_constant_series(self):
        x = np.linspace(0, 1, 5)
        text = render_lines({"flat": (x, np.ones(5))}, "flat")
        assert "flat" in text


class TestRenderCdfs:
    def test_render(self):
        curves = {"F": ecdf([1.0, 2.0, 3.0]), "NF": ecdf([2.0, 4.0])}
        text = render_cdfs(curves, "cdfs")
        assert "F" in text and "NF" in text


class TestRenderTable:
    def test_alignment(self):
        text = render_series_table(
            ["name", "value"], [["alpha", 1.5], ["b", 22.123456]], "title"
        )
        lines = text.splitlines()
        assert lines[0] == "title"
        assert "name" in lines[1]
        assert "alpha" in lines[3]

    def test_float_formatting(self):
        text = render_series_table(["v"], [[0.123456789]])
        assert "0.1235" in text


class TestExport:
    def test_series_csv(self, tmp_path):
        path = tmp_path / "series.csv"
        export_series_csv(
            {"a": (np.array([1.0, 2.0]), np.array([0.5, 1.0]))}, path
        )
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["series", "x", "y"]
        assert len(rows) == 3

    def test_cdfs_csv(self, tmp_path):
        path = tmp_path / "cdfs.csv"
        export_cdfs_csv({"a": ecdf([1.0, 2.0, 3.0])}, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 4
