"""Tests for fraudster adaptation to policy bans."""

import numpy as np

from repro.behavior.fraudulent import sample_fraud_profile
from repro.config import default_config

CONFIG = default_config()


class TestBannedVerticalAvoidance:
    def _verticals(self, banned, n=300, seed=17):
        rng = np.random.Generator(np.random.PCG64(seed))
        out = []
        for _ in range(n):
            profile = sample_fraud_profile(
                CONFIG, rng, prolific=False, banned_verticals=banned
            )
            out.extend(profile.verticals)
        return out

    def test_banned_vertical_avoided(self):
        verticals = self._verticals(banned=("techsupport",))
        assert "techsupport" not in verticals

    def test_no_ban_keeps_vertical(self):
        verticals = self._verticals(banned=())
        assert "techsupport" in verticals

    def test_prolific_also_adapts(self):
        rng = np.random.Generator(np.random.PCG64(19))
        for _ in range(200):
            profile = sample_fraud_profile(
                CONFIG, rng, prolific=True, banned_verticals=("techsupport",)
            )
            assert "techsupport" not in profile.verticals

    def test_other_weights_renormalized(self):
        verticals = self._verticals(banned=("techsupport",))
        # Remaining dubious verticals still sampled.
        assert "downloads" in verticals
        assert "weightloss" in verticals
