"""Tests for account materialization."""

import numpy as np
import pytest

from repro.behavior.factory import (
    IdAllocator,
    materialize_account,
)
from repro.behavior.fraudulent import sample_fraud_profile
from repro.behavior.legitimate import sample_legitimate_profile
from repro.config import default_config
from repro.entities.advertiser import Advertiser
from repro.taxonomy.geography import country as country_info

CONFIG = default_config()


def _materialize(profile, first_ad=5.0, horizon=100.0, seed=5):
    rng = np.random.Generator(np.random.PCG64(seed))
    info = country_info(profile.country)
    advertiser = Advertiser(
        advertiser_id=1,
        kind=profile.kind,
        created_time=first_ad - 1.0,
        country=profile.country,
        language=info.language,
        currency=info.currency,
        activity_scale=profile.activity_scale,
        quality=profile.quality,
        evasion_skill=profile.evasion_skill,
        uses_stolen_payment=profile.uses_stolen_payment,
    )
    return materialize_account(
        advertiser, profile, first_ad, horizon, CONFIG, IdAllocator(), rng
    )


@pytest.fixture(scope="module")
def legit_account():
    rng = np.random.Generator(np.random.PCG64(21))
    profile = sample_legitimate_profile(CONFIG, rng)
    return _materialize(profile)


class TestMaterialization:
    def test_counts_match_profile(self, legit_account):
        profile = legit_account.profile
        ads = list(legit_account.advertiser.all_ads())
        assert len(ads) == profile.n_ads
        assert len(legit_account.ad_creation_times) == profile.n_ads

    def test_first_ad_recorded(self, legit_account):
        assert legit_account.advertiser.first_ad_time == 5.0
        assert min(legit_account.ad_creation_times) == 5.0

    def test_campaigns_match_verticals(self, legit_account):
        verticals = [c.vertical for c in legit_account.advertiser.campaigns]
        assert tuple(verticals) == legit_account.profile.verticals

    def test_offers_within_bounds(self, legit_account):
        for offer in legit_account.offers:
            assert offer.quality > 0
            assert offer.max_bid > 0
            assert 5.0 <= offer.active_from <= 100.0

    def test_bids_positive_and_typed(self, legit_account):
        for bid in legit_account.advertiser.all_bids():
            assert bid.max_bid > 0

    def test_creation_times_sorted_and_bounded(self, legit_account):
        times = legit_account.ad_creation_times
        assert times == sorted(times)
        assert all(5.0 <= t <= 100.0 for t in times)


class TestTrim:
    def test_trim_drops_later_events(self):
        rng = np.random.Generator(np.random.PCG64(22))
        profile = sample_legitimate_profile(CONFIG, rng)
        account = _materialize(profile, first_ad=5.0, horizon=100.0)
        account.trim(10.0)
        assert all(t < 10.0 for t in account.ad_creation_times)
        assert all(t < 10.0 for t in account.kw_creation_times)
        assert all(t < 10.0 for t in account.ad_mod_times)
        assert all(o.active_from < 10.0 for o in account.offers)
        for campaign in account.advertiser.campaigns:
            assert all(ad.created_day < 10.0 for ad in campaign.ads)

    def test_trim_keeps_first_ad(self):
        rng = np.random.Generator(np.random.PCG64(23))
        profile = sample_fraud_profile(CONFIG, rng, prolific=False)
        account = _materialize(profile, first_ad=5.0, horizon=100.0)
        account.trim(5.5)
        assert len(account.ad_creation_times) >= 1


class TestFraudMaterialization:
    def test_fraud_keyword_concentration(self):
        """Fraud chases head keywords harder than legit (Zipf 1.8 vs 1.1)."""
        rng = np.random.Generator(np.random.PCG64(31))
        fraud_heads, legit_heads = [], []
        for _ in range(60):
            fp = sample_fraud_profile(CONFIG, rng, prolific=True)
            account = _materialize(fp, seed=int(rng.integers(1e9)))
            fraud_heads.extend(o.kw_index for o in account.offers)
            lp = sample_legitimate_profile(CONFIG, rng)
            account = _materialize(lp, seed=int(rng.integers(1e9)))
            legit_heads.extend(o.kw_index for o in account.offers)
        assert np.mean(fraud_heads) < np.mean(legit_heads)

    def test_id_allocator_unique(self):
        ids = IdAllocator()
        assert len({ids.ad_id() for _ in range(100)}) == 100
        assert len({ids.campaign_id() for _ in range(100)}) == 100
