"""Tests for profile sampling (legitimate and fraudulent)."""

import numpy as np
import pytest

from repro.behavior.fraudulent import sample_fraud_profile
from repro.behavior.legitimate import sample_legitimate_profile
from repro.behavior.profiles import ACTIVITY_NORM, AdvertiserProfile
from repro.behavior.bidding import BidLevels, MatchMix
from repro.config import default_config
from repro.entities.enums import AdvertiserKind
from repro.taxonomy.verticals import vertical

CONFIG = default_config()


def _rng(seed=11):
    return np.random.Generator(np.random.PCG64(seed))


def _many_fraud(prolific, n=400, seed=11):
    rng = _rng(seed)
    return [sample_fraud_profile(CONFIG, rng, prolific) for _ in range(n)]


def _many_legit(n=400, seed=12):
    rng = _rng(seed)
    return [sample_legitimate_profile(CONFIG, rng) for _ in range(n)]


class TestProfileValidation:
    def _profile(self, **overrides):
        defaults = dict(
            kind=AdvertiserKind.LEGITIMATE,
            country="US",
            verticals=("retail",),
            target_countries=("US",),
            n_ads=5,
            kw_per_ad=3,
            activity_scale=1.0,
            quality=1.0,
            match_mix=MatchMix(0.3, 0.5, 0.2),
            bid_levels=BidLevels(1.0, 1.0, 1.0),
            evasion_skill=0.0,
            uses_stolen_payment=False,
            first_ad_delay=1.0,
            mod_rate_per_entity=0.01,
        )
        defaults.update(overrides)
        return AdvertiserProfile(**defaults)

    def test_alignment_required(self):
        with pytest.raises(ValueError):
            self._profile(verticals=("retail", "travel"), target_countries=("US",))

    def test_participation_capped(self):
        profile = self._profile(activity_scale=ACTIVITY_NORM * 100)
        assert profile.participation_prob == 1.0

    def test_participation_proportional(self):
        profile = self._profile(activity_scale=ACTIVITY_NORM / 2)
        assert profile.participation_prob == pytest.approx(0.5)

    def test_primary_vertical(self):
        profile = self._profile(
            verticals=("luxury", "games"), target_countries=("US", "US")
        )
        assert profile.primary_vertical == "luxury"


class TestFraudProfiles:
    def test_fraud_only_dubious_verticals(self):
        for profile in _many_fraud(prolific=False, n=200):
            for name in profile.verticals:
                assert vertical(name).dubious

    def test_prolific_more_active(self):
        typical = np.median([p.activity_scale for p in _many_fraud(False)])
        prolific = np.median([p.activity_scale for p in _many_fraud(True)])
        assert prolific > typical

    def test_prolific_focuses(self):
        typical = np.mean([len(p.verticals) for p in _many_fraud(False)])
        prolific = np.mean([len(p.verticals) for p in _many_fraud(True)])
        assert prolific < typical

    def test_prolific_evasion_higher(self):
        typical = np.mean([p.evasion_skill for p in _many_fraud(False)])
        prolific = np.mean([p.evasion_skill for p in _many_fraud(True)])
        assert prolific > 0.6 > typical

    def test_prolific_mostly_pays_bills(self):
        # "The most prolific fraudulent advertisers even pay their (very
        # large) bills": stolen instruments are the exception.
        stolen = np.mean([p.uses_stolen_payment for p in _many_fraud(True)])
        assert stolen < 0.3

    def test_typical_often_stolen_payment(self):
        stolen = np.mean([p.uses_stolen_payment for p in _many_fraud(False)])
        assert stolen > 0.4

    def test_small_footprint(self):
        ads = np.median([p.n_ads for p in _many_fraud(False)])
        assert ads <= 4


class TestLegitimateProfiles:
    def test_larger_footprint_than_fraud(self):
        legit_ads = np.median([p.n_ads for p in _many_legit()])
        fraud_ads = np.median([p.n_ads for p in _many_fraud(False)])
        assert legit_ads >= 10 * fraud_ads / 2  # order-of-magnitude gap

    def test_no_evasion(self):
        for profile in _many_legit(n=50):
            assert profile.evasion_skill == 0.0
            assert not profile.uses_stolen_payment

    def test_kind(self):
        assert all(
            p.kind is AdvertiserKind.LEGITIMATE for p in _many_legit(n=20)
        )

    def test_targets_exist(self):
        from repro.taxonomy.geography import country

        for profile in _many_legit(n=100):
            for code in profile.target_countries:
                country(code)  # raises KeyError if invalid
