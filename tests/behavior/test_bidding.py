"""Tests for bidding-style sampling."""

import numpy as np
import pytest

from repro.behavior.bidding import (
    BidLevels,
    MatchMix,
    sample_bid_levels,
    sample_match_mix,
)
from repro.config import AuctionConfig
from repro.entities.enums import AdvertiserKind, MatchType

AUCTION = AuctionConfig()


class TestMatchMix:
    def test_must_sum_to_one(self):
        with pytest.raises(ValueError):
            MatchMix(0.5, 0.2, 0.2)

    def test_no_negative(self):
        with pytest.raises(ValueError):
            MatchMix(-0.1, 0.6, 0.5)

    def test_as_probs(self):
        mix = MatchMix(0.2, 0.5, 0.3)
        types, probs = mix.as_probs()
        assert types == [MatchType.EXACT, MatchType.PHRASE, MatchType.BROAD]
        assert probs.sum() == pytest.approx(1.0)

    def _sample_many(self, kind, n=800, seed=3):
        rng = np.random.Generator(np.random.PCG64(seed))
        return [sample_match_mix(kind, rng) for _ in range(n)]

    def test_zero_exact_inflation_bands(self):
        """Mix-level zero-exact rates sit below the paper's account-level
        60%/50%: fraud accounts hold few bids, so sampling zeros push the
        *effective* rates up to the paper's numbers (asserted in
        tests/integration/test_paper_claims.py)."""
        fraud = self._sample_many(AdvertiserKind.FRAUD_TYPICAL)
        legit = self._sample_many(AdvertiserKind.LEGITIMATE)
        fraud_no_exact = np.mean([m.exact == 0 for m in fraud])
        legit_no_exact = np.mean([m.exact == 0 for m in legit])
        assert 0.35 < fraud_no_exact < 0.60
        assert 0.40 < legit_no_exact < 0.60

    def test_fraud_skews_to_phrase(self):
        fraud = self._sample_many(AdvertiserKind.FRAUD_TYPICAL)
        legit = self._sample_many(AdvertiserKind.LEGITIMATE)
        assert np.median([m.phrase for m in fraud]) > np.median(
            [m.phrase for m in legit]
        )

    def test_legit_broad_usage_low(self):
        legit = self._sample_many(AdvertiserKind.LEGITIMATE)
        assert np.mean([m.broad for m in legit]) < 0.15

    def test_mixes_valid(self):
        for mix in self._sample_many(AdvertiserKind.FRAUD_PROLIFIC, n=100):
            assert mix.exact + mix.phrase + mix.broad == pytest.approx(1.0)


class TestBidLevels:
    def _sample_many(self, kind, value=1.0, n=800, seed=4):
        rng = np.random.Generator(np.random.PCG64(seed))
        return [sample_bid_levels(kind, value, rng, AUCTION) for _ in range(n)]

    def test_median_is_default(self):
        # Paper: the median maximum bid equals the platform default for
        # both populations.
        for kind in (AdvertiserKind.LEGITIMATE, AdvertiserKind.FRAUD_TYPICAL):
            levels = self._sample_many(kind)
            assert np.median([l.exact for l in levels]) == pytest.approx(1.0)

    def test_fraud_customizes_less(self):
        fraud = self._sample_many(AdvertiserKind.FRAUD_TYPICAL)
        legit = self._sample_many(AdvertiserKind.LEGITIMATE)
        fraud_default = np.mean([l.exact == 1.0 for l in fraud])
        legit_default = np.mean([l.exact == 1.0 for l in legit])
        assert fraud_default > legit_default

    def test_value_scales_bids(self):
        cheap = self._sample_many(AdvertiserKind.LEGITIMATE, value=0.5)
        expensive = self._sample_many(AdvertiserKind.LEGITIMATE, value=24.0)
        assert np.mean([l.exact for l in expensive]) > np.mean(
            [l.exact for l in cheap]
        )

    def test_multiplier_lookup(self):
        levels = BidLevels(1.0, 2.0, 3.0)
        assert levels.multiplier(MatchType.EXACT) == 1.0
        assert levels.multiplier(MatchType.PHRASE) == 2.0
        assert levels.multiplier(MatchType.BROAD) == 3.0

    def test_invalid_value_rejected(self):
        rng = np.random.Generator(np.random.PCG64(0))
        with pytest.raises(ValueError):
            sample_bid_levels(AdvertiserKind.LEGITIMATE, 0.0, rng, AUCTION)
