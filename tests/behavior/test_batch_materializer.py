"""Differential regression: batched materializer vs the scalar factory.

:func:`repro.behavior.batch.materialize_account_batch` must replay the
scalar factory's RNG draws in the same order on the same stream, so a
same-seed materialization -- followed by the same ``trim`` -- must
produce bit-identical accounts: ids, entities, maintenance events,
offers, and the generator's state afterwards.  The engine-level sweep
lives in ``tests/simulator/test_population_equivalence.py``; these
tests isolate the materializer and pin the low-level numpy identities
the batching relies on.
"""

from bisect import bisect_right

import numpy as np
import pytest

from repro.behavior import (
    IdAllocator,
    materialize_account,
    materialize_account_batch,
    sample_fraud_profile,
    sample_legitimate_profile,
)
from repro.config import small_config
from repro.entities.advertiser import Advertiser
from repro.rng import choice_cdf, draw_index, stream
from repro.taxonomy.geography import country as country_info
from repro.taxonomy.keywords import (
    evasive_keyword_tables,
    keyword_cdf,
    keyword_pool,
    keyword_weights,
)

CREATED_TIME = 3.0
FIRST_AD_TIME = 3.5
HORIZON = 120.0


def _profiles():
    """A deterministic mix covering every materializer branch."""
    config = small_config(seed=55, days=120)
    rng = stream(55, "population")
    cases = []
    for _ in range(12):
        cases.append(("legit", sample_legitimate_profile(config, rng)))
    for _ in range(10):
        cases.append(("fraud", sample_fraud_profile(config, rng, prolific=False)))
    for _ in range(6):
        cases.append(("prolific", sample_fraud_profile(config, rng, prolific=True)))
    return config, cases


def _materialize(materializer, profile, config, end_time):
    rng = stream(4242, "population")
    ids = IdAllocator()
    info = country_info(profile.country)
    advertiser = Advertiser(
        advertiser_id=1,
        kind=profile.kind,
        created_time=CREATED_TIME,
        country=profile.country,
        language=info.language,
        currency=info.currency,
        activity_scale=profile.activity_scale,
        quality=profile.quality,
        evasion_skill=profile.evasion_skill,
        uses_stolen_payment=profile.uses_stolen_payment,
    )
    account = materializer(
        advertiser, profile, FIRST_AD_TIME, HORIZON, config, ids, rng
    )
    account.trim(end_time)
    account.activity_end = end_time
    return account, rng.bit_generator.state


def _assert_accounts_identical(expected, actual):
    assert actual.ad_creation_times == expected.ad_creation_times
    assert actual.kw_creation_times == expected.kw_creation_times
    assert actual.ad_mod_times == expected.ad_mod_times
    assert actual.kw_mod_times == expected.kw_mod_times
    want_campaigns = expected.advertiser.campaigns
    got_campaigns = actual.advertiser.campaigns
    assert len(got_campaigns) == len(want_campaigns)
    for want, got in zip(want_campaigns, got_campaigns):
        assert got.campaign_id == want.campaign_id
        assert got.vertical == want.vertical
        assert got.target_country == want.target_country
        assert got.created_day == want.created_day
        assert len(got.ads) == len(want.ads)
        for theirs, mine in zip(want.ads, got.ads):
            assert mine.ad_id == theirs.ad_id
            assert mine.campaign_id == theirs.campaign_id
            assert mine.copy == theirs.copy
            assert mine.display_domain == theirs.display_domain
            assert mine.destination_domain == theirs.destination_domain
            assert mine.created_day == theirs.created_day
            assert mine.engagement == theirs.engagement
            assert mine.modified_count == theirs.modified_count
        assert len(got.bids) == len(want.bids)
        for theirs, mine in zip(want.bids, got.bids):
            assert mine.keyword == theirs.keyword
            assert mine.match_type == theirs.match_type
            assert mine.max_bid == theirs.max_bid
            assert mine.created_day == theirs.created_day
            assert mine.modified_count == theirs.modified_count
    assert len(actual.offers) == len(expected.offers)
    for want, got in zip(expected.offers, actual.offers):
        assert got.vertical == want.vertical
        assert got.country == want.country
        assert got.ad.ad_id == want.ad.ad_id
        assert got.bid.keyword == want.bid.keyword
        assert got.bid.match_type == want.bid.match_type
        assert got.kw_index == want.kw_index
        assert got.quality == want.quality
        assert got.click_quality == want.click_quality
        assert got.active_from == want.active_from


class TestMaterializerEquivalence:
    @pytest.mark.parametrize(
        "end_time",
        [
            pytest.param(HORIZON + 1.0, id="keep-everything"),
            pytest.param(10.0, id="mid-life-trim"),
            pytest.param(FIRST_AD_TIME, id="trim-to-nothing"),
        ],
    )
    def test_bit_identical_after_trim(self, end_time):
        config, cases = _profiles()
        for label, profile in cases:
            want, want_state = _materialize(
                materialize_account, profile, config, end_time
            )
            got, got_state = _materialize(
                materialize_account_batch, profile, config, end_time
            )
            assert got_state == want_state, (label, "rng state diverged")
            _assert_accounts_identical(want, got)

    def test_bid_stats_mirror_trimmed_bid_lists(self):
        config, cases = _profiles()
        for _, profile in cases:
            account, _ = _materialize(
                materialize_account_batch, profile, config, 10.0
            )
            assert account.bid_stats is not None
            campaigns = account.advertiser.campaigns
            assert len(account.bid_stats) == len(campaigns)
            for campaign, stats in zip(campaigns, account.bid_stats):
                assert len(stats.mcodes) == len(campaign.bids)
                for bid, max_bid, created in zip(
                    campaign.bids, stats.max_bids, stats.created
                ):
                    assert bid.max_bid == max_bid
                    assert bid.created_day == created

    def test_lazy_accounts_report_domains_before_trim(self):
        config, cases = _profiles()
        for label, profile in cases:
            rng = stream(4242, "population")
            info = country_info(profile.country)
            advertiser = Advertiser(
                advertiser_id=1,
                kind=profile.kind,
                created_time=CREATED_TIME,
                country=profile.country,
                language=info.language,
                currency=info.currency,
                activity_scale=profile.activity_scale,
                quality=profile.quality,
                evasion_skill=profile.evasion_skill,
                uses_stolen_payment=profile.uses_stolen_payment,
            )
            account = materialize_account_batch(
                advertiser,
                profile,
                FIRST_AD_TIME,
                HORIZON,
                config,
                IdAllocator(),
                rng,
            )
            # Fraud accounts build eagerly (the detection content filter
            # reads their entities); legitimate accounts stay pending.
            assert (account.pending is None) == profile.is_fraud, label
            before = account.destination_domains()
            assert before, label
            account.trim(HORIZON + 1.0)
            assert account.pending is None
            assert account.destination_domains() == before, label


class TestBatchingPrimitives:
    """The numpy identities the batched draw loop is built on."""

    def test_batched_uniforms_match_scalar_draws(self):
        a = stream(7, "population")
        b = stream(7, "population")
        batched = a.random(64)
        scalar = np.array([b.random() for _ in range(64)])
        np.testing.assert_array_equal(batched, scalar)
        assert a.bit_generator.state == b.bit_generator.state

    def test_choice_cdf_replicates_generator_choice(self):
        weights = keyword_weights("techsupport", exponent=1.8)
        cdf = choice_cdf(weights)
        a = stream(11, "population")
        b = stream(11, "population")
        for _ in range(500):
            assert draw_index(a, cdf) == int(b.choice(len(weights), p=weights))
        assert a.bit_generator.state == b.bit_generator.state

    def test_bisect_matches_searchsorted(self):
        cdf = keyword_cdf("techsupport", exponent=1.8)
        cdf_list = cdf.tolist()
        rng = stream(13, "population")
        for u in rng.random(2000).tolist():
            assert bisect_right(cdf_list, u) == int(
                cdf.searchsorted(u, side="right")
            )

    def test_evasive_tables_replicate_safe_renormalization(self):
        for vertical in ("techsupport", "downloads", "luxury"):
            weights = keyword_weights(vertical, exponent=1.8)
            risky, safe, safe_cdf = evasive_keyword_tables(vertical, 1.8)
            assert len(risky) == len(keyword_pool(vertical))
            if not len(safe):
                continue
            safe_weights = weights[safe]
            expected = choice_cdf(safe_weights / safe_weights.sum())
            a = stream(17, "population")
            b = stream(17, "population")
            for _ in range(200):
                want = int(safe[int(b.choice(len(safe_weights), p=safe_weights / safe_weights.sum()))])
                got = int(safe[draw_index(a, np.asarray(safe_cdf))])
                assert got == want
            np.testing.assert_array_equal(np.asarray(safe_cdf), expected)
