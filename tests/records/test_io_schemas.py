"""Tests for record schemas, codes and dataset I/O."""

import numpy as np
import pytest

from repro.entities.enums import AdvertiserKind, MatchType, ShutdownReason
from repro.errors import RecordError
from repro.records import (
    CustomerRecord,
    DetectionRecord,
    country_code,
    country_name,
    match_code,
    match_type_from_code,
    read_impressions_csv,
    read_records_jsonl,
    vertical_code,
    vertical_name,
    write_impressions_csv,
    write_records_jsonl,
)
from repro.records.impressions import ImpressionBuilder


class TestCodes:
    def test_vertical_roundtrip(self):
        for name in ("techsupport", "retail", "phishing"):
            assert vertical_name(vertical_code(name)) == name

    def test_country_roundtrip(self):
        for code in ("US", "BR", "JP"):
            assert country_name(country_code(code)) == code

    def test_match_roundtrip(self):
        for match_type in MatchType:
            assert match_type_from_code(match_code(match_type)) is match_type

    def test_match_codes_stable(self):
        # Codes are persisted in CSVs; they must never change.
        assert match_code(MatchType.EXACT) == 0
        assert match_code(MatchType.PHRASE) == 1
        assert match_code(MatchType.BROAD) == 2


class TestDetectionRecord:
    def test_make(self):
        record = DetectionRecord.make(7, 1.5, ShutdownReason.CONTENT_FILTER, True)
        assert record.stage == "content_filter"
        assert record.to_dict()["advertiser_id"] == 7


class TestCustomerRecord:
    def test_ground_truth_flag(self):
        record = CustomerRecord(
            advertiser_id=1,
            created_time=0.0,
            country="US",
            language="en",
            currency="USD",
            kind=AdvertiserKind.FRAUD_TYPICAL.value,
            labeled_fraud=False,
            shutdown_time=None,
            shutdown_reason=None,
            first_ad_time=None,
            n_ads=0,
            n_keywords=0,
        )
        # Evaded fraud: ground truth fraud, label non-fraud.
        assert record.is_fraud_ground_truth
        assert not record.labeled_fraud


class TestImpressionsCsv:
    def _table(self):
        builder = ImpressionBuilder()
        builder.add(1.5, 1, 10, 0, 0, 1, 2, True, 100.0, 5.0, 2.5, 0.5, 3, 1, True)
        builder.add(2.0, 2, 11, 3, 2, 0, 1, False, 50.0, 0.0, 0.0, 0.1, 1, 0, False)
        return builder.build()

    def test_roundtrip(self, tmp_path):
        table = self._table()
        path = tmp_path / "impressions.csv"
        write_impressions_csv(table, path)
        loaded = read_impressions_csv(path)
        assert len(loaded) == 2
        np.testing.assert_allclose(loaded.day, table.day)
        np.testing.assert_array_equal(loaded.mainline, table.mainline)
        np.testing.assert_array_equal(loaded.fraud_labeled, table.fraud_labeled)
        np.testing.assert_allclose(loaded.spend, table.spend)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(RecordError):
            read_impressions_csv(path)

    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(RecordError):
            read_impressions_csv(path)


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        records = [
            DetectionRecord.make(1, 1.0, ShutdownReason.BEHAVIORAL, True),
            DetectionRecord.make(2, 2.0, ShutdownReason.PAYMENT_FRAUD, True),
        ]
        path = tmp_path / "detections.jsonl"
        assert write_records_jsonl(records, path) == 2
        loaded = read_records_jsonl(path, DetectionRecord)
        assert loaded == records
