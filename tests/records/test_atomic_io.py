"""Atomic write protocol and reader error handling for records I/O."""

import numpy as np
import pytest

from repro.errors import RecordError
from repro.records import (
    DetectionRecord,
    ImpressionBuilder,
    read_impressions_csv,
    read_records_jsonl,
    write_impressions_csv,
    write_records_jsonl,
)
from repro.records.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
    sha256_bytes,
    sha256_file,
)


def _tiny_table(rows: int = 3):
    builder = ImpressionBuilder()
    for i in range(rows):
        builder.add(
            day=0.5 + i,
            advertiser_id=i + 1,
            ad_id=10 + i,
            vertical=1,
            country=2,
            match_type=0,
            position=i,
            mainline=i % 2 == 0,
            weight=100.0,
            clicks=float(i),
            spend=0.5 * i,
            price=0.25,
            n_shown=3,
            n_fraud_shown=1,
            fraud_labeled=i % 2 == 1,
        )
    return builder.build()


class TestAtomicWriter:
    def test_success_leaves_no_tmp(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text() == "hello\n"
        assert list(tmp_path.iterdir()) == [target]

    def test_failure_preserves_old_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("original")
        with pytest.raises(RuntimeError, match="boom"):
            with atomic_writer(target) as handle:
                handle.write("partial garbage")
                raise RuntimeError("boom")
        assert target.read_text() == "original"
        assert list(tmp_path.iterdir()) == [target]

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        target = tmp_path / "data.bin"
        atomic_write_bytes(target, b"v1")
        atomic_write_bytes(target, b"v2-longer")
        assert target.read_bytes() == b"v2-longer"

    def test_rejects_append_modes(self, tmp_path):
        with pytest.raises(ValueError):
            with atomic_writer(tmp_path / "x", mode="a"):
                pass

    def test_sha_helpers_agree(self, tmp_path):
        payload = b"checksum me"
        target = tmp_path / "x.bin"
        atomic_write_bytes(target, payload)
        assert sha256_file(target) == sha256_bytes(payload)

    def test_failing_replace_leaves_no_tmp(self, tmp_path, monkeypatch):
        # Regression: when os.replace itself raises (EXDEV, EIO, a
        # vanished directory), the .tmp file must not survive -- the
        # contract is "old file or new file", never "plus a stray tmp".
        import os

        target = tmp_path / "out.txt"
        target.write_text("original")

        def failing_replace(src, dst):
            raise OSError("injected replace failure")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError, match="injected replace failure"):
            with atomic_writer(target) as handle:
                handle.write("new content")
        monkeypatch.undo()
        assert target.read_text() == "original"
        assert list(tmp_path.iterdir()) == [target]

    def test_failing_replace_leaves_no_tmp_bytes_path(self, tmp_path, monkeypatch):
        import os

        target = tmp_path / "out.bin"

        def failing_replace(src, dst):
            raise OSError("injected replace failure")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError):
            atomic_write_bytes(target, b"payload", retry=None)
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []


class TestCsvRoundTripAndErrors:
    def test_round_trip_is_exact(self, tmp_path):
        table = _tiny_table()
        path = tmp_path / "impressions.csv"
        write_impressions_csv(table, path)
        assert not (tmp_path / "impressions.csv.tmp").exists()
        back = read_impressions_csv(path)
        for name in table.field_names():
            assert np.array_equal(getattr(back, name), getattr(table, name))

    def test_malformed_number_raises_record_error(self, tmp_path):
        path = tmp_path / "impressions.csv"
        write_impressions_csv(_tiny_table(), path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace("0.5", "not-a-number", 1)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(RecordError, match="malformed column"):
            read_impressions_csv(path)

    def test_truncated_row_raises_record_error(self, tmp_path):
        path = tmp_path / "impressions.csv"
        write_impressions_csv(_tiny_table(), path)
        lines = path.read_text().splitlines()
        # Simulate a torn write: the last row loses its final fields.
        lines[-1] = ",".join(lines[-1].split(",")[:4])
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(RecordError, match="fields, expected"):
            read_impressions_csv(path)

    def test_malformed_boolean_raises_record_error(self, tmp_path):
        path = tmp_path / "impressions.csv"
        write_impressions_csv(_tiny_table(), path)
        lines = path.read_text().splitlines()
        fields = lines[1].split(",")
        fields[7] = "yes"  # the `mainline` column
        lines[1] = ",".join(fields)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(RecordError, match="malformed boolean"):
            read_impressions_csv(path)

    def test_empty_file_raises_record_error(self, tmp_path):
        path = tmp_path / "impressions.csv"
        path.write_text("")
        with pytest.raises(RecordError, match="empty"):
            read_impressions_csv(path)


class TestJsonlRoundTripAndErrors:
    RECORDS = [
        DetectionRecord(advertiser_id=1, time=2.5, stage="content_filter", labeled_fraud=True),
        DetectionRecord(advertiser_id=2, time=9.0, stage="payment_fraud", labeled_fraud=True),
    ]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "detections.jsonl"
        assert write_records_jsonl(self.RECORDS, path) == 2
        assert not (tmp_path / "detections.jsonl.tmp").exists()
        assert read_records_jsonl(path, DetectionRecord) == self.RECORDS

    def test_truncated_line_raises_record_error(self, tmp_path):
        path = tmp_path / "detections.jsonl"
        write_records_jsonl(self.RECORDS, path)
        # Chop the file mid-record, as a torn non-atomic write would.
        data = path.read_bytes()
        path.write_bytes(data[:-15])
        with pytest.raises(RecordError, match="not valid JSON"):
            read_records_jsonl(path, DetectionRecord)

    def test_non_object_line_raises_record_error(self, tmp_path):
        path = tmp_path / "detections.jsonl"
        path.write_text('[1, 2, 3]\n')
        with pytest.raises(RecordError, match="not a JSON object"):
            read_records_jsonl(path, DetectionRecord)

    def test_schema_mismatch_raises_record_error(self, tmp_path):
        path = tmp_path / "detections.jsonl"
        path.write_text('{"advertiser_id": 1, "unexpected_field": true}\n')
        with pytest.raises(RecordError, match="does not match DetectionRecord"):
            read_records_jsonl(path, DetectionRecord)
