"""Deterministic IO fault injection and bounded retry in records.atomic."""

from __future__ import annotations

import errno
import os

import pytest

from repro import obs
from repro.records.atomic import (
    IO_BITROT,
    IO_ERROR,
    IO_TORN,
    IoShim,
    RetryPolicy,
    WriteFault,
    atomic_write_bytes,
    atomic_write_text,
    io_shim,
    set_io_shim,
    sha256_bytes,
    sha256_file,
)

_RETRIES = obs.counter("io.retries")
_GIVEUPS = obs.counter("io.giveups")
_FSYNC = obs.counter("io.fsync_failures")


@pytest.fixture
def shim():
    """Install a fresh shim; always restore the previous one."""
    installed = []

    def install(*faults):
        new = IoShim(faults)
        installed.append((new, set_io_shim(new)))
        return new

    yield install
    while installed:
        _, previous = installed.pop()
        set_io_shim(previous)


def _no_sleep_policy(retries=3):
    delays = []
    policy = RetryPolicy(retries=retries, delays=(0.0,), sleep=delays.append)
    return policy, delays


class TestWriteFault:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown IO fault action"):
            WriteFault("x", action="set-on-fire")

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            WriteFault("x", nth=0)
        with pytest.raises(ValueError):
            WriteFault("x", times=0)

    def test_matches_name_and_path_globs(self, tmp_path):
        by_name = WriteFault("chunk-*.npz")
        by_path = WriteFault("chunks/chunk-*.npz")
        path = tmp_path / "chunks" / "chunk-00000-00007.npz"
        assert by_name.matches(path)
        assert by_path.matches(path)
        assert not by_name.matches(tmp_path / "MANIFEST.json")

    def test_nth_and_times_window(self, tmp_path):
        fault = WriteFault("*.bin", nth=2, times=2)
        shim = IoShim([fault])
        hits = [shim.take(tmp_path / "a.bin") is not None for _ in range(5)]
        assert hits == [False, True, True, False, False]


class TestShimInstall:
    def test_set_returns_previous(self):
        first = IoShim()
        second = IoShim()
        assert set_io_shim(first) is None
        try:
            assert set_io_shim(second) is first
            assert io_shim() is second
        finally:
            set_io_shim(None)
        assert io_shim() is None


class TestIoError:
    def test_raises_planned_errno_without_retry(self, tmp_path, shim):
        shim(WriteFault("out.bin", action=IO_ERROR, err=errno.ENOSPC))
        with pytest.raises(OSError) as excinfo:
            atomic_write_bytes(tmp_path / "out.bin", b"data", retry=None)
        assert excinfo.value.errno == errno.ENOSPC
        # Nothing landed, and no tmp orphan survived the failure.
        assert list(tmp_path.iterdir()) == []

    def test_transient_fault_is_retried_away(self, tmp_path, shim):
        installed = shim(WriteFault("out.bin", action=IO_ERROR, times=2))
        policy, slept = _no_sleep_policy()
        before = _RETRIES.value
        atomic_write_bytes(tmp_path / "out.bin", b"data", retry=policy)
        assert (tmp_path / "out.bin").read_bytes() == b"data"
        assert _RETRIES.value - before == 2
        assert len(slept) == 2
        assert len(installed.fired) == 2

    def test_persistent_fault_gives_up(self, tmp_path, shim):
        shim(WriteFault("out.bin", action=IO_ERROR, err=errno.EIO, times=10**6))
        policy, slept = _no_sleep_policy(retries=2)
        before = _GIVEUPS.value
        with pytest.raises(OSError) as excinfo:
            atomic_write_bytes(tmp_path / "out.bin", b"data", retry=policy)
        assert excinfo.value.errno == errno.EIO
        assert _GIVEUPS.value - before == 1
        assert len(slept) == 2  # retries, then the give-up raise
        assert list(tmp_path.iterdir()) == []

    def test_untargeted_paths_are_untouched(self, tmp_path, shim):
        shim(WriteFault("other.bin", action=IO_ERROR, times=10**6))
        atomic_write_text(tmp_path / "safe.txt", "fine", retry=None)
        assert (tmp_path / "safe.txt").read_text() == "fine"


class TestTornAndBitrot:
    def test_torn_write_loses_the_tail_silently(self, tmp_path, shim):
        payload = bytes(range(200))
        shim(WriteFault("out.bin", action=IO_TORN, detail=64))
        atomic_write_bytes(tmp_path / "out.bin", payload, retry=None)
        landed = (tmp_path / "out.bin").read_bytes()
        assert landed == payload[:-64]
        assert sha256_bytes(landed) != sha256_bytes(payload)

    def test_bitrot_flips_exactly_one_byte(self, tmp_path, shim):
        payload = bytes(200)
        shim(WriteFault("out.bin", action=IO_BITROT, detail=10))
        atomic_write_bytes(tmp_path / "out.bin", payload, retry=None)
        landed = (tmp_path / "out.bin").read_bytes()
        assert len(landed) == len(payload)
        diffs = [i for i, (a, b) in enumerate(zip(payload, landed)) if a != b]
        assert diffs == [10]
        assert sha256_file(tmp_path / "out.bin") != sha256_bytes(payload)

    def test_faults_are_deterministic_across_identical_shims(self, tmp_path, shim):
        for attempt in ("a", "b"):
            shim(WriteFault("*.bin", action=IO_TORN, nth=2, detail=3))
            for i in range(3):
                atomic_write_bytes(
                    tmp_path / f"{attempt}{i}.bin", b"0123456789", retry=None
                )
            set_io_shim(None)
        # Same plan, same write sequence -> the same (second) write torn.
        for attempt in ("a", "b"):
            sizes = [
                len((tmp_path / f"{attempt}{i}.bin").read_bytes())
                for i in range(3)
            ]
            assert sizes == [10, 7, 10]


class TestRetryPolicy:
    def test_delay_schedule_saturates(self):
        policy = RetryPolicy(retries=5, delays=(0.1, 0.2))
        assert [policy.delay_for(i) for i in range(4)] == [0.1, 0.2, 0.2, 0.2]
        assert RetryPolicy(delays=()).delay_for(0) == 0.0


class TestFsyncFailures:
    def test_directory_fsync_failure_counts_not_raises(self, tmp_path, monkeypatch):
        real_fsync = os.fsync

        def failing_fsync(fd):
            # Only directory fds fail: the payload file fsync must
            # still run, or the test would pass for the wrong reason.
            import stat

            if stat.S_ISDIR(os.fstat(fd).st_mode):
                raise OSError(errno.EINVAL, "fsync not supported")
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", failing_fsync)
        before = _FSYNC.value
        atomic_write_bytes(tmp_path / "out.bin", b"data", retry=None)
        assert (tmp_path / "out.bin").read_bytes() == b"data"
        assert _FSYNC.value - before == 1
