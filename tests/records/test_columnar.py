"""Columnar ``.npc`` bundle format: round-trip, determinism, damage."""

import numpy as np
import pytest

from repro.errors import RecordError
from repro.records.columnar import (
    COLUMNAR_FORMAT,
    COLUMNAR_MAGIC,
    columns_to_bytes,
    read_column_names,
    read_columns,
    read_header,
    write_columns,
)


def _sample_columns():
    return {
        "day": np.array([0.5, 1.5, 2.5], dtype=np.float64),
        "advertiser_id": np.array([7, 8, 9], dtype=np.int64),
        "position": np.array([1, 2, 3], dtype=np.int16),
        "mainline": np.array([True, False, True], dtype=np.bool_),
    }


def test_round_trip_preserves_values_and_dtypes(tmp_path):
    path = tmp_path / "bundle.npc"
    columns = _sample_columns()
    write_columns(path, columns, meta={"day_start": 0, "day_end": 3})
    back = read_columns(path)
    assert list(back) == list(columns)
    for name, values in columns.items():
        assert back[name].dtype == values.dtype
        assert np.array_equal(back[name], values)
    header = read_header(path)
    assert header["format"] == COLUMNAR_FORMAT
    assert header["rows"] == 3
    assert header["meta"] == {"day_start": 0, "day_end": 3}
    assert read_column_names(path) == list(columns)


def test_bytes_are_deterministic():
    columns = _sample_columns()
    blob_a = columns_to_bytes(columns, meta={"k": 1})
    blob_b = columns_to_bytes(
        {name: values.copy() for name, values in columns.items()},
        meta={"k": 1},
    )
    assert blob_a == blob_b
    assert blob_a.startswith(COLUMNAR_MAGIC)
    # Different meta -> different bytes (meta is part of the header).
    assert blob_a != columns_to_bytes(columns, meta={"k": 2})


def test_subset_read_only_touches_requested_columns(tmp_path):
    path = tmp_path / "bundle.npc"
    write_columns(path, _sample_columns())
    subset = read_columns(path, names=["position", "day"])
    assert list(subset) == ["position", "day"]
    assert np.array_equal(subset["position"], [1, 2, 3])
    # Corrupt an unrequested column's payload: the subset read must
    # still succeed (it never reads those bytes)...
    header = read_header(path)
    entry = next(e for e in header["columns"] if e["name"] == "advertiser_id")
    blob = bytearray(path.read_bytes())
    base = len(blob) - header["columns"][-1]["offset"] - header["columns"][-1]["nbytes"]
    blob[base + entry["offset"] + entry["nbytes"] - 1] ^= 0xFF
    path.write_bytes(bytes(blob))
    again = read_columns(path, names=["position", "day"])
    assert np.array_equal(again["day"], [0.5, 1.5, 2.5])
    # ...while a full verified read flags the damaged column.
    with pytest.raises(RecordError, match="advertiser_id"):
        read_columns(path)


def test_unknown_column_request_raises(tmp_path):
    path = tmp_path / "bundle.npc"
    write_columns(path, _sample_columns())
    with pytest.raises(RecordError, match="no such columns"):
        read_columns(path, names=["nope"])


def test_zero_row_bundle_round_trips(tmp_path):
    path = tmp_path / "empty.npc"
    columns = {
        "day": np.array([], dtype=np.float64),
        "clicks": np.array([], dtype=np.float64),
    }
    write_columns(path, columns)
    back = read_columns(path)
    assert back["day"].shape == (0,)
    assert read_header(path)["rows"] == 0


def test_rejects_ragged_object_and_empty_inputs():
    with pytest.raises(RecordError, match="ragged"):
        columns_to_bytes(
            {
                "a": np.zeros(3),
                "b": np.zeros(4),
            }
        )
    with pytest.raises(RecordError, match="object dtype"):
        columns_to_bytes({"a": np.array(["x", None], dtype=object)})
    with pytest.raises(RecordError, match="at least one column"):
        columns_to_bytes({})
    with pytest.raises(RecordError, match="1-D"):
        columns_to_bytes({"a": np.zeros((2, 2))})


def test_rejects_damage(tmp_path):
    path = tmp_path / "bundle.npc"
    write_columns(path, _sample_columns())
    blob = path.read_bytes()

    # Wrong magic.
    bad = tmp_path / "bad.npc"
    bad.write_bytes(b"NOTACOLS" + blob[8:])
    with pytest.raises(RecordError, match="not a columnar bundle"):
        read_header(bad)

    # Truncated header.
    bad.write_bytes(blob[:12])
    with pytest.raises(RecordError, match="truncated"):
        read_header(bad)

    # Truncated payload tail.
    bad.write_bytes(blob[:-10])
    with pytest.raises(RecordError, match="truncated column"):
        read_columns(bad)

    # Bit flip in a payload is caught by the per-column checksum.
    flipped = bytearray(blob)
    flipped[-5] ^= 0xFF
    bad.write_bytes(bytes(flipped))
    with pytest.raises(RecordError, match="checksum mismatch"):
        read_columns(bad)
    # ...and skipped when the caller opts out of verification.
    read_columns(bad, verify=False, names=["day"])

    # Implausible header length field.
    huge = bytearray(blob)
    huge[8:16] = (1 << 32).to_bytes(8, "little")
    bad.write_bytes(bytes(huge))
    with pytest.raises(RecordError, match="implausible"):
        read_header(bad)
