"""Tests for the columnar impression table."""

import numpy as np
import pytest

from repro.errors import RecordError
from repro.records.impressions import ImpressionBuilder, ImpressionTable


def build_table(rows):
    builder = ImpressionBuilder()
    for row in rows:
        builder.add(**row)
    return builder.build()


def row(**overrides):
    defaults = dict(
        day=1.5,
        advertiser_id=1,
        ad_id=10,
        vertical=0,
        country=0,
        match_type=0,
        position=1,
        mainline=True,
        weight=100.0,
        clicks=5.0,
        spend=2.5,
        price=0.5,
        n_shown=3,
        n_fraud_shown=1,
        fraud_labeled=False,
    )
    defaults.update(overrides)
    return defaults


class TestBuilder:
    def test_len(self):
        builder = ImpressionBuilder()
        assert len(builder) == 0
        builder.add(**row())
        assert len(builder) == 1

    def test_build_types(self):
        table = build_table([row()])
        assert table.day.dtype == np.float64
        assert table.mainline.dtype == bool
        assert table.position.dtype == np.int16

    def test_empty_build(self):
        table = ImpressionBuilder().build()
        assert len(table) == 0
        assert table.total_clicks() == 0.0


def batch(n, **overrides):
    base = row()
    arrays = {
        name: np.asarray([base[name]] * n) for name in ImpressionTable.field_names()
    }
    arrays.update(overrides)
    return arrays


class TestAddBatch:
    def test_batch_then_build(self):
        builder = ImpressionBuilder()
        builder.add_batch(**batch(3, clicks=np.array([1.0, 2.0, 3.0])))
        builder.add_batch(**batch(2))
        assert len(builder) == 5
        table = builder.build()
        assert len(table) == 5
        assert table.clicks[:3].tolist() == [1.0, 2.0, 3.0]
        assert table.position.dtype == np.int16
        assert table.mainline.dtype == bool

    def test_interleaved_scalar_and_batch_preserves_order(self):
        builder = ImpressionBuilder()
        builder.add(**row(day=1.0))
        builder.add_batch(**batch(2, day=np.array([2.0, 3.0])))
        builder.add(**row(day=4.0))
        assert len(builder) == 4
        table = builder.build()
        assert table.day.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_interleaved_mixed_ingestion_rows_and_dtypes(self):
        # The docstring promises interleaved scalar/batch ingestion
        # preserves row order AND storage dtypes.  Scalar rows arrive as
        # Python bool/int/float and must narrow through _flush_scalar to
        # the declared storage dtypes; batch rows arrive as (possibly
        # wider) numpy arrays and must be cast on ingestion.
        builder = ImpressionBuilder()
        builder.add(**row(day=0.0, position=30000, mainline=True))
        builder.add(**row(day=1.0, match_type=2, fraud_labeled=False))
        builder.add_batch(
            **batch(
                2,
                day=np.array([2.0, 3.0]),
                # Wider than storage: i8 position, plain int mainline.
                position=np.array([5, 6], dtype=np.int64),
                mainline=np.array([0, 1], dtype=np.int64),
            )
        )
        builder.add(**row(day=4.0, n_shown=7, n_fraud_shown=3))
        builder.add_batch(**batch(1, day=np.array([5.0])))
        builder.add(**row(day=6.0))
        table = builder.build()
        assert table.day.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        dtypes = ImpressionTable.field_dtypes()
        for name in ImpressionTable.field_names():
            assert getattr(table, name).dtype == np.dtype(dtypes[name]), name
        # Values survive the narrowing exactly.
        assert table.position.tolist() == [30000, 1, 5, 6, 1, 1, 1]
        assert table.mainline.tolist() == [
            True, True, False, True, True, True, True,
        ]
        assert table.match_type[1] == 2
        assert table.n_shown[4] == 7

    def test_drain_round_trips_interleaved_rows(self):
        # The checkpoint runner drains mid-stream; feeding the drained
        # arrays back through add_batch must reconstruct the row stream.
        source = ImpressionBuilder()
        source.add(**row(day=0.0, clicks=1.0))
        source.add_batch(**batch(2, day=np.array([1.0, 2.0])))
        first = source.drain()
        assert len(source) == 0
        source.add(**row(day=3.0, mainline=False))
        second = source.drain()

        rebuilt = ImpressionBuilder()
        rebuilt.add_batch(**first)
        rebuilt.add_batch(**second)
        table = rebuilt.build()
        assert table.day.tolist() == [0.0, 1.0, 2.0, 3.0]
        assert table.mainline.tolist() == [True, True, True, False]
        dtypes = ImpressionTable.field_dtypes()
        for name in ImpressionTable.field_names():
            assert getattr(table, name).dtype == np.dtype(dtypes[name]), name

    def test_empty_batch_is_noop(self):
        builder = ImpressionBuilder()
        builder.add_batch(**batch(0))
        assert len(builder) == 0
        assert len(builder.build()) == 0

    def test_ragged_batch_rejected(self):
        builder = ImpressionBuilder()
        arrays = batch(3, clicks=np.array([1.0, 2.0]))
        with pytest.raises(RecordError):
            builder.add_batch(**arrays)

    def test_missing_field_rejected(self):
        builder = ImpressionBuilder()
        arrays = batch(2)
        del arrays["spend"]
        with pytest.raises(RecordError):
            builder.add_batch(**arrays)


class TestTable:
    def test_ragged_rejected(self):
        table = build_table([row(), row(day=2.0)])
        with pytest.raises(RecordError):
            ImpressionTable(
                **{
                    name: (
                        getattr(table, name)[:1]
                        if name == "day"
                        else getattr(table, name)
                    )
                    for name in ImpressionTable.field_names()
                }
            )

    def test_select(self):
        table = build_table([row(day=1.0), row(day=2.0), row(day=3.0)])
        subset = table.select(table.day > 1.5)
        assert len(subset) == 2

    def test_in_window_half_open(self):
        table = build_table([row(day=1.0), row(day=2.0), row(day=3.0)])
        window = table.in_window(1.0, 3.0)
        assert len(window) == 2
        assert set(window.day.tolist()) == {1.0, 2.0}

    def test_totals(self):
        table = build_table([row(clicks=5.0, spend=2.5), row(clicks=3.0, spend=1.0)])
        assert table.total_clicks() == 8.0
        assert table.total_spend() == 3.5

    def test_columns_round_trip(self, tmp_path):
        from repro.records.columnar import read_columns, write_columns

        table = build_table([row(day=1.0), row(day=2.0, fraud_labeled=True)])
        columns = table.to_columns()
        assert list(columns) == list(ImpressionTable.field_names())
        path = tmp_path / "impressions.npc"
        write_columns(path, columns)
        back = ImpressionTable.from_columns(read_columns(path))
        for name in ImpressionTable.field_names():
            ours, theirs = getattr(table, name), getattr(back, name)
            assert ours.dtype == theirs.dtype, name
            assert np.array_equal(ours, theirs), name

    def test_from_columns_rejects_wrong_fields(self):
        table = build_table([row()])
        columns = table.to_columns()
        del columns["spend"]
        with pytest.raises(RecordError):
            ImpressionTable.from_columns(columns)

    def test_has_fraud_competition_excludes_self(self):
        # A fraud advertiser alone on the page: n_fraud_shown == 1 is itself.
        table = build_table(
            [
                row(fraud_labeled=True, n_fraud_shown=1),
                row(fraud_labeled=True, n_fraud_shown=2),
                row(fraud_labeled=False, n_fraud_shown=1),
                row(fraud_labeled=False, n_fraud_shown=0),
            ]
        )
        expected = [False, True, True, False]
        assert table.has_fraud_competition.tolist() == expected
