"""Tests for the columnar impression table."""

import numpy as np
import pytest

from repro.errors import RecordError
from repro.records.impressions import ImpressionBuilder, ImpressionTable


def build_table(rows):
    builder = ImpressionBuilder()
    for row in rows:
        builder.add(**row)
    return builder.build()


def row(**overrides):
    defaults = dict(
        day=1.5,
        advertiser_id=1,
        ad_id=10,
        vertical=0,
        country=0,
        match_type=0,
        position=1,
        mainline=True,
        weight=100.0,
        clicks=5.0,
        spend=2.5,
        price=0.5,
        n_shown=3,
        n_fraud_shown=1,
        fraud_labeled=False,
    )
    defaults.update(overrides)
    return defaults


class TestBuilder:
    def test_len(self):
        builder = ImpressionBuilder()
        assert len(builder) == 0
        builder.add(**row())
        assert len(builder) == 1

    def test_build_types(self):
        table = build_table([row()])
        assert table.day.dtype == np.float64
        assert table.mainline.dtype == bool
        assert table.position.dtype == np.int16

    def test_empty_build(self):
        table = ImpressionBuilder().build()
        assert len(table) == 0
        assert table.total_clicks() == 0.0


def batch(n, **overrides):
    base = row()
    arrays = {
        name: np.asarray([base[name]] * n) for name in ImpressionTable.field_names()
    }
    arrays.update(overrides)
    return arrays


class TestAddBatch:
    def test_batch_then_build(self):
        builder = ImpressionBuilder()
        builder.add_batch(**batch(3, clicks=np.array([1.0, 2.0, 3.0])))
        builder.add_batch(**batch(2))
        assert len(builder) == 5
        table = builder.build()
        assert len(table) == 5
        assert table.clicks[:3].tolist() == [1.0, 2.0, 3.0]
        assert table.position.dtype == np.int16
        assert table.mainline.dtype == bool

    def test_interleaved_scalar_and_batch_preserves_order(self):
        builder = ImpressionBuilder()
        builder.add(**row(day=1.0))
        builder.add_batch(**batch(2, day=np.array([2.0, 3.0])))
        builder.add(**row(day=4.0))
        assert len(builder) == 4
        table = builder.build()
        assert table.day.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_empty_batch_is_noop(self):
        builder = ImpressionBuilder()
        builder.add_batch(**batch(0))
        assert len(builder) == 0
        assert len(builder.build()) == 0

    def test_ragged_batch_rejected(self):
        builder = ImpressionBuilder()
        arrays = batch(3, clicks=np.array([1.0, 2.0]))
        with pytest.raises(RecordError):
            builder.add_batch(**arrays)

    def test_missing_field_rejected(self):
        builder = ImpressionBuilder()
        arrays = batch(2)
        del arrays["spend"]
        with pytest.raises(RecordError):
            builder.add_batch(**arrays)


class TestTable:
    def test_ragged_rejected(self):
        table = build_table([row(), row(day=2.0)])
        with pytest.raises(RecordError):
            ImpressionTable(
                **{
                    name: (
                        getattr(table, name)[:1]
                        if name == "day"
                        else getattr(table, name)
                    )
                    for name in ImpressionTable.field_names()
                }
            )

    def test_select(self):
        table = build_table([row(day=1.0), row(day=2.0), row(day=3.0)])
        subset = table.select(table.day > 1.5)
        assert len(subset) == 2

    def test_in_window_half_open(self):
        table = build_table([row(day=1.0), row(day=2.0), row(day=3.0)])
        window = table.in_window(1.0, 3.0)
        assert len(window) == 2
        assert set(window.day.tolist()) == {1.0, 2.0}

    def test_totals(self):
        table = build_table([row(clicks=5.0, spend=2.5), row(clicks=3.0, spend=1.0)])
        assert table.total_clicks() == 8.0
        assert table.total_spend() == 3.5

    def test_has_fraud_competition_excludes_self(self):
        # A fraud advertiser alone on the page: n_fraud_shown == 1 is itself.
        table = build_table(
            [
                row(fraud_labeled=True, n_fraud_shown=1),
                row(fraud_labeled=True, n_fraud_shown=2),
                row(fraud_labeled=False, n_fraud_shown=1),
                row(fraud_labeled=False, n_fraud_shown=0),
            ]
        )
        expected = [False, True, True, False]
        assert table.has_fraud_competition.tolist() == expected
