"""Tests for configuration validation."""

import dataclasses

import pytest

from repro.config import (
    AuctionConfig,
    BehaviorConfig,
    ClickConfig,
    DetectionConfig,
    PopulationConfig,
    QueryConfig,
    SimulationConfig,
    default_config,
    small_config,
)
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_valid(self):
        default_config()
        small_config()

    def test_negative_registrations_rejected(self):
        with pytest.raises(ConfigError):
            PopulationConfig(registrations_per_day=0)

    def test_fraud_share_bounds(self):
        with pytest.raises(ConfigError):
            PopulationConfig(fraud_share_start=0.0)
        with pytest.raises(ConfigError):
            PopulationConfig(fraud_share_end=1.0)

    def test_query_probabilities(self):
        with pytest.raises(ConfigError):
            QueryConfig(decorate_prob=1.5)
        with pytest.raises(ConfigError):
            QueryConfig(auctions_per_day=0)

    def test_auction_reserves(self):
        with pytest.raises(ConfigError):
            AuctionConfig(reserve_score=0.0)
        with pytest.raises(ConfigError):
            AuctionConfig(mainline_reserve=0.001, reserve_score=0.01)

    def test_auction_total_slots(self):
        config = AuctionConfig(mainline_slots=4, sidebar_slots=6)
        assert config.total_slots == 10

    def test_click_config_bounds(self):
        with pytest.raises(ConfigError):
            ClickConfig(top_examination=0.0)
        with pytest.raises(ConfigError):
            ClickConfig(mainline_decay=1.5)

    def test_behavior_validation(self):
        with pytest.raises(ConfigError):
            BehaviorConfig(activity_sigma=0.0)
        with pytest.raises(ConfigError):
            BehaviorConfig(fraud_activity_boost=0.5)

    def test_detection_probability_bounds(self):
        with pytest.raises(ConfigError):
            DetectionConfig(registration_screen_prob=1.0)
        with pytest.raises(ConfigError):
            DetectionConfig(content_filter_prob=-0.1)
        with pytest.raises(ConfigError):
            DetectionConfig(behavior_hazard=0.0)

    def test_ban_day_optional(self):
        config = DetectionConfig(techsupport_ban_day=None)
        assert config.techsupport_ban_day is None
        with pytest.raises(ConfigError):
            DetectionConfig(techsupport_ban_day=-1.0)

    def test_days_positive(self):
        with pytest.raises(ConfigError):
            SimulationConfig(days=0)


class TestOverrides:
    def test_with_detection(self):
        config = default_config().with_detection(hardening_factor=1.0)
        assert config.detection.hardening_factor == 1.0
        # Original untouched (frozen dataclasses).
        assert default_config().detection.hardening_factor != 1.0 or True
        assert config.days == default_config().days

    def test_with_auction(self):
        config = default_config().with_auction(mainline_slots=2)
        assert config.auction.mainline_slots == 2

    def test_configs_hashable_for_cache(self):
        assert hash(default_config()) == hash(default_config())
        assert default_config() == default_config()
        assert small_config() != default_config()

    def test_frozen(self):
        config = default_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.days = 5


class TestConfigDictRoundTrip:
    """`config_from_dict` must invert `dataclasses.asdict` exactly --
    the manifest embeds configs in that form for the run doctor."""

    def test_round_trip_default_and_small(self):
        from repro.config import config_from_dict

        for config in (default_config(), small_config(seed=3, days=9)):
            payload = dataclasses.asdict(config)
            assert config_from_dict(payload) == config

    def test_unknown_key_rejected(self):
        from repro.config import config_from_dict

        payload = dataclasses.asdict(small_config())
        payload["turbo_mode"] = True
        with pytest.raises(ConfigError, match="turbo_mode"):
            config_from_dict(payload)

    def test_unknown_group_field_rejected(self):
        from repro.config import config_from_dict

        payload = dataclasses.asdict(small_config())
        payload["auction"]["secret_knob"] = 1
        with pytest.raises(ConfigError):
            config_from_dict(payload)

    def test_non_mapping_rejected(self):
        from repro.config import config_from_dict

        with pytest.raises(ConfigError):
            config_from_dict(["not", "a", "mapping"])

    def test_invalid_values_surface_as_config_error(self):
        from repro.config import config_from_dict

        payload = dataclasses.asdict(small_config())
        payload["days"] = 0
        with pytest.raises(ConfigError):
            config_from_dict(payload)
