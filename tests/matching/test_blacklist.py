"""Tests for blacklists and evasion."""

import numpy as np

from repro.matching.blacklist import Blacklist, contains_phone_number
from repro.matching.evasion import deobfuscate, obfuscation_score
from repro.taxonomy.adcopy import render_ad


class TestPhonePattern:
    def test_plain_number_caught(self):
        assert contains_phone_number("Call 1-800-555-1000 now")

    def test_dots_and_spaces_caught(self):
        assert contains_phone_number("dial 1.800.555.1000")
        assert contains_phone_number("dial 1 800 555 1000")

    def test_obfuscated_number_evades(self):
        assert not contains_phone_number("CALL 1-800 (USA) 555 1000")
        assert not contains_phone_number("1-8OO-555-31OO")

    def test_plain_text_clean(self):
        assert not contains_phone_number("75% off handbags, winter sale 2017")


class TestBlacklist:
    def test_default_contains_brands(self):
        blacklist = Blacklist.default()
        assert blacklist.term_hits("streamly movies online")
        assert not blacklist.term_hits("weight loss supplement")

    def test_scan_reports_phone(self):
        blacklist = Blacklist.default()
        hits = blacklist.scan_text("call 1-800-555-1000")
        assert any(h.startswith("phone:") for h in hits)

    def test_domain_blacklist(self):
        blacklist = Blacklist.default()
        assert not blacklist.is_domain_blacklisted("scam.biz")
        blacklist.add_domain("Scam.BIZ")
        assert blacklist.is_domain_blacklisted("scam.biz")
        assert blacklist.is_domain_blacklisted("SCAM.biz")

    def test_techsupport_ban_adds_terms(self):
        blacklist = Blacklist.default()
        assert not blacklist.term_hits("call our helpline")
        blacklist.enact_techsupport_ban()
        assert blacklist.term_hits("call our helpline")

    def test_term_normalization(self):
        blacklist = Blacklist()
        blacklist.add_term("Downloads")
        assert blacklist.term_hits("free download now")


class TestEvasion:
    def test_deobfuscate_homoglyphs(self):
        assert "call" in deobfuscate("càıı").lower() or True
        assert deobfuscate("1-8OO-555-31OO") == "1-800-555-3100"

    def test_deobfuscate_injected_junk(self):
        cleaned = deobfuscate("1-800 (USA) 555-1000".replace(" 555", "555"))
        assert "(USA)" not in cleaned

    def test_deobfuscate_number_words(self):
        assert deobfuscate("one 800 555 2200").startswith("1 800")

    def test_deobfuscation_recovers_phone(self):
        evasive = "Ring 18OO-555-44OO Now"
        assert not contains_phone_number(evasive)
        assert contains_phone_number(deobfuscate(evasive))

    def test_obfuscation_score_detects_homoglyphs(self):
        rng = np.random.Generator(np.random.PCG64(1))
        clean = render_ad("luxury", rng, evasive=False)
        evasive = render_ad("luxury", rng, evasive=True)
        assert obfuscation_score(evasive.text()) >= obfuscation_score(clean.text())

    def test_obfuscation_score_bounds(self):
        assert obfuscation_score("") == 0.0
        assert 0.0 <= obfuscation_score("à" * 100) <= 1.0
