"""Tests for query/keyword normalization."""

from hypothesis import given, strategies as st

from repro.matching.normalize import (
    SYNONYMS,
    expand_token,
    normalize_phrase,
    normalize_token,
)


class TestNormalizeToken:
    def test_lowercase(self):
        assert normalize_token("Printer") == "printer"

    def test_diacritics_stripped(self):
        assert normalize_token("crèmé") == "creme"

    def test_punctuation_stripped(self):
        assert normalize_token("anti-virus!") == "antivirus"

    def test_plural_folding(self):
        assert normalize_token("flights") == "flight"
        assert normalize_token("handbags") == "handbag"

    def test_short_words_not_depluralized(self):
        assert normalize_token("gas") == "gas"

    def test_double_s_preserved(self):
        assert normalize_token("glass") == "glass"

    def test_misspelling_folded(self):
        assert normalize_token("downlaod") == "download"
        assert normalize_token("suport") == "support"

    def test_plural_and_singular_converge(self):
        assert normalize_token("downloads") == normalize_token("download")

    @given(st.text(max_size=30))
    def test_idempotent(self, token):
        once = normalize_token(token)
        assert normalize_token(once) in (once, normalize_token(once))
        # Normalization must always produce lowercase alphanumerics.
        assert all(c.isalnum() for c in once)

    @given(st.text(max_size=30))
    def test_never_raises(self, token):
        normalize_token(token)


class TestNormalizePhrase:
    def test_drops_empty_tokens(self):
        assert normalize_phrase(("a", "!!", "b")) == ("a", "b")

    def test_preserves_order(self):
        assert normalize_phrase(("Weight", "Loss")) == ("weight", "loss")


class TestSynonyms:
    def test_expansion_includes_self(self):
        assert "cheap" in expand_token("cheap")

    def test_expansion_includes_synonyms(self):
        assert "discount" in expand_token("cheap")

    def test_synonym_table_targets_normalized(self):
        for token, synonyms in SYNONYMS.items():
            assert normalize_token(token) == token
            for synonym in synonyms:
                assert normalize_token(synonym) == synonym
