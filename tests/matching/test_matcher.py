"""Tests for exact/phrase/broad match semantics."""

from hypothesis import given, strategies as st

from repro.entities.enums import MatchType
from repro.matching.matcher import broad_match, exact_match, matches, phrase_match

WORDS = st.sampled_from(
    ["weight", "loss", "cheap", "flight", "printer", "support", "download", "best"]
)
PHRASES = st.lists(WORDS, min_size=1, max_size=4).map(tuple)


class TestExact:
    def test_identity(self):
        assert exact_match(("weight", "loss"), ("weight", "loss"))

    def test_extra_word_fails(self):
        assert not exact_match(("weight", "loss"), ("weight", "loss", "fast"))

    def test_reorder_fails(self):
        assert not exact_match(("weight", "loss"), ("loss", "weight"))

    def test_normalization_applies(self):
        assert exact_match(("Weight", "Loss"), ("weight", "losses"))


class TestPhrase:
    def test_in_order_with_extras(self):
        assert phrase_match(("weight", "loss"), ("best", "weight", "loss", "fast"))

    def test_non_contiguous_fails(self):
        assert not phrase_match(("weight", "loss"), ("weight", "fast", "loss"))

    def test_reorder_fails(self):
        assert not phrase_match(("weight", "loss"), ("loss", "weight"))

    def test_longer_keyword_than_query_fails(self):
        assert not phrase_match(("a", "b", "c"), ("a", "b"))


class TestBroad:
    def test_any_order(self):
        assert broad_match(("weight", "loss"), ("loss", "fast", "weight"))

    def test_synonym_matches(self):
        # 'cheap' expands to 'discount'.
        assert broad_match(("cheap", "flight"), ("discount", "flight", "deals"))

    def test_missing_token_fails(self):
        assert not broad_match(("weight", "loss"), ("weight", "fast"))

    def test_empty_query_fails(self):
        assert not broad_match(("weight",), ())


class TestHierarchy:
    """Exact implies phrase implies broad (with identical vocabularies)."""

    @given(PHRASES, PHRASES)
    def test_exact_implies_phrase(self, keyword, query):
        if exact_match(keyword, query):
            assert phrase_match(keyword, query)

    @given(PHRASES, PHRASES)
    def test_phrase_implies_broad(self, keyword, query):
        if phrase_match(keyword, query):
            assert broad_match(keyword, query)

    @given(PHRASES)
    def test_self_match_all_types(self, phrase):
        for match_type in MatchType:
            assert matches(phrase, match_type, phrase)


class TestDispatch:
    def test_matches_routes_by_type(self):
        kw, query = ("weight", "loss"), ("best", "weight", "loss")
        assert not matches(kw, MatchType.EXACT, query)
        assert matches(kw, MatchType.PHRASE, query)
        assert matches(kw, MatchType.BROAD, query)
