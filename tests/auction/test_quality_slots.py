"""Tests for quality scores and page layout."""

import pytest

from repro.auction.quality import MATCH_RELEVANCE, quality_score
from repro.auction.slots import layout
from repro.config import AuctionConfig
from repro.entities.enums import MatchType

CONFIG = AuctionConfig(
    mainline_slots=2,
    sidebar_slots=2,
    mainline_reserve=0.5,
    reserve_score=0.1,
)


class TestQuality:
    def test_relevance_ordering(self):
        assert (
            MATCH_RELEVANCE[MatchType.EXACT]
            > MATCH_RELEVANCE[MatchType.PHRASE]
            > MATCH_RELEVANCE[MatchType.BROAD]
        )

    def test_exact_beats_broad(self):
        exact = quality_score(1.0, 1.0, 0.05, MatchType.EXACT)
        broad = quality_score(1.0, 1.0, 0.05, MatchType.BROAD)
        assert exact > broad

    def test_components_multiply(self):
        assert quality_score(2.0, 3.0, 0.05, MatchType.EXACT) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            quality_score(0.0, 1.0, 0.05, MatchType.EXACT)
        with pytest.raises(ValueError):
            quality_score(1.0, 1.0, -0.05, MatchType.EXACT)


class TestLayout:
    def test_empty(self):
        assert layout([], CONFIG) == []

    def test_all_below_reserve(self):
        assert layout([0.05, 0.01], CONFIG) == []

    def test_stops_at_first_below_reserve(self):
        placements = layout([1.0, 0.05, 0.9], CONFIG)
        # The list is ranked; a sub-reserve score ends the page.
        assert len(placements) == 1

    def test_mainline_then_sidebar(self):
        placements = layout([1.0, 0.9, 0.8, 0.7], CONFIG)
        assert [p.mainline for p in placements] == [True, True, False, False]
        assert [p.position for p in placements] == [1, 2, 3, 4]

    def test_weak_leader_goes_sidebar(self):
        placements = layout([0.3, 0.2], CONFIG)
        assert all(not p.mainline for p in placements)

    def test_dynamic_mainline_size(self):
        # Only one ad clears the mainline reserve: mainline has 1 ad.
        placements = layout([0.9, 0.3, 0.2], CONFIG)
        assert [p.mainline for p in placements] == [True, False, False]

    def test_capacity_limit(self):
        placements = layout([1.0] * 10, CONFIG)
        assert len(placements) == CONFIG.total_slots
